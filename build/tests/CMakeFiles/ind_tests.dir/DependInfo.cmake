
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/ind_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/ind_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_design.cpp" "tests/CMakeFiles/ind_tests.dir/test_design.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_design.cpp.o.d"
  "/root/repo/tests/test_extract.cpp" "tests/CMakeFiles/ind_tests.dir/test_extract.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_extract.cpp.o.d"
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/ind_tests.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_geom.cpp.o.d"
  "/root/repo/tests/test_geom_io.cpp" "tests/CMakeFiles/ind_tests.dir/test_geom_io.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_geom_io.cpp.o.d"
  "/root/repo/tests/test_la.cpp" "tests/CMakeFiles/ind_tests.dir/test_la.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_la.cpp.o.d"
  "/root/repo/tests/test_loop.cpp" "tests/CMakeFiles/ind_tests.dir/test_loop.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_loop.cpp.o.d"
  "/root/repo/tests/test_mor.cpp" "tests/CMakeFiles/ind_tests.dir/test_mor.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_mor.cpp.o.d"
  "/root/repo/tests/test_peec.cpp" "tests/CMakeFiles/ind_tests.dir/test_peec.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_peec.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ind_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sparsify.cpp" "tests/CMakeFiles/ind_tests.dir/test_sparsify.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_sparsify.cpp.o.d"
  "/root/repo/tests/test_spice_export.cpp" "tests/CMakeFiles/ind_tests.dir/test_spice_export.cpp.o" "gcc" "tests/CMakeFiles/ind_tests.dir/test_spice_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_sparsify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_mor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_peec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_loop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
