# Empty dependencies file for ind_tests.
# This may be replaced when dependencies are built.
