file(REMOVE_RECURSE
  "CMakeFiles/ind_tests.dir/test_circuit.cpp.o"
  "CMakeFiles/ind_tests.dir/test_circuit.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_core.cpp.o"
  "CMakeFiles/ind_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_design.cpp.o"
  "CMakeFiles/ind_tests.dir/test_design.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_extract.cpp.o"
  "CMakeFiles/ind_tests.dir/test_extract.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_geom.cpp.o"
  "CMakeFiles/ind_tests.dir/test_geom.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_geom_io.cpp.o"
  "CMakeFiles/ind_tests.dir/test_geom_io.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_la.cpp.o"
  "CMakeFiles/ind_tests.dir/test_la.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_loop.cpp.o"
  "CMakeFiles/ind_tests.dir/test_loop.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_mor.cpp.o"
  "CMakeFiles/ind_tests.dir/test_mor.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_peec.cpp.o"
  "CMakeFiles/ind_tests.dir/test_peec.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_properties.cpp.o"
  "CMakeFiles/ind_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_sparsify.cpp.o"
  "CMakeFiles/ind_tests.dir/test_sparsify.cpp.o.d"
  "CMakeFiles/ind_tests.dir/test_spice_export.cpp.o"
  "CMakeFiles/ind_tests.dir/test_spice_export.cpp.o.d"
  "ind_tests"
  "ind_tests.pdb"
  "ind_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
