
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/layer.cpp" "src/CMakeFiles/ind_geom.dir/geom/layer.cpp.o" "gcc" "src/CMakeFiles/ind_geom.dir/geom/layer.cpp.o.d"
  "/root/repo/src/geom/layout.cpp" "src/CMakeFiles/ind_geom.dir/geom/layout.cpp.o" "gcc" "src/CMakeFiles/ind_geom.dir/geom/layout.cpp.o.d"
  "/root/repo/src/geom/layout_io.cpp" "src/CMakeFiles/ind_geom.dir/geom/layout_io.cpp.o" "gcc" "src/CMakeFiles/ind_geom.dir/geom/layout_io.cpp.o.d"
  "/root/repo/src/geom/segment.cpp" "src/CMakeFiles/ind_geom.dir/geom/segment.cpp.o" "gcc" "src/CMakeFiles/ind_geom.dir/geom/segment.cpp.o.d"
  "/root/repo/src/geom/topologies.cpp" "src/CMakeFiles/ind_geom.dir/geom/topologies.cpp.o" "gcc" "src/CMakeFiles/ind_geom.dir/geom/topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
