file(REMOVE_RECURSE
  "libind_geom.a"
)
