# Empty compiler generated dependencies file for ind_geom.
# This may be replaced when dependencies are built.
