file(REMOVE_RECURSE
  "CMakeFiles/ind_geom.dir/geom/layer.cpp.o"
  "CMakeFiles/ind_geom.dir/geom/layer.cpp.o.d"
  "CMakeFiles/ind_geom.dir/geom/layout.cpp.o"
  "CMakeFiles/ind_geom.dir/geom/layout.cpp.o.d"
  "CMakeFiles/ind_geom.dir/geom/layout_io.cpp.o"
  "CMakeFiles/ind_geom.dir/geom/layout_io.cpp.o.d"
  "CMakeFiles/ind_geom.dir/geom/segment.cpp.o"
  "CMakeFiles/ind_geom.dir/geom/segment.cpp.o.d"
  "CMakeFiles/ind_geom.dir/geom/topologies.cpp.o"
  "CMakeFiles/ind_geom.dir/geom/topologies.cpp.o.d"
  "libind_geom.a"
  "libind_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
