file(REMOVE_RECURSE
  "CMakeFiles/ind_mor.dir/mor/hierarchical.cpp.o"
  "CMakeFiles/ind_mor.dir/mor/hierarchical.cpp.o.d"
  "CMakeFiles/ind_mor.dir/mor/prima.cpp.o"
  "CMakeFiles/ind_mor.dir/mor/prima.cpp.o.d"
  "CMakeFiles/ind_mor.dir/mor/reduced_model.cpp.o"
  "CMakeFiles/ind_mor.dir/mor/reduced_model.cpp.o.d"
  "libind_mor.a"
  "libind_mor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_mor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
