file(REMOVE_RECURSE
  "libind_mor.a"
)
