
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mor/hierarchical.cpp" "src/CMakeFiles/ind_mor.dir/mor/hierarchical.cpp.o" "gcc" "src/CMakeFiles/ind_mor.dir/mor/hierarchical.cpp.o.d"
  "/root/repo/src/mor/prima.cpp" "src/CMakeFiles/ind_mor.dir/mor/prima.cpp.o" "gcc" "src/CMakeFiles/ind_mor.dir/mor/prima.cpp.o.d"
  "/root/repo/src/mor/reduced_model.cpp" "src/CMakeFiles/ind_mor.dir/mor/reduced_model.cpp.o" "gcc" "src/CMakeFiles/ind_mor.dir/mor/reduced_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
