# Empty dependencies file for ind_mor.
# This may be replaced when dependencies are built.
