# Empty dependencies file for ind_sparsify.
# This may be replaced when dependencies are built.
