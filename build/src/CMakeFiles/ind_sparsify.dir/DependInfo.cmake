
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparsify/block_diagonal.cpp" "src/CMakeFiles/ind_sparsify.dir/sparsify/block_diagonal.cpp.o" "gcc" "src/CMakeFiles/ind_sparsify.dir/sparsify/block_diagonal.cpp.o.d"
  "/root/repo/src/sparsify/halo.cpp" "src/CMakeFiles/ind_sparsify.dir/sparsify/halo.cpp.o" "gcc" "src/CMakeFiles/ind_sparsify.dir/sparsify/halo.cpp.o.d"
  "/root/repo/src/sparsify/kmatrix.cpp" "src/CMakeFiles/ind_sparsify.dir/sparsify/kmatrix.cpp.o" "gcc" "src/CMakeFiles/ind_sparsify.dir/sparsify/kmatrix.cpp.o.d"
  "/root/repo/src/sparsify/mutual_spec.cpp" "src/CMakeFiles/ind_sparsify.dir/sparsify/mutual_spec.cpp.o" "gcc" "src/CMakeFiles/ind_sparsify.dir/sparsify/mutual_spec.cpp.o.d"
  "/root/repo/src/sparsify/shell.cpp" "src/CMakeFiles/ind_sparsify.dir/sparsify/shell.cpp.o" "gcc" "src/CMakeFiles/ind_sparsify.dir/sparsify/shell.cpp.o.d"
  "/root/repo/src/sparsify/stability.cpp" "src/CMakeFiles/ind_sparsify.dir/sparsify/stability.cpp.o" "gcc" "src/CMakeFiles/ind_sparsify.dir/sparsify/stability.cpp.o.d"
  "/root/repo/src/sparsify/truncation.cpp" "src/CMakeFiles/ind_sparsify.dir/sparsify/truncation.cpp.o" "gcc" "src/CMakeFiles/ind_sparsify.dir/sparsify/truncation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
