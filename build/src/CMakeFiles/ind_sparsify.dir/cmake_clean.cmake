file(REMOVE_RECURSE
  "CMakeFiles/ind_sparsify.dir/sparsify/block_diagonal.cpp.o"
  "CMakeFiles/ind_sparsify.dir/sparsify/block_diagonal.cpp.o.d"
  "CMakeFiles/ind_sparsify.dir/sparsify/halo.cpp.o"
  "CMakeFiles/ind_sparsify.dir/sparsify/halo.cpp.o.d"
  "CMakeFiles/ind_sparsify.dir/sparsify/kmatrix.cpp.o"
  "CMakeFiles/ind_sparsify.dir/sparsify/kmatrix.cpp.o.d"
  "CMakeFiles/ind_sparsify.dir/sparsify/mutual_spec.cpp.o"
  "CMakeFiles/ind_sparsify.dir/sparsify/mutual_spec.cpp.o.d"
  "CMakeFiles/ind_sparsify.dir/sparsify/shell.cpp.o"
  "CMakeFiles/ind_sparsify.dir/sparsify/shell.cpp.o.d"
  "CMakeFiles/ind_sparsify.dir/sparsify/stability.cpp.o"
  "CMakeFiles/ind_sparsify.dir/sparsify/stability.cpp.o.d"
  "CMakeFiles/ind_sparsify.dir/sparsify/truncation.cpp.o"
  "CMakeFiles/ind_sparsify.dir/sparsify/truncation.cpp.o.d"
  "libind_sparsify.a"
  "libind_sparsify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_sparsify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
