file(REMOVE_RECURSE
  "libind_sparsify.a"
)
