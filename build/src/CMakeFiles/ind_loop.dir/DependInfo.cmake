
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loop/ladder_fit.cpp" "src/CMakeFiles/ind_loop.dir/loop/ladder_fit.cpp.o" "gcc" "src/CMakeFiles/ind_loop.dir/loop/ladder_fit.cpp.o.d"
  "/root/repo/src/loop/loop_model.cpp" "src/CMakeFiles/ind_loop.dir/loop/loop_model.cpp.o" "gcc" "src/CMakeFiles/ind_loop.dir/loop/loop_model.cpp.o.d"
  "/root/repo/src/loop/mqs_solver.cpp" "src/CMakeFiles/ind_loop.dir/loop/mqs_solver.cpp.o" "gcc" "src/CMakeFiles/ind_loop.dir/loop/mqs_solver.cpp.o.d"
  "/root/repo/src/loop/port_extractor.cpp" "src/CMakeFiles/ind_loop.dir/loop/port_extractor.cpp.o" "gcc" "src/CMakeFiles/ind_loop.dir/loop/port_extractor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
