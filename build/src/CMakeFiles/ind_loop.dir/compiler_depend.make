# Empty compiler generated dependencies file for ind_loop.
# This may be replaced when dependencies are built.
