file(REMOVE_RECURSE
  "CMakeFiles/ind_loop.dir/loop/ladder_fit.cpp.o"
  "CMakeFiles/ind_loop.dir/loop/ladder_fit.cpp.o.d"
  "CMakeFiles/ind_loop.dir/loop/loop_model.cpp.o"
  "CMakeFiles/ind_loop.dir/loop/loop_model.cpp.o.d"
  "CMakeFiles/ind_loop.dir/loop/mqs_solver.cpp.o"
  "CMakeFiles/ind_loop.dir/loop/mqs_solver.cpp.o.d"
  "CMakeFiles/ind_loop.dir/loop/port_extractor.cpp.o"
  "CMakeFiles/ind_loop.dir/loop/port_extractor.cpp.o.d"
  "libind_loop.a"
  "libind_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
