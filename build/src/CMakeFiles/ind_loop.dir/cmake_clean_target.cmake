file(REMOVE_RECURSE
  "libind_loop.a"
)
