# Empty compiler generated dependencies file for ind_peec.
# This may be replaced when dependencies are built.
