file(REMOVE_RECURSE
  "libind_peec.a"
)
