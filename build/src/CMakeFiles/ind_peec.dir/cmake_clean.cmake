file(REMOVE_RECURSE
  "CMakeFiles/ind_peec.dir/peec/decap.cpp.o"
  "CMakeFiles/ind_peec.dir/peec/decap.cpp.o.d"
  "CMakeFiles/ind_peec.dir/peec/grid_analysis.cpp.o"
  "CMakeFiles/ind_peec.dir/peec/grid_analysis.cpp.o.d"
  "CMakeFiles/ind_peec.dir/peec/model_builder.cpp.o"
  "CMakeFiles/ind_peec.dir/peec/model_builder.cpp.o.d"
  "CMakeFiles/ind_peec.dir/peec/package.cpp.o"
  "CMakeFiles/ind_peec.dir/peec/package.cpp.o.d"
  "libind_peec.a"
  "libind_peec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_peec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
