
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peec/decap.cpp" "src/CMakeFiles/ind_peec.dir/peec/decap.cpp.o" "gcc" "src/CMakeFiles/ind_peec.dir/peec/decap.cpp.o.d"
  "/root/repo/src/peec/grid_analysis.cpp" "src/CMakeFiles/ind_peec.dir/peec/grid_analysis.cpp.o" "gcc" "src/CMakeFiles/ind_peec.dir/peec/grid_analysis.cpp.o.d"
  "/root/repo/src/peec/model_builder.cpp" "src/CMakeFiles/ind_peec.dir/peec/model_builder.cpp.o" "gcc" "src/CMakeFiles/ind_peec.dir/peec/model_builder.cpp.o.d"
  "/root/repo/src/peec/package.cpp" "src/CMakeFiles/ind_peec.dir/peec/package.cpp.o" "gcc" "src/CMakeFiles/ind_peec.dir/peec/package.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
