file(REMOVE_RECURSE
  "CMakeFiles/ind_design.dir/design/metrics.cpp.o"
  "CMakeFiles/ind_design.dir/design/metrics.cpp.o.d"
  "CMakeFiles/ind_design.dir/design/shield_optimizer.cpp.o"
  "CMakeFiles/ind_design.dir/design/shield_optimizer.cpp.o.d"
  "CMakeFiles/ind_design.dir/design/significance.cpp.o"
  "CMakeFiles/ind_design.dir/design/significance.cpp.o.d"
  "libind_design.a"
  "libind_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
