
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/design/metrics.cpp" "src/CMakeFiles/ind_design.dir/design/metrics.cpp.o" "gcc" "src/CMakeFiles/ind_design.dir/design/metrics.cpp.o.d"
  "/root/repo/src/design/shield_optimizer.cpp" "src/CMakeFiles/ind_design.dir/design/shield_optimizer.cpp.o" "gcc" "src/CMakeFiles/ind_design.dir/design/shield_optimizer.cpp.o.d"
  "/root/repo/src/design/significance.cpp" "src/CMakeFiles/ind_design.dir/design/significance.cpp.o" "gcc" "src/CMakeFiles/ind_design.dir/design/significance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_loop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_peec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
