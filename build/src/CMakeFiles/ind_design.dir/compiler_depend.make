# Empty compiler generated dependencies file for ind_design.
# This may be replaced when dependencies are built.
