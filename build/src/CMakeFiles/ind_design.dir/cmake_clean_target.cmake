file(REMOVE_RECURSE
  "libind_design.a"
)
