
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/ac.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/ac.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/mna.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/sources.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/sources.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/sources.cpp.o.d"
  "/root/repo/src/circuit/spice_export.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/spice_export.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/spice_export.cpp.o.d"
  "/root/repo/src/circuit/spice_import.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/spice_import.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/spice_import.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/transient.cpp.o.d"
  "/root/repo/src/circuit/waveform.cpp" "src/CMakeFiles/ind_circuit.dir/circuit/waveform.cpp.o" "gcc" "src/CMakeFiles/ind_circuit.dir/circuit/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
