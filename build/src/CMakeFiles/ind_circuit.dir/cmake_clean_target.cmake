file(REMOVE_RECURSE
  "libind_circuit.a"
)
