file(REMOVE_RECURSE
  "CMakeFiles/ind_circuit.dir/circuit/ac.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/ac.cpp.o.d"
  "CMakeFiles/ind_circuit.dir/circuit/mna.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/mna.cpp.o.d"
  "CMakeFiles/ind_circuit.dir/circuit/netlist.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/netlist.cpp.o.d"
  "CMakeFiles/ind_circuit.dir/circuit/sources.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/sources.cpp.o.d"
  "CMakeFiles/ind_circuit.dir/circuit/spice_export.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/spice_export.cpp.o.d"
  "CMakeFiles/ind_circuit.dir/circuit/spice_import.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/spice_import.cpp.o.d"
  "CMakeFiles/ind_circuit.dir/circuit/transient.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/transient.cpp.o.d"
  "CMakeFiles/ind_circuit.dir/circuit/waveform.cpp.o"
  "CMakeFiles/ind_circuit.dir/circuit/waveform.cpp.o.d"
  "libind_circuit.a"
  "libind_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
