# Empty compiler generated dependencies file for ind_circuit.
# This may be replaced when dependencies are built.
