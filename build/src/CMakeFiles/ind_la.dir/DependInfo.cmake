
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/cholesky.cpp" "src/CMakeFiles/ind_la.dir/la/cholesky.cpp.o" "gcc" "src/CMakeFiles/ind_la.dir/la/cholesky.cpp.o.d"
  "/root/repo/src/la/dense_matrix.cpp" "src/CMakeFiles/ind_la.dir/la/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/ind_la.dir/la/dense_matrix.cpp.o.d"
  "/root/repo/src/la/eig.cpp" "src/CMakeFiles/ind_la.dir/la/eig.cpp.o" "gcc" "src/CMakeFiles/ind_la.dir/la/eig.cpp.o.d"
  "/root/repo/src/la/lu.cpp" "src/CMakeFiles/ind_la.dir/la/lu.cpp.o" "gcc" "src/CMakeFiles/ind_la.dir/la/lu.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/CMakeFiles/ind_la.dir/la/qr.cpp.o" "gcc" "src/CMakeFiles/ind_la.dir/la/qr.cpp.o.d"
  "/root/repo/src/la/sparse.cpp" "src/CMakeFiles/ind_la.dir/la/sparse.cpp.o" "gcc" "src/CMakeFiles/ind_la.dir/la/sparse.cpp.o.d"
  "/root/repo/src/la/sparse_lu.cpp" "src/CMakeFiles/ind_la.dir/la/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/ind_la.dir/la/sparse_lu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
