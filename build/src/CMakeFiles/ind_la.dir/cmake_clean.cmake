file(REMOVE_RECURSE
  "CMakeFiles/ind_la.dir/la/cholesky.cpp.o"
  "CMakeFiles/ind_la.dir/la/cholesky.cpp.o.d"
  "CMakeFiles/ind_la.dir/la/dense_matrix.cpp.o"
  "CMakeFiles/ind_la.dir/la/dense_matrix.cpp.o.d"
  "CMakeFiles/ind_la.dir/la/eig.cpp.o"
  "CMakeFiles/ind_la.dir/la/eig.cpp.o.d"
  "CMakeFiles/ind_la.dir/la/lu.cpp.o"
  "CMakeFiles/ind_la.dir/la/lu.cpp.o.d"
  "CMakeFiles/ind_la.dir/la/qr.cpp.o"
  "CMakeFiles/ind_la.dir/la/qr.cpp.o.d"
  "CMakeFiles/ind_la.dir/la/sparse.cpp.o"
  "CMakeFiles/ind_la.dir/la/sparse.cpp.o.d"
  "CMakeFiles/ind_la.dir/la/sparse_lu.cpp.o"
  "CMakeFiles/ind_la.dir/la/sparse_lu.cpp.o.d"
  "libind_la.a"
  "libind_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
