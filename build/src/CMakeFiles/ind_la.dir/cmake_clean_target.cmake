file(REMOVE_RECURSE
  "libind_la.a"
)
