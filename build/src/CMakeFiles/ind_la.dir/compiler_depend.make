# Empty compiler generated dependencies file for ind_la.
# This may be replaced when dependencies are built.
