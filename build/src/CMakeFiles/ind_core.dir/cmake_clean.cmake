file(REMOVE_RECURSE
  "CMakeFiles/ind_core.dir/core/analyzer.cpp.o"
  "CMakeFiles/ind_core.dir/core/analyzer.cpp.o.d"
  "CMakeFiles/ind_core.dir/core/frequency_analysis.cpp.o"
  "CMakeFiles/ind_core.dir/core/frequency_analysis.cpp.o.d"
  "CMakeFiles/ind_core.dir/core/report.cpp.o"
  "CMakeFiles/ind_core.dir/core/report.cpp.o.d"
  "libind_core.a"
  "libind_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
