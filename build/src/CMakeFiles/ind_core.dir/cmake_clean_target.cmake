file(REMOVE_RECURSE
  "libind_core.a"
)
