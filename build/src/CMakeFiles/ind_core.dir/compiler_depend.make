# Empty compiler generated dependencies file for ind_core.
# This may be replaced when dependencies are built.
