file(REMOVE_RECURSE
  "CMakeFiles/ind_extract.dir/extract/capacitance.cpp.o"
  "CMakeFiles/ind_extract.dir/extract/capacitance.cpp.o.d"
  "CMakeFiles/ind_extract.dir/extract/extractor.cpp.o"
  "CMakeFiles/ind_extract.dir/extract/extractor.cpp.o.d"
  "CMakeFiles/ind_extract.dir/extract/partial_inductance.cpp.o"
  "CMakeFiles/ind_extract.dir/extract/partial_inductance.cpp.o.d"
  "CMakeFiles/ind_extract.dir/extract/resistance.cpp.o"
  "CMakeFiles/ind_extract.dir/extract/resistance.cpp.o.d"
  "CMakeFiles/ind_extract.dir/extract/skin.cpp.o"
  "CMakeFiles/ind_extract.dir/extract/skin.cpp.o.d"
  "libind_extract.a"
  "libind_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
