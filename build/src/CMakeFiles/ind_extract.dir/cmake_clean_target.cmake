file(REMOVE_RECURSE
  "libind_extract.a"
)
