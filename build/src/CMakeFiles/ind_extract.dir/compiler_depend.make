# Empty compiler generated dependencies file for ind_extract.
# This may be replaced when dependencies are built.
