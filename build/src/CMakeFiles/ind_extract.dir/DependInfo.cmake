
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/capacitance.cpp" "src/CMakeFiles/ind_extract.dir/extract/capacitance.cpp.o" "gcc" "src/CMakeFiles/ind_extract.dir/extract/capacitance.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "src/CMakeFiles/ind_extract.dir/extract/extractor.cpp.o" "gcc" "src/CMakeFiles/ind_extract.dir/extract/extractor.cpp.o.d"
  "/root/repo/src/extract/partial_inductance.cpp" "src/CMakeFiles/ind_extract.dir/extract/partial_inductance.cpp.o" "gcc" "src/CMakeFiles/ind_extract.dir/extract/partial_inductance.cpp.o.d"
  "/root/repo/src/extract/resistance.cpp" "src/CMakeFiles/ind_extract.dir/extract/resistance.cpp.o" "gcc" "src/CMakeFiles/ind_extract.dir/extract/resistance.cpp.o.d"
  "/root/repo/src/extract/skin.cpp" "src/CMakeFiles/ind_extract.dir/extract/skin.cpp.o" "gcc" "src/CMakeFiles/ind_extract.dir/extract/skin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
