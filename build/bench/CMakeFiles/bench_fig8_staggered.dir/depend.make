# Empty dependencies file for bench_fig8_staggered.
# This may be replaced when dependencies are built.
