file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_staggered.dir/bench_fig8_staggered.cpp.o"
  "CMakeFiles/bench_fig8_staggered.dir/bench_fig8_staggered.cpp.o.d"
  "bench_fig8_staggered"
  "bench_fig8_staggered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_staggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
