
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_interdigitated.cpp" "bench/CMakeFiles/bench_fig7_interdigitated.dir/bench_fig7_interdigitated.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_interdigitated.dir/bench_fig7_interdigitated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_sparsify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_mor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_peec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_loop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ind_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
