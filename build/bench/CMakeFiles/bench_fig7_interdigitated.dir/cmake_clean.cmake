file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_interdigitated.dir/bench_fig7_interdigitated.cpp.o"
  "CMakeFiles/bench_fig7_interdigitated.dir/bench_fig7_interdigitated.cpp.o.d"
  "bench_fig7_interdigitated"
  "bench_fig7_interdigitated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_interdigitated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
