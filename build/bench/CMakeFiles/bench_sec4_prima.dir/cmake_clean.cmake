file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_prima.dir/bench_sec4_prima.cpp.o"
  "CMakeFiles/bench_sec4_prima.dir/bench_sec4_prima.cpp.o.d"
  "bench_sec4_prima"
  "bench_sec4_prima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_prima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
