# Empty dependencies file for bench_sec4_prima.
# This may be replaced when dependencies are built.
