file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_currents.dir/bench_fig1_currents.cpp.o"
  "CMakeFiles/bench_fig1_currents.dir/bench_fig1_currents.cpp.o.d"
  "bench_fig1_currents"
  "bench_fig1_currents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_currents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
