# Empty compiler generated dependencies file for bench_fig1_currents.
# This may be replaced when dependencies are built.
