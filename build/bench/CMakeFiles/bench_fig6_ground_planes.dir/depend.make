# Empty dependencies file for bench_fig6_ground_planes.
# This may be replaced when dependencies are built.
