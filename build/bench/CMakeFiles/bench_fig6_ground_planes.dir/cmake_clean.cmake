file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ground_planes.dir/bench_fig6_ground_planes.cpp.o"
  "CMakeFiles/bench_fig6_ground_planes.dir/bench_fig6_ground_planes.cpp.o.d"
  "bench_fig6_ground_planes"
  "bench_fig6_ground_planes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ground_planes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
