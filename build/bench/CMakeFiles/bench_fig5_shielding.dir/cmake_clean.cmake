file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_shielding.dir/bench_fig5_shielding.cpp.o"
  "CMakeFiles/bench_fig5_shielding.dir/bench_fig5_shielding.cpp.o.d"
  "bench_fig5_shielding"
  "bench_fig5_shielding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_shielding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
