# Empty compiler generated dependencies file for bench_fig5_shielding.
# This may be replaced when dependencies are built.
