file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_loop_rl.dir/bench_fig3_loop_rl.cpp.o"
  "CMakeFiles/bench_fig3_loop_rl.dir/bench_fig3_loop_rl.cpp.o.d"
  "bench_fig3_loop_rl"
  "bench_fig3_loop_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_loop_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
