# Empty compiler generated dependencies file for bench_fig3_loop_rl.
# This may be replaced when dependencies are built.
