file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_shield_order.dir/bench_sec7_shield_order.cpp.o"
  "CMakeFiles/bench_sec7_shield_order.dir/bench_sec7_shield_order.cpp.o.d"
  "bench_sec7_shield_order"
  "bench_sec7_shield_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_shield_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
