# Empty dependencies file for bench_sec7_shield_order.
# This may be replaced when dependencies are built.
