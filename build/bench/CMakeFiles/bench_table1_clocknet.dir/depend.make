# Empty dependencies file for bench_table1_clocknet.
# This may be replaced when dependencies are built.
