file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_clocknet.dir/bench_table1_clocknet.cpp.o"
  "CMakeFiles/bench_table1_clocknet.dir/bench_table1_clocknet.cpp.o.d"
  "bench_table1_clocknet"
  "bench_table1_clocknet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_clocknet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
