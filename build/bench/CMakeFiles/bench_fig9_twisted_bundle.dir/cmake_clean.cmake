file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_twisted_bundle.dir/bench_fig9_twisted_bundle.cpp.o"
  "CMakeFiles/bench_fig9_twisted_bundle.dir/bench_fig9_twisted_bundle.cpp.o.d"
  "bench_fig9_twisted_bundle"
  "bench_fig9_twisted_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_twisted_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
