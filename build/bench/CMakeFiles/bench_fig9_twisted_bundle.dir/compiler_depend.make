# Empty compiler generated dependencies file for bench_fig9_twisted_bundle.
# This may be replaced when dependencies are built.
