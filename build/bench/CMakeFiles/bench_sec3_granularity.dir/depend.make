# Empty dependencies file for bench_sec3_granularity.
# This may be replaced when dependencies are built.
