file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_sparsification.dir/bench_sec4_sparsification.cpp.o"
  "CMakeFiles/bench_sec4_sparsification.dir/bench_sec4_sparsification.cpp.o.d"
  "bench_sec4_sparsification"
  "bench_sec4_sparsification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_sparsification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
