# Empty compiler generated dependencies file for bench_sec4_sparsification.
# This may be replaced when dependencies are built.
