# Empty compiler generated dependencies file for bench_sec1_significance.
# This may be replaced when dependencies are built.
