file(REMOVE_RECURSE
  "CMakeFiles/bench_sec1_significance.dir/bench_sec1_significance.cpp.o"
  "CMakeFiles/bench_sec1_significance.dir/bench_sec1_significance.cpp.o.d"
  "bench_sec1_significance"
  "bench_sec1_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec1_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
