# Empty compiler generated dependencies file for clocknet_analysis.
# This may be replaced when dependencies are built.
