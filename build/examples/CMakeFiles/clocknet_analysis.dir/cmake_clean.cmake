file(REMOVE_RECURSE
  "CMakeFiles/clocknet_analysis.dir/clocknet_analysis.cpp.o"
  "CMakeFiles/clocknet_analysis.dir/clocknet_analysis.cpp.o.d"
  "clocknet_analysis"
  "clocknet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocknet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
