# Empty compiler generated dependencies file for power_grid_noise.
# This may be replaced when dependencies are built.
