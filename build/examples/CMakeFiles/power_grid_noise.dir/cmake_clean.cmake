file(REMOVE_RECURSE
  "CMakeFiles/power_grid_noise.dir/power_grid_noise.cpp.o"
  "CMakeFiles/power_grid_noise.dir/power_grid_noise.cpp.o.d"
  "power_grid_noise"
  "power_grid_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_grid_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
