file(REMOVE_RECURSE
  "CMakeFiles/crosstalk_shielding.dir/crosstalk_shielding.cpp.o"
  "CMakeFiles/crosstalk_shielding.dir/crosstalk_shielding.cpp.o.d"
  "crosstalk_shielding"
  "crosstalk_shielding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosstalk_shielding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
