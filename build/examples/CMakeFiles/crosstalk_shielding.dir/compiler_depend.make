# Empty compiler generated dependencies file for crosstalk_shielding.
# This may be replaced when dependencies are built.
