// Table formatting helpers shared by the benches and examples: the goal is
// output that reads like the paper's own tables (Table 1 reports counts as
// "220k", delays in ps, run-times in minutes).
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace ind::core {

/// 86e-12 -> "86ps"; infinity -> "-".
std::string format_ps(double seconds);

/// 219847 -> "220k"; 14.6e9 -> "15G".
std::string format_count(std::size_t n);

/// 2712.4 -> "45 min."; 4.2 -> "4.2s".
std::string format_runtime(double seconds);

/// Fixed-width table printer (column widths from the widest cell).
void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// One Table-1-style row for a report.
std::vector<std::string> table1_row(const AnalysisReport& report);

/// The matching header.
std::vector<std::string> table1_header();

}  // namespace ind::core
