// Frequency-domain port characterisation of the detailed PEEC model.
//
// Fig. 3(b) of the paper plots loop R and L vs frequency twice: once from
// the conductor-only loop extraction (FastHenry-style, loop/) and once from
// the full PEEC model, whose interconnect and device capacitance changes
// where the return current actually flows. This module produces the PEEC
// curve: an AC current is injected at the driver port of the *complete*
// detailed model (grid, caps, decap, package) and the measured impedance is
// decomposed into effective R(f) and L(f).
#pragma once

#include <vector>

#include "loop/mqs_solver.hpp"
#include "peec/model_builder.hpp"

namespace ind::core {

struct PeecPortOptions {
  peec::PeecOptions peec{};
  /// Tie each receiver pin to its local ground (mirrors the loop-extraction
  /// setup so the two curves are comparable); the tie is a milli-ohm.
  bool short_receivers = true;
};

/// Effective port impedance of `signal_net` in the full PEEC model at each
/// frequency: R = Re Z, L = Im Z / w. Negative Im Z (capacitive phase, past
/// resonance) yields negative L values — exactly the divergence from the
/// conductor-only curve the paper highlights.
std::vector<loop::LoopImpedance> peec_port_impedance(
    const geom::Layout& layout, int signal_net,
    const std::vector<double>& frequencies, const PeecPortOptions& opts = {});

}  // namespace ind::core
