#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>

namespace ind::core {

std::string format_ps(double seconds) {
  if (!std::isfinite(seconds)) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fps", seconds * 1e12);
  return buf;
}

std::string format_count(std::size_t n) {
  char buf[32];
  if (n >= 1000000000)
    std::snprintf(buf, sizeof buf, "%.1fG", static_cast<double>(n) * 1e-9);
  else if (n >= 1000000)
    std::snprintf(buf, sizeof buf, "%.1fM", static_cast<double>(n) * 1e-6);
  else if (n >= 1000)
    std::snprintf(buf, sizeof buf, "%.0fk", static_cast<double>(n) * 1e-3);
  else
    std::snprintf(buf, sizeof buf, "%zu", n);
  return buf;
}

std::string format_runtime(double seconds) {
  char buf[32];
  if (seconds >= 60.0)
    std::snprintf(buf, sizeof buf, "%.1f min.", seconds / 60.0);
  else
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  return buf;
}

void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows) print_row(row);
}

std::vector<std::string> table1_header() {
  return {"Model",      "Num. of R", "Num. of C", "Num. of L", "# mutuals",
          "Worst delay", "Worst skew", "Run-time"};
}

std::vector<std::string> table1_row(const AnalysisReport& report) {
  const auto& c = report.counts;
  return {flow_name(report.flow),
          format_count(c.resistors),
          format_count(c.capacitors),
          c.inductors ? format_count(c.inductors) : "-",
          c.mutuals ? format_count(c.mutuals) : "-",
          format_ps(report.worst_delay),
          format_ps(report.skew),
          format_runtime(report.total_seconds())};
}

}  // namespace ind::core
