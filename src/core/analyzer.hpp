// InductanceAnalyzer: the top-level flows of the paper behind one call.
//
//   Flow::PeecRc            — Table 1 "PEEC (RC)": no inductance at all
//   Flow::PeecRlcFull       — Table 1 "PEEC (RLC)": full partial mutuals
//   Flow::PeecRlcTruncated  — Section 4 truncation (unstable baseline)
//   Flow::PeecRlcBlockDiag  — Section 4 block-diagonal sparsification
//   Flow::PeecRlcShell      — Section 4 shell (shift-truncate)
//   Flow::PeecRlcHalo       — Section 4 halo / return-limited
//   Flow::PeecRlcKMatrix    — Section 4 K = L^-1 element
//   Flow::PeecRlcPrima      — Section 4 combined flow [4]: PRIMA + driver
//                             co-simulation (optionally on a block-diagonal
//                             sparsified model)
//   Flow::LoopRlc           — Section 5 loop-inductance model
//
// Every flow returns an AnalysisReport with the Table-1 columns: element
// counts, worst delay, worst skew, and run-time split into model-build and
// simulation phases.
#pragma once

#include <string>
#include <vector>

#include "circuit/transient.hpp"
#include "geom/layout.hpp"
#include "loop/loop_model.hpp"
#include "peec/model_builder.hpp"

namespace ind::core {

enum class Flow {
  PeecRc,
  PeecRlcFull,
  PeecRlcTruncated,
  PeecRlcBlockDiag,
  PeecRlcShell,
  PeecRlcHalo,
  PeecRlcKMatrix,
  PeecRlcPrima,
  PeecRlcHier,  ///< Section 4 hierarchical models [16]: global nodes + per-block reduction
  LoopRlc,
};

const char* flow_name(Flow flow);

struct FlowParams {
  double truncation_ratio = 0.05;            ///< |M| >= r sqrt(Li Lj) kept
  double block_strip_width = geom::um(150.0);
  geom::Axis block_axis = geom::Axis::Y;     ///< strip direction for sections
  double shell_radius = geom::um(60.0);
  double kmatrix_ratio = 0.02;               ///< K-entry keep threshold
  std::size_t prima_order = 32;
  bool prima_on_block_diagonal = true;       ///< the combined technique of [4]
  std::size_t hier_order_per_block = 8;      ///< hierarchical flow
  double hier_strip_width = geom::um(150.0); ///< hierarchical block size
};

struct AnalysisOptions {
  Flow flow = Flow::PeecRlcFull;
  int signal_net = -1;  ///< required for Flow::LoopRlc
  peec::PeecOptions peec{};
  loop::LoopModelOptions loop{};
  circuit::TransientOptions transient{};
  FlowParams params{};
};

struct AnalysisReport {
  Flow flow = Flow::PeecRlcFull;
  circuit::Netlist::Counts counts;
  std::size_t unknowns = 0;        ///< MNA size (or reduced order for PRIMA)
  std::size_t reduced_order = 0;   ///< PRIMA only

  double worst_delay = 0.0;        ///< seconds
  double best_delay = 0.0;
  double skew = 0.0;
  std::string worst_sink;
  double overshoot = 0.0;          ///< worst sink overshoot fraction

  double build_seconds = 0.0;      ///< extraction + model construction
  double solve_seconds = 0.0;      ///< transient simulation
  double total_seconds() const { return build_seconds + solve_seconds; }

  la::Vector time;                           ///< transient time axis
  std::vector<la::Vector> sink_waveforms;    ///< per sink
  std::vector<std::string> sink_names;
};

/// Runs one flow on a layout whose drivers/receivers define the experiment.
AnalysisReport analyze(const geom::Layout& layout,
                       const AnalysisOptions& options);

}  // namespace ind::core
