// InductanceAnalyzer: the top-level flows of the paper behind one call.
//
//   Flow::PeecRc            — Table 1 "PEEC (RC)": no inductance at all
//   Flow::PeecRlcFull       — Table 1 "PEEC (RLC)": full partial mutuals
//   Flow::PeecRlcTruncated  — Section 4 truncation (unstable baseline)
//   Flow::PeecRlcBlockDiag  — Section 4 block-diagonal sparsification
//   Flow::PeecRlcShell      — Section 4 shell (shift-truncate)
//   Flow::PeecRlcHalo       — Section 4 halo / return-limited
//   Flow::PeecRlcKMatrix    — Section 4 K = L^-1 element
//   Flow::PeecRlcPrima      — Section 4 combined flow [4]: PRIMA + driver
//                             co-simulation (optionally on a block-diagonal
//                             sparsified model)
//   Flow::LoopRlc           — Section 5 loop-inductance model
//
// Every flow returns an AnalysisReport with the Table-1 columns: element
// counts, worst delay, worst skew, and run-time split into model-build and
// simulation phases.
#pragma once

#include <string>
#include <vector>

#include "circuit/transient.hpp"
#include "geom/layout.hpp"
#include "loop/loop_model.hpp"
#include "peec/model_builder.hpp"

namespace ind::core {

enum class Flow {
  PeecRc,
  PeecRlcFull,
  PeecRlcTruncated,
  PeecRlcBlockDiag,
  PeecRlcShell,
  PeecRlcHalo,
  PeecRlcKMatrix,
  PeecRlcPrima,
  PeecRlcHier,  ///< Section 4 hierarchical models [16]: global nodes + per-block reduction
  LoopRlc,
};

const char* flow_name(Flow flow);

struct FlowParams {
  double truncation_ratio = 0.05;            ///< |M| >= r sqrt(Li Lj) kept
  double block_strip_width = geom::um(150.0);
  geom::Axis block_axis = geom::Axis::Y;     ///< strip direction for sections
  double shell_radius = geom::um(60.0);
  double kmatrix_ratio = 0.02;               ///< K-entry keep threshold
  std::size_t prima_order = 32;
  bool prima_on_block_diagonal = true;       ///< the combined technique of [4]
  std::size_t hier_order_per_block = 8;      ///< hierarchical flow
  double hier_strip_width = geom::um(150.0); ///< hierarchical block size
};

struct AnalysisOptions {
  Flow flow = Flow::PeecRlcFull;
  int signal_net = -1;  ///< required for Flow::LoopRlc
  peec::PeecOptions peec{};
  loop::LoopModelOptions loop{};
  circuit::TransientOptions transient{};
  FlowParams params{};
};

struct AnalysisReport {
  Flow flow = Flow::PeecRlcFull;            ///< flow actually delivered
  /// Flow the caller asked for. Differs from `flow` when a resource budget
  /// (IND_DEADLINE_MS / IND_MEM_BYTES / IND_WORK_BUDGET) cancelled the run
  /// and the analyzer degraded down the Section-4 fidelity ladder.
  Flow requested_flow = Flow::PeecRlcFull;
  /// One entry per ladder step taken, e.g. "peec_rlc->peec_rlc_blockdiag
  /// [work]". Empty when the requested flow ran to completion.
  std::vector<std::string> degradations;
  /// True when the transient was cancelled mid-integration: `time` /
  /// `sink_waveforms` hold the prefix computed before the budget tripped.
  bool waveform_truncated = false;
  circuit::Netlist::Counts counts;
  std::size_t unknowns = 0;        ///< MNA size (or reduced order for PRIMA)
  std::size_t reduced_order = 0;   ///< PRIMA only

  double worst_delay = 0.0;        ///< seconds
  double best_delay = 0.0;
  double skew = 0.0;
  std::string worst_sink;
  double overshoot = 0.0;          ///< worst sink overshoot fraction

  double build_seconds = 0.0;      ///< extraction + model construction
  double solve_seconds = 0.0;      ///< transient simulation
  double total_seconds() const { return build_seconds + solve_seconds; }

  la::Vector time;                           ///< transient time axis
  std::vector<la::Vector> sink_waveforms;    ///< per sink
  std::vector<std::string> sink_names;

  /// Robustness diagnostics from the transient engine (condition estimates,
  /// recovery actions, BudgetExceeded markers). Default-constructed for the
  /// PRIMA/hierarchical co-simulation path, which has its own stepper.
  robust::SolveReport solve_report;
};

/// Runs one flow on a layout whose drivers/receivers define the experiment.
///
/// The call is resource-governed: when a work or memory budget (see
/// govern::RunBudget) cancels the run, the analyzer retries at the next
/// cheaper Section-4 fidelity (dense PEEC -> block-diagonal -> shell ->
/// truncation -> loop RL) and records every step in
/// AnalysisReport::degradations. A deadline trip never retries — the time is
/// already spent — so it surfaces as govern::CancelledError, or as a
/// truncated waveform if it lands inside the transient stepper. Throws
/// std::invalid_argument on degenerate layouts (no segments / drivers /
/// receivers).
AnalysisReport analyze(const geom::Layout& layout,
                       const AnalysisOptions& options);

}  // namespace ind::core
