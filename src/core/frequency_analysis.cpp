#include "core/frequency_analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/ac.hpp"

namespace ind::core {

std::vector<loop::LoopImpedance> peec_port_impedance(
    const geom::Layout& layout, int signal_net,
    const std::vector<double>& frequencies, const PeecPortOptions& opts) {
  peec::PeecModel model = peec::build_peec_model(layout, opts.peec);

  // Locate the port: driver output node and its local ground.
  const geom::Driver* driver = nullptr;
  for (const geom::Driver& d : model.layout.drivers())
    if (d.signal_net == signal_net) {
      driver = &d;
      break;
    }
  if (!driver)
    throw std::invalid_argument("peec_port_impedance: net has no driver");

  circuit::NodeId out = circuit::kGround;
  // The driver's out node was resolved during the build; find it through
  // the netlist driver that carries the same name.
  for (const circuit::SwitchedDriver& d : model.netlist.drivers())
    if (d.name == driver->name) out = d.out;
  if (out < 0)
    throw std::runtime_error("peec_port_impedance: driver node not found");
  const circuit::NodeId gnd_local =
      model.nearest_node(driver->at, geom::NetKind::Ground);

  // Remove the switching behaviour: the port sees the passive network.
  model.netlist.drivers().clear();

  if (opts.short_receivers) {
    for (std::size_t r = 0; r < model.receiver_probes.size(); ++r) {
      const auto pin =
          static_cast<circuit::NodeId>(model.receiver_probes[r].index);
      const circuit::NodeId g = model.nearest_node(
          model.nodes[static_cast<std::size_t>(pin)].at,
          geom::NetKind::Ground);
      if (g >= 0 && g != pin) model.netlist.add_resistor(pin, g, 1e-3);
    }
  }

  // Unit AC current into the port.
  const std::size_t src =
      model.netlist.add_isource(gnd_local, out, circuit::Pwl::constant(0.0));

  // One ac_sweep call: the MNA maps and G/C stamps are shared across the
  // whole sweep instead of being rebuilt per frequency point.
  std::vector<double> omegas;
  omegas.reserve(frequencies.size());
  for (const double f : frequencies) omegas.push_back(2.0 * M_PI * f);
  const std::vector<circuit::AcResult> points = circuit::ac_sweep(
      model.netlist, {circuit::AcExcitation::Kind::ISource, src}, omegas);

  std::vector<loop::LoopImpedance> sweep;
  sweep.reserve(frequencies.size());
  for (std::size_t k = 0; k < frequencies.size(); ++k) {
    const circuit::AcResult& res = points[k];
    const la::Complex z =
        res.node_voltage(out) - res.node_voltage(gnd_local);
    sweep.push_back({frequencies[k], z.real(), z.imag() / omegas[k]});
  }
  return sweep;
}

}  // namespace ind::core
