#include "core/analyzer.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "circuit/waveform.hpp"
#include "govern/budget.hpp"
#include "mor/hierarchical.hpp"
#include "mor/prima.hpp"
#include "mor/reduced_model.hpp"
#include "sparsify/block_diagonal.hpp"
#include "sparsify/halo.hpp"
#include "sparsify/kmatrix.hpp"
#include "sparsify/mutual_spec.hpp"
#include "sparsify/shell.hpp"
#include "sparsify/truncation.hpp"
#include "runtime/metrics.hpp"
#include "store/flows.hpp"

namespace ind::core {
namespace {

/// Counter-safe identifier for a flow ("result.<key>.*" metric names).
const char* flow_key(Flow flow) {
  switch (flow) {
    case Flow::PeecRc: return "peec_rc";
    case Flow::PeecRlcFull: return "peec_rlc";
    case Flow::PeecRlcTruncated: return "peec_rlc_trunc";
    case Flow::PeecRlcBlockDiag: return "peec_rlc_blockdiag";
    case Flow::PeecRlcShell: return "peec_rlc_shell";
    case Flow::PeecRlcHalo: return "peec_rlc_halo";
    case Flow::PeecRlcKMatrix: return "peec_rlc_kmatrix";
    case Flow::PeecRlcPrima: return "peec_rlc_prima";
    case Flow::PeecRlcHier: return "peec_rlc_hier";
    case Flow::LoopRlc: return "loop_rlc";
  }
  return "unknown";
}

/// Publishes the numerical outcome of a flow as integer counters so two
/// BENCH_*.json files can be diffed for *result* equality independent of
/// timing noise: delays/skew in femtoseconds, plus a content hash of every
/// sink waveform (bit patterns, so "equal" means bitwise equal). The CI
/// cold-vs-warm cache job keys on exactly these counters.
void publish_results(const AnalysisReport& report) {
  auto& reg = runtime::MetricsRegistry::instance();
  const std::string prefix = std::string("result.") + flow_key(report.flow);
  auto as_fs = [](double seconds) {
    return static_cast<std::int64_t>(std::llround(seconds * 1e15));
  };
  reg.counter(prefix + ".worst_delay_fs")
      .value.store(as_fs(report.worst_delay), std::memory_order_relaxed);
  reg.counter(prefix + ".skew_fs")
      .value.store(as_fs(report.skew), std::memory_order_relaxed);
  store::Hasher h;
  h.f64s(report.time);
  h.u64(report.sink_waveforms.size());
  for (const la::Vector& wf : report.sink_waveforms) h.f64s(wf);
  reg.counter(prefix + ".waveform_hash")
      .value.store(static_cast<std::int64_t>(h.digest().lo >> 1),
                   std::memory_order_relaxed);
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void measure_sinks(AnalysisReport& report, double vdd) {
  if (report.sink_waveforms.empty()) return;
  const circuit::SkewReport skew = circuit::measure_skew(
      report.time, report.sink_waveforms, report.sink_names, 0.0, vdd);
  report.worst_delay = skew.worst_delay;
  report.best_delay = skew.best_delay;
  report.skew = skew.skew;
  report.worst_sink = skew.worst_sink;
  for (const la::Vector& w : report.sink_waveforms)
    report.overshoot =
        std::max(report.overshoot, circuit::overshoot_fraction(w, 0.0, vdd));
}

sparsify::SparsifiedL run_sparsifier(const AnalysisOptions& opts,
                                     const peec::PeecModel& model) {
  const auto& segs = model.layout.segments();
  const la::Matrix& l = model.extraction.partial_l;
  switch (opts.flow) {
    case Flow::PeecRlcTruncated:
      return sparsify::truncate(l, opts.params.truncation_ratio);
    case Flow::PeecRlcBlockDiag:
      return sparsify::block_diagonal(
          l, sparsify::sections_by_strip(segs, opts.params.block_axis,
                                         opts.params.block_strip_width));
    case Flow::PeecRlcShell:
      return sparsify::shell(segs, opts.params.shell_radius);
    case Flow::PeecRlcHalo:
      return sparsify::halo(segs, l);
    case Flow::PeecRlcKMatrix:
      // The K build inverts the dense partial-L matrix — worth a cache slot
      // of its own, keyed on the exact matrix bits + threshold.
      return store::cached_kmatrix_sparsify(l, opts.params.kmatrix_ratio);
    default:
      throw std::logic_error("run_sparsifier: not a sparsifying flow");
  }
}

AnalysisReport analyze_prima(const geom::Layout& layout,
                             const AnalysisOptions& opts) {
  AnalysisReport report;
  report.flow = opts.flow;
  const auto t_build = Clock::now();

  peec::PeecOptions popts = opts.peec;
  popts.rc_only = false;
  popts.mutual_policy = opts.params.prima_on_block_diagonal
                            ? peec::PeecOptions::MutualPolicy::None
                            : peec::PeecOptions::MutualPolicy::Full;
  peec::PeecModel model = store::cached_peec_model(layout, popts);
  if (opts.params.prima_on_block_diagonal) {
    const sparsify::SparsifiedL spec = sparsify::block_diagonal(
        model.extraction.partial_l,
        sparsify::sections_by_strip(model.layout.segments(),
                                    opts.params.block_axis,
                                    opts.params.block_strip_width));
    sparsify::apply_to_netlist(spec, model.netlist, model.seg_inductor);
  }
  report.counts = model.counts();

  // Input matrix B: independent sources first, then driver ports. The
  // drivers stay outside the macromodel (active-port co-simulation of [4]).
  const circuit::Mna mna(model.netlist);
  const std::size_t n = mna.size();
  const auto& nl = model.netlist;

  std::vector<circuit::Pwl> src_waveforms;
  std::vector<std::pair<circuit::NodeId, circuit::NodeId>> isource_nodes;
  std::size_t n_src = nl.vsources().size() + nl.isources().size();

  // Driver port nodes, deduplicated.
  std::vector<circuit::NodeId> port_nodes;
  auto port_index = [&](circuit::NodeId node) -> std::size_t {
    if (node < 0) return mor::kGroundPort;
    for (std::size_t k = 0; k < port_nodes.size(); ++k)
      if (port_nodes[k] == node) return k;
    port_nodes.push_back(node);
    return port_nodes.size() - 1;
  };
  std::vector<mor::CosimDriver> cosim_drivers;
  for (const circuit::SwitchedDriver& d : nl.drivers()) {
    mor::CosimDriver cd;
    cd.out_port = port_index(d.out);
    cd.vdd_port = port_index(d.vdd);
    cd.gnd_port = port_index(d.gnd);
    cd.dynamics = d;
    cosim_drivers.push_back(cd);
  }

  la::Matrix b(n, n_src + port_nodes.size());
  std::size_t col = 0;
  for (std::size_t k = 0; k < nl.vsources().size(); ++k, ++col) {
    b(mna.vsource_branch(k), col) = 1.0;
    src_waveforms.push_back(nl.vsources()[k].waveform);
  }
  for (const circuit::ISource& src : nl.isources()) {
    if (src.a >= 0) b(static_cast<std::size_t>(src.a), col) = -1.0;
    if (src.b >= 0) b(static_cast<std::size_t>(src.b), col) = 1.0;
    src_waveforms.push_back(src.waveform);
    ++col;
  }
  for (circuit::NodeId node : port_nodes)
    b(static_cast<std::size_t>(node), col++) = 1.0;

  // Outputs: the sink observation nodes (passive sinks of [4]).
  la::Matrix l_out(n, model.receiver_probes.size());
  for (std::size_t m = 0; m < model.receiver_probes.size(); ++m)
    l_out(model.receiver_probes[m].index, m) = 1.0;

  // G, C without driver conductances.
  const circuit::DenseSystem sys =
      circuit::build_dense_system(model.netlist, {}, /*driver_time=*/-1.0);

  mor::ReducedModel reduced;
  if (opts.flow == Flow::PeecRlcHier) {
    // Block id per MNA unknown from geometry: strips along the block axis.
    // Branch currents follow their element's position; voltage-source
    // branches stay global.
    std::vector<int> block_of(n, -1);
    auto strip_of = [&](const geom::Point& p) {
      const double coord =
          opts.params.block_axis == geom::Axis::X ? p.x : p.y;
      return static_cast<int>(
          std::floor(coord / opts.params.hier_strip_width));
    };
    for (std::size_t node = 0; node < model.nodes.size(); ++node)
      block_of[node] = strip_of(model.nodes[node].at);
    for (std::size_t seg = 0; seg < model.seg_inductor.size(); ++seg)
      if (model.seg_inductor[seg] != peec::kNoInductor)
        block_of[mna.inductor_branch(model.seg_inductor[seg])] =
            strip_of(model.layout.segments()[seg].center());
    mor::HierarchicalOptions hopts;
    hopts.order_per_block = opts.params.hier_order_per_block;
    mor::HierarchicalResult hier = mor::hierarchical_reduce(
        sys.g, sys.c, b, l_out, std::move(block_of), hopts);
    reduced = std::move(hier.model);
  } else {
    mor::PrimaOptions prima_opts;
    prima_opts.max_order = opts.params.prima_order;
    reduced = store::cached_prima_reduce(sys.g, sys.c, b, l_out, prima_opts);
  }
  report.build_seconds = seconds_since(t_build);
  report.unknowns = n;
  report.reduced_order = reduced.order();

  const auto t_solve = Clock::now();
  mor::CosimInputs inputs;
  inputs.source_waveforms = std::move(src_waveforms);
  inputs.drivers = std::move(cosim_drivers);
  mor::CosimOptions copts;
  copts.t_stop = opts.transient.t_stop;
  copts.dt = opts.transient.dt;
  const mor::CosimResult res = mor::simulate_reduced(reduced, inputs, copts);
  report.solve_seconds = seconds_since(t_solve);

  report.time = res.time;
  report.sink_waveforms = res.outputs;
  report.sink_names = model.receiver_names;
  measure_sinks(report, model.vdd_volts);
  return report;
}

AnalysisReport analyze_loop(const geom::Layout& layout,
                            const AnalysisOptions& opts) {
  if (opts.signal_net < 0)
    throw std::invalid_argument("analyze: LoopRlc needs signal_net");
  AnalysisReport report;
  report.flow = opts.flow;

  const auto t_build = Clock::now();
  const loop::LoopModel model =
      loop::build_loop_model(layout, opts.signal_net, opts.loop);
  report.build_seconds = seconds_since(t_build);
  report.counts = model.netlist.counts();

  const auto t_solve = Clock::now();
  const circuit::TransientResult res =
      circuit::transient(model.netlist, model.receiver_probes, opts.transient);
  report.solve_seconds = seconds_since(t_solve);

  report.unknowns = res.unknowns;
  report.time = res.time;
  report.sink_waveforms = res.samples;
  report.sink_names = model.receiver_names;
  report.waveform_truncated = res.truncated;
  report.solve_report = res.report;
  measure_sinks(report, model.vdd_volts);
  return report;
}

/// One ungoverned attempt at a single flow. Budget trips inside the kernels
/// surface as govern::CancelledError (or as a truncated transient result).
AnalysisReport run_flow(const geom::Layout& layout,
                        const AnalysisOptions& opts) {
  if (opts.flow == Flow::PeecRlcPrima || opts.flow == Flow::PeecRlcHier)
    return analyze_prima(layout, opts);
  if (opts.flow == Flow::LoopRlc) return analyze_loop(layout, opts);

  AnalysisReport report;
  report.flow = opts.flow;

  const auto t_build = Clock::now();
  peec::PeecOptions popts = opts.peec;
  popts.rc_only = opts.flow == Flow::PeecRc;
  popts.mutual_policy = opts.flow == Flow::PeecRlcFull
                            ? peec::PeecOptions::MutualPolicy::Full
                            : peec::PeecOptions::MutualPolicy::None;
  peec::PeecModel model = store::cached_peec_model(layout, popts);
  if (opts.flow != Flow::PeecRc && opts.flow != Flow::PeecRlcFull) {
    const sparsify::SparsifiedL spec = run_sparsifier(opts, model);
    sparsify::apply_to_netlist(spec, model.netlist, model.seg_inductor);
  }
  report.build_seconds = seconds_since(t_build);
  report.counts = model.counts();

  const auto t_solve = Clock::now();
  const circuit::TransientResult res =
      circuit::transient(model.netlist, model.receiver_probes, opts.transient);
  report.solve_seconds = seconds_since(t_solve);

  report.unknowns = res.unknowns;
  report.time = res.time;
  report.sink_waveforms = res.samples;
  report.sink_names = model.receiver_names;
  report.waveform_truncated = res.truncated;
  report.solve_report = res.report;
  measure_sinks(report, model.vdd_volts);
  return report;
}

/// The Section-4 fidelity ladder, cheapest direction only: each rung costs
/// strictly less (fewer mutuals, then no PEEC mesh at all), so a budget that
/// tripped rung k can plausibly fit rung k+1. Loop RL needs a signal net to
/// trace, hence the flag.
bool next_cheaper(Flow flow, bool has_signal_net, Flow& out) {
  switch (flow) {
    case Flow::PeecRlcFull:
    case Flow::PeecRlcPrima:
    case Flow::PeecRlcHier:
    case Flow::PeecRlcKMatrix:
      out = Flow::PeecRlcBlockDiag;
      return true;
    case Flow::PeecRlcBlockDiag:
    case Flow::PeecRlcHalo:
      out = Flow::PeecRlcShell;
      return true;
    case Flow::PeecRlcShell:
      out = Flow::PeecRlcTruncated;
      return true;
    case Flow::PeecRlcTruncated:
      out = Flow::LoopRlc;
      return has_signal_net;
    case Flow::PeecRc:
    case Flow::LoopRlc:
      return false;  // already the cheapest of their families
  }
  return false;
}

/// Degenerate layouts fail fast with a diagnosis instead of surfacing later
/// as an empty MNA system or a measure_skew over zero sinks.
void validate_for_analysis(const geom::Layout& layout) {
  if (layout.segments().empty())
    throw std::invalid_argument(
        "analyze: layout has no segments — nothing to extract");
  if (layout.drivers().empty())
    throw std::invalid_argument(
        "analyze: layout has no drivers — nothing switches");
  if (layout.receivers().empty())
    throw std::invalid_argument(
        "analyze: layout has no receivers — nothing to measure");
}

}  // namespace

const char* flow_name(Flow flow) {
  switch (flow) {
    case Flow::PeecRc: return "PEEC (RC)";
    case Flow::PeecRlcFull: return "PEEC (RLC)";
    case Flow::PeecRlcTruncated: return "PEEC (RLC, truncated)";
    case Flow::PeecRlcBlockDiag: return "PEEC (RLC, block-diag)";
    case Flow::PeecRlcShell: return "PEEC (RLC, shell)";
    case Flow::PeecRlcHalo: return "PEEC (RLC, halo)";
    case Flow::PeecRlcKMatrix: return "PEEC (RLC, K-matrix)";
    case Flow::PeecRlcPrima: return "PEEC (RLC, PRIMA)";
    case Flow::PeecRlcHier: return "PEEC (RLC, hierarchical)";
    case Flow::LoopRlc: return "LOOP (RLC)";
  }
  return "?";
}

AnalysisReport analyze(const geom::Layout& layout,
                       const AnalysisOptions& opts) {
  validate_for_analysis(layout);

  auto& gov = govern::Governor::instance();
  auto& reg = runtime::MetricsRegistry::instance();
  gov.begin_run();

  // Degradation ladder: each attempt resets the work counter and cancel
  // token (begin_attempt) so the decision to trip at rung k is a pure
  // function of rung k's own work — independent of how rung k-1 failed and
  // of the thread count. Work/memory trips retry one rung cheaper — whether
  // they surfaced as a CancelledError from a build/factor kernel or as a
  // truncated transient (the partial is discarded; the cheaper rung can
  // still deliver a complete answer). A blown deadline cannot be un-spent,
  // so it never retries: a deadline-truncated waveform is returned as-is
  // and a deadline trip outside the stepper propagates to the caller.
  AnalysisOptions attempt = opts;
  std::vector<std::string> degradations;
  const auto retryable = [](govern::BudgetKind kind) {
    return kind == govern::BudgetKind::Work ||
           kind == govern::BudgetKind::Memory;
  };
  const auto note_degradation = [&](govern::BudgetKind kind, Flow cheaper) {
    degradations.push_back(std::string(flow_key(attempt.flow)) + "->" +
                           flow_key(cheaper) + " [" + govern::to_string(kind) +
                           "]");
    reg.add_count("govern.degraded", 1);
    reg.add_count(std::string("govern.degraded_to.") + flow_key(cheaper), 1);
    attempt.flow = cheaper;
  };
  for (;;) {
    gov.begin_attempt();
    Flow cheaper{};
    try {
      AnalysisReport report = run_flow(layout, attempt);
      const govern::BudgetKind kind = gov.cancel_kind();
      if (report.waveform_truncated && retryable(kind) &&
          next_cheaper(attempt.flow, opts.signal_net >= 0, cheaper)) {
        reg.add_count(std::string("govern.budget_exceeded.") +
                          govern::to_string(kind),
                      1);
        note_degradation(kind, cheaper);
        continue;
      }
      report.requested_flow = opts.flow;
      report.degradations = degradations;
      if (report.waveform_truncated) {
        reg.add_count("govern.truncated_waveforms", 1);
        reg.add_count(std::string("govern.budget_exceeded.") +
                          govern::to_string(kind),
                      1);
      }
      publish_results(report);
      gov.publish();
      return report;
    } catch (const govern::CancelledError& e) {
      reg.add_count(
          std::string("govern.budget_exceeded.") + govern::to_string(e.kind()),
          1);
      if (!retryable(e.kind()) ||
          !next_cheaper(attempt.flow, opts.signal_net >= 0, cheaper)) {
        gov.publish();
        throw;
      }
      note_degradation(e.kind(), cheaper);
    }
  }
}

}  // namespace ind::core
