#include "serve/worker_pool.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "govern/rlimit.hpp"
#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "store/format.hpp"

namespace ind::serve {
namespace {

using Clock = std::chrono::steady_clock;

void count(const char* name, std::int64_t n = 1) {
  runtime::MetricsRegistry::instance().add_count(name, n);
}

/// "<directory of this executable>/ind_worker" — ind_served and ind_worker
/// install side by side, so the default needs no configuration.
std::string default_worker_bin() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "ind_worker";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "ind_worker";
  return path.substr(0, slash + 1) + "ind_worker";
}

/// Closes every descriptor above the worker's job pipe (fd 3) in the child
/// between fork and exec. Only async-signal-safe calls are allowed here —
/// the parent is multithreaded, so the child may hold arbitrary lock states.
void close_high_fds() {
#ifdef SYS_close_range
  if (::syscall(SYS_close_range, 4u, ~0u, 0u) == 0) return;
#endif
  for (int fd = 4; fd < 1024; ++fd) ::close(fd);
}

}  // namespace

robust::CrashKind classify_worker_exit(int wstatus) {
  if (WIFSIGNALED(wstatus)) {
    const int sig = WTERMSIG(wstatus);
    if (sig == SIGXCPU) return robust::CrashKind::RlimitCpu;
    if (sig == SIGKILL) return robust::CrashKind::OomKill;
    return robust::CrashKind::Signal;
  }
  if (WIFEXITED(wstatus) &&
      WEXITSTATUS(wstatus) == govern::kWorkerOomExitCode)
    return robust::CrashKind::RlimitMem;
  return robust::CrashKind::ExitError;
}

WorkerPool::WorkerPool(Config config) : config_(std::move(config)) {
  if (config_.worker_bin.empty()) config_.worker_bin = default_worker_bin();
  if (config_.poison_threshold < 1) config_.poison_threshold = 1;
  if (config_.respawn_backoff_ms == 0) config_.respawn_backoff_ms = 1;
  if (config_.respawn_backoff_cap_ms < config_.respawn_backoff_ms)
    config_.respawn_backoff_cap_ms = config_.respawn_backoff_ms;
}

WorkerPool::~WorkerPool() { stop(); }

bool WorkerPool::spawn_locked(Worker& w) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    return false;

  // argv must be materialised before fork: only async-signal-safe work is
  // legal in the child of a multithreaded parent.
  const std::string as_slack = std::to_string(config_.as_slack_bytes);
  const std::string cpu_slack = std::to_string(config_.cpu_slack_seconds);
  const std::string max_frame = std::to_string(config_.max_frame_bytes);
  const char* argv[] = {config_.worker_bin.c_str(),
                        "--fd", "3",
                        "--as-slack-bytes", as_slack.c_str(),
                        "--cpu-slack-s", cpu_slack.c_str(),
                        "--max-frame-bytes", max_frame.c_str(),
                        nullptr};

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Child: job pipe on fd 3, everything else closed, then exec. When the
    // socketpair already landed on fd 3 (possible if stdio fds were closed
    // before the pool started), dup2 is a no-op that leaves SOCK_CLOEXEC
    // set and exec would close the job pipe — clear the flag instead.
    if (sv[1] == 3) {
      const int flags = ::fcntl(3, F_GETFD);
      if (flags < 0 || ::fcntl(3, F_SETFD, flags & ~FD_CLOEXEC) < 0)
        ::_exit(126);
    } else if (::dup2(sv[1], 3) < 0) {
      ::_exit(126);
    }
    close_high_fds();
    ::execv(config_.worker_bin.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);  // exec failed (missing binary); classified ExitError
  }
  ::close(sv[1]);
  w.pid = pid;
  w.fd = sv[0];
  w.state = Worker::State::Idle;
  return true;
}

void WorkerPool::record_crash_locked(robust::CrashKind kind) {
  count("serve.worker.crashes");
  count((std::string("serve.worker.crashes.") + to_string(kind)).c_str());
  switch (kind) {
    case robust::CrashKind::OomKill:
      ++crashes_oom_;
      break;
    case robust::CrashKind::RlimitCpu:
    case robust::CrashKind::RlimitMem:
      ++crashes_rlimit_;
      break;
    default:
      // Signal plus the unclassified exits — the "it just died" bucket.
      ++crashes_signal_;
      break;
  }
}

void WorkerPool::mark_dead_locked(Worker& w, int wstatus) {
  record_crash_locked(classify_worker_exit(wstatus));
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  w.pid = -1;
  w.state = Worker::State::Dead;
  w.backoff_ms = w.backoff_ms == 0
                     ? config_.respawn_backoff_ms
                     : std::min(w.backoff_ms * 2, config_.respawn_backoff_cap_ms);
  w.respawn_at = Clock::now() + std::chrono::milliseconds(w.backoff_ms);
  monitor_cv_.notify_all();
}

void WorkerPool::start() {
  std::unique_lock lock(mutex_);
  if (running_ || config_.workers == 0) return;
  slots_.resize(config_.workers);
  std::size_t spawned = 0;
  for (Worker& w : slots_) {
    if (spawn_locked(w)) {
      ++spawned;
    } else {
      w.state = Worker::State::Dead;
      w.backoff_ms = config_.respawn_backoff_ms;
      w.respawn_at = Clock::now() + std::chrono::milliseconds(w.backoff_ms);
    }
  }
  if (spawned == 0) {
    for (Worker& w : slots_) w.state = Worker::State::Stopped;
    slots_.clear();
    throw std::runtime_error("serve: could not start any worker process (" +
                             config_.worker_bin + ")");
  }
  running_ = true;
  stopping_ = false;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void WorkerPool::stop() {
  {
    std::unique_lock lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    // Busy workers are mid-analysis; their lane threads own the reap. Kill
    // so those threads unblock promptly (shutdown already shed the waiters).
    for (Worker& w : slots_)
      if (w.state == Worker::State::Busy && w.pid > 0)
        ::kill(w.pid, SIGKILL);
    monitor_cv_.notify_all();
    idle_cv_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();
  std::unique_lock lock(mutex_);
  idle_cv_.wait_for(lock, std::chrono::seconds(10), [this] {
    for (const Worker& w : slots_)
      if (w.state == Worker::State::Busy) return false;
    return true;
  });
  for (Worker& w : slots_) {
    if (w.state == Worker::State::Busy) continue;  // lane thread wedged; leak
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
    w.state = Worker::State::Stopped;
  }
  running_ = false;
}

int WorkerPool::acquire_idle_slot() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stopping_) return -1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state == Worker::State::Idle) {
        slots_[i].state = Worker::State::Busy;
        return static_cast<int>(i);
      }
    }
    idle_cv_.wait(lock);
  }
}

WorkerPool::Outcome WorkerPool::run(const store::Digest& fp,
                                    const Request& req,
                                    const govern::RunBudget& effective) {
  const std::string key = fp.hex();
  Outcome out;
  {
    std::unique_lock lock(mutex_);
    if (quarantine_.count(key)) {
      out.code = ErrorCode::PoisonedRequest;
      out.detail = "request fingerprint " + key + " is quarantined";
      return out;
    }
  }

  // One dispatched job frame, reused across the retry.
  store::ByteWriter w;
  const std::uint64_t job_id = [this] {
    std::unique_lock lock(mutex_);
    return next_job_id_++;
  }();
  w.u64(job_id);
  put_request(w, req, effective);
  Frame job;
  job.type = FrameType::AnalyzeRequest;
  job.payload = w.take();

  // `attempts` counts dispatches that reached a live worker; a write that
  // fails because the worker was already dead consumes neither the retry nor
  // the fingerprint's kill budget. `spins` bounds the worst case where every
  // acquired worker turns out dead at dispatch time.
  int spins = 0;
  while (out.attempts < 2 && spins < 64) {
    ++spins;
    const int slot = acquire_idle_slot();
    if (slot < 0) {
      out.code = ErrorCode::ShuttingDown;
      out.detail = "worker pool stopping";
      return out;
    }
    pid_t pid;
    int fd;
    {
      std::unique_lock lock(mutex_);
      pid = slots_[static_cast<std::size_t>(slot)].pid;
      fd = slots_[static_cast<std::size_t>(slot)].fd;
    }

    bool delivered = false;
    try {
      delivered = write_frame(fd, job);
    } catch (const ProtocolError&) {
      // Hard write error (e.g. ENOBUFS) on the job pipe: treat the worker as
      // dead-on-arrival — it never saw the flight, so this consumes neither
      // the retry nor the fingerprint's kill budget, and the exception must
      // not escape into the executor thread.
      delivered = false;
    }
    if (delivered) {
      ++out.attempts;
      count("serve.worker.dispatches");
      // Deterministic chaos hook: the Nth dispatch kills its worker, so
      // "worker_exec@0" crashes exactly the first attempt and the sibling
      // retry (index 1) runs clean.
      if (robust::fault::fire(robust::fault::Site::WorkerExec) && pid > 0)
        ::kill(pid, config_.fault_signal);
    }

    std::optional<Frame> reply;
    if (delivered) {
      try {
        reply = read_frame(fd, config_.max_frame_bytes);
      } catch (const ProtocolError&) {
        // Torn frame (the worker died mid-reply) — or an oversized one
        // (FrameTooLarge), where the worker is still *alive* and blocked
        // writing the rest. Either way fall through to the death path, which
        // SIGKILLs before reaping so a live worker can never wedge the lane.
        reply.reset();
      }
    }

    if (reply) {
      std::unique_lock lock(mutex_);
      Worker& slot_ref = slots_[static_cast<std::size_t>(slot)];
      slot_ref.state = Worker::State::Idle;
      slot_ref.backoff_ms = 0;  // a completed flight clears the crash streak
      idle_cv_.notify_all();

      if (reply->type == FrameType::AnalyzeResponse) {
        kill_counts_.erase(key);  // success un-poisons a transient streak
        lock.unlock();
        Response resp;
        try {
          const std::uint64_t echoed =
              decode_response_payload(reply->payload, resp);
          if (echoed != job_id)
            throw std::runtime_error("worker echoed wrong job id");
        } catch (const std::exception& e) {
          out.code = ErrorCode::Internal;
          out.detail = std::string("worker reply undecodable: ") + e.what();
          return out;
        }
        out.ok = true;
        out.code = ErrorCode::None;
        out.build_seconds = resp.build_seconds;
        out.solve_seconds = resp.solve_seconds;
        out.result_bytes = std::move(resp.result_bytes);
        return out;
      }
      lock.unlock();
      // Structured Error frame: the worker is alive and the failure is
      // deterministic (bad request, budget trip, ...) — no retry.
      out.crash = robust::CrashKind::CleanError;
      try {
        const ErrorInfo info = decode_error(reply->payload);
        out.code = info.code;
        out.detail = info.detail;
      } catch (const std::exception& e) {
        out.code = ErrorCode::Internal;
        out.detail = std::string("worker error undecodable: ") + e.what();
      }
      return out;
    }

    // The worker died (EOF / torn frame / dead-on-arrival write) — or is
    // alive but unusable (it sent a reply above max_frame_bytes and is
    // blocked writing the remainder). SIGKILL unconditionally and close our
    // pipe end *before* the blocking waitpid: both are harmless no-ops on an
    // already-dead child, and on a live one they guarantee the reap below
    // cannot deadlock against a worker wedged in write(). Reap and classify
    // outside the pool lock — the monitor skips Busy slots, so this thread
    // owns the pid.
    if (pid > 0) ::kill(pid, SIGKILL);
    if (fd >= 0) ::close(fd);
    int wstatus = 0;
    if (pid > 0) ::waitpid(pid, &wstatus, 0);
    const robust::CrashKind kind = classify_worker_exit(wstatus);
    if (static_cast<int>(kind) > static_cast<int>(out.crash)) out.crash = kind;

    std::unique_lock lock(mutex_);
    Worker& slot_ref = slots_[static_cast<std::size_t>(slot)];
    slot_ref.fd = -1;  // already closed above
    if (stopping_) {
      // Shutdown-initiated kill (stop() SIGKILLs busy workers so lanes
      // unblock): not a crash. Keep it out of the CrashKind tallies —
      // SIGKILL classifies as OomKill, and polluting crashes_oom on every
      // drain would mask real OOM kills from operators.
      count("serve.worker.shutdown_kills");
      slot_ref.pid = -1;
      slot_ref.state = Worker::State::Stopped;
      idle_cv_.notify_all();
      out.code = ErrorCode::ShuttingDown;
      out.detail = "worker pool stopping";
      return out;
    }
    slot_ref.pid = -1;  // already reaped above; mark_dead only cleans up fd
    mark_dead_locked(slot_ref, wstatus);

    if (delivered) {
      const int kills = ++kill_counts_[key];
      if (kills >= config_.poison_threshold) {
        kill_counts_.erase(key);
        quarantine_.insert(key);
        count("serve.worker.quarantined");
        out.code = ErrorCode::PoisonedRequest;
        out.detail = "request fingerprint " + key + " killed " +
                     std::to_string(kills) + " workers (" + to_string(kind) +
                     "); quarantined";
        return out;
      }
      if (out.attempts < 2) {
        ++crash_retries_;
        count("serve.worker.retries");
      }
    }
  }

  out.code = ErrorCode::WorkerCrashed;
  out.detail = std::string("worker died (") + to_string(out.crash) +
               ") and the sibling retry also failed";
  return out;
}

bool WorkerPool::poisoned(const store::Digest& fp) const {
  std::unique_lock lock(mutex_);
  return quarantine_.count(fp.hex()) != 0;
}

WorkerPool::PoolHealth WorkerPool::health() const {
  std::unique_lock lock(mutex_);
  PoolHealth h;
  h.workers = config_.workers;
  for (const Worker& w : slots_) {
    if (w.state == Worker::State::Idle || w.state == Worker::State::Busy) {
      ++h.alive;
      if (w.pid > 0) h.pids.push_back(static_cast<std::uint64_t>(w.pid));
    } else if (w.state == Worker::State::Dead) {
      ++h.respawning;
    }
  }
  h.crashes_signal = crashes_signal_;
  h.crashes_oom = crashes_oom_;
  h.crashes_rlimit = crashes_rlimit_;
  h.crash_retries = crash_retries_;
  h.respawns = respawns_;
  h.quarantined = quarantine_.size();
  return h;
}

void WorkerPool::monitor_loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    // Reap idle deaths (chaos kills between flights). Busy slots belong to
    // their lane threads — never waitpid those here.
    for (Worker& w : slots_) {
      if (w.state != Worker::State::Idle || w.pid <= 0) continue;
      int wstatus = 0;
      const pid_t r = ::waitpid(w.pid, &wstatus, WNOHANG);
      if (r == w.pid) {
        w.pid = -1;
        mark_dead_locked(w, wstatus);
      }
    }
    // Respawn dead slots whose backoff elapsed.
    const auto now = Clock::now();
    for (Worker& w : slots_) {
      if (w.state != Worker::State::Dead || now < w.respawn_at) continue;
      if (spawn_locked(w)) {
        ++respawns_;
        count("serve.worker.respawns");
        idle_cv_.notify_all();
      } else {
        w.backoff_ms = std::min(w.backoff_ms * 2, config_.respawn_backoff_cap_ms);
        w.respawn_at = now + std::chrono::milliseconds(w.backoff_ms);
      }
    }
    monitor_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

}  // namespace ind::serve
