// Multi-tenant analysis server: accepts concurrent AnalyzeRequests over the
// serve/ wire protocol and multiplexes them onto the process runtime.
//
// Architecture (one process, N connections):
//
//   accept thread ──> reader thread per connection
//                        │  handshake, frame decode, request decode
//                        │  response-cache short-circuit  ── reply Cache
//                        │  in-flight dedup (fingerprint) ── attach waiter
//                        ▼
//                  FairScheduler (per-client bounded FIFOs, round-robin)
//                        │  full queue -> Busy reply (load shed)
//                        ▼
//                  executor thread ── govern::Governor (per-request budget)
//                        │             core::analyze on the global ThreadPool
//                        ▼
//                  respond to every waiter; store result in the cache
//
// In-process mode (IND_SERVE_WORKERS=0) analyses execute one at a time, in
// the scheduler's fair order: the parallelism of a single core::analyze
// already saturates the pool (parallel_for fans each kernel out across every
// worker), and the process-wide Governor/metrics machinery assumes one
// governed run at a time. Concurrency at the request level comes from
// pipelined I/O, from in-flight dedup (N identical requests cost one
// computation) and from the response cache (repeat requests never reach the
// executor). Because every kernel is bitwise-deterministic at any
// IND_THREADS, the RESULT block for a given request body is byte-identical
// no matter how it was served.
//
// Worker mode (IND_SERVE_WORKERS=N > 0): N executor lanes each dispatch
// flights to their own sandboxed ind_worker process through a WorkerPool
// (serve/worker_pool.hpp) — a crash, OOM kill or rlimit trip inside any
// kernel costs one worker process and one classified retry, never the
// server. Each worker process has its own Governor, so N analyses run
// concurrently without sharing budget state; results stay bitwise-identical
// to the in-process path because the same deterministic kernels run on the
// same dispatched request bytes.
//
// Per-request governance: the request's RunBudget is clamped field-wise by
// the server caps (IND_SERVE_DEADLINE_MS / IND_SERVE_MEM_BYTES /
// IND_SERVE_WORK_BUDGET; a tenant can tighten, never loosen). Dedup and
// both response caches key on the fingerprint of the request under that
// *effective* budget, so a server restarted with different caps never
// replays results computed under the old ones. Work/memory
// trips degrade down the Section-4 fidelity ladder inside analyze() and the
// response carries the degradation trail; a deadline trip answers
// DeadlineExceeded. A client disconnect removes its waiters, and when the
// running flight has no waiters left it is cancelled through the
// govern CancelToken (queued orphans are skipped at pop).
//
// Slow/wedged peers: every accepted socket carries SO_SNDTIMEO
// (IND_SERVE_SEND_TIMEOUT_MS, default 10 s); a send that makes no progress
// for the whole window marks the peer dead, so a client that stops reading
// can stall the executor for at most one timeout instead of forever.
//
// Wedged executor: an optional watchdog thread (IND_SERVE_WATCHDOG_MS)
// samples the executor's progress counter and, when it stalls across K
// intervals while work is queued, trips graceful degradation — new work is
// shed with Busy (`serve.watchdog_sheds`), cache hits and dedup attaches
// still drain, and IND_SERVE_WATCHDOG_ABORT=1 turns the trip into a
// fail-stop so an orchestrator restarts the process. HealthRequest frames
// are answered inline by the reader with a HealthStatus snapshot, so health
// probes work even while the executor is wedged. See serve/health.hpp.
//
// Graceful shutdown (SIGINT/SIGTERM in ind_served): admission stops (new
// requests get Busy/ShuttingDown), queued work drains through the executor
// for up to IND_SERVE_DRAIN_MS, anything still pending past the deadline is
// answered ShuttingDown and the in-flight analysis is cancelled through the
// CancelToken; the remaining sockets are then shut down *before* the worker
// threads are joined (a blocked send fails fast instead of wedging the
// join), and finally the response cache is flushed to the artifact store
// (when IND_CACHE_DIR is set) and the listener exits 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "govern/budget.hpp"
#include "serve/codec.hpp"
#include "serve/health.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/worker_pool.hpp"

namespace ind::serve {

struct ServerConfig {
  /// Unix-domain socket path; when empty the server listens on TCP.
  std::string uds_path;
  /// TCP listen address. Port 0 binds an ephemeral port (see Server::port).
  std::string host = "127.0.0.1";
  int tcp_port = 0;

  std::size_t per_client_queue = 64;   ///< IND_SERVE_CLIENT_QUEUE
  std::size_t max_queue = 1024;        ///< IND_SERVE_MAX_QUEUE
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;  ///< IND_SERVE_MAX_FRAME_BYTES
  /// Server-side budget caps; request budgets are clamped to these.
  govern::RunBudget budget_caps;       ///< IND_SERVE_{DEADLINE_MS,MEM_BYTES,WORK_BUDGET}
  std::uint64_t drain_ms = 5000;       ///< IND_SERVE_DRAIN_MS
  /// SO_SNDTIMEO on every accepted socket: a send that makes no progress
  /// for this long marks the peer dead instead of wedging the sender (the
  /// executor answers waiters with blocking writes — one client that stops
  /// reading must not starve every other tenant). 0 disables the timeout.
  std::uint64_t send_timeout_ms = 10'000;  ///< IND_SERVE_SEND_TIMEOUT_MS
  /// In-memory response cache capacity in entries; 0 disables it (the
  /// on-disk artifact cache, when configured, is still consulted).
  std::size_t result_cache_entries = 512;  ///< IND_SERVE_RESULT_CACHE

  /// Executor watchdog (see serve/health.hpp). Sampling interval in ms;
  /// 0 (the default) disables the watchdog thread entirely.
  std::uint64_t watchdog_interval_ms = 0;  ///< IND_SERVE_WATCHDOG_MS
  /// Consecutive no-progress samples (while work is queued) before the
  /// executor is declared wedged and new work is shed with Busy.
  int watchdog_stall_intervals = 3;        ///< IND_SERVE_WATCHDOG_INTERVALS
  /// Fail-stop on a watchdog trip (std::abort) so an orchestrator restarts
  /// the process instead of letting it limp along shedding forever.
  bool watchdog_abort = false;             ///< IND_SERVE_WATCHDOG_ABORT

  /// Process isolation (serve/worker_pool.hpp). 0 keeps the single
  /// in-process executor; N > 0 fork/execs N sandboxed ind_worker processes
  /// and runs N executor lanes, one flight per worker at a time.
  std::size_t workers = 0;                   ///< IND_SERVE_WORKERS
  /// Worker binary; empty = "<server executable's dir>/ind_worker".
  std::string worker_bin;                    ///< IND_SERVE_WORKER_BIN
  /// Worker kills by one request fingerprint before it is quarantined.
  int poison_threshold = 2;                  ///< IND_SERVE_POISON_THRESHOLD
  /// Initial worker respawn backoff (doubles per consecutive death).
  std::uint64_t worker_respawn_ms = 50;      ///< IND_SERVE_RESPAWN_MS
  /// RLIMIT_AS slack above the effective mem budget (worker baseline).
  std::uint64_t worker_as_slack_bytes = 512ull << 20;  ///< IND_SERVE_WORKER_AS_SLACK_MB
  /// RLIMIT_CPU slack above the deadline-derived seconds.
  std::uint64_t worker_cpu_slack_s = 5;      ///< IND_SERVE_WORKER_CPU_SLACK_S
  /// Signal the worker_exec fault site kills dispatched workers with
  /// (SIGSEGV; IND_SERVE_FAULT_SIGNAL=segv|kill|xcpu|abrt).
  int worker_fault_signal = 11;              ///< IND_SERVE_FAULT_SIGNAL

  /// Test hook: runs on the executor thread after a flight is popped and
  /// *before* waiters are checked or the analysis starts. Lets tests hold
  /// the executor deterministically while they pile up duplicate requests
  /// or disconnect clients.
  std::function<void()> before_execute;

  /// Reads the IND_SERVE_* knobs (listed above) over built-in defaults.
  static ServerConfig from_env();
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and launches the accept + executor threads. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// Bound TCP port (valid after start() on a TCP config).
  int port() const { return port_; }

  /// True between start() and the end of shutdown().
  bool running() const { return running_.load(); }

  /// Graceful stop as documented in the header comment. Idempotent;
  /// blocks until every thread is joined and the cache is flushed.
  void shutdown();

  /// Point-in-time health snapshot (also answered to HealthRequest frames).
  HealthStatus snapshot_health();

  /// True while the watchdog considers the executor wedged (new work is
  /// being shed with Busy until progress resumes).
  bool degraded() const { return degraded_.load(); }

 private:
  struct Connection;
  struct InFlight;
  using FlightPtr = std::shared_ptr<InFlight>;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  /// Handshake + frame loop; early returns are fine — connection_loop runs
  /// the disconnect/retire cleanup on every exit path.
  void connection_body(const std::shared_ptr<Connection>& conn);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const std::vector<std::uint8_t>& payload);
  void disconnect(const std::shared_ptr<Connection>& conn);
  /// Joins reader threads whose connection_loop has returned (called from
  /// the accept loop on every new connection, and from shutdown()).
  void reap_readers();
  void executor_loop();
  void execute(const FlightPtr& flight);
  void watchdog_loop();

  /// In-memory response-cache probe. Caller holds state_mutex_.
  bool cache_probe(const store::Digest& fp, std::vector<std::uint8_t>* result,
                   double* build_seconds, double* solve_seconds);
  /// On-disk artifact-store load. Performs disk I/O — caller must NOT hold
  /// state_mutex_ (a slow read would stall every reader's admission path).
  bool cache_load_disk(const store::Digest& fp,
                       std::vector<std::uint8_t>* result, double* build_seconds,
                       double* solve_seconds);
  void cache_store(const store::Digest& fp,
                   const std::vector<std::uint8_t>& result,
                   double build_seconds, double solve_seconds);
  void flush_cache_to_store();

  govern::RunBudget effective_budget(const govern::RunBudget& requested) const;

  ServerConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  FairScheduler<FlightPtr> scheduler_;

  std::mutex state_mutex_;
  std::unordered_map<std::string, FlightPtr> inflight_;  ///< key: digest hex
  /// In-process mode only: the flight the single executor lane is running
  /// (disconnect cancellation targets it through the process Governor).
  /// Worker-mode lanes leave it null — each worker has its own Governor, so
  /// an orphaned flight runs to completion and warms the cache instead.
  FlightPtr current_;
  /// Flights currently executing across all lanes (shutdown's idle check).
  std::size_t running_flights_ = 0;  ///< guarded by state_mutex_

  /// Process-isolated worker lanes (IND_SERVE_WORKERS > 0), else null.
  std::unique_ptr<WorkerPool> pool_;

  struct CacheEntry {
    store::Digest fp;
    std::vector<std::uint8_t> result;
    double build_seconds = 0.0;
    double solve_seconds = 0.0;
    std::list<std::string>::iterator lru;  ///< position in lru_ (MRU front)
  };
  std::unordered_map<std::string, CacheEntry> response_cache_;
  std::list<std::string> lru_;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;  ///< live connections only
  std::uint64_t next_conn_id_ = 1;

  /// Executor liveness: bumped whenever the executor makes observable
  /// progress (popping a flight, finishing an analysis). The watchdog trips
  /// when this stalls across K samples while the scheduler holds work.
  std::atomic<std::uint64_t> progress_ticks_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> watchdog_trips_{0};
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_thread_;

  std::thread accept_thread_;
  /// One lane in-process; IND_SERVE_WORKERS lanes in worker mode (each lane
  /// blocks on its own worker process, so N lanes = N concurrent analyses).
  std::vector<std::thread> executor_threads_;
  /// Reader threads keyed by connection id. A reader that finishes moves its
  /// connection out of conns_ and queues its id on finished_readers_; the
  /// accept loop joins those handles, so a long-running daemon serving many
  /// short-lived connections does not accumulate joinable thread stacks.
  std::unordered_map<std::uint64_t, std::thread> reader_threads_;
  std::vector<std::uint64_t> finished_readers_;  ///< guarded by conns_mutex_
};

}  // namespace ind::serve
