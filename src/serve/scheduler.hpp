// Fair admission scheduler: per-client bounded FIFOs drained round-robin.
//
// Every connection gets its own queue with a hard depth cap, and a global
// cap bounds the sum. The executor pops clients in strict round-robin order
// (clients join the rotation on their first admitted job and leave it when
// their queue drains), so a client flooding requests cannot starve a client
// sending one: with clients A and B queued [A1 A2 ... A9, B1], the pop order
// is A1 B1 A2 A3 ... — B waits behind exactly one of A's jobs, never nine.
//
// Admission never blocks: a full queue is an immediate Reject (the server
// turns it into a Busy frame — load shedding instead of unbounded queueing),
// and after shutdown() every push is rejected with Draining. pop() blocks
// until a job or shutdown-and-empty, which is the executor's exit signal.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

namespace ind::serve {

enum class Admit {
  Ok,
  ClientFull,  ///< this client's queue is at per-client capacity
  ServerFull,  ///< the global queue is at total capacity
  Draining,    ///< shutdown() was called; no new work is accepted
};

/// FIFO + round-robin scheduler over opaque job handles (the server stores
/// indices into its own in-flight table).
template <typename Job>
class FairScheduler {
 public:
  FairScheduler(std::size_t per_client_cap, std::size_t total_cap)
      : per_client_cap_(per_client_cap), total_cap_(total_cap) {}

  Admit push(std::uint64_t client, Job job) {
    std::unique_lock lock(mutex_);
    if (draining_) return Admit::Draining;
    if (total_ >= total_cap_) return Admit::ServerFull;
    auto [it, inserted] = queues_.try_emplace(client);
    if (it->second.size() >= per_client_cap_) return Admit::ClientFull;
    if (it->second.empty()) rotation_.push_back(client);
    it->second.push_back(std::move(job));
    ++total_;
    lock.unlock();
    ready_.notify_one();
    return Admit::Ok;
  }

  /// Blocks for the next job in round-robin order. Returns false when the
  /// scheduler is draining and empty (executor exit).
  bool pop(Job& out) {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return total_ > 0 || draining_; });
    if (total_ == 0) return false;
    if (cursor_ >= rotation_.size()) cursor_ = 0;
    const std::uint64_t client = rotation_[cursor_];
    auto it = queues_.find(client);
    out = std::move(it->second.front());
    it->second.pop_front();
    --total_;
    if (it->second.empty()) {
      queues_.erase(it);
      rotation_.erase(rotation_.begin() +
                      static_cast<std::ptrdiff_t>(cursor_));
      // cursor_ now points at the next client already; wrap handled above.
    } else {
      ++cursor_;
    }
    return true;
  }

  /// Stops admission. pop() keeps returning queued jobs until empty, then
  /// false — the "drain" phase of a graceful shutdown.
  void shutdown() {
    {
      std::lock_guard lock(mutex_);
      draining_ = true;
    }
    ready_.notify_all();
  }

  /// Removes and returns every queued job (shutdown past the drain
  /// deadline: the server answers each with ShuttingDown instead of running
  /// it).
  std::vector<Job> drain_all() {
    std::lock_guard lock(mutex_);
    std::vector<Job> out;
    for (auto& [client, q] : queues_)
      for (Job& j : q) out.push_back(std::move(j));
    queues_.clear();
    rotation_.clear();
    cursor_ = 0;
    total_ = 0;
    return out;
  }

  std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return total_;
  }

  bool draining() const {
    std::lock_guard lock(mutex_);
    return draining_;
  }

 private:
  const std::size_t per_client_cap_;
  const std::size_t total_cap_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<std::uint64_t, std::deque<Job>> queues_;
  std::vector<std::uint64_t> rotation_;  ///< clients with non-empty queues
  std::size_t cursor_ = 0;               ///< round-robin position
  std::size_t total_ = 0;
  bool draining_ = false;
};

}  // namespace ind::serve
