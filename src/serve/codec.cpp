#include "serve/codec.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

#include "store/serde.hpp"

namespace ind::serve {

namespace {

/// Bumped whenever the request/result encoding changes shape. Feeds both
/// the decoder check and (via the encoded bytes) the request fingerprint, so
/// a codec evolution invalidates every stale dedup/cache key at once.
constexpr std::uint16_t kCodecVersion = 2;  // v2: extraction method + fast/ knobs

constexpr struct {
  core::Flow flow;
  const char* key;
} kFlowKeys[] = {
    {core::Flow::PeecRc, "peec_rc"},
    {core::Flow::PeecRlcFull, "peec_rlc"},
    {core::Flow::PeecRlcTruncated, "peec_rlc_trunc"},
    {core::Flow::PeecRlcBlockDiag, "peec_rlc_blockdiag"},
    {core::Flow::PeecRlcShell, "peec_rlc_shell"},
    {core::Flow::PeecRlcHalo, "peec_rlc_halo"},
    {core::Flow::PeecRlcKMatrix, "peec_rlc_kmatrix"},
    {core::Flow::PeecRlcPrima, "peec_rlc_prima"},
    {core::Flow::PeecRlcHier, "peec_rlc_hier"},
    {core::Flow::LoopRlc, "loop_rlc"},
};

template <typename Enum>
Enum checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max)
    throw std::invalid_argument(std::string("serve: out-of-range ") + what +
                                " value " + std::to_string(raw));
  return static_cast<Enum>(raw);
}

void put_options(store::ByteWriter& w, const core::AnalysisOptions& o) {
  w.u8(static_cast<std::uint8_t>(o.flow));
  w.i32(o.signal_net);

  const peec::PeecOptions& p = o.peec;
  w.boolean(p.rc_only);
  w.u8(static_cast<std::uint8_t>(p.mutual_policy));
  w.f64(p.mutual_window);
  w.f64(p.coupling_window);
  w.f64(p.max_segment_length);
  w.f64(p.vdd);
  w.f64(p.snap);
  w.boolean(p.decap.enable);
  w.f64(p.decap.total_capacitance);
  w.f64(p.decap.series_tau);
  w.i32(p.decap.sites);
  w.boolean(p.background.enable);
  w.i32(p.background.sources);
  w.f64(p.background.peak_current);
  w.i32(p.background.pulses);
  w.f64(p.background.window);
  w.u64(p.background.seed);
  w.boolean(p.package.include);
  w.f64(p.package.resistance_scale);
  w.f64(p.package.inductance_scale);
  w.boolean(p.substrate.enable);
  w.f64(p.substrate.pitch);
  w.f64(p.substrate.sheet_resistance);
  w.f64(p.substrate.tap_resistance);
  w.i32(p.substrate.taps_per_side);
  w.f64(p.substrate.nwell_cap_total);
  w.i32(p.substrate.max_nodes_per_axis);

  const loop::LoopModelOptions& l = o.loop;
  w.f64(l.extraction_freq);
  w.boolean(l.use_ladder);
  w.f64(l.f_low);
  w.f64(l.f_high);
  w.f64(l.vdd);
  w.f64(l.max_segment_length);
  w.f64(l.extraction.max_segment_length);
  w.boolean(l.extraction.include_power_as_return);
  w.f64(l.extraction.mqs.mutual_window);
  w.f64(l.extraction.mqs.snap);
  w.f64(l.extraction.mqs.skin.max_width);
  w.f64(l.extraction.mqs.skin.max_thickness);
  w.i32(l.extraction.mqs.skin.max_filaments_per_axis);
  w.u8(static_cast<std::uint8_t>(l.extraction.mqs.method));
  const loop::FastSolveOptions& fs = l.extraction.mqs.fast;
  w.f64(fs.voxel.pitch);
  w.f64(fs.voxel.pitch_z);
  w.f64(fs.voxel.width);
  w.f64(fs.voxel.thickness);
  w.u8(static_cast<std::uint8_t>(fs.precond.kind));
  w.f64(fs.precond.radius);
  w.f64(fs.precond.truncation_ratio);
  w.u64(fs.precond.strip_cells);
  w.u64(fs.gmres.restart);
  w.u64(fs.gmres.max_restarts);
  w.f64(fs.gmres.tol);
  w.u64(fs.auto_threshold);
  w.u64(fs.dense_fallback_limit);
  w.boolean(fs.use_fft);

  const circuit::TransientOptions& t = o.transient;
  w.f64(t.t_stop);
  w.f64(t.dt);
  w.u8(static_cast<std::uint8_t>(t.solver));
  w.u64(t.dense_threshold);
  w.f64(t.auto_density);
  w.boolean(t.backward_euler);
  w.i32(t.max_step_retries);

  const core::FlowParams& f = o.params;
  w.f64(f.truncation_ratio);
  w.f64(f.block_strip_width);
  w.u8(static_cast<std::uint8_t>(f.block_axis));
  w.f64(f.shell_radius);
  w.f64(f.kmatrix_ratio);
  w.u64(f.prima_order);
  w.boolean(f.prima_on_block_diagonal);
  w.u64(f.hier_order_per_block);
  w.f64(f.hier_strip_width);
}

void get_options(store::ByteReader& r, core::AnalysisOptions& o) {
  o.flow = checked_enum<core::Flow>(
      r.u8(), static_cast<std::uint8_t>(core::Flow::LoopRlc), "flow");
  o.signal_net = r.i32();

  peec::PeecOptions& p = o.peec;
  p.rc_only = r.boolean();
  p.mutual_policy =
      checked_enum<peec::PeecOptions::MutualPolicy>(r.u8(), 1, "mutual_policy");
  p.mutual_window = r.f64();
  p.coupling_window = r.f64();
  p.max_segment_length = r.f64();
  p.vdd = r.f64();
  p.snap = r.f64();
  p.decap.enable = r.boolean();
  p.decap.total_capacitance = r.f64();
  p.decap.series_tau = r.f64();
  p.decap.sites = r.i32();
  p.background.enable = r.boolean();
  p.background.sources = r.i32();
  p.background.peak_current = r.f64();
  p.background.pulses = r.i32();
  p.background.window = r.f64();
  p.background.seed = r.u64();
  p.package.include = r.boolean();
  p.package.resistance_scale = r.f64();
  p.package.inductance_scale = r.f64();
  p.substrate.enable = r.boolean();
  p.substrate.pitch = r.f64();
  p.substrate.sheet_resistance = r.f64();
  p.substrate.tap_resistance = r.f64();
  p.substrate.taps_per_side = r.i32();
  p.substrate.nwell_cap_total = r.f64();
  p.substrate.max_nodes_per_axis = r.i32();

  loop::LoopModelOptions& l = o.loop;
  l.extraction_freq = r.f64();
  l.use_ladder = r.boolean();
  l.f_low = r.f64();
  l.f_high = r.f64();
  l.vdd = r.f64();
  l.max_segment_length = r.f64();
  l.extraction.max_segment_length = r.f64();
  l.extraction.include_power_as_return = r.boolean();
  l.extraction.mqs.mutual_window = r.f64();
  l.extraction.mqs.snap = r.f64();
  l.extraction.mqs.skin.max_width = r.f64();
  l.extraction.mqs.skin.max_thickness = r.f64();
  l.extraction.mqs.skin.max_filaments_per_axis = r.i32();
  l.extraction.mqs.method = checked_enum<loop::ExtractionMethod>(
      r.u8(), static_cast<std::uint8_t>(loop::ExtractionMethod::Auto),
      "extraction_method");
  loop::FastSolveOptions& fs = l.extraction.mqs.fast;
  fs.voxel.pitch = r.f64();
  fs.voxel.pitch_z = r.f64();
  fs.voxel.width = r.f64();
  fs.voxel.thickness = r.f64();
  fs.precond.kind = checked_enum<fast::PrecondKind>(
      r.u8(), static_cast<std::uint8_t>(fast::PrecondKind::Truncation),
      "precond_kind");
  fs.precond.radius = r.f64();
  fs.precond.truncation_ratio = r.f64();
  fs.precond.strip_cells = r.u64();
  fs.gmres.restart = r.u64();
  fs.gmres.max_restarts = r.u64();
  fs.gmres.tol = r.f64();
  fs.auto_threshold = r.u64();
  fs.dense_fallback_limit = r.u64();
  fs.use_fft = r.boolean();

  circuit::TransientOptions& t = o.transient;
  t.t_stop = r.f64();
  t.dt = r.f64();
  t.solver =
      checked_enum<circuit::TransientOptions::Solver>(r.u8(), 2, "solver");
  t.dense_threshold = r.u64();
  t.auto_density = r.f64();
  t.backward_euler = r.boolean();
  t.max_step_retries = r.i32();

  core::FlowParams& f = o.params;
  f.truncation_ratio = r.f64();
  f.block_strip_width = r.f64();
  f.block_axis = checked_enum<geom::Axis>(r.u8(), 1, "block_axis");
  f.shell_radius = r.f64();
  f.kmatrix_ratio = r.f64();
  f.prima_order = r.u64();
  f.prima_on_block_diagonal = r.boolean();
  f.hier_order_per_block = r.u64();
  f.hier_strip_width = r.f64();
}

void put_strings(store::ByteWriter& w, const std::vector<std::string>& v) {
  w.u64(v.size());
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> get_strings(store::ByteReader& r) {
  const std::uint64_t n = r.count(r.u64(), 1);
  std::vector<std::string> v;
  v.reserve(n);
  for (std::uint64_t k = 0; k < n; ++k) v.push_back(r.str());
  return v;
}

double parse_double(std::string_view key, std::string_view text) {
  // std::from_chars<double> is still spotty across libstdc++ versions the
  // CI images carry; strtod on a NUL-terminated copy is equivalent here.
  const std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0')
    throw std::invalid_argument("serve: option '" + std::string(key) +
                                "' has malformed value '" + buf + "'");
  return v;
}

long parse_int(std::string_view key, std::string_view text) {
  long v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw std::invalid_argument("serve: option '" + std::string(key) +
                                "' has malformed value '" + std::string(text) +
                                "'");
  return v;
}

}  // namespace

namespace {

/// Canonical request encoding with the budget fields taken from `budget`
/// instead of req.budget — shared by the wire encoder (requested budget) and
/// the server-side fingerprint (effective budget).
void put_request_with_budget(store::ByteWriter& w, const Request& req,
                             const govern::RunBudget& budget) {
  w.u16(kCodecVersion);
  store::serde::put(w, req.layout);
  put_options(w, req.options);
  w.u64(budget.deadline_ms);
  w.u64(budget.mem_bytes);
  w.u64(budget.work_units);
  w.boolean(req.include_waveforms);
}

}  // namespace

void put_request(store::ByteWriter& w, const Request& req) {
  put_request_with_budget(w, req, req.budget);
}

void put_request(store::ByteWriter& w, const Request& req,
                 const govern::RunBudget& effective_budget) {
  put_request_with_budget(w, req, effective_budget);
}

void get_request(store::ByteReader& r, Request& req) {
  const std::uint16_t version = r.u16();
  if (version != kCodecVersion)
    throw std::invalid_argument("serve: request codec version " +
                                std::to_string(version) + " != " +
                                std::to_string(kCodecVersion));
  store::serde::get(r, req.layout);
  get_options(r, req.options);
  req.budget.deadline_ms = r.u64();
  req.budget.mem_bytes = r.u64();
  req.budget.work_units = r.u64();
  req.include_waveforms = r.boolean();
  if (!r.at_end())
    throw store::StoreError(store::StoreErrc::Malformed,
                            "trailing bytes after serve request");
}

std::vector<std::uint8_t> encode_result(const core::AnalysisReport& report,
                                        bool include_waveforms) {
  store::ByteWriter w;
  w.u16(kCodecVersion);
  w.u8(static_cast<std::uint8_t>(report.flow));
  w.u8(static_cast<std::uint8_t>(report.requested_flow));
  put_strings(w, report.degradations);
  w.boolean(report.waveform_truncated);
  w.u64(report.counts.resistors);
  w.u64(report.counts.capacitors);
  w.u64(report.counts.inductors);
  w.u64(report.counts.mutuals);
  w.u64(report.unknowns);
  w.u64(report.reduced_order);
  w.f64(report.worst_delay);
  w.f64(report.best_delay);
  w.f64(report.skew);
  w.str(report.worst_sink);
  w.f64(report.overshoot);
  store::serde::put(w, report.solve_report);
  w.boolean(include_waveforms);
  if (include_waveforms) {
    w.f64s(report.time);
    put_strings(w, report.sink_names);
    w.u64(report.sink_waveforms.size());
    for (const la::Vector& wf : report.sink_waveforms) w.f64s(wf);
  } else {
    // The names still travel (they are small and callers key on them); only
    // the sample arrays are elided.
    put_strings(w, report.sink_names);
  }
  return w.take();
}

void decode_result(const std::vector<std::uint8_t>& bytes,
                   core::AnalysisReport& report) {
  store::ByteReader r(bytes);
  const std::uint16_t version = r.u16();
  if (version != kCodecVersion)
    throw std::invalid_argument("serve: result codec version " +
                                std::to_string(version) + " != " +
                                std::to_string(kCodecVersion));
  const auto max_flow = static_cast<std::uint8_t>(core::Flow::LoopRlc);
  report.flow = checked_enum<core::Flow>(r.u8(), max_flow, "flow");
  report.requested_flow =
      checked_enum<core::Flow>(r.u8(), max_flow, "requested_flow");
  report.degradations = get_strings(r);
  report.waveform_truncated = r.boolean();
  report.counts.resistors = r.u64();
  report.counts.capacitors = r.u64();
  report.counts.inductors = r.u64();
  report.counts.mutuals = r.u64();
  report.unknowns = r.u64();
  report.reduced_order = r.u64();
  report.worst_delay = r.f64();
  report.best_delay = r.f64();
  report.skew = r.f64();
  report.worst_sink = r.str();
  report.overshoot = r.f64();
  store::serde::get(r, report.solve_report);
  const bool with_waveforms = r.boolean();
  if (with_waveforms) {
    report.time = r.f64s();
    report.sink_names = get_strings(r);
    const std::uint64_t n = r.count(r.u64(), 1);
    report.sink_waveforms.clear();
    report.sink_waveforms.reserve(n);
    for (std::uint64_t k = 0; k < n; ++k)
      report.sink_waveforms.push_back(r.f64s());
  } else {
    report.time.clear();
    report.sink_waveforms.clear();
    report.sink_names = get_strings(r);
  }
}

std::vector<std::uint8_t> encode_response_payload(
    std::uint64_t request_id, Response::ServedBy served_by,
    double build_seconds, double solve_seconds, double queue_seconds,
    const std::vector<std::uint8_t>& result_bytes) {
  store::ByteWriter w;
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(served_by));
  w.f64(build_seconds);
  w.f64(solve_seconds);
  w.f64(queue_seconds);
  w.u64(result_bytes.size());
  w.raw(result_bytes.data(), result_bytes.size());
  return w.take();
}

std::uint64_t decode_response_payload(const std::vector<std::uint8_t>& payload,
                                      Response& out) {
  store::ByteReader r(payload);
  const std::uint64_t request_id = r.u64();
  out.served_by =
      checked_enum<Response::ServedBy>(r.u8(), 2, "served_by");
  out.build_seconds = r.f64();
  out.solve_seconds = r.f64();
  out.queue_seconds = r.f64();
  const std::uint64_t n = r.count(r.u64(), 1);
  out.result_bytes.resize(n);
  r.raw(out.result_bytes.data(), n);
  decode_result(out.result_bytes, out.report);
  return request_id;
}

store::Digest request_fingerprint(const Request& req) {
  return request_fingerprint(req, req.budget);
}

store::Digest request_fingerprint(const Request& req,
                                  const govern::RunBudget& effective_budget) {
  store::ByteWriter w;
  put_request_with_budget(w, req, effective_budget);
  store::Hasher h = store::fingerprint_base("serve_request");
  h.bytes(w.bytes().data(), w.bytes().size());
  return h.digest();
}

core::Flow flow_from_key(std::string_view key) {
  for (const auto& entry : kFlowKeys)
    if (key == entry.key) return entry.flow;
  throw std::invalid_argument("serve: unknown flow '" + std::string(key) +
                              "'");
}

void apply_option_spec(core::AnalysisOptions& opts, std::string_view spec) {
  std::size_t pos = 0;
  const auto is_sep = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == ';';
  };
  while (pos < spec.size()) {
    while (pos < spec.size() && is_sep(spec[pos])) ++pos;
    if (pos >= spec.size()) break;
    std::size_t end = pos;
    while (end < spec.size() && !is_sep(spec[end])) ++end;
    const std::string_view token = spec.substr(pos, end - pos);
    pos = end;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= token.size())
      throw std::invalid_argument("serve: option token '" + std::string(token) +
                                  "' is not key=value");
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);

    if (key == "flow") {
      opts.flow = flow_from_key(value);
    } else if (key == "signal_net") {
      opts.signal_net = static_cast<int>(parse_int(key, value));
    } else if (key == "seg_um") {
      opts.peec.max_segment_length = geom::um(parse_double(key, value));
    } else if (key == "t_stop") {
      opts.transient.t_stop = parse_double(key, value);
    } else if (key == "dt") {
      opts.transient.dt = parse_double(key, value);
    } else if (key == "vdd") {
      opts.peec.vdd = parse_double(key, value);
      opts.loop.vdd = opts.peec.vdd;
    } else if (key == "decap_sites") {
      opts.peec.decap.sites = static_cast<int>(parse_int(key, value));
    } else if (key == "loop_seg_um") {
      opts.loop.max_segment_length = geom::um(parse_double(key, value));
    } else if (key == "loop_extract_um") {
      opts.loop.extraction.max_segment_length =
          geom::um(parse_double(key, value));
    } else if (key == "method") {
      loop::MqsOptions& mqs = opts.loop.extraction.mqs;
      if (value == "dense") {
        mqs.method = loop::ExtractionMethod::Dense;
      } else if (value == "fft") {
        mqs.method = loop::ExtractionMethod::FftGmres;
      } else if (value == "auto") {
        mqs.method = loop::ExtractionMethod::Auto;
      } else {
        throw std::invalid_argument("serve: unknown extraction method '" +
                                    std::string(value) + "'");
      }
    } else if (key == "fft_pitch_um") {
      opts.loop.extraction.mqs.fast.voxel.pitch =
          geom::um(parse_double(key, value));
    } else if (key == "fft_precond") {
      fast::PrecondOptions& pc = opts.loop.extraction.mqs.fast.precond;
      if (value == "none") {
        pc.kind = fast::PrecondKind::None;
      } else if (value == "diag") {
        pc.kind = fast::PrecondKind::Diag;
      } else if (value == "blockdiag") {
        pc.kind = fast::PrecondKind::BlockDiag;
      } else if (value == "shell") {
        pc.kind = fast::PrecondKind::Shell;
      } else if (value == "trunc") {
        pc.kind = fast::PrecondKind::Truncation;
      } else {
        throw std::invalid_argument("serve: unknown preconditioner '" +
                                    std::string(value) + "'");
      }
    } else if (key == "gmres_tol") {
      opts.loop.extraction.mqs.fast.gmres.tol = parse_double(key, value);
    } else if (key == "gmres_restart") {
      opts.loop.extraction.mqs.fast.gmres.restart =
          static_cast<std::size_t>(parse_int(key, value));
    } else if (key == "fft_auto_threshold") {
      opts.loop.extraction.mqs.fast.auto_threshold =
          static_cast<std::size_t>(parse_int(key, value));
    } else if (key == "trunc_ratio") {
      opts.params.truncation_ratio = parse_double(key, value);
    } else if (key == "shell_um") {
      opts.params.shell_radius = geom::um(parse_double(key, value));
    } else if (key == "kmatrix_ratio") {
      opts.params.kmatrix_ratio = parse_double(key, value);
    } else if (key == "prima_order") {
      opts.params.prima_order =
          static_cast<std::size_t>(parse_int(key, value));
    } else {
      throw std::invalid_argument("serve: unknown option key '" +
                                  std::string(key) + "'");
    }
  }
}

core::AnalysisOptions options_from_spec(std::string_view spec) {
  core::AnalysisOptions opts;
  apply_option_spec(opts, spec);
  return opts;
}

}  // namespace ind::serve
