// Client side of the serve/ wire protocol: connect, handshake, send
// AnalyzeRequests (pipelined — ids are caller-chosen and echoed back),
// collect responses.
//
// The blocking `analyze()` call is the convenience path (one request, wait
// for its answer). Load generators pipeline instead: `send_request()` N
// times, then `read_reply()` N times — the server answers in its own order,
// matching replies to requests by id.
#pragma once

#include <cstdint>
#include <string>

#include "serve/codec.hpp"
#include "serve/protocol.hpp"

namespace ind::serve {

/// One decoded server reply: a Response on success, ErrorInfo for Error and
/// Busy frames (`busy` tells them apart).
struct Reply {
  std::uint64_t request_id = 0;
  bool ok = false;
  bool busy = false;     ///< the server shed this request (Busy frame)
  Response response;     ///< valid when ok
  ErrorInfo error;       ///< valid when !ok
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and runs the Hello/HelloAck handshake. Throws
  /// std::runtime_error on connect failure, ProtocolError when the server
  /// rejects the handshake (its structured Error is folded into the message).
  void connect_tcp(const std::string& host, int port);
  void connect_uds(const std::string& path);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Pipelined send. Returns false when the server is gone.
  bool send_request(std::uint64_t request_id, const Request& req);

  /// Blocks for the next reply frame. Throws ProtocolError on a torn frame
  /// or unexpected frame type; std::runtime_error on EOF before a reply.
  Reply read_reply();

  /// Convenience: send one request and wait for its reply.
  Reply analyze(std::uint64_t request_id, const Request& req);

  /// Escape hatch for protocol tests: writes a raw frame as-is.
  bool send_raw(const Frame& frame);
  /// Escape hatch for protocol tests: writes arbitrary bytes as-is.
  bool send_bytes(const void* data, std::size_t n);

  /// Server identity string from the HelloAck.
  const std::string& server_id() const { return server_id_; }

 private:
  void handshake();

  int fd_ = -1;
  std::string server_id_;
};

}  // namespace ind::serve
