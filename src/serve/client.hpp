// Client side of the serve/ wire protocol: connect, handshake, send
// AnalyzeRequests (pipelined — ids are caller-chosen and echoed back),
// collect responses.
//
// The blocking `analyze()` call is the convenience path (one request, wait
// for its answer). Load generators pipeline instead: `send_request()` N
// times, then `read_reply()` N times — the server answers in its own order,
// matching replies to requests by id.
#pragma once

#include <cstdint>
#include <string>

#include "serve/codec.hpp"
#include "serve/health.hpp"
#include "serve/protocol.hpp"

namespace ind::serve {

/// One decoded server reply: a Response on success, ErrorInfo for Error and
/// Busy frames (`busy` tells them apart). A dead connection — clean EOF,
/// torn frame, reset, or an armed receive timeout — is a Reply with
/// `error.code == ErrorCode::ConnectionLost`, never an exception: callers
/// distinguish peer death (reconnect and retry) from protocol corruption
/// (ProtocolError still throws for that) without string-matching.
struct Reply {
  std::uint64_t request_id = 0;
  bool ok = false;
  bool busy = false;     ///< the server shed this request (Busy frame)
  Response response;     ///< valid when ok
  ErrorInfo error;       ///< valid when !ok
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and runs the Hello/HelloAck handshake. Throws
  /// std::runtime_error on connect failure, ProtocolError when the server
  /// rejects the handshake (its structured Error is folded into the message).
  void connect_tcp(const std::string& host, int port);
  void connect_uds(const std::string& path);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Pipelined send. Returns false when the server is gone.
  bool send_request(std::uint64_t request_id, const Request& req);

  /// Blocks for the next reply frame. A dead connection (EOF, torn frame,
  /// reset, receive timeout) returns a ConnectionLost Reply with
  /// `request_id == 0` — the caller cannot know which pipelined request it
  /// would have answered. Throws ProtocolError only for genuine protocol
  /// corruption (oversized frame, unexpected frame type, hard I/O error).
  Reply read_reply();

  /// Convenience: send one request and wait for its reply. A send to a dead
  /// peer returns the same ConnectionLost Reply as read_reply().
  Reply analyze(std::uint64_t request_id, const Request& req);

  /// Probe the server's HealthStatus (see serve/health.hpp). Returns a
  /// ConnectionLost-style failure by throwing ProtocolError(ConnectionLost)
  /// when the server dies mid-probe.
  HealthStatus health();

  /// Arms SO_RCVTIMEO on the connection (and on every future connection made
  /// through this Client) so a stalled server/proxy cannot park read_reply()
  /// forever; expiry surfaces as a ConnectionLost Reply. 0 disables.
  void set_recv_timeout_ms(std::uint64_t ms);

  /// Connected socket fd (for poll()-based multiplexing); -1 when closed.
  int fd() const { return fd_; }

  /// Escape hatch for protocol tests: writes a raw frame as-is.
  bool send_raw(const Frame& frame);
  /// Escape hatch for protocol tests: writes arbitrary bytes as-is.
  bool send_bytes(const void* data, std::size_t n);

  /// Server identity string from the HelloAck.
  const std::string& server_id() const { return server_id_; }

 private:
  void handshake();
  void apply_recv_timeout();

  int fd_ = -1;
  std::uint64_t recv_timeout_ms_ = 0;
  std::string server_id_;
};

}  // namespace ind::serve
