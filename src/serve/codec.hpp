// Request/response codec for the analysis server, plus the shared
// option-spec grammar every front end uses to build AnalysisOptions.
//
// A Request is the complete closure of one core::analyze call — the layout,
// the full AnalysisOptions (every field, nested structs included) and the
// per-request RunBudget — encoded with the store/ ByteWriter primitives so
// round trips are bitwise exact. Because the encoding is canonical (fixed
// field order, IEEE-754 bit patterns), the request fingerprint is simply the
// 128-bit store/ digest of the encoded body: two requests coalesce iff their
// bytes match, and nothing thread- or time-dependent can leak into the key.
//
// The Response splits into two blocks on purpose:
//   * the RESULT block — flows, degradations, element counts, delays, skew,
//     solve diagnostics, optional waveforms. A pure function of the request
//     (the kernels are bitwise-deterministic at any IND_THREADS), so
//     identical requests always produce identical result bytes. Dedup'd and
//     cached responses replay this block verbatim.
//   * the STATS block — build/solve wall seconds, queue wait, how the
//     request was served (computed / coalesced / cache). Timing-dependent by
//     nature, excluded from determinism guarantees and from the cache.
//
// The option-spec grammar ("flow=peec_rlc seg_um=100 t_stop=1.5e-9 ...") is
// the one human-facing way to say "these analysis knobs": the load
// generator's workload definitions and the example binaries both parse specs
// through options_from_spec()/apply_option_spec() instead of hand-rolling
// field assignments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.hpp"
#include "govern/budget.hpp"
#include "store/hash.hpp"

namespace ind::store {
class ByteWriter;
class ByteReader;
}  // namespace ind::store

namespace ind::serve {

struct Request {
  geom::Layout layout;
  core::AnalysisOptions options;
  /// Per-request resource caps; 0 fields fall back to (and are clamped by)
  /// the server-side IND_SERVE_* defaults.
  govern::RunBudget budget;
  /// Include the transient time axis + per-sink waveforms in the result
  /// block. Off by default: a load-test response stays a few hundred bytes.
  bool include_waveforms = false;
};

/// What the server sends back for one request (decoded AnalyzeResponse).
struct Response {
  core::AnalysisReport report;  ///< decoded RESULT block

  // STATS block.
  enum class ServedBy : std::uint8_t {
    Computed = 0,   ///< this request triggered the computation
    Coalesced = 1,  ///< attached to an identical in-flight computation
    Cache = 2,      ///< short-circuited from the response cache
  } served_by = ServedBy::Computed;
  double build_seconds = 0.0;
  double solve_seconds = 0.0;
  double queue_seconds = 0.0;  ///< admission -> execution start

  /// The verbatim RESULT block bytes (what the determinism guarantee and the
  /// dedup tests compare).
  std::vector<std::uint8_t> result_bytes;
};

// --- binary serde ----------------------------------------------------------

void put_request(store::ByteWriter& w, const Request& req);
/// Canonical encoding with the budget fields taken from `effective_budget`
/// instead of req.budget. The worker-pool supervisor dispatches flights in
/// this form so a worker's get_request() sees the budget the server already
/// clamped — re-deriving the sandbox inside the worker stays a pure function
/// of the dispatched bytes.
void put_request(store::ByteWriter& w, const Request& req,
                 const govern::RunBudget& effective_budget);
/// Throws store::StoreError on truncated/malformed input and
/// std::invalid_argument on out-of-range enum values.
void get_request(store::ByteReader& r, Request& req);

/// Encodes the RESULT block of a finished analysis (see header comment for
/// what it includes; wall-clock timings never enter it).
std::vector<std::uint8_t> encode_result(const core::AnalysisReport& report,
                                        bool include_waveforms);
void decode_result(const std::vector<std::uint8_t>& bytes,
                   core::AnalysisReport& report);

/// Full AnalyzeResponse payload: request id + stats block + result block.
std::vector<std::uint8_t> encode_response_payload(
    std::uint64_t request_id, Response::ServedBy served_by,
    double build_seconds, double solve_seconds, double queue_seconds,
    const std::vector<std::uint8_t>& result_bytes);
/// Returns the echoed request id; fills `out`.
std::uint64_t decode_response_payload(const std::vector<std::uint8_t>& payload,
                                      Response& out);

/// 128-bit content fingerprint of a request: the digest of its canonical
/// encoding under the "serve_request" kind salt. Identical requests — and
/// only identical requests — share a fingerprint, which is the dedup and
/// response-cache key.
store::Digest request_fingerprint(const Request& req);

/// Fingerprint of the request *as the server will actually run it*: the
/// requested budget is replaced by `effective_budget` (the field-wise clamp
/// against the server's IND_SERVE_* caps) before hashing. The server keys
/// dedup and both response caches on this form, so the RESULT stays a pure
/// function of the key — a restart with different caps cannot replay stale
/// entries, and requests that clamp to the same effective budget coalesce.
store::Digest request_fingerprint(const Request& req,
                                  const govern::RunBudget& effective_budget);

// --- option-spec grammar ---------------------------------------------------

/// Applies "key=value" settings (whitespace- or ';'-separated) onto `opts`.
/// Keys:
///   flow            peec_rc | peec_rlc | peec_rlc_trunc | peec_rlc_blockdiag
///                   | peec_rlc_shell | peec_rlc_halo | peec_rlc_kmatrix
///                   | peec_rlc_prima | peec_rlc_hier | loop_rlc
///   signal_net      int (net id the flow analyses)
///   seg_um          PEEC segmentation (peec.max_segment_length, um)
///   t_stop, dt      transient window / step (seconds)
///   vdd             supply voltage (peec.vdd and loop.vdd)
///   decap_sites     int (peec.decap.sites)
///   loop_seg_um     loop netlist granularity (loop.max_segment_length, um)
///   loop_extract_um loop field-solver granularity
///                   (loop.extraction.max_segment_length, um)
///   method          dense | fft | auto (loop.extraction.mqs.method)
///   fft_pitch_um    voxel pitch of the fft method (0 = auto-select)
///   fft_precond     none | diag | blockdiag | shell | trunc
///   gmres_tol       GMRES relative-residual tolerance
///   gmres_restart   GMRES restart (Krylov space) dimension
///   fft_auto_threshold  filament count where Auto switches to fft
///   trunc_ratio     params.truncation_ratio
///   shell_um        params.shell_radius (um)
///   kmatrix_ratio   params.kmatrix_ratio
///   prima_order     params.prima_order
/// Throws std::invalid_argument naming the offending token on an unknown
/// key, a malformed value or an unknown flow name.
void apply_option_spec(core::AnalysisOptions& opts, std::string_view spec);

/// Fresh defaults + apply_option_spec.
core::AnalysisOptions options_from_spec(std::string_view spec);

/// "peec_rlc" -> Flow::PeecRlcFull etc. (the flow_key scheme the metrics
/// counters already use). Throws std::invalid_argument on unknown names.
core::Flow flow_from_key(std::string_view key);

}  // namespace ind::serve
