#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/analyzer.hpp"
#include "govern/env.hpp"
#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "store/artifact_cache.hpp"
#include "store/serde.hpp"

namespace ind::serve {

namespace {

using Clock = std::chrono::steady_clock;

void count(const char* name, std::int64_t delta = 1) {
  runtime::MetricsRegistry::instance().add_count(name, delta);
}

constexpr const char* kResponseKind = "serve_response";
constexpr const char* kServerId = "ind_served/1";

}  // namespace

// ---------------------------------------------------------------------------
// config
// ---------------------------------------------------------------------------

ServerConfig ServerConfig::from_env() {
  ServerConfig c;
  c.per_client_queue = static_cast<std::size_t>(
      govern::env_u64("IND_SERVE_CLIENT_QUEUE", c.per_client_queue, 1,
                      1u << 20, "serve")
          .value);
  c.max_queue = static_cast<std::size_t>(
      govern::env_u64("IND_SERVE_MAX_QUEUE", c.max_queue, 1, 1u << 24, "serve")
          .value);
  c.max_frame_bytes = static_cast<std::uint32_t>(
      govern::env_u64("IND_SERVE_MAX_FRAME_BYTES", c.max_frame_bytes, 1u << 10,
                      1u << 30, "serve")
          .value);
  c.budget_caps.deadline_ms =
      govern::env_ms("IND_SERVE_DEADLINE_MS", 0, 0, UINT64_MAX, "serve").value;
  c.budget_caps.mem_bytes =
      govern::env_u64("IND_SERVE_MEM_BYTES", 0, 0, UINT64_MAX, "serve").value;
  c.budget_caps.work_units =
      govern::env_u64("IND_SERVE_WORK_BUDGET", 0, 0, UINT64_MAX, "serve")
          .value;
  c.drain_ms =
      govern::env_ms("IND_SERVE_DRAIN_MS", c.drain_ms, 0, 3'600'000, "serve")
          .value;
  c.send_timeout_ms = govern::env_ms("IND_SERVE_SEND_TIMEOUT_MS",
                                     c.send_timeout_ms, 0, 3'600'000, "serve")
                          .value;
  c.result_cache_entries = static_cast<std::size_t>(
      govern::env_u64("IND_SERVE_RESULT_CACHE", c.result_cache_entries, 0,
                      1u << 20, "serve")
          .value);
  c.watchdog_interval_ms =
      govern::env_ms("IND_SERVE_WATCHDOG_MS", c.watchdog_interval_ms, 0,
                     3'600'000, "serve")
          .value;
  c.watchdog_stall_intervals = static_cast<int>(
      govern::env_u64("IND_SERVE_WATCHDOG_INTERVALS",
                      static_cast<std::uint64_t>(c.watchdog_stall_intervals),
                      1, 1000, "serve")
          .value);
  c.watchdog_abort =
      govern::env_u64("IND_SERVE_WATCHDOG_ABORT", c.watchdog_abort ? 1 : 0, 0,
                      1, "serve")
          .value != 0;
  c.workers = static_cast<std::size_t>(
      govern::env_u64("IND_SERVE_WORKERS", 0, 0, 256, "serve").value);
  c.poison_threshold = static_cast<int>(
      govern::env_u64("IND_SERVE_POISON_THRESHOLD",
                      static_cast<std::uint64_t>(c.poison_threshold), 1, 1000,
                      "serve")
          .value);
  c.worker_respawn_ms = govern::env_ms("IND_SERVE_RESPAWN_MS",
                                       c.worker_respawn_ms, 1, 600'000, "serve")
                            .value;
  c.worker_as_slack_bytes =
      govern::env_u64("IND_SERVE_WORKER_AS_SLACK_MB",
                      c.worker_as_slack_bytes >> 20, 1, 1u << 20, "serve")
          .value
      << 20;
  c.worker_cpu_slack_s =
      govern::env_u64("IND_SERVE_WORKER_CPU_SLACK_S", c.worker_cpu_slack_s, 1,
                      3600, "serve")
          .value;
  if (const char* bin = std::getenv("IND_SERVE_WORKER_BIN");
      bin != nullptr && *bin != '\0')
    c.worker_bin = bin;
  if (const char* sig = std::getenv("IND_SERVE_FAULT_SIGNAL");
      sig != nullptr && *sig != '\0') {
    const std::string name(sig);
    if (name == "segv") c.worker_fault_signal = SIGSEGV;
    else if (name == "kill") c.worker_fault_signal = SIGKILL;
    else if (name == "xcpu") c.worker_fault_signal = SIGXCPU;
    else if (name == "abrt") c.worker_fault_signal = SIGABRT;
    // Unknown names keep the SIGSEGV default (the chaos knob is best-effort).
  }
  return c;
}

// ---------------------------------------------------------------------------
// connection / in-flight bookkeeping
// ---------------------------------------------------------------------------

struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::atomic<bool> alive{true};
  std::mutex write_mutex;

  /// The socket closes when the last reference (conns_, the reader thread,
  /// any waiter entry) drops. Disconnect paths only ::shutdown the fd, so
  /// its number is never recycled while a blocked send could still use it.
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Serialised frame write (executor and reader both respond on a
  /// connection). A failed write — including a send that made no progress
  /// for the socket's SO_SNDTIMEO window — marks the peer dead; readers
  /// notice on their next read and run the disconnect path, and later
  /// sends to the dead peer are skipped instead of timing out again.
  bool send(const Frame& frame) {
    std::lock_guard lock(write_mutex);
    if (!alive.load(std::memory_order_relaxed) || fd < 0) return false;
    bool ok = false;
    // Deterministic chaos hook: a fired serve_send behaves exactly like the
    // peer vanishing mid-response. Only response frames are in scope — the
    // handshake must stay deliverable so the call indices are stable.
    const bool response_frame = frame.type == FrameType::AnalyzeResponse ||
                                frame.type == FrameType::Error ||
                                frame.type == FrameType::Busy;
    if (response_frame && robust::fault::fire(robust::fault::Site::ServeSend)) {
      ok = false;
    } else {
      try {
        ok = write_frame(fd, frame);
      } catch (const ProtocolError&) {
        ok = false;
      }
    }
    if (!ok) alive.store(false, std::memory_order_relaxed);
    return ok;
  }
};

struct Server::InFlight {
  Request request;
  store::Digest fp;
  std::string key;  ///< fp.hex(), the dedup/cache map key

  struct Waiter {
    std::shared_ptr<Connection> conn;
    std::uint64_t request_id = 0;
    bool initiator = false;  ///< the request that triggered the computation
    Clock::time_point admitted;
  };
  std::vector<Waiter> waiters;  ///< guarded by Server::state_mutex_
};

// ---------------------------------------------------------------------------
// lifecycle
// ---------------------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      scheduler_(config_.per_client_queue, config_.max_queue) {}

Server::~Server() {
  if (running_.load()) shutdown();
}

void Server::start() {
  // Defence in depth (satellite of the worker-pool work, but it protects
  // every send path): a peer or worker pipe closing mid-write must surface
  // as EPIPE — which write_frame already maps to "dead peer" — never as a
  // process-killing SIGPIPE. The socket sends use MSG_NOSIGNAL, but the
  // worker socketpairs and any future plain write() go through this.
  ::signal(SIGPIPE, SIG_IGN);
  if (config_.uds_path.empty()) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw std::runtime_error(std::string("serve: socket: ") +
                               std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1)
      throw std::runtime_error("serve: bad listen address " + config_.host);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0)
      throw std::runtime_error(std::string("serve: bind: ") +
                               std::strerror(errno));
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  } else {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw std::runtime_error(std::string("serve: socket: ") +
                               std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.uds_path.size() >= sizeof addr.sun_path)
      throw std::runtime_error("serve: socket path too long: " +
                               config_.uds_path);
    std::strncpy(addr.sun_path, config_.uds_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(config_.uds_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0)
      throw std::runtime_error(std::string("serve: bind ") + config_.uds_path +
                               ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0)
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(errno));

  if (config_.workers > 0) {
    WorkerPool::Config wc;
    wc.workers = config_.workers;
    wc.worker_bin = config_.worker_bin;
    wc.poison_threshold = config_.poison_threshold;
    wc.respawn_backoff_ms = config_.worker_respawn_ms;
    wc.max_frame_bytes = config_.max_frame_bytes;
    wc.as_slack_bytes = config_.worker_as_slack_bytes;
    wc.cpu_slack_seconds = config_.worker_cpu_slack_s;
    wc.fault_signal = config_.worker_fault_signal;
    pool_ = std::make_unique<WorkerPool>(std::move(wc));
    pool_->start();  // throws if no worker can start; the server stays down
  }

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  const std::size_t lanes = pool_ ? config_.workers : 1;
  for (std::size_t i = 0; i < lanes; ++i)
    executor_threads_.emplace_back([this] { executor_loop(); });
  if (config_.watchdog_interval_ms > 0)
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or fatal error
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    reap_readers();
    if (config_.send_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(config_.send_timeout_ms / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((config_.send_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard lock(conns_mutex_);
      conn->id = next_conn_id_++;
      conns_.push_back(conn);
      reader_threads_.emplace(conn->id,
                              std::thread([this, conn] { connection_loop(conn); }));
    }
    count("serve.connections");
  }
}

void Server::reap_readers() {
  std::vector<std::thread> done;
  {
    std::lock_guard lock(conns_mutex_);
    for (const std::uint64_t id : finished_readers_) {
      auto it = reader_threads_.find(id);
      if (it == reader_threads_.end()) continue;
      done.push_back(std::move(it->second));
      reader_threads_.erase(it);
    }
    finished_readers_.clear();
  }
  // The threads have already run their final statement (queueing the id is
  // the last thing connection_loop does), so these joins return promptly.
  for (std::thread& t : done) t.join();
  if (!done.empty())
    count("serve.readers_reaped", static_cast<std::int64_t>(done.size()));
}

// ---------------------------------------------------------------------------
// reader side
// ---------------------------------------------------------------------------

void Server::connection_body(const std::shared_ptr<Connection>& conn) {
  // Handshake: the first frame must be a well-formed Hello. Anything else
  // gets a structured Error naming why, then the connection closes —
  // a client built against a different protocol version never reaches the
  // request decoder.
  const auto hello = read_frame(conn->fd, config_.max_frame_bytes);
  if (!hello) return;  // peer died before saying hello
  ErrorCode verdict = ErrorCode::None;
  if (hello->type != FrameType::Hello) {
    verdict = ErrorCode::BadMagic;
  } else {
    verdict = check_hello(hello->payload, nullptr);
  }
  if (verdict != ErrorCode::None) {
    count("serve.handshake_rejects");
    conn->send(make_error(0, verdict, "handshake rejected"));
    return;
  }
  conn->send(make_hello_ack(kServerId));

  while (auto frame = read_frame(conn->fd, config_.max_frame_bytes)) {
    if (frame->type == FrameType::HealthRequest) {
      // Answered inline on the reader thread — probes must work even (and
      // especially) while the executor is wedged.
      count("serve.health_probes");
      conn->send(make_health(snapshot_health()));
      continue;
    }
    if (frame->type != FrameType::AnalyzeRequest) {
      count("serve.protocol_errors");
      conn->send(make_error(0, ErrorCode::MalformedFrame,
                            "unexpected frame type"));
      break;
    }
    handle_request(conn, frame->payload);
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  try {
    connection_body(conn);
  } catch (const ProtocolError& e) {
    count("serve.protocol_errors");
    conn->send(make_error(0, e.code(), e.what()));
  } catch (const std::exception& e) {
    count("serve.protocol_errors");
    conn->send(make_error(0, ErrorCode::Internal, e.what()));
  }
  // Every exit path — pre-handshake EOF, handshake reject, clean EOF,
  // protocol error — funnels through here: a connection that dies during its
  // handshake must still leave conns_ and queue its reader for reaping, or a
  // port scanner could grow the connection table without bound.
  disconnect(conn);
  // Retire this connection: drop it from the live set and queue this
  // thread's handle for the accept loop (or shutdown) to join. Must be the
  // last statement — a thread cannot join itself.
  {
    std::lock_guard lock(conns_mutex_);
    std::erase_if(conns_, [&](const std::shared_ptr<Connection>& c) {
      return c.get() == conn.get();
    });
    finished_readers_.push_back(conn->id);
  }
}

void Server::handle_request(const std::shared_ptr<Connection>& conn,
                            const std::vector<std::uint8_t>& payload) {
  count("serve.requests");
  std::uint64_t request_id = 0;
  auto flight = std::make_shared<InFlight>();
  try {
    store::ByteReader r(payload);
    request_id = r.u64();
    // Deterministic fault site for the malformed-input recovery path: a
    // fired serve_read makes this request behave as if its bytes were
    // corrupt, exactly like store_read does for cache artifacts.
    if (robust::fault::fire(robust::fault::Site::ServeRead))
      throw store::StoreError(store::StoreErrc::Malformed,
                              "serve_read fault injected");
    get_request(r, flight->request);
  } catch (const std::exception& e) {
    count("serve.protocol_errors");
    conn->send(make_error(request_id, ErrorCode::MalformedFrame, e.what()));
    return;
  }

  // Dedup and both response caches key on the request as it will actually
  // run — the requested budget clamped by the server caps — so a restart
  // with different IND_SERVE_* caps can never replay results computed under
  // the old ones.
  flight->fp = request_fingerprint(flight->request,
                                   effective_budget(flight->request.budget));
  flight->key = flight->fp.hex();
  const auto now = Clock::now();

  // Poison quarantine: this fingerprint has already killed its quota of
  // workers — answer instantly instead of queueing another crash-loop lap.
  // (A quarantined body never completed, so it cannot be in either cache.)
  if (pool_ && pool_->poisoned(flight->fp)) {
    count("serve.worker.poison_rejects");
    conn->send(make_error(request_id, ErrorCode::PoisonedRequest,
                          "request fingerprint " + flight->key +
                              " is quarantined after repeated worker kills"));
    return;
  }

  // Decide the fate of the request under the lock; send the reply (which may
  // block on a slow socket) after releasing it.
  std::optional<Frame> reply;
  std::vector<std::uint8_t> cached;
  double build_s = 0.0, solve_s = 0.0;
  const auto cache_reply = [&] {
    count("serve.cache_hits");
    Frame f;
    f.type = FrameType::AnalyzeResponse;
    f.payload = encode_response_payload(request_id, Response::ServedBy::Cache,
                                        build_s, solve_s, 0.0, cached);
    return f;
  };
  bool disk_probed = false;
  for (;;) {
    std::unique_lock lock(state_mutex_);

    // Response-cache short-circuit: an identical request already computed —
    // replay the stored RESULT block verbatim.
    if (cache_probe(flight->fp, &cached, &build_s, &solve_s)) {
      reply = cache_reply();
      break;
    }
    if (auto it = inflight_.find(flight->key); it != inflight_.end()) {
      // In-flight dedup: attach to an identical queued/running computation.
      it->second->waiters.push_back({conn, request_id, false, now});
      count("serve.dedup_hits");
      break;
    }
    if (!disk_probed && store::ArtifactCache::instance().enabled()) {
      // A previous server process may have persisted the response. The disk
      // read must not happen under state_mutex_ (it would stall every
      // reader's admission and the executor's waiter bookkeeping), so drop
      // the lock, probe, and re-decide — an identical request may have been
      // cached or scheduled meanwhile.
      lock.unlock();
      disk_probed = true;
      if (cache_load_disk(flight->fp, &cached, &build_s, &solve_s)) {
        count("serve.disk_cache_hits");
        lock.lock();
        cache_store(flight->fp, cached, build_s, solve_s);
        reply = cache_reply();
        break;
      }
      continue;
    }
    if (degraded_.load(std::memory_order_relaxed)) {
      // Watchdog-tripped degradation: the executor is wedged, so queueing
      // more work only grows an unserviceable backlog. Cache hits and dedup
      // attaches (above) still drain; fresh computations are shed.
      count("serve.watchdog_sheds");
      reply = make_busy(request_id, ErrorCode::QueueFull,
                        "executor wedged (watchdog); retry later");
      break;
    }
    flight->waiters.push_back({conn, request_id, true, now});
    inflight_.emplace(flight->key, flight);
    const Admit admit = scheduler_.push(conn->id, flight);
    if (admit == Admit::Ok) {
      count("serve.admitted");
      runtime::MetricsRegistry::instance().max_count(
          "serve.queue_depth_peak",
          static_cast<std::int64_t>(scheduler_.depth()));
    } else {
      inflight_.erase(flight->key);
      if (admit == Admit::Draining) {
        count("serve.busy_shutdown");
        reply = make_busy(request_id, ErrorCode::ShuttingDown,
                          "server is draining");
      } else {
        count("serve.busy_queue_full");
        reply = make_busy(request_id, ErrorCode::QueueFull,
                          admit == Admit::ClientFull ? "client queue full"
                                                     : "server queue full");
      }
    }
    break;
  }
  if (reply) conn->send(*reply);
}

void Server::disconnect(const std::shared_ptr<Connection>& conn) {
  const bool was_alive = conn->alive.exchange(false);
  {
    std::lock_guard lock(state_mutex_);
    for (auto& [key, flight] : inflight_) {
      auto& ws = flight->waiters;
      std::erase_if(ws, [&](const InFlight::Waiter& w) {
        return w.conn.get() == conn.get();
      });
      // The executor is mid-computation for a flight nobody wants any more:
      // stop it through the cancellation token. Queued orphans are cheaper —
      // the executor skips them when it pops them.
      if (ws.empty() && flight == current_) {
        govern::Governor::instance().cancel(govern::BudgetKind::External);
        count("serve.cancelled_disconnect");
      }
    }
  }
  if (was_alive) count("serve.disconnects");
  // Unblock anything still parked on this peer (a response send mid-write);
  // the fd itself stays open until ~Connection.
  if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
}

// ---------------------------------------------------------------------------
// executor side
// ---------------------------------------------------------------------------

void Server::executor_loop() {
  FlightPtr flight;
  while (scheduler_.pop(flight)) {
    progress_ticks_.fetch_add(1, std::memory_order_relaxed);
    if (config_.before_execute) config_.before_execute();
    {
      std::lock_guard lock(state_mutex_);
      if (flight->waiters.empty()) {
        // Every client that wanted this result disconnected while it was
        // queued; drop it without computing.
        inflight_.erase(flight->key);
        count("serve.abandoned");
        flight.reset();
        continue;
      }
      ++running_flights_;
      // current_ is the disconnect-cancellation target and only meaningful
      // for the single in-process lane (one process Governor). Worker-mode
      // orphans run to completion in their own process and warm the cache.
      if (!pool_) current_ = flight;
    }
    execute(flight);
    progress_ticks_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(state_mutex_);
      if (!pool_) current_.reset();
      --running_flights_;
    }
    flight.reset();
  }
}

void Server::watchdog_loop() {
  Watchdog dog(config_.watchdog_stall_intervals);
  bool was_wedged = false;
  std::unique_lock lock(watchdog_mutex_);
  while (!stopping_.load()) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.watchdog_interval_ms),
        [this] { return stopping_.load(); });
    if (stopping_.load()) break;
    const bool has_work = scheduler_.depth() > 0;
    if (dog.sample(progress_ticks_.load(std::memory_order_relaxed),
                   has_work)) {
      watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
      count("serve.watchdog_trips");
      std::fprintf(stderr,
                   "ind_served: watchdog: executor made no progress for %d x "
                   "%llu ms with work queued; shedding new requests\n",
                   config_.watchdog_stall_intervals,
                   static_cast<unsigned long long>(
                       config_.watchdog_interval_ms));
      if (config_.watchdog_abort) {
        std::fflush(nullptr);
        std::abort();  // fail-stop: let the orchestrator restart us
      }
    }
    if (was_wedged && !dog.wedged()) count("serve.watchdog_recoveries");
    was_wedged = dog.wedged();
    degraded_.store(dog.wedged(), std::memory_order_relaxed);
  }
}

HealthStatus Server::snapshot_health() {
  HealthStatus s;
  s.queue_depth = scheduler_.depth();
  s.draining = stopping_.load();
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  s.executor_ticks = progress_ticks_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(state_mutex_);
    s.inflight = inflight_.size();
    s.cache_entries = response_cache_.size();
  }
  {
    std::lock_guard lock(conns_mutex_);
    s.connections = conns_.size();
  }
  auto& metrics = runtime::MetricsRegistry::instance();
  s.requests = static_cast<std::uint64_t>(
      metrics.counter("serve.requests").value.load());
  s.cache_hits = static_cast<std::uint64_t>(
      metrics.counter("serve.cache_hits").value.load());
  if (pool_) {
    const WorkerPool::PoolHealth ph = pool_->health();
    s.workers = ph.workers;
    s.workers_alive = ph.alive;
    s.workers_respawning = ph.respawning;
    s.worker_crashes_signal = ph.crashes_signal;
    s.worker_crashes_oom = ph.crashes_oom;
    s.worker_crashes_rlimit = ph.crashes_rlimit;
    s.worker_crash_retries = ph.crash_retries;
    s.worker_respawns = ph.respawns;
    s.quarantined = ph.quarantined;
    s.worker_pids = ph.pids;
  }
  return s;
}

govern::RunBudget Server::effective_budget(
    const govern::RunBudget& requested) const {
  const auto clamp = [](std::uint64_t req, std::uint64_t cap) {
    if (cap == 0) return req;
    if (req == 0) return cap;
    return std::min(req, cap);
  };
  govern::RunBudget b;
  b.deadline_ms = clamp(requested.deadline_ms, config_.budget_caps.deadline_ms);
  b.mem_bytes = clamp(requested.mem_bytes, config_.budget_caps.mem_bytes);
  b.work_units = clamp(requested.work_units, config_.budget_caps.work_units);
  return b;
}

void Server::execute(const FlightPtr& flight) {
  const auto started = Clock::now();
  ErrorCode failure = ErrorCode::None;
  std::string failure_detail;
  std::vector<std::uint8_t> result_bytes;
  double build_seconds = 0.0, solve_seconds = 0.0;

  if (pool_) {
    // Worker lane: the flight runs in a sandboxed process; crashes come back
    // as classified outcomes (retried once on a sibling, quarantined past
    // the poison threshold), never as a server death.
    runtime::ScopedTimer timer("serve.execute");
    WorkerPool::Outcome outcome;
    try {
      outcome = pool_->run(flight->fp, flight->request,
                           effective_budget(flight->request.budget));
    } catch (const std::exception& e) {
      // Defensive: nothing in run() should escape, but an exception here
      // would fly out of executor_loop's std::thread and std::terminate the
      // whole server — exactly what worker isolation exists to prevent.
      outcome.ok = false;
      outcome.code = ErrorCode::Internal;
      outcome.detail = std::string("worker pool dispatch failed: ") + e.what();
    }
    if (outcome.ok) {
      result_bytes = std::move(outcome.result_bytes);
      build_seconds = outcome.build_seconds;
      solve_seconds = outcome.solve_seconds;
      count("serve.computed");
      try {
        core::AnalysisReport report;
        decode_result(result_bytes, report);
        if (!report.degradations.empty()) count("serve.degraded_responses");
      } catch (const std::exception&) {
        // Counter parity only; the verbatim result bytes still serve.
      }
    } else {
      failure = outcome.code;
      failure_detail = outcome.detail;
      switch (outcome.code) {
        case ErrorCode::DeadlineExceeded: count("serve.deadline_trips"); break;
        case ErrorCode::BadRequest: count("serve.bad_requests"); break;
        case ErrorCode::ShuttingDown: count("serve.cancelled_runs"); break;
        case ErrorCode::PoisonedRequest:
          count("serve.worker.poisoned_replies");
          break;
        case ErrorCode::WorkerCrashed:
          count("serve.worker.crashed_replies");
          break;
        default: count("serve.internal_errors"); break;
      }
    }
  } else {
    auto& gov = govern::Governor::instance();
    gov.configure(effective_budget(flight->request.budget));

    core::AnalysisReport report;
    try {
      runtime::ScopedTimer timer("serve.execute");
      report = core::analyze(flight->request.layout, flight->request.options);
    } catch (const govern::CancelledError& e) {
      if (e.kind() == govern::BudgetKind::External) {
        // Disconnect- or shutdown-triggered cancellation. With no waiters
        // there is nobody to answer; during a drain the remaining waiters get
        // a structured ShuttingDown.
        failure = ErrorCode::ShuttingDown;
        count("serve.cancelled_runs");
      } else {
        failure = ErrorCode::DeadlineExceeded;
        count("serve.deadline_trips");
      }
      failure_detail = e.what();
    } catch (const std::invalid_argument& e) {
      failure = ErrorCode::BadRequest;
      failure_detail = e.what();
      count("serve.bad_requests");
    } catch (const std::exception& e) {
      failure = ErrorCode::Internal;
      failure_detail = e.what();
      count("serve.internal_errors");
    }

    if (failure == ErrorCode::None) {
      result_bytes = encode_result(report, flight->request.include_waveforms);
      build_seconds = report.build_seconds;
      solve_seconds = report.solve_seconds;
      count("serve.computed");
      if (!report.degradations.empty()) count("serve.degraded_responses");
    }
  }

  std::vector<InFlight::Waiter> waiters;
  {
    std::lock_guard lock(state_mutex_);
    inflight_.erase(flight->key);
    waiters = std::move(flight->waiters);
    flight->waiters.clear();
    if (failure == ErrorCode::None)
      cache_store(flight->fp, result_bytes, build_seconds, solve_seconds);
  }

  for (const InFlight::Waiter& w : waiters) {
    if (failure != ErrorCode::None) {
      w.conn->send(make_error(w.request_id, failure, failure_detail));
      continue;
    }
    const double queue_s =
        std::chrono::duration<double>(started - w.admitted).count();
    Frame f;
    f.type = FrameType::AnalyzeResponse;
    f.payload = encode_response_payload(
        w.request_id,
        w.initiator ? Response::ServedBy::Computed
                    : Response::ServedBy::Coalesced,
        build_seconds, solve_seconds, std::max(queue_s, 0.0), result_bytes);
    if (w.conn->send(f)) count("serve.responses");
  }
}

// ---------------------------------------------------------------------------
// response cache
// ---------------------------------------------------------------------------

bool Server::cache_probe(const store::Digest& fp,
                         std::vector<std::uint8_t>* result,
                         double* build_seconds, double* solve_seconds) {
  const auto it = response_cache_.find(fp.hex());
  if (it == response_cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh MRU
  *result = it->second.result;
  *build_seconds = it->second.build_seconds;
  *solve_seconds = it->second.solve_seconds;
  return true;
}

bool Server::cache_load_disk(const store::Digest& fp,
                             std::vector<std::uint8_t>* result,
                             double* build_seconds, double* solve_seconds) {
  auto& disk = store::ArtifactCache::instance();
  if (!disk.enabled()) return false;
  auto artifact = disk.load(kResponseKind, fp);
  if (!artifact) return false;
  try {
    *result = artifact->section("result");
    store::ByteReader stats(artifact->section("stats"));
    *build_seconds = stats.f64();
    *solve_seconds = stats.f64();
  } catch (const store::StoreError&) {
    return false;
  }
  return true;
}

void Server::cache_store(const store::Digest& fp,
                         const std::vector<std::uint8_t>& result,
                         double build_seconds, double solve_seconds) {
  if (config_.result_cache_entries == 0) return;
  const std::string key = fp.hex();
  if (response_cache_.contains(key)) return;
  lru_.push_front(key);
  CacheEntry entry;
  entry.fp = fp;
  entry.result = result;
  entry.build_seconds = build_seconds;
  entry.solve_seconds = solve_seconds;
  entry.lru = lru_.begin();
  response_cache_.emplace(key, std::move(entry));
  while (response_cache_.size() > config_.result_cache_entries) {
    response_cache_.erase(lru_.back());
    lru_.pop_back();
    count("serve.cache_evictions");
  }
}

void Server::flush_cache_to_store() {
  auto& disk = store::ArtifactCache::instance();
  if (!disk.enabled()) return;
  std::lock_guard lock(state_mutex_);
  for (const auto& [key, entry] : response_cache_) {
    store::Artifact a;
    a.kind = kResponseKind;
    a.fingerprint = entry.fp;
    store::ByteWriter result;
    result.raw(entry.result.data(), entry.result.size());
    a.add("result", std::move(result));
    store::ByteWriter stats;
    stats.f64(entry.build_seconds);
    stats.f64(entry.solve_seconds);
    a.add("stats", std::move(stats));
    disk.save(a);
    count("serve.cache_flushed");
  }
}

// ---------------------------------------------------------------------------
// shutdown
// ---------------------------------------------------------------------------

void Server::shutdown() {
  if (stopping_.exchange(true)) {
    // A second caller waits for the first to finish tearing down.
    while (running_.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return;
  }

  // 1. Stop accepting connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (!config_.uds_path.empty()) ::unlink(config_.uds_path.c_str());

  // Stop the watchdog before draining: the drain is progress by definition,
  // and a trip/abort while we are tearing down would be noise.
  if (watchdog_thread_.joinable()) {
    { std::lock_guard lock(watchdog_mutex_); }
    watchdog_cv_.notify_all();
    watchdog_thread_.join();
  }

  // 2. Stop admission; readers answer new requests with Busy/ShuttingDown.
  scheduler_.shutdown();

  // 3. Drain: let the executor finish queued work, bounded by drain_ms.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.drain_ms);
  for (;;) {
    bool idle;
    {
      std::lock_guard lock(state_mutex_);
      idle = scheduler_.depth() == 0 && running_flights_ == 0;
    }
    if (idle || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 4. Past the deadline: shed whatever is left with a structured answer and
  //    cancel the in-flight analysis through the token. The waiters are
  //    collected under the lock but answered outside it — sends can block
  //    (bounded by SO_SNDTIMEO) and must not hold up state.
  std::vector<InFlight::Waiter> shed;
  {
    std::vector<FlightPtr> leftovers = scheduler_.drain_all();
    std::lock_guard lock(state_mutex_);
    for (const FlightPtr& flight : leftovers) {
      inflight_.erase(flight->key);
      for (InFlight::Waiter& w : flight->waiters)
        shed.push_back(std::move(w));
      flight->waiters.clear();
    }
    if (current_ != nullptr)
      govern::Governor::instance().cancel(govern::BudgetKind::External);
  }
  // Worker mode: stop the pool now so lanes blocked on a worker reply (or
  // waiting for an idle worker) unblock — their flights answer ShuttingDown
  // against the sockets shut down below.
  if (pool_) pool_->stop();
  for (const InFlight::Waiter& w : shed)
    w.conn->send(make_error(w.request_id, ErrorCode::ShuttingDown,
                            "server shut down before this request ran"));
  if (!shed.empty())
    count("serve.shed_on_shutdown", static_cast<std::int64_t>(shed.size()));

  // 5. Mark every connection dead and shut its socket down BEFORE joining
  //    the worker threads: a response send the executor is still blocked in
  //    fails immediately instead of waiting out its timeout, and blocked
  //    reads return. In the graceful path the executor is already idle here
  //    and every response was delivered during the drain.
  {
    std::lock_guard lock(conns_mutex_);
    for (const auto& conn : conns_) {
      conn->alive.store(false, std::memory_order_relaxed);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  // 6. The queue is empty and draining: pop() returns false and every
  //    executor lane exits (after answering the cancelled in-flight request,
  //    if any — those sends fail fast against the sockets shut down above).
  for (std::thread& lane : executor_threads_)
    if (lane.joinable()) lane.join();
  executor_threads_.clear();

  // 7. Join the readers: the ones still in the map unblock on their dead
  //    sockets, the already-finished ones were queued for reaping. Each
  //    connection's fd closes when its last reference drops.
  std::unordered_map<std::uint64_t, std::thread> readers;
  {
    std::lock_guard lock(conns_mutex_);
    readers.swap(reader_threads_);
    finished_readers_.clear();
  }
  for (auto& [id, thread] : readers)
    if (thread.joinable()) thread.join();
  {
    std::lock_guard lock(conns_mutex_);
    conns_.clear();
  }

  // 8. Persist the response cache so a restarted server starts warm.
  flush_cache_to_store();
  running_.store(false);
}

}  // namespace ind::serve
