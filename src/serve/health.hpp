// Server health reporting + executor watchdog.
//
// Health frames: a client sends HealthRequest (empty payload) and receives a
// Health frame carrying a HealthStatus snapshot — queue depth, in-flight
// count, cache activity, and two liveness signals: `executor_ticks`, a
// counter the executor advances every time it makes progress (an unchanged
// value across two probes while `queue_depth > 0` means the executor is
// wedged), and `watchdog_trips`/`degraded`, the server's own verdict.
//
// Watchdog: a pure state machine sampled at a fixed interval by a dedicated
// server thread (IND_SERVE_WATCHDOG_MS; 0 = disabled). It declares the
// executor wedged when the tick counter fails to advance across
// `stall_intervals` consecutive samples *while work is queued* — an idle
// executor never trips. On the trip transition the server starts shedding
// new work with Busy (graceful degradation: attached waiters and cache hits
// still drain) and, when IND_SERVE_WATCHDOG_ABORT=1, fail-stops the process
// so an orchestrator can restart it. The wedged state clears itself as soon
// as a sample observes progress (or an empty queue), so a transient stall —
// one pathological request finally finishing — restores normal admission
// without a restart.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/protocol.hpp"

namespace ind::serve {

/// Snapshot answered to a HealthRequest frame. All counters are
/// process-lifetime monotonic except the gauges (queue_depth, inflight,
/// connections, cache_entries) and the two booleans.
struct HealthStatus {
  std::uint64_t queue_depth = 0;     ///< flights waiting in the scheduler
  std::uint64_t inflight = 0;        ///< dedup table size (queued + running)
  std::uint64_t connections = 0;     ///< live client connections
  std::uint64_t cache_entries = 0;   ///< in-memory response-cache entries
  std::uint64_t requests = 0;        ///< serve.requests counter
  std::uint64_t cache_hits = 0;      ///< serve.cache_hits counter
  std::uint64_t executor_ticks = 0;  ///< executor progress counter (liveness)
  std::uint64_t watchdog_trips = 0;  ///< times the watchdog declared a wedge
  bool degraded = false;             ///< watchdog-tripped; shedding new work
  bool draining = false;             ///< shutdown in progress

  // Worker-pool state (all zero when IND_SERVE_WORKERS=0 keeps analyses
  // in-process). Crash counts follow the robust::CrashKind taxonomy.
  std::uint64_t workers = 0;             ///< configured worker lanes
  std::uint64_t workers_alive = 0;       ///< idle or busy worker processes
  std::uint64_t workers_respawning = 0;  ///< dead slots awaiting backoff
  std::uint64_t worker_crashes_signal = 0;  ///< uncaught-signal deaths
  std::uint64_t worker_crashes_oom = 0;     ///< SIGKILL (OOM-killer) deaths
  std::uint64_t worker_crashes_rlimit = 0;  ///< RLIMIT_CPU / RLIMIT_AS trips
  std::uint64_t worker_crash_retries = 0;   ///< flights retried on a sibling
  std::uint64_t worker_respawns = 0;        ///< successful respawns
  std::uint64_t quarantined = 0;            ///< poisoned fingerprints held
  /// Live worker pids, so chaos tooling (ind_loadgen --kill-worker) can pick
  /// victims without groping around in /proc.
  std::vector<std::uint64_t> worker_pids;
};

Frame make_health_request();
Frame make_health(const HealthStatus& status);

/// Decodes a Health payload; throws store::StoreError on truncation.
HealthStatus decode_health(const std::vector<std::uint8_t>& payload);

/// Wedged-executor detector. Pure state, no clock, no threads: the owner
/// calls sample() once per interval with the executor's progress counter and
/// whether work is queued. Deterministically unit-testable.
class Watchdog {
 public:
  /// `stall_intervals`: consecutive no-progress samples (with work queued)
  /// required to declare a wedge. Clamped to >= 1.
  explicit Watchdog(int stall_intervals)
      : stall_intervals_(stall_intervals < 1 ? 1 : stall_intervals) {}

  /// One periodic observation. Returns true exactly on the transition into
  /// the wedged state (the caller logs/sheds/aborts once per trip).
  bool sample(std::uint64_t progress_ticks, bool has_work) {
    const bool progressed = !have_last_ || progress_ticks != last_ticks_;
    have_last_ = true;
    last_ticks_ = progress_ticks;
    if (progressed || !has_work) {
      stalled_ = 0;
      wedged_ = false;  // a finished pathological request restores admission
      return false;
    }
    ++stalled_;
    if (!wedged_ && stalled_ >= stall_intervals_) {
      wedged_ = true;
      ++trips_;
      return true;
    }
    return false;
  }

  bool wedged() const { return wedged_; }
  std::uint64_t trips() const { return trips_; }

 private:
  int stall_intervals_;
  std::uint64_t last_ticks_ = 0;
  bool have_last_ = false;
  int stalled_ = 0;
  bool wedged_ = false;
  std::uint64_t trips_ = 0;
};

}  // namespace ind::serve
