// Wire protocol for the analysis server: versioned handshake + length-
// prefixed binary frames over a stream socket (TCP or Unix-domain).
//
// Connection lifetime:
//
//   client                              server
//   ------                              ------
//   Hello {magic, version, flags}  -->
//                                  <--  HelloAck {version, server id}
//                                       (or Error {code} + close on any
//                                        magic/version mismatch — a client
//                                        built against a different protocol
//                                        gets a structured rejection, never
//                                        an undefined read)
//   AnalyzeRequest {id, body}      -->
//   AnalyzeRequest {id, body}      -->   (requests pipeline freely; ids are
//                                         client-chosen and echoed back)
//                                  <--  AnalyzeResponse {id, ...}
//                                  <--  Busy {id, code} (shed under load)
//                                  <--  Error {id, code, detail}
//
// Frame layout (all integers little-endian, like the store/ .art format):
//
//   offset  size  field
//   0       4     payload length N (u32) — bytes after the type octet
//   4       1     frame type (FrameType)
//   5       N     payload
//
// Payloads are encoded with the store/ ByteWriter/ByteReader primitives, so
// every truncation/overrun surfaces as a structured decode error instead of
// garbage. The Hello payload begins with an 8-byte magic so a server can
// reject a non-protocol peer on the very first frame. Frames larger than the
// server's IND_SERVE_MAX_FRAME_BYTES cap are rejected with FrameTooLarge
// before any allocation of the declared size happens.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ind::serve {

inline constexpr unsigned char kHelloMagic[8] = {'I', 'N', 'D', 'S',
                                                 'R', 'V', 0x00, 0x01};
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame header size on the wire: u32 length + u8 type.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Default cap on a single frame's payload (request layouts are text-scale,
/// responses carry at most a few waveforms). Override: IND_SERVE_MAX_FRAME_BYTES.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;  // 16 MiB

enum class FrameType : std::uint8_t {
  Hello = 0x01,           ///< client -> server, first frame on a connection
  HelloAck = 0x02,        ///< server -> client, handshake accepted
  AnalyzeRequest = 0x03,  ///< client -> server
  AnalyzeResponse = 0x04, ///< server -> client
  Error = 0x05,           ///< server -> client, structured failure
  Busy = 0x06,            ///< server -> client, load shed / shutting down
  HealthRequest = 0x07,   ///< client -> server, probe liveness/load (no body)
  Health = 0x08,          ///< server -> client, HealthStatus snapshot
};

/// Structured error codes carried by Error / Busy frames.
enum class ErrorCode : std::uint32_t {
  None = 0,
  BadMagic = 1,          ///< first frame was not a Hello with our magic
  VersionMismatch = 2,   ///< client protocol version != kProtocolVersion
  MalformedFrame = 3,    ///< frame payload failed to decode
  FrameTooLarge = 4,     ///< declared length exceeds the server cap
  BadRequest = 5,        ///< request decoded but is semantically invalid
  DeadlineExceeded = 6,  ///< per-request deadline budget tripped
  Internal = 7,          ///< unexpected server-side failure
  QueueFull = 8,         ///< per-client or global admission queue full
  ShuttingDown = 9,      ///< server is draining; request not accepted
  /// Synthesised client-side (never sent on the wire): the connection died —
  /// clean EOF between frames, a torn frame (peer killed mid-send), a reset,
  /// or an armed SO_RCVTIMEO expiring. Always safe to retry on a fresh
  /// connection because the server dedups by request fingerprint.
  ConnectionLost = 10,
  /// The sandboxed worker process running this request died (classified by
  /// robust::CrashKind in the detail text) and the one sibling retry also
  /// failed. The server itself is fine; other tenants were not affected.
  WorkerCrashed = 11,
  /// This request's fingerprint has killed IND_SERVE_POISON_THRESHOLD
  /// workers and is quarantined: the server answers instantly instead of
  /// crash-looping the fleet. Not retryable — the same bytes would be
  /// rejected again.
  PoisonedRequest = 12,
};

const char* to_string(ErrorCode code);

/// Framing-level failure with the structured code the server should answer
/// with before closing the connection.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> payload;
};

/// Blocking frame I/O on a connected stream socket. read_frame returns
/// std::nullopt on clean EOF before a header byte; it throws ProtocolError —
/// FrameTooLarge for a payload above `max_payload` (before any allocation),
/// MalformedFrame for a torn header/payload (peer died mid-frame), Internal
/// for hard I/O errors. write_frame loops until the whole frame is on the
/// wire; returns false when the peer is gone (EPIPE / reset) or, with
/// SO_SNDTIMEO armed on the socket, when a send made no progress for the
/// whole timeout window — callers treat both as a disconnect, not an error.
std::optional<Frame> read_frame(int fd, std::uint32_t max_payload);
bool write_frame(int fd, const Frame& frame);

// --- handshake payloads ----------------------------------------------------

/// Client side: the Hello frame for this build of the protocol.
Frame make_hello();

/// Server side: validates a Hello payload. Returns ErrorCode::None and fills
/// `client_version` on success; BadMagic / VersionMismatch / MalformedFrame
/// otherwise (the caller answers with an Error frame and closes).
ErrorCode check_hello(const std::vector<std::uint8_t>& payload,
                      std::uint32_t* client_version);

Frame make_hello_ack(const std::string& server_id);

// --- error / busy payloads -------------------------------------------------

Frame make_error(std::uint64_t request_id, ErrorCode code,
                 const std::string& detail);
Frame make_busy(std::uint64_t request_id, ErrorCode code,
                const std::string& detail);

struct ErrorInfo {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::None;
  std::string detail;
};

/// Decodes an Error or Busy payload; throws store::StoreError on truncation.
ErrorInfo decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace ind::serve
