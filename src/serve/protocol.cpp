#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

#include "store/format.hpp"

namespace ind::serve {

namespace {

/// Reads exactly n bytes. Returns the number actually read: n on success, 0
/// on clean EOF before the first byte, a short count when the peer vanished
/// mid-buffer. Throws on hard I/O errors.
std::size_t read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got;  // EOF
    if (errno == EINTR) continue;
    // A reset peer is a dead peer, not an internal error: report it exactly
    // like an EOF at this offset so the caller sees a clean/torn close.
    if (errno == ECONNRESET || errno == ETIMEDOUT) return got;
    // SO_RCVTIMEO expiry on a blocking socket (clients arm it to bound
    // slow-loris servers/proxies): structured connection-loss, retryable.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw ProtocolError(ErrorCode::ConnectionLost,
                          "serve: read timed out (SO_RCVTIMEO)");
    throw ProtocolError(ErrorCode::Internal,
                        std::string("serve: read failed: ") +
                            std::strerror(errno));
  }
  return got;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) return false;
    // SO_SNDTIMEO expiry on a blocking socket: the peer stopped reading for
    // the whole timeout window. Treat it like a vanished peer — the server
    // must never let one wedged client block the executor indefinitely.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ETIMEDOUT)
      return false;
    throw ProtocolError(ErrorCode::Internal,
                        std::string("serve: write failed: ") +
                            std::strerror(errno));
  }
  return true;
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::BadMagic: return "bad_magic";
    case ErrorCode::VersionMismatch: return "version_mismatch";
    case ErrorCode::MalformedFrame: return "malformed_frame";
    case ErrorCode::FrameTooLarge: return "frame_too_large";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::QueueFull: return "queue_full";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::ConnectionLost: return "connection_lost";
    case ErrorCode::WorkerCrashed: return "worker_crashed";
    case ErrorCode::PoisonedRequest: return "poisoned_request";
  }
  return "?";
}

std::optional<Frame> read_frame(int fd, std::uint32_t max_payload) {
  std::uint8_t header[kFrameHeaderBytes];
  const std::size_t got = read_exact(fd, header, sizeof header);
  if (got == 0) return std::nullopt;  // clean EOF between frames
  if (got < sizeof header)
    throw ProtocolError(ErrorCode::MalformedFrame,
                        "serve: connection closed inside a frame header");

  std::uint32_t len;
  std::memcpy(&len, header, sizeof len);
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  if (len > max_payload)
    throw ProtocolError(ErrorCode::FrameTooLarge,
                        "serve: frame payload of " + std::to_string(len) +
                            " bytes exceeds the " +
                            std::to_string(max_payload) + "-byte cap");
  frame.payload.resize(len);
  if (len != 0 && read_exact(fd, frame.payload.data(), len) < len)
    throw ProtocolError(ErrorCode::MalformedFrame,
                        "serve: connection closed inside a frame payload");
  return frame;
}

bool write_frame(int fd, const Frame& frame) {
  std::uint8_t header[kFrameHeaderBytes];
  const auto len = static_cast<std::uint32_t>(frame.payload.size());
  std::memcpy(header, &len, sizeof len);
  header[4] = static_cast<std::uint8_t>(frame.type);
  if (!write_exact(fd, header, sizeof header)) return false;
  if (!frame.payload.empty() &&
      !write_exact(fd, frame.payload.data(), frame.payload.size()))
    return false;
  return true;
}

Frame make_hello() {
  Frame f;
  f.type = FrameType::Hello;
  store::ByteWriter w;
  w.raw(kHelloMagic, sizeof kHelloMagic);
  w.u32(kProtocolVersion);
  w.u32(0);  // flags, reserved
  f.payload = w.take();
  return f;
}

ErrorCode check_hello(const std::vector<std::uint8_t>& payload,
                      std::uint32_t* client_version) {
  if (payload.size() < sizeof kHelloMagic + 2 * sizeof(std::uint32_t))
    return ErrorCode::MalformedFrame;
  if (std::memcmp(payload.data(), kHelloMagic, sizeof kHelloMagic) != 0)
    return ErrorCode::BadMagic;
  std::uint32_t version;
  std::memcpy(&version, payload.data() + sizeof kHelloMagic, sizeof version);
  if (client_version != nullptr) *client_version = version;
  if (version != kProtocolVersion) return ErrorCode::VersionMismatch;
  return ErrorCode::None;
}

Frame make_hello_ack(const std::string& server_id) {
  Frame f;
  f.type = FrameType::HelloAck;
  store::ByteWriter w;
  w.u32(kProtocolVersion);
  w.str(server_id);
  f.payload = w.take();
  return f;
}

namespace {
Frame make_status(FrameType type, std::uint64_t request_id, ErrorCode code,
                  const std::string& detail) {
  Frame f;
  f.type = type;
  store::ByteWriter w;
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(code));
  w.str(detail);
  f.payload = w.take();
  return f;
}
}  // namespace

Frame make_error(std::uint64_t request_id, ErrorCode code,
                 const std::string& detail) {
  return make_status(FrameType::Error, request_id, code, detail);
}

Frame make_busy(std::uint64_t request_id, ErrorCode code,
                const std::string& detail) {
  return make_status(FrameType::Busy, request_id, code, detail);
}

ErrorInfo decode_error(const std::vector<std::uint8_t>& payload) {
  store::ByteReader r(payload);
  ErrorInfo info;
  info.request_id = r.u64();
  info.code = static_cast<ErrorCode>(r.u32());
  info.detail = r.str();
  return info;
}

}  // namespace ind::serve
