// Process-isolated worker lanes for the analysis server.
//
// With IND_SERVE_WORKERS=N > 0 the server stops running core::analyze in
// its own address space: a WorkerPool fork/execs N copies of the
// `ind_worker` binary, each connected back over a socketpair speaking the
// existing length-prefixed frame protocol (AnalyzeRequest in, AnalyzeResponse
// or Error out, one flight at a time per worker). Every worker applies
// per-request RLIMIT_AS / RLIMIT_CPU soft limits derived from the flight's
// *effective* RunBudget (govern/rlimit.hpp), so a segfault, runaway
// allocation or wedged loop inside any kernel kills one worker process —
// never the server, never another tenant's flight.
//
// Crash containment contract:
//   * A worker death mid-flight is classified from its waitpid status into
//     the robust::CrashKind taxonomy (classify_worker_exit) and the flight
//     is retried exactly once on a sibling worker. Kernels are bitwise
//     deterministic, so a successful retry returns the identical result
//     bytes the first attempt would have produced.
//   * A request fingerprint that kills `poison_threshold` workers in a row
//     is quarantined: the pool answers ErrorCode::PoisonedRequest instantly
//     instead of crash-looping the fleet. A success resets the fingerprint's
//     kill count (transient deaths — a chaos SIGKILL — don't poison).
//   * Dead slots respawn on a monitor thread with per-slot exponential
//     backoff (reset by a completed flight), so a crash storm cannot turn
//     into a fork bomb.
//
// The fault site robust::fault::Site::WorkerExec fires in the *supervisor*,
// right after a flight is written to a worker: when selected, the supervisor
// kills that worker with `fault_signal` (IND_SERVE_FAULT_SIGNAL). Firing on
// dispatch keeps the per-site call index deterministic — "worker_exec@0"
// kills exactly the first dispatch and the sibling retry observes index 1 —
// which is how the crash-retry tests assert bitwise-identical recovery.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "govern/budget.hpp"
#include "robust/diagnostics.hpp"
#include "serve/codec.hpp"
#include "serve/health.hpp"
#include "serve/protocol.hpp"
#include "store/hash.hpp"

namespace ind::serve {

/// Maps a waitpid() status to the crash taxonomy: SIGXCPU = the RLIMIT_CPU
/// sandbox tripping, SIGKILL = the OOM killer's signature, any other fatal
/// signal = Signal; a self-exit with govern::kWorkerOomExitCode = bad_alloc
/// under RLIMIT_AS; any other exit (including a clean 0 while a flight was
/// outstanding) = ExitError.
robust::CrashKind classify_worker_exit(int wstatus);

class WorkerPool {
 public:
  struct Config {
    std::size_t workers = 0;
    /// Path to the ind_worker binary; empty = "<this executable's dir>/ind_worker".
    std::string worker_bin;
    /// Worker kills by one fingerprint before it is quarantined (>= 1).
    int poison_threshold = 2;
    /// First respawn delay after a death; doubles per consecutive death of
    /// the same slot up to the cap, resets on a completed flight.
    std::uint64_t respawn_backoff_ms = 50;
    std::uint64_t respawn_backoff_cap_ms = 5000;
    std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Rlimit slacks forwarded to workers via environment (see
    /// govern::worker_rlimits).
    std::uint64_t as_slack_bytes = 512ull << 20;
    std::uint64_t cpu_slack_seconds = 5;
    /// Signal the WorkerExec fault site uses to kill a dispatched worker
    /// (SIGSEGV by default; SIGKILL mimics the OOM killer).
    int fault_signal = 11;
  };

  /// Result of running one flight through the pool.
  struct Outcome {
    bool ok = false;
    ErrorCode code = ErrorCode::None;  ///< set when !ok
    std::string detail;
    /// Worst death observed while serving this flight (None = no crash,
    /// CleanError = the worker answered a structured Error frame).
    robust::CrashKind crash = robust::CrashKind::None;
    int attempts = 0;  ///< dispatches that reached a worker
    double build_seconds = 0.0;
    double solve_seconds = 0.0;
    std::vector<std::uint8_t> result_bytes;
  };

  explicit WorkerPool(Config config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the worker fleet and the respawn monitor. Throws
  /// std::runtime_error when no worker could be started at all.
  void start();

  /// Stops the monitor, closes every worker pipe (workers exit on EOF) and
  /// reaps them, escalating to SIGKILL after a short grace. Idempotent.
  void stop();

  /// Runs one flight on an idle worker (blocking until one is free),
  /// handling crash classification, the single sibling retry and poison
  /// quarantine. `fp` is the flight's effective-budget fingerprint;
  /// `effective` replaces req.budget in the dispatched bytes.
  Outcome run(const store::Digest& fp, const Request& req,
              const govern::RunBudget& effective);

  /// True when `fp` is quarantined — the server's admission path answers
  /// PoisonedRequest without queueing.
  bool poisoned(const store::Digest& fp) const;

  /// Snapshot for health replies / serve.worker.* counters.
  struct PoolHealth {
    std::uint64_t workers = 0;
    std::uint64_t alive = 0;
    std::uint64_t respawning = 0;
    std::uint64_t crashes_signal = 0;
    std::uint64_t crashes_oom = 0;
    std::uint64_t crashes_rlimit = 0;
    std::uint64_t crash_retries = 0;
    std::uint64_t respawns = 0;
    std::uint64_t quarantined = 0;
    std::vector<std::uint64_t> pids;
  };
  PoolHealth health() const;

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;  ///< supervisor end of the socketpair
    enum class State { Stopped, Idle, Busy, Dead } state = State::Stopped;
    std::uint64_t backoff_ms = 0;
    std::chrono::steady_clock::time_point respawn_at{};
  };

  bool spawn_locked(Worker& w);
  void mark_dead_locked(Worker& w, int wstatus);
  void record_crash_locked(robust::CrashKind kind);
  int acquire_idle_slot();
  void monitor_loop();

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;     ///< a slot became Idle / stopping
  std::condition_variable monitor_cv_;  ///< wake the monitor early
  std::vector<Worker> slots_;
  std::thread monitor_;
  bool running_ = false;
  bool stopping_ = false;
  std::uint64_t next_job_id_ = 1;

  /// Consecutive worker kills per fingerprint hex; erased on success.
  std::unordered_map<std::string, int> kill_counts_;
  std::unordered_set<std::string> quarantine_;

  // Pool-lifetime tallies (mirrored into serve.worker.* counters as they
  // happen; kept here so health snapshots don't need the registry).
  std::uint64_t crashes_signal_ = 0;
  std::uint64_t crashes_oom_ = 0;
  std::uint64_t crashes_rlimit_ = 0;
  std::uint64_t crash_retries_ = 0;
  std::uint64_t respawns_ = 0;
};

}  // namespace ind::serve
