#include "serve/health.hpp"

#include "store/format.hpp"

namespace ind::serve {

Frame make_health_request() {
  Frame f;
  f.type = FrameType::HealthRequest;
  return f;
}

Frame make_health(const HealthStatus& status) {
  Frame f;
  f.type = FrameType::Health;
  store::ByteWriter w;
  w.u64(status.queue_depth);
  w.u64(status.inflight);
  w.u64(status.connections);
  w.u64(status.cache_entries);
  w.u64(status.requests);
  w.u64(status.cache_hits);
  w.u64(status.executor_ticks);
  w.u64(status.watchdog_trips);
  w.u8(status.degraded ? 1 : 0);
  w.u8(status.draining ? 1 : 0);
  f.payload = w.take();
  return f;
}

HealthStatus decode_health(const std::vector<std::uint8_t>& payload) {
  store::ByteReader r(payload);
  HealthStatus s;
  s.queue_depth = r.u64();
  s.inflight = r.u64();
  s.connections = r.u64();
  s.cache_entries = r.u64();
  s.requests = r.u64();
  s.cache_hits = r.u64();
  s.executor_ticks = r.u64();
  s.watchdog_trips = r.u64();
  s.degraded = r.u8() != 0;
  s.draining = r.u8() != 0;
  return s;
}

}  // namespace ind::serve
