#include "serve/health.hpp"

#include "store/format.hpp"

namespace ind::serve {

Frame make_health_request() {
  Frame f;
  f.type = FrameType::HealthRequest;
  return f;
}

Frame make_health(const HealthStatus& status) {
  Frame f;
  f.type = FrameType::Health;
  store::ByteWriter w;
  w.u64(status.queue_depth);
  w.u64(status.inflight);
  w.u64(status.connections);
  w.u64(status.cache_entries);
  w.u64(status.requests);
  w.u64(status.cache_hits);
  w.u64(status.executor_ticks);
  w.u64(status.watchdog_trips);
  w.u8(status.degraded ? 1 : 0);
  w.u8(status.draining ? 1 : 0);
  w.u64(status.workers);
  w.u64(status.workers_alive);
  w.u64(status.workers_respawning);
  w.u64(status.worker_crashes_signal);
  w.u64(status.worker_crashes_oom);
  w.u64(status.worker_crashes_rlimit);
  w.u64(status.worker_crash_retries);
  w.u64(status.worker_respawns);
  w.u64(status.quarantined);
  w.u64(status.worker_pids.size());
  for (std::uint64_t pid : status.worker_pids) w.u64(pid);
  f.payload = w.take();
  return f;
}

HealthStatus decode_health(const std::vector<std::uint8_t>& payload) {
  store::ByteReader r(payload);
  HealthStatus s;
  s.queue_depth = r.u64();
  s.inflight = r.u64();
  s.connections = r.u64();
  s.cache_entries = r.u64();
  s.requests = r.u64();
  s.cache_hits = r.u64();
  s.executor_ticks = r.u64();
  s.watchdog_trips = r.u64();
  s.degraded = r.u8() != 0;
  s.draining = r.u8() != 0;
  s.workers = r.u64();
  s.workers_alive = r.u64();
  s.workers_respawning = r.u64();
  s.worker_crashes_signal = r.u64();
  s.worker_crashes_oom = r.u64();
  s.worker_crashes_rlimit = r.u64();
  s.worker_crash_retries = r.u64();
  s.worker_respawns = r.u64();
  s.quarantined = r.u64();
  const std::uint64_t npids = r.u64();
  s.worker_pids.reserve(npids);
  for (std::uint64_t i = 0; i < npids; ++i) s.worker_pids.push_back(r.u64());
  return s;
}

}  // namespace ind::serve
