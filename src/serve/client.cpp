#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "store/format.hpp"

namespace ind::serve {

void Client::connect_tcp(const std::string& host, int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("serve client: socket: ") +
                             std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("serve client: bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    close();
    throw std::runtime_error(std::string("serve client: connect ") + host +
                             ":" + std::to_string(port) + ": " +
                             std::strerror(err));
  }
  apply_recv_timeout();
  handshake();
}

void Client::connect_uds(const std::string& path) {
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("serve client: socket: ") +
                             std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    close();
    throw std::runtime_error("serve client: socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    close();
    throw std::runtime_error(std::string("serve client: connect ") + path +
                             ": " + std::strerror(err));
  }
  apply_recv_timeout();
  handshake();
}

void Client::set_recv_timeout_ms(std::uint64_t ms) {
  recv_timeout_ms_ = ms;
  apply_recv_timeout();
}

void Client::apply_recv_timeout() {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(recv_timeout_ms_ / 1000);
  tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms_ % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  server_id_.clear();
}

void Client::handshake() {
  if (!write_frame(fd_, make_hello())) {
    close();
    throw std::runtime_error("serve client: server closed during handshake");
  }
  const auto ack = read_frame(fd_, kDefaultMaxFrameBytes);
  if (!ack) {
    close();
    throw std::runtime_error("serve client: server closed during handshake");
  }
  if (ack->type == FrameType::Error) {
    const ErrorInfo info = decode_error(ack->payload);
    close();
    throw ProtocolError(info.code, "serve client: handshake rejected [" +
                                       std::string(to_string(info.code)) +
                                       "]: " + info.detail);
  }
  if (ack->type != FrameType::HelloAck) {
    close();
    throw ProtocolError(ErrorCode::MalformedFrame,
                        "serve client: unexpected handshake reply");
  }
  store::ByteReader r(ack->payload);
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion) {
    close();
    throw ProtocolError(ErrorCode::VersionMismatch,
                        "serve client: server protocol version " +
                            std::to_string(version));
  }
  server_id_ = r.str();
}

bool Client::send_request(std::uint64_t request_id, const Request& req) {
  Frame f;
  f.type = FrameType::AnalyzeRequest;
  store::ByteWriter w;
  w.u64(request_id);
  put_request(w, req);
  f.payload = w.take();
  return write_frame(fd_, f);
}

namespace {

Reply connection_lost(const std::string& detail) {
  Reply reply;
  reply.ok = false;
  reply.error.code = ErrorCode::ConnectionLost;
  reply.error.detail = detail;
  return reply;
}

}  // namespace

Reply Client::read_reply() {
  std::optional<Frame> frame;
  try {
    frame = read_frame(fd_, kDefaultMaxFrameBytes);
  } catch (const ProtocolError& e) {
    // A torn frame here means the server died mid-send (or a proxy truncated
    // the stream); a ConnectionLost code is an armed SO_RCVTIMEO expiring.
    // Both are peer death, not corruption of a healthy stream — surface them
    // structurally so callers can reconnect and retry.
    if (e.code() == ErrorCode::MalformedFrame ||
        e.code() == ErrorCode::ConnectionLost)
      return connection_lost(e.what());
    throw;
  }
  if (!frame)
    return connection_lost("serve client: connection closed by server");
  Reply reply;
  switch (frame->type) {
    case FrameType::AnalyzeResponse:
      reply.ok = true;
      reply.request_id = decode_response_payload(frame->payload,
                                                 reply.response);
      return reply;
    case FrameType::Busy:
      reply.busy = true;
      [[fallthrough]];
    case FrameType::Error:
      reply.error = decode_error(frame->payload);
      reply.request_id = reply.error.request_id;
      return reply;
    default:
      throw ProtocolError(ErrorCode::MalformedFrame,
                          "serve client: unexpected frame type " +
                              std::to_string(static_cast<int>(frame->type)));
  }
}

Reply Client::analyze(std::uint64_t request_id, const Request& req) {
  if (!send_request(request_id, req)) {
    Reply reply = connection_lost("serve client: send failed, peer gone");
    reply.request_id = request_id;
    reply.error.request_id = request_id;
    return reply;
  }
  return read_reply();
}

HealthStatus Client::health() {
  if (!send_raw(make_health_request()))
    throw ProtocolError(ErrorCode::ConnectionLost,
                        "serve client: health probe send failed");
  const auto frame = read_frame(fd_, kDefaultMaxFrameBytes);
  if (!frame)
    throw ProtocolError(ErrorCode::ConnectionLost,
                        "serve client: connection closed during health probe");
  if (frame->type != FrameType::Health)
    throw ProtocolError(ErrorCode::MalformedFrame,
                        "serve client: unexpected health reply type " +
                            std::to_string(static_cast<int>(frame->type)));
  return decode_health(frame->payload);
}

bool Client::send_raw(const Frame& frame) { return write_frame(fd_, frame); }

bool Client::send_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace ind::serve
