#include "serve/resilient_client.hpp"

#include <algorithm>
#include <cerrno>
#include <thread>

#include <poll.h>

#include "runtime/metrics.hpp"

namespace ind::serve {

namespace {

using Ms = std::chrono::milliseconds;

/// splitmix64: tiny, stateless, excellent diffusion — the standard choice
/// for turning a structured seed into uniform bits.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Reply connection_lost_reply(std::uint64_t request_id,
                            const std::string& detail) {
  Reply r;
  r.ok = false;
  r.request_id = request_id;
  r.error.request_id = request_id;
  r.error.code = ErrorCode::ConnectionLost;
  r.error.detail = detail;
  return r;
}

/// True when the fd has a readable event within `timeout_ms`. EINTR retries
/// with the remaining budget folded in (coarsely: full timeout again is fine
/// for our use — callers bound the whole wait separately).
bool poll_readable(int fd, std::uint64_t timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&p, 1,
                          static_cast<int>(std::min<std::uint64_t>(
                              timeout_ms, 3'600'000)));
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0;
  }
}

/// ProtocolErrors that mean "the peer/stream died" rather than "the peer
/// speaks a different protocol". The former are retryable on a fresh
/// connection; the latter can only terminally fail.
bool connection_level(const ProtocolError& e) {
  switch (e.code()) {
    case ErrorCode::ConnectionLost:
    case ErrorCode::MalformedFrame:  // torn mid-frame: peer died sending
    case ErrorCode::Internal:        // hard I/O error on the socket
      return true;
    default:
      return false;
  }
}

}  // namespace

std::uint64_t ResilientClient::backoff_ms(const store::Digest& fingerprint,
                                          int attempt,
                                          const RetryPolicy& policy) {
  if (attempt < 1) attempt = 1;
  std::uint64_t raw = policy.base_backoff_ms;
  // base << (attempt-1), saturating at the cap (shift without overflow).
  for (int k = 1; k < attempt && raw < policy.max_backoff_ms; ++k) raw <<= 1;
  raw = std::min(raw, policy.max_backoff_ms);
  if (raw == 0) return 0;
  // Deterministic jitter in [raw/2, raw]: seeded purely by the request
  // fingerprint and the attempt number, never a clock or global RNG.
  const std::uint64_t seed =
      fingerprint.hi ^ (fingerprint.lo * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(attempt) * 0xD1B54A32D192ED03ull);
  const std::uint64_t span = raw / 2 + 1;
  return raw / 2 + splitmix64(seed) % span;
}

bool ResilientClient::retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::ConnectionLost:
    case ErrorCode::QueueFull:
    case ErrorCode::ShuttingDown:
      return true;
    default:
      return false;
  }
}

ResilientClient::ResilientClient(Endpoint endpoint, RetryPolicy policy)
    : endpoint_(std::move(endpoint)),
      policy_(policy),
      breaker_(policy.breaker_threshold, policy.breaker_open_ms) {}

void ResilientClient::connect(Client& client) {
  if (!endpoint_.uds_path.empty())
    client.connect_uds(endpoint_.uds_path);
  else
    client.connect_tcp(endpoint_.host, endpoint_.tcp_port);
  client.set_recv_timeout_ms(policy_.recv_timeout_ms);
}

HealthStatus ResilientClient::health() {
  if (!client_.connected()) {
    try {
      connect(client_);
    } catch (const ProtocolError&) {
      throw;
    } catch (const std::exception& e) {
      throw ProtocolError(ErrorCode::ConnectionLost, e.what());
    }
  }
  return client_.health();
}

CallOutcome ResilientClient::analyze(std::uint64_t request_id,
                                     const Request& req) {
  CallOutcome out;
  const auto started = Clock::now();
  const store::Digest fp = request_fingerprint(req);
  const TimePoint deadline = policy_.deadline_ms == 0
                                 ? TimePoint::max()
                                 : started + Ms(policy_.deadline_ms);
  ErrorCode last_code = ErrorCode::ConnectionLost;
  std::string last_detail = "no attempt made";
  const auto finish = [&](Reply reply) {
    out.reply = std::move(reply);
    out.ok = out.reply.ok;
    out.elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - started)
            .count();
    return out;
  };

  const int max_attempts = std::max(policy_.max_attempts, 1);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      const Ms wait(backoff_ms(fp, attempt - 1, policy_));
      if (Clock::now() + wait >= deadline) break;  // no budget for a retry
      std::this_thread::sleep_for(wait);
      ++total_retries_;
      runtime::MetricsRegistry::instance().add_count("loadgen.retries", 1);
    }

    // Circuit breaker: while open, wait the window out (bounded by the
    // deadline) instead of burning attempts against a dead endpoint.
    TimePoint now = Clock::now();
    if (!breaker_.allow(now)) {
      const auto remaining = breaker_.open_remaining(now);
      if (now + remaining >= deadline) break;
      std::this_thread::sleep_for(remaining + Ms(1));
      if (!breaker_.allow(Clock::now())) {
        last_code = ErrorCode::ConnectionLost;
        last_detail = "circuit breaker open";
        continue;
      }
    }

    if (!client_.connected()) {
      try {
        connect(client_);
        if (connected_once_) {
          ++out.reconnects;
          ++total_reconnects_;
          runtime::MetricsRegistry::instance().add_count("loadgen.reconnects",
                                                         1);
        }
        connected_once_ = true;
      } catch (const ProtocolError& e) {
        if (!connection_level(e)) throw;  // wrong protocol: never retryable
        breaker_.on_failure(Clock::now());
        last_code = ErrorCode::ConnectionLost;
        last_detail = e.what();
        continue;
      } catch (const std::exception& e) {
        breaker_.on_failure(Clock::now());
        last_code = ErrorCode::ConnectionLost;
        last_detail = e.what();
        continue;
      }
    }

    ++out.attempts;
    bool sent = false;
    try {
      sent = client_.send_request(request_id, req);
    } catch (const ProtocolError& e) {
      if (!connection_level(e)) throw;
      sent = false;
    }
    if (!sent) {
      client_.close();
      breaker_.on_failure(Clock::now());
      last_code = ErrorCode::ConnectionLost;
      last_detail = "send failed, peer gone";
      continue;
    }

    Reply reply;
    try {
      reply = await_reply(request_id, req, deadline, &out);
    } catch (const ProtocolError& e) {
      if (!connection_level(e)) throw;
      reply = connection_lost_reply(request_id, e.what());
    }

    if (reply.ok) {
      breaker_.on_success();
      return finish(std::move(reply));
    }
    if (reply.error.code == ErrorCode::ConnectionLost) {
      client_.close();
      breaker_.on_failure(Clock::now());
      last_code = ErrorCode::ConnectionLost;
      last_detail = reply.error.detail;
      continue;
    }
    // The server answered: it is alive regardless of what it said.
    breaker_.on_success();
    if (!retryable(reply.error.code)) return finish(std::move(reply));
    last_code = reply.error.code;
    last_detail = reply.error.detail;
  }

  // Retries exhausted or deadline spent: terminal structured error carrying
  // the last failure observed.
  Reply reply;
  reply.ok = false;
  reply.request_id = request_id;
  reply.busy = last_code == ErrorCode::QueueFull ||
               last_code == ErrorCode::ShuttingDown;
  reply.error.request_id = request_id;
  reply.error.code = last_code;
  reply.error.detail = last_detail + " (retries exhausted after " +
                       std::to_string(out.attempts) + " attempts)";
  return finish(std::move(reply));
}

Reply ResilientClient::await_reply(std::uint64_t request_id,
                                   const Request& req, TimePoint deadline,
                                   CallOutcome* out) {
  if (policy_.hedge_after_ms == 0)
    return client_.read_reply();  // bounded by SO_RCVTIMEO
  if (poll_readable(client_.fd(), policy_.hedge_after_ms))
    return client_.read_reply();

  // The primary is slow past the hedge delay: race a duplicate on a second
  // connection. Safe — the server dedups by fingerprint, so at most one
  // computation runs and both replies carry the identical RESULT block.
  Client hedge;
  try {
    connect(hedge);
    if (!hedge.send_request(request_id, req)) hedge.close();
  } catch (const std::exception&) {
    hedge.close();
  }
  if (!hedge.connected()) return client_.read_reply();
  ++out->hedges;
  ++total_hedges_;
  runtime::MetricsRegistry::instance().add_count("loadgen.hedges", 1);

  bool primary_up = true;
  bool hedge_up = true;
  const std::uint64_t slice_ms =
      policy_.recv_timeout_ms == 0 ? 10'000 : policy_.recv_timeout_ms;
  const TimePoint wait_until =
      std::min(deadline, Clock::now() + Ms(slice_ms));
  while (primary_up || hedge_up) {
    const auto now = Clock::now();
    if (now >= wait_until)
      return connection_lost_reply(request_id, "hedged wait timed out");
    pollfd fds[2];
    nfds_t n = 0;
    int primary_slot = -1, hedge_slot = -1;
    if (primary_up) {
      primary_slot = static_cast<int>(n);
      fds[n++] = {client_.fd(), POLLIN, 0};
    }
    if (hedge_up) {
      hedge_slot = static_cast<int>(n);
      fds[n++] = {hedge.fd(), POLLIN, 0};
    }
    const auto budget = std::chrono::duration_cast<Ms>(wait_until - now);
    const int rc =
        ::poll(fds, n, static_cast<int>(std::max<std::int64_t>(
                           1, budget.count())));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return connection_lost_reply(request_id, "poll failed during hedge");
    }
    if (rc == 0) continue;  // loop re-checks wait_until
    if (primary_slot >= 0 && (fds[primary_slot].revents & (POLLIN | POLLERR |
                                                           POLLHUP)) != 0) {
      Reply r = client_.read_reply();
      if (r.error.code == ErrorCode::ConnectionLost && !r.ok) {
        primary_up = false;
        client_.close();
        if (!hedge_up) return r;
        continue;
      }
      hedge.close();  // loser: server sees a plain disconnect
      return r;
    }
    if (hedge_slot >= 0 &&
        (fds[hedge_slot].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      Reply r = hedge.read_reply();
      if (r.error.code == ErrorCode::ConnectionLost && !r.ok) {
        hedge_up = false;
        hedge.close();
        if (!primary_up) return r;
        continue;
      }
      client_.close();  // hedge won; the primary's eventual reply is stale
      return r;
    }
  }
  return connection_lost_reply(request_id, "both connections died");
}

}  // namespace ind::serve
