// Fault-tolerant wrapper around serve::Client: reconnect-on-EOF, deadline-
// aware retries with capped exponential backoff and *deterministic* jitter,
// a retryability classification over the ErrorCode taxonomy, optional hedged
// requests, and a per-endpoint circuit breaker.
//
// Determinism: the jitter for attempt k of a request is derived purely from
// the request's 128-bit fingerprint and k (splitmix64), so a retry schedule
// is bitwise-reproducible across runs and processes — chaos failures replay
// exactly, and two clients retrying the same request spread out differently
// from two retries of one client. No global RNG, no wall-clock seeds.
//
// Retryability over ErrorCode:
//   retryable:  ConnectionLost (EOF/torn frame/reset/recv timeout),
//               QueueFull (load shed), ShuttingDown (rolling restart)
//   terminal:   BadRequest, DeadlineExceeded, BadMagic, VersionMismatch,
//               MalformedFrame, FrameTooLarge, Internal
// Retrying is always safe — the server dedups by request fingerprint and
// every kernel is bitwise-deterministic, so a duplicate delivery can only
// produce the identical RESULT block (from cache/coalescing), never a
// different answer.
//
// Hedging: when `hedge_after_ms > 0` and the primary connection has not
// answered within that window (callers derive it from an observed p99), a
// second connection sends the same request and the first complete reply
// wins. Safe under the same fingerprint-dedup argument; the loser is closed,
// which the server handles as a normal disconnect (waiter removed, at most
// one computation ran).
//
// Circuit breaker: `breaker_threshold` consecutive *connection-level*
// failures (connect refused, ConnectionLost) open the circuit for
// `breaker_open_ms`; while open, attempts fail fast without touching the
// socket. After the window one half-open probe is allowed — success closes
// the circuit, failure re-opens it. Busy replies do NOT trip the breaker: a
// server that answers Busy is alive and shedding, exactly the peer you keep
// backing off against rather than abandoning. The breaker consumes explicit
// time points so its state machine is unit-testable without sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "serve/client.hpp"
#include "serve/codec.hpp"
#include "store/hash.hpp"

namespace ind::serve {

struct Endpoint {
  std::string host = "127.0.0.1";
  int tcp_port = 0;
  std::string uds_path;  ///< when non-empty, UDS wins over TCP
};

struct RetryPolicy {
  int max_attempts = 4;                ///< total tries, first included
  std::uint64_t base_backoff_ms = 10;  ///< attempt k waits ~base * 2^(k-1)
  std::uint64_t max_backoff_ms = 2000; ///< cap on a single backoff
  std::uint64_t deadline_ms = 30'000;  ///< whole-call budget; 0 = unbounded
  std::uint64_t recv_timeout_ms = 10'000;  ///< SO_RCVTIMEO per read; 0 = off
  std::uint64_t hedge_after_ms = 0;    ///< 0 disables hedged requests
  int breaker_threshold = 5;           ///< consecutive conn failures to open
  std::uint64_t breaker_open_ms = 1000;  ///< open window before half-open
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  enum class State { Closed, Open, HalfOpen };

  CircuitBreaker(int threshold, std::uint64_t open_ms)
      : threshold_(threshold < 1 ? 1 : threshold), open_ms_(open_ms) {}

  /// True when an attempt may proceed. In the open state this starts
  /// returning true again once `open_ms` has elapsed (the half-open probe);
  /// only one probe is handed out per window — further calls before the
  /// probe's verdict report false.
  bool allow(TimePoint now) {
    switch (state_) {
      case State::Closed:
        return true;
      case State::Open:
        if (now - opened_at_ >= std::chrono::milliseconds(open_ms_)) {
          state_ = State::HalfOpen;
          return true;  // the probe
        }
        return false;
      case State::HalfOpen:
        return false;  // probe outstanding
    }
    return true;
  }

  void on_success() {
    state_ = State::Closed;
    failures_ = 0;
  }

  void on_failure(TimePoint now) {
    if (state_ == State::HalfOpen) {
      state_ = State::Open;  // probe failed: re-open a full window
      opened_at_ = now;
      return;
    }
    if (++failures_ >= threshold_ && state_ == State::Closed) {
      state_ = State::Open;
      opened_at_ = now;
    }
  }

  State state() const { return state_; }

  /// Time left in the open window; zero when not open.
  std::chrono::milliseconds open_remaining(TimePoint now) const {
    if (state_ != State::Open) return std::chrono::milliseconds(0);
    const auto until = opened_at_ + std::chrono::milliseconds(open_ms_);
    if (now >= until) return std::chrono::milliseconds(0);
    return std::chrono::duration_cast<std::chrono::milliseconds>(until - now);
  }

 private:
  int threshold_;
  std::uint64_t open_ms_;
  int failures_ = 0;
  State state_ = State::Closed;
  TimePoint opened_at_{};
};

/// Terminal verdict of one resilient call.
struct CallOutcome {
  Reply reply;          ///< the winning reply (ok, or the terminal error)
  bool ok = false;      ///< reply.ok
  int attempts = 0;     ///< sends that reached the wire (first included)
  int reconnects = 0;   ///< fresh connections established after the first
  int hedges = 0;       ///< hedged duplicates sent
  double elapsed_ms = 0.0;
};

class ResilientClient {
 public:
  ResilientClient(Endpoint endpoint, RetryPolicy policy);

  /// Deterministic backoff before attempt `attempt` (1-based count of
  /// *completed* attempts; the wait before the 2nd try passes attempt=1).
  /// Jitter is drawn from splitmix64(fingerprint, attempt) into
  /// [raw/2, raw] where raw = min(max_backoff, base << (attempt-1)).
  static std::uint64_t backoff_ms(const store::Digest& fingerprint,
                                  int attempt, const RetryPolicy& policy);

  /// Classification used by the retry loop (see header comment).
  static bool retryable(ErrorCode code);

  /// Sends `req` until it resolves: an ok Response, a terminal structured
  /// error, retries exhausted, or the deadline spent. Never throws for
  /// connection-level failures; ProtocolError still propagates for genuine
  /// protocol corruption (e.g. a version-mismatched server).
  CallOutcome analyze(std::uint64_t request_id, const Request& req);

  /// Health probe over the wrapped connection (connects if needed). Throws
  /// ProtocolError(ConnectionLost) when the endpoint is unreachable.
  HealthStatus health();

  const RetryPolicy& policy() const { return policy_; }
  RetryPolicy& policy() { return policy_; }  ///< e.g. p99-derived hedge delay
  const CircuitBreaker& breaker() const { return breaker_; }

  /// Process-lifetime totals across every analyze() on this client.
  std::uint64_t total_retries() const { return total_retries_; }
  std::uint64_t total_reconnects() const { return total_reconnects_; }
  std::uint64_t total_hedges() const { return total_hedges_; }

 private:
  using Clock = CircuitBreaker::Clock;
  using TimePoint = CircuitBreaker::TimePoint;

  void connect(Client& client);
  /// Waits for the primary's reply, launching a hedge when configured. The
  /// winning reply is returned; a losing connection is closed.
  Reply await_reply(std::uint64_t request_id, const Request& req,
                    TimePoint deadline, CallOutcome* out);

  Endpoint endpoint_;
  RetryPolicy policy_;
  CircuitBreaker breaker_;
  Client client_;
  bool connected_once_ = false;
  std::uint64_t total_retries_ = 0;
  std::uint64_t total_reconnects_ = 0;
  std::uint64_t total_hedges_ = 0;
};

}  // namespace ind::serve
