// Sparse matrix support: triplet assembly (natural for MNA stamping) with
// conversion to compressed row/column storage.
//
// The paper's Table 1 workloads are grid-sized (10^5 resistors); the detailed
// PEEC L-block is dense but the rest of the MNA system is very sparse, so the
// circuit engine assembles into triplets and factors with the sparse LU in
// sparse_lu.hpp whenever the dense coupling footprint allows it.
#pragma once

#include <cstddef>
#include <vector>

#include "govern/memory.hpp"
#include "la/dense_matrix.hpp"

namespace ind::la {

/// Triplet (COO) accumulator: duplicate entries are summed on compression,
/// matching the "stamp" idiom of circuit simulators.
class TripletMatrix {
 public:
  TripletMatrix() = default;
  TripletMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
  }

  void add(std::size_t i, std::size_t j, double v) {
    entries_.push_back({i, j, v});
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entry_count() const { return entries_.size(); }

  struct Entry {
    std::size_t row, col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Entry> entries_;
};

/// Compressed sparse column matrix (duplicates summed, zeros kept if stamped).
class CscMatrix {
 public:
  CscMatrix() = default;
  explicit CscMatrix(const TripletMatrix& t);
  /// Direct construction from compressed arrays (already summed/sorted) —
  /// the artifact store restores serialized matrices through this.
  CscMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> col_ptr, std::vector<std::size_t> row_idx,
            std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::size_t>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A x
  Vector apply(const Vector& x) const;

  Matrix to_dense() const;

 private:
  void recharge() {
    charge_.set((col_ptr_.size() + row_idx_.size()) * sizeof(std::size_t) +
                values_.size() * sizeof(double));
  }

  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> col_ptr_;  // size cols+1
  std::vector<std::size_t> row_idx_;  // size nnz
  std::vector<double> values_;        // size nnz
  // The accessors above expose plain std::vector references, so the memory
  // governor accounts these arrays via an RAII charge instead of a tracked
  // allocator (copying charges again; moving transfers the charge).
  govern::MemCharge charge_;
};

}  // namespace ind::la
