// Symmetric eigenvalue estimation used for stability diagnostics.
//
// Section 4 of the paper: a truncated partial-inductance matrix "can become
// non-positive definite, and the sparsified system becomes active and can
// generate energy". The benches quantify this by reporting the extreme
// eigenvalues of each sparsified matrix.
#pragma once

#include "la/dense_matrix.hpp"

namespace ind::la {

/// Largest-magnitude eigenvalue of a symmetric matrix (power iteration).
double dominant_eigenvalue(const Matrix& a, int max_iters = 500,
                           double tol = 1e-10);

/// Smallest (most negative) eigenvalue of a symmetric matrix, computed as a
/// spectral shift of the dominant eigenvalue: eig_min(A) = s - eig_max(sI-A)
/// where s = eig_max magnitude bound.
double smallest_eigenvalue(const Matrix& a, int max_iters = 500,
                           double tol = 1e-10);

}  // namespace ind::la
