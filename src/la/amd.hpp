// Approximate minimum degree (AMD) fill-reducing ordering.
//
// Computed on the pattern of A + Aᵀ, so unsymmetric MNA systems (voltage
// source rows, driver stamps) still get a symmetric elimination order. The
// algorithm is the quotient-graph minimum-degree of Amestoy/Davis/Duff with
// element absorption and approximate external degrees — no supernode
// detection, which keeps the code small; grid-sized circuit matrices (the
// Table-1 workloads) are well inside its comfort zone.
//
// Determinism contract: ties are broken by smallest node index through an
// ordered (degree, node) set, every container update is sequential, and no
// randomness or wall-clock enters — the ordering is a pure function of the
// sparsity pattern, so factorisations that share a pattern share an
// ordering bit-for-bit (the property the symbolic-reuse path relies on).
#pragma once

#include <cstddef>
#include <vector>

#include "la/sparse.hpp"

namespace ind::la {

/// Fill-reducing elimination order for the pattern of A + Aᵀ:
/// order[k] = the original row/column eliminated at step k. Requires a
/// square matrix. O(nnz · avg-degree) time, O(nnz) quotient-graph memory.
std::vector<std::size_t> amd_order(const CscMatrix& a);

}  // namespace ind::la
