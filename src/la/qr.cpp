#include "la/qr.hpp"

#include <cmath>

namespace ind::la {
namespace {

double column_norm(const Matrix& m, std::size_t j) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) acc += m(i, j) * m(i, j);
  return std::sqrt(acc);
}

// work(:,j) -= (q(:,k) . work(:,j)) q(:,k) for every column k of q.
void project_out(Matrix& work, std::size_t j, const Matrix& q) {
  for (std::size_t k = 0; k < q.cols(); ++k) {
    double proj = 0.0;
    for (std::size_t i = 0; i < work.rows(); ++i) proj += q(i, k) * work(i, j);
    for (std::size_t i = 0; i < work.rows(); ++i) work(i, j) -= proj * q(i, k);
  }
}

void project_out(Matrix& work, std::size_t j,
                 const std::vector<Vector>& basis) {
  for (const Vector& c : basis) {
    double proj = 0.0;
    for (std::size_t i = 0; i < work.rows(); ++i) proj += c[i] * work(i, j);
    for (std::size_t i = 0; i < work.rows(); ++i) work(i, j) -= proj * c[i];
  }
}

}  // namespace

QrResult orthonormalize_against(const Matrix& a, const Matrix& q,
                                double drop_tol) {
  Matrix work = a;
  std::vector<Vector> new_cols;

  for (std::size_t j = 0; j < work.cols(); ++j) {
    const double orig = column_norm(work, j);
    if (orig == 0.0) continue;
    // Two MGS passes for numerical robustness ("twice is enough").
    for (int pass = 0; pass < 2; ++pass) {
      project_out(work, j, q);
      project_out(work, j, new_cols);
    }
    const double rem = column_norm(work, j);
    if (rem <= drop_tol * orig) continue;  // deflated (linearly dependent)
    Vector col(work.rows());
    for (std::size_t i = 0; i < work.rows(); ++i) col[i] = work(i, j) / rem;
    new_cols.push_back(std::move(col));
  }

  QrResult res;
  res.rank = new_cols.size();
  res.q.resize(a.rows(), res.rank);
  for (std::size_t jj = 0; jj < new_cols.size(); ++jj)
    for (std::size_t i = 0; i < a.rows(); ++i) res.q(i, jj) = new_cols[jj][i];
  return res;
}

QrResult orthonormalize(const Matrix& a, double drop_tol) {
  return orthonormalize_against(a, Matrix(a.rows(), 0), drop_tol);
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  if (a.cols() == 0) return b;
  if (b.cols() == 0) return a;
  Matrix out(a.rows(), a.cols() + b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(i, j) = a(i, j);
    for (std::size_t j = 0; j < b.cols(); ++j) out(i, a.cols() + j) = b(i, j);
  }
  return out;
}

}  // namespace ind::la
