// Dense column-ordered matrix over double or std::complex<double>.
//
// This is the workhorse container for the PEEC partial-inductance matrix
// (inherently dense, Section 4 of the paper), for MNA system matrices of
// moderate size, and for the small reduced-order models produced by PRIMA.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "govern/memory.hpp"

namespace ind::la {

using Complex = std::complex<double>;

/// Dense row-major matrix. Elements are value-initialised (zero) on resize.
template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// Build from nested initialiser list; all rows must have equal length.
  DenseMatrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      assert(r.size() == cols_);
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  DenseMatrix transposed() const {
    DenseMatrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  DenseMatrix& operator+=(const DenseMatrix& rhs) {
    assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
    return *this;
  }
  DenseMatrix& operator-=(const DenseMatrix& rhs) {
    assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
    return *this;
  }
  DenseMatrix& operator*=(T scale) {
    for (auto& v : data_) v *= scale;
    return *this;
  }

  friend DenseMatrix operator+(DenseMatrix a, const DenseMatrix& b) {
    a += b;
    return a;
  }
  friend DenseMatrix operator-(DenseMatrix a, const DenseMatrix& b) {
    a -= b;
    return a;
  }
  friend DenseMatrix operator*(DenseMatrix a, T s) {
    a *= s;
    return a;
  }
  friend DenseMatrix operator*(T s, DenseMatrix a) {
    a *= s;
    return a;
  }

  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
    assert(a.cols_ == b.rows_);
    DenseMatrix c(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
      }
    }
    return c;
  }

  /// y = A * x
  std::vector<T> apply(const std::vector<T>& x) const {
    assert(x.size() == cols_);
    std::vector<T> y(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc{};
      const T* row = data_.data() + i * cols_;
      for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
      y[i] = acc;
    }
    return y;
  }

  /// y = A^T * x
  std::vector<T> apply_transposed(const std::vector<T>& x) const {
    assert(x.size() == rows_);
    std::vector<T> y(cols_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      const T* row = data_.data() + i * cols_;
      for (std::size_t j = 0; j < cols_; ++j) y[j] += row[j] * x[i];
    }
    return y;
  }

  bool operator==(const DenseMatrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Tracked allocator: dense matrices dominate the memory footprint (the
  // partial-inductance block is O(n^2)), so their bytes feed the governor's
  // IND_MEM_BYTES accounting. data()/operator() still hand out plain T*.
  std::vector<T, govern::TrackingAllocator<T>> data_;
};

using Matrix = DenseMatrix<double>;
using CMatrix = DenseMatrix<Complex>;
using Vector = std::vector<double>;
using CVector = std::vector<Complex>;

/// Maximum absolute entry; zero for an empty matrix.
double max_abs(const Matrix& m);

/// Frobenius norm.
double frobenius_norm(const Matrix& m);

/// Infinity norm of a vector (0 for empty).
double inf_norm(const Vector& v);
double inf_norm(const CVector& v);

/// Euclidean dot product / norm.
double dot(const Vector& a, const Vector& b);
double norm2(const Vector& v);

/// a += s * b
void axpy(double s, const Vector& b, Vector& a);

/// Symmetry check: max |A - A^T| <= tol * max|A|.
bool is_symmetric(const Matrix& m, double tol = 1e-12);

}  // namespace ind::la
