#include "la/cholesky.hpp"

#include <cmath>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::la {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  if (a.rows() != a.cols()) return std::nullopt;
  runtime::ScopedTimer timer("factor.cholesky");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    // Column-panel update: every row i > j depends only on the finished
    // columns k < j and on l(j, j), so the rows are independent and each
    // one's arithmetic is identical to the serial loop (bitwise-equal
    // results at any thread count). Gate small panels past pool dispatch.
    auto panel = [&](std::size_t i_begin, std::size_t i_end) {
      for (std::size_t i = i_begin; i < i_end; ++i) {
        double acc = a(i, j);
        for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
        l(i, j) = acc / ljj;
      }
    };
    const std::size_t rows = n - j - 1;
    if (rows >= 64)
      runtime::parallel_for(
          rows,
          [&](std::size_t a_, std::size_t b_) { panel(j + 1 + a_, j + 1 + b_); },
          {.grain = 16});
    else
      panel(j + 1, n);
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = size();
  Vector x(b);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * x[j];
    x[i] = acc / l_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

bool is_positive_definite(const Matrix& a) {
  return Cholesky::factor(a).has_value();
}

double min_eigenvalue_bisect(const Matrix& a, double scale_hint,
                             int iterations) {
  // Bracket the smallest eigenvalue in [-s, s] where s is a generous bound.
  const std::size_t n = a.rows();
  double s = scale_hint * static_cast<double>(n) + 1e-300;
  auto shifted_pd = [&](double t) {
    Matrix m = a;
    for (std::size_t i = 0; i < n; ++i) m(i, i) -= t;
    return is_positive_definite(m);
  };
  double lo = -s, hi = s;
  // Expand until bracketing: pd at lo (eigmin > lo), not pd at hi.
  while (!shifted_pd(lo)) {
    lo *= 2.0;
    if (!std::isfinite(lo)) return lo;
  }
  while (shifted_pd(hi)) {
    hi *= 2.0;
    if (!std::isfinite(hi)) return hi;
  }
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    (shifted_pd(mid) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace ind::la
