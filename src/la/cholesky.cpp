#include "la/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "la/kernels.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::la {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  if (a.rows() != a.cols()) return std::nullopt;
  runtime::ScopedTimer timer("factor.cholesky");
  const std::size_t n = a.rows();
  // Blocked left-looking column panels. Each element L(i, j) accumulates its
  //   a(i, j) - sum_k l(i, k) l(j, k)
  // subtractions in ascending k — previous panels in ascending order through
  // the rank-kb GEMM, then the within-panel columns — which is exactly the
  // per-element order of the classic per-column loop, so the blocked factor
  // is bitwise-identical to it (and to itself at any thread count: parallel
  // chunks own disjoint row ranges).
  constexpr std::size_t kBlock = 64;
  Matrix l(n, n);
  double* const ld = l.data();
  std::vector<double> pack;  // transposed slice of the panel's finished rows
  for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::size_t j1 = std::min(j0 + kBlock, n);
    const std::size_t jb = j1 - j0;
    // Seed the panel (rows j0..n, cols j0..j1) from A.
    for (std::size_t i = j0; i < n; ++i)
      for (std::size_t j = j0; j < j1; ++j) l(i, j) = a(i, j);
    // Apply every finished panel p: L(j0.., p) * L(j0..j1, p)^T, packed so
    // the GEMM streams both operands contiguously.
    for (std::size_t p0 = 0; p0 < j0; p0 += kBlock) {
      const std::size_t p1 = std::min(p0 + kBlock, j0);
      const std::size_t pb = p1 - p0;
      pack.assign(pb * jb, 0.0);
      for (std::size_t k = 0; k < pb; ++k)
        for (std::size_t j = 0; j < jb; ++j)
          pack[k * jb + j] = l(j0 + j, p0 + k);
      const std::size_t mr = n - j0;
      auto gemm_rows = [&](std::size_t r0, std::size_t r1) {
        kernels::gemm_minus(r1 - r0, jb, pb, ld + (j0 + r0) * n + p0, n,
                            pack.data(), jb, ld + (j0 + r0) * n + j0, n);
      };
      if (mr >= 64)
        runtime::parallel_for(mr, gemm_rows, {.grain = 16});
      else
        gemm_rows(0, mr);
    }
    // Factor the panel column by column (within-panel left-looking).
    for (std::size_t j = j0; j < j1; ++j) {
      double diag = l(j, j);
      for (std::size_t k = j0; k < j; ++k) diag -= l(j, k) * l(j, k);
      if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
      const double ljj = std::sqrt(diag);
      l(j, j) = ljj;
      auto panel = [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          double acc = l(i, j);
          for (std::size_t k = j0; k < j; ++k) acc -= l(i, k) * l(j, k);
          l(i, j) = acc / ljj;
        }
      };
      const std::size_t rows = n - j - 1;
      if (rows >= 64)
        runtime::parallel_for(
            rows,
            [&](std::size_t a_, std::size_t b_) {
              panel(j + 1 + a_, j + 1 + b_);
            },
            {.grain = 16});
      else
        panel(j + 1, n);
    }
    // The seed/GEMM touched the diagonal block's strictly-upper slots; L is
    // lower triangular, so zero them back out.
    for (std::size_t i = j0; i < j1; ++i)
      for (std::size_t j = i + 1; j < j1; ++j) l(i, j) = 0.0;
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = size();
  Vector x(b);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * x[j];
    x[i] = acc / l_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

bool is_positive_definite(const Matrix& a) {
  return Cholesky::factor(a).has_value();
}

double min_eigenvalue_bisect(const Matrix& a, double scale_hint,
                             int iterations) {
  // Bracket the smallest eigenvalue in [-s, s] where s is a generous bound.
  const std::size_t n = a.rows();
  double s = scale_hint * static_cast<double>(n) + 1e-300;
  auto shifted_pd = [&](double t) {
    Matrix m = a;
    for (std::size_t i = 0; i < n; ++i) m(i, i) -= t;
    return is_positive_definite(m);
  };
  double lo = -s, hi = s;
  // Expand until bracketing: pd at lo (eigmin > lo), not pd at hi.
  while (!shifted_pd(lo)) {
    lo *= 2.0;
    if (!std::isfinite(lo)) return lo;
  }
  while (shifted_pd(hi)) {
    hi *= 2.0;
    if (!std::isfinite(hi)) return hi;
  }
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    (shifted_pd(mid) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace ind::la
