#include "la/gmres.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include "govern/budget.hpp"
#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"

namespace ind::la {
namespace {

Complex cdot(const CVector& a, const CVector& b) {
  Complex s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double norm2(const CVector& v) {
  double s = 0.0;
  for (const Complex& z : v) s += std::norm(z);
  return std::sqrt(s);
}

}  // namespace

GmresResult gmres(const CApplyFn& apply, const CVector& b, CVector& x,
                  const CApplyFn* precond, const GmresOptions& opts) {
  runtime::ScopedTimer timer("solve.gmres");
  auto& iter_counter =
      runtime::MetricsRegistry::instance().counter("solve.gmres.iterations");
  GmresResult result;
  const std::size_t n = b.size();
  if (x.size() != n) x.assign(n, Complex{});
  const double norm_b = norm2(b);
  if (norm_b == 0.0) {
    x.assign(n, Complex{});
    result.converged = true;
    result.relative_residual = 0.0;
    return result;
  }
  const std::size_t m = std::max<std::size_t>(1, opts.restart);
  // Work charged per Arnoldi step: pure function of (n, work_divisor), so
  // IND_WORK_BUDGET trips at a fixed iteration index at any thread count.
  const std::uint64_t units_per_iter = 1 + n / std::max<std::size_t>(1, opts.work_divisor);

  std::vector<CVector> v(m + 1);          // Arnoldi basis
  std::vector<Complex> h((m + 1) * m);    // Hessenberg, column-major
  std::vector<Complex> cs(m), g(m + 1);
  std::vector<double> sn(m);
  CVector w(n), z(n), tmp(n);
  auto hh = [&](std::size_t i, std::size_t j) -> Complex& {
    return h[j * (m + 1) + i];
  };

  double prev_cycle_res = -1.0;
  int stagnant_cycles = 0;

  for (std::size_t cycle = 0; cycle <= opts.max_restarts; ++cycle) {
    // True residual of the current iterate (right preconditioning keeps the
    // recurrence residual equal to it, but recompute at cycle boundaries to
    // shed accumulated roundoff).
    apply(x, tmp);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = b[i] - tmp[i];
    const double beta = norm2(tmp);
    result.relative_residual = beta / norm_b;
    if (result.relative_residual <= opts.tol) {
      result.converged = true;
      return result;
    }
    if (cycle == opts.max_restarts) break;
    if (prev_cycle_res >= 0.0) {
      if (result.relative_residual > opts.stagnation_ratio * prev_cycle_res) {
        if (++stagnant_cycles >= 2) {
          result.stagnated = true;
          return result;
        }
      } else {
        stagnant_cycles = 0;
      }
    }
    prev_cycle_res = result.relative_residual;

    v[0] = tmp;
    for (std::size_t i = 0; i < n; ++i) v[0][i] /= beta;
    std::fill(g.begin(), g.end(), Complex{});
    g[0] = beta;

    std::size_t k = 0;  // Arnoldi steps completed this cycle
    bool lucky = false;
    for (std::size_t j = 0; j < m; ++j) {
      if (govern::checkpoint(units_per_iter))
        govern::throw_if_cancelled("la.gmres");
      if (robust::fault::fire(robust::fault::Site::GmresIter)) {
        // Injected breakdown: abandon the cycle without touching x so a
        // retry reproduces the unperturbed run bitwise.
        result.breakdown = true;
        return result;
      }
      ++result.iterations;
      iter_counter.value.fetch_add(1, std::memory_order_relaxed);
      if (precond) {
        (*precond)(v[j], z);
      } else {
        z = v[j];
      }
      apply(z, w);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= j; ++i) {
        const Complex hij = cdot(v[i], w);
        hh(i, j) = hij;
        for (std::size_t t = 0; t < n; ++t) w[t] -= hij * v[i][t];
      }
      const double hnext = norm2(w);
      hh(j + 1, j) = hnext;
      // Apply accumulated Givens rotations to the new column.
      for (std::size_t i = 0; i < j; ++i) {
        const Complex t0 = hh(i, j), t1 = hh(i + 1, j);
        hh(i, j) = std::conj(cs[i]) * t0 + sn[i] * t1;
        hh(i + 1, j) = -sn[i] * t0 + cs[i] * t1;
      }
      // New rotation zeroing hh(j+1, j).
      {
        const Complex a = hh(j, j);
        const double bmag = hnext;
        const double denom = std::hypot(std::abs(a), bmag);
        if (denom == 0.0) {
          cs[j] = 1.0;
          sn[j] = 0.0;
        } else {
          cs[j] = a / denom;
          sn[j] = bmag / denom;
        }
        hh(j, j) = std::conj(cs[j]) * a + sn[j] * bmag;
        hh(j + 1, j) = 0.0;
        const Complex g0 = g[j];
        g[j] = std::conj(cs[j]) * g0;
        g[j + 1] = -sn[j] * g0;
      }
      k = j + 1;
      const double est = std::abs(g[j + 1]);
      if (hnext <= 1e-14 * norm_b) {
        lucky = true;  // invariant subspace reached: iterate is exact in it
        break;
      }
      v[j + 1] = w;
      for (std::size_t t = 0; t < n; ++t) v[j + 1][t] /= hnext;
      if (est / norm_b <= opts.tol) break;
    }

    // Back-substitute H y = g and fold the correction into x.
    std::vector<Complex> y(k);
    for (std::size_t ii = k; ii-- > 0;) {
      Complex s = g[ii];
      for (std::size_t jj = ii + 1; jj < k; ++jj) s -= hh(ii, jj) * y[jj];
      y[ii] = s / hh(ii, ii);
    }
    std::fill(w.begin(), w.end(), Complex{});
    for (std::size_t jj = 0; jj < k; ++jj)
      for (std::size_t t = 0; t < n; ++t) w[t] += y[jj] * v[jj][t];
    if (precond) {
      (*precond)(w, z);
      for (std::size_t t = 0; t < n; ++t) x[t] += z[t];
    } else {
      for (std::size_t t = 0; t < n; ++t) x[t] += w[t];
    }
    ++result.restarts;
    if (lucky) {
      apply(x, tmp);
      for (std::size_t i = 0; i < n; ++i) tmp[i] = b[i] - tmp[i];
      result.relative_residual = norm2(tmp) / norm_b;
      result.converged = result.relative_residual <= opts.tol * 10.0;
      return result;
    }
  }
  return result;
}

}  // namespace ind::la
