// Mixed-precision dense solves: float32 blocked factor + float64 iterative
// refinement.
//
// A single-precision LU factor costs half the memory traffic of the double
// factor (the GEMM-dominated blocked elimination is bandwidth-bound at cache
// block boundaries), and iterative refinement recovers full double accuracy
// whenever the matrix is well-conditioned relative to float epsilon
// (kappa << 1/eps_f32 ~ 1.7e7): each sweep computes the residual r = b - A x
// in double, solves A dx = r with the cheap f32 factor, and applies the
// correction. Everything is deterministic — the residual row loop has a
// fixed per-row accumulation order and parallel chunks write disjoint rows,
// the f32 factor inherits the blocked-LU bitwise contract — so the refined
// solution is bitwise-reproducible at any IND_THREADS.
//
// Guarding and fallback live in robust/recovery.hpp
// (solve_dense_mixed_with_recovery): a f32 condition estimate or pivot
// growth past the guard, or a refinement that stalls above tolerance,
// triggers RecoveryKind::MixedPrecisionFallback and a full-double factor
// through the standard ladder.
#pragma once

#include <complex>
#include <vector>

#include "la/lu.hpp"

namespace ind::la {

/// The working precision's cheap companion type.
template <typename T>
struct LowerPrecisionOf;
template <>
struct LowerPrecisionOf<double> {
  using type = float;
};
template <>
struct LowerPrecisionOf<Complex> {
  using type = std::complex<float>;
};

struct RefineOptions {
  /// Relative-residual target: ||b - A x||_inf / (||A||_1 ||x||_inf + ||b||_inf).
  double tol = 1e-12;
  /// Refinement sweep cap; well-conditioned systems converge in 2-4 sweeps.
  int max_iterations = 30;
  /// Guard on the f32 factor's condition estimate: above this, refinement is
  /// not expected to converge (eps_f32 ~ 6e-8) and callers should take the
  /// full-double fallback without burning sweeps.
  double max_condition = 1e7;
  /// Guard on the f32 factor's pivot growth (backward-error quality).
  double max_pivot_growth = 1e8;
};

struct RefineResult {
  bool converged = false;
  int iterations = 0;      ///< refinement sweeps actually applied
  double residual = -1.0;  ///< best relative residual reached (-1: none)
};

/// Single-precision factor of a double-precision matrix, plus the refined
/// solve. The factor is blocked (la/kernels.hpp) and bitwise-deterministic.
template <typename T>
class MixedLu {
 public:
  using Lo = typename LowerPrecisionOf<T>::type;

  /// Demotes `a` to float precision and factors it. Throws
  /// SingularMatrixError when the demoted matrix breaks down (e.g. entries
  /// that underflow to an exactly singular f32 matrix).
  explicit MixedLu(const DenseMatrix<T>& a, const LuOptions& opts = {});

  std::size_t size() const { return factor_.size(); }
  const LuFactor<Lo>& factor() const { return factor_; }

  /// Condition estimate of the f32 factor (Hager, in double arithmetic on
  /// the promoted norms) — the refinement-convergence guard.
  double condition_estimate() const { return factor_.condition_estimate(); }
  double pivot_growth() const { return factor_.pivot_growth(); }

  /// Refined solve of A x = b; `a` must be the matrix the constructor saw.
  /// On a non-converged result, x holds the best iterate reached.
  RefineResult solve(const DenseMatrix<T>& a, const std::vector<T>& b,
                     std::vector<T>& x, const RefineOptions& opts = {}) const;

 private:
  LuFactor<Lo> factor_;
  double norm1_ = 0.0;  ///< 1-norm of the double-precision A
};

using MixedLuReal = MixedLu<double>;
using MixedLuComplex = MixedLu<Complex>;

}  // namespace ind::la
