#include "la/refine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/parallel_for.hpp"

namespace ind::la {
namespace {

float demote(double x) { return static_cast<float>(x); }
std::complex<float> demote(const Complex& x) {
  return {static_cast<float>(x.real()), static_cast<float>(x.imag())};
}
double promote(float x) { return static_cast<double>(x); }
Complex promote(const std::complex<float>& x) {
  return {static_cast<double>(x.real()), static_cast<double>(x.imag())};
}

double mag(double x) { return std::abs(x); }
double mag(const Complex& x) { return std::abs(x); }

template <typename T>
double inf_norm_of(const std::vector<T>& v) {
  double m = 0.0;
  for (const T& x : v) m = std::max(m, mag(x));
  return m;
}

template <typename T>
DenseMatrix<typename LowerPrecisionOf<T>::type> demote_matrix(
    const DenseMatrix<T>& a) {
  using Lo = typename LowerPrecisionOf<T>::type;
  DenseMatrix<Lo> lo(a.rows(), a.cols());
  const T* src = a.data();
  Lo* dst = lo.data();
  const std::size_t total = a.rows() * a.cols();
  for (std::size_t k = 0; k < total; ++k) dst[k] = demote(src[k]);
  return lo;
}

// r = b - A x in working (double) precision. Parallel chunks own disjoint
// rows and each row accumulates in ascending column order, so the residual
// — and everything refined from it — is bitwise-deterministic.
template <typename T>
void residual_into(const DenseMatrix<T>& a, const std::vector<T>& x,
                   const std::vector<T>& b, std::vector<T>& r) {
  const std::size_t n = a.rows();
  r.resize(n);
  runtime::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          T acc = b[i];
          const T* row = a.data() + i * a.cols();
          for (std::size_t j = 0; j < n; ++j) acc -= row[j] * x[j];
          r[i] = acc;
        }
      },
      {.grain = 64});
}

}  // namespace

template <typename T>
MixedLu<T>::MixedLu(const DenseMatrix<T>& a, const LuOptions& opts)
    : factor_(demote_matrix(a), opts) {
  // ||A||_1 of the *double* matrix: the convergence metric must measure the
  // true system, not its demoted image.
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double colsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) colsum += mag(a(i, j));
    norm1_ = std::max(norm1_, colsum);
  }
}

template <typename T>
RefineResult MixedLu<T>::solve(const DenseMatrix<T>& a,
                               const std::vector<T>& b, std::vector<T>& x,
                               const RefineOptions& opts) const {
  const std::size_t n = size();
  RefineResult result;
  if (b.size() != n)
    throw std::invalid_argument("MixedLu::solve: rhs size mismatch");
  std::vector<Lo> lo(n);
  for (std::size_t i = 0; i < n; ++i) lo[i] = demote(b[i]);
  {
    const std::vector<Lo> x0 = factor_.solve(lo);
    x.resize(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = promote(x0[i]);
  }
  const double bnorm = inf_norm_of(b);
  std::vector<T> r(n), best_x = x;
  double best_rel = std::numeric_limits<double>::infinity();
  double prev_rel = std::numeric_limits<double>::infinity();
  for (int it = 0;; ++it) {
    residual_into(a, x, b, r);
    const double denom = norm1_ * inf_norm_of(x) + bnorm;
    const double rel =
        denom > 0.0 ? inf_norm_of(r) / denom : inf_norm_of(r);
    if (!std::isfinite(rel)) break;
    if (rel < best_rel) {
      best_rel = rel;
      best_x = x;
    }
    result.iterations = it;
    if (rel <= opts.tol) {
      result.converged = true;
      break;
    }
    // Stalled: refinement on a convergent system contracts the residual by
    // ~kappa * eps_f32 per sweep; anything short of halving means the f32
    // factor cannot correct further and more sweeps only churn.
    if (it > 0 && rel > 0.5 * prev_rel) break;
    if (it >= opts.max_iterations) break;
    prev_rel = rel;
    for (std::size_t i = 0; i < n; ++i) lo[i] = demote(r[i]);
    const std::vector<Lo> dlo = factor_.solve(lo);
    for (std::size_t i = 0; i < n; ++i) x[i] += promote(dlo[i]);
  }
  x = best_x;
  result.residual =
      std::isfinite(best_rel) ? best_rel : -1.0;
  return result;
}

template class MixedLu<double>;
template class MixedLu<Complex>;

}  // namespace ind::la
