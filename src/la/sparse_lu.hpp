// Left-looking (Gilbert-Peierls) sparse LU with threshold partial pivoting
// (diagonal preference), an AMD fill-reducing pre-ordering and a KLU-style
// symbolic/numeric split.
//
// The MNA matrices of grid-dominated workloads (Table 1: 220k resistors in
// the clock-net power-grid model) are far too large for dense factorisation
// but factor quickly with a sparse direct method. Two observations shape the
// design:
//   1. Fill-in is ordering-dominated: the columns are eliminated in an
//      approximate-minimum-degree order computed on the pattern of A + Aᵀ
//      (la/amd.hpp), applied as a symmetric permutation ahead of the
//      numeric factorisation.
//   2. Transient driver transitions and gmin-regularised retries refactor
//      the *same sparsity pattern* with new values, so the symbolic work
//      (ordering, per-column elimination reach, pivot sequence) is kept in
//      a reusable SparseLuSymbolic and `refactor(values)` runs a
//      numeric-only pass: no DFS, no allocations, typically several times
//      faster than a cold factorisation.
//
// Determinism / bitwise contract: the ordering is a pure function of the
// sparsity pattern, numerically-zero fill entries are *kept* in L and U (so
// the stored pattern depends only on A's pattern and the pivot sequence,
// never on values), and the numeric-only path verifies each replayed pivot
// against the fresh pivot choice (diagonal when within the MNA-style
// threshold of the column max, else max magnitude — the same rule in both
// modes) — the moment one drifts, the full factorisation reruns. Every result is therefore bitwise-identical to a
// from-scratch `SparseLu(a)` at any thread count (the factorisation is
// serial), which preserves the store-fingerprint and determinism contracts.
#pragma once

#include <vector>

#include "la/lu.hpp"
#include "la/sparse.hpp"

namespace ind::la {

/// Reusable symbolic state of a sparse factorisation: the AMD column
/// ordering, a fingerprint of the analysed sparsity pattern, and — once a
/// numeric factorisation has recorded them — the pivot sequence and
/// per-column elimination reach. One symbolic object serves every matrix
/// with the same pattern (driver-transition refactorisations, per-sweep
/// matrices, gmin-shifted retries).
class SparseLuSymbolic {
 public:
  SparseLuSymbolic() = default;
  /// Analyses the pattern: copies the pattern fingerprint and computes the
  /// AMD ordering (timed under "factor.sparse_lu.symbolic"). Throws
  /// std::invalid_argument unless `a` is square.
  explicit SparseLuSymbolic(const CscMatrix& a);

  std::size_t size() const { return n_; }
  bool analysed() const { return !col_ptr_.empty(); }
  /// True once a numeric factorisation has recorded the complete reach +
  /// pivot schedule, i.e. the numeric-only refactor path is available.
  bool factored() const { return reach_ptr_.size() == n_ + 1; }
  /// order()[k] = original column eliminated at step k.
  const std::vector<std::size_t>& order() const { return order_; }
  /// True when `a` has exactly the analysed pattern (same dimensions,
  /// col_ptr and row_idx) — the precondition for any reuse.
  bool matches_pattern(const CscMatrix& a) const;

 private:
  friend class SparseLu;
  std::size_t n_ = 0;
  std::vector<std::size_t> order_;              // AMD elimination order
  std::vector<std::size_t> col_ptr_, row_idx_;  // analysed pattern
  // Recorded by the numeric factorisation; pure functions of the pattern
  // and the pivot sequence (zero fill entries are kept in L/U):
  std::vector<std::size_t> perm_;       // pivot row of step k
  std::vector<std::size_t> reach_ptr_;  // size n+1: reach_ slice per column
  std::vector<std::size_t> reach_;      // per-column reach, post-ordered
};

class SparseLu {
 public:
  /// Analyses and factorises the square CSC matrix. Throws
  /// SingularMatrixError if a zero pivot column is encountered.
  explicit SparseLu(const CscMatrix& a);
  /// Same, but reuses a previously analysed (and possibly factored)
  /// symbolic object; falls back to a fresh analysis when the pattern does
  /// not match, so the result is always bitwise-identical to SparseLu(a).
  SparseLu(const CscMatrix& a, SparseLuSymbolic symbolic);

  /// Re-factorises for new values. When `a` has the pattern of the current
  /// factorisation and every partial-pivot choice is unchanged, only the
  /// numeric phase runs ("factor.sparse_lu.numeric": no DFS, no
  /// allocation); otherwise the full symbolic + numeric factorisation
  /// reruns. Either way the factor is bitwise-identical to `SparseLu(a)`.
  /// Throws SingularMatrixError like the constructor — the object must be
  /// refactorised successfully before further solves.
  void refactor(const CscMatrix& a);

  std::size_t size() const { return n_; }
  std::size_t fill_nnz() const;
  const SparseLuSymbolic& symbolic() const { return symbolic_; }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

 private:
  struct Col {
    std::vector<std::size_t> rows;
    std::vector<double> vals;
  };

  /// One numeric sweep. kReuse = false: DFS per column, records reach and
  /// pivots into symbolic_, throws on singularity. kReuse = true: replays
  /// the cached reach and pivot sequence, returns false the moment a pivot
  /// choice (or a singularity) deviates — the caller then reruns the full
  /// path. Both modes execute the same scalar arithmetic in the same order.
  template <bool kReuse>
  bool factor_impl(const CscMatrix& a);

  SparseLuSymbolic symbolic_;
  std::size_t n_ = 0;
  std::vector<Col> lower_;  // strictly-lower part, unit diagonal implicit
  std::vector<Col> upper_;  // upper part excluding diagonal
  Vector diag_;             // U diagonal
  // Workspaces kept across refactorisations to avoid reallocation.
  std::vector<double> x_;
  std::vector<std::size_t> pinv_, mark_;
  // Memory-governor charge for the L/U fill arrays (set after each
  // successful numeric sweep; see govern/memory.hpp).
  govern::MemCharge charge_;
};

}  // namespace ind::la
