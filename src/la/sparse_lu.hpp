// Left-looking (Gilbert-Peierls) sparse LU with partial pivoting.
//
// The MNA matrices of grid-dominated workloads (Table 1: 220k resistors in
// the clock-net power-grid model) are far too large for dense factorisation
// but factor quickly with a sparse direct method; the factorisation is reused
// across every transient timestep, so factor-once/solve-many is the dominant
// cost model, exactly as in the paper's reduced-order and RC flows.
#pragma once

#include <vector>

#include "la/lu.hpp"
#include "la/sparse.hpp"

namespace ind::la {

class SparseLu {
 public:
  /// Factorises the square CSC matrix. Throws SingularMatrixError if a zero
  /// pivot column is encountered.
  explicit SparseLu(const CscMatrix& a);

  std::size_t size() const { return n_; }
  std::size_t fill_nnz() const;

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

 private:
  struct Col {
    std::vector<std::size_t> rows;
    std::vector<double> vals;
  };

  std::size_t n_ = 0;
  std::vector<Col> lower_;  // strictly-lower part, unit diagonal implicit
  std::vector<Col> upper_;  // upper part excluding diagonal
  Vector diag_;             // U diagonal
  std::vector<std::size_t> perm_;  // row permutation: pivot row of step k
};

}  // namespace ind::la
