#include "la/eig.hpp"

#include <cmath>
#include <stdexcept>

namespace ind::la {
namespace {

// Rayleigh quotient after power iteration on a symmetric matrix.
double power_iteration(const Matrix& a, int max_iters, double tol) {
  const std::size_t n = a.rows();
  if (n == 0) return 0.0;
  // Deterministic quasi-random start vector (no RNG dependence).
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(static_cast<double>(i) * 1.2345 + 0.678);
  double nv = norm2(v);
  for (auto& x : v) x /= nv;

  double lambda = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    Vector w = a.apply(v);
    const double next = dot(v, w);
    const double nw = norm2(w);
    if (nw == 0.0) return 0.0;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nw;
    if (it > 2 && std::abs(next - lambda) <= tol * std::max(1.0, std::abs(next)))
      return next;
    lambda = next;
  }
  return lambda;
}

}  // namespace

double dominant_eigenvalue(const Matrix& a, int max_iters, double tol) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("dominant_eigenvalue: square matrix required");
  return power_iteration(a, max_iters, tol);
}

double smallest_eigenvalue(const Matrix& a, int max_iters, double tol) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("smallest_eigenvalue: square matrix required");
  // Gershgorin upper bound on |eig|.
  double bound = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) row += std::abs(a(i, j));
    bound = std::max(bound, row);
  }
  // eig_min(A) = bound - eig_max(bound*I - A).
  Matrix shifted(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      shifted(i, j) = (i == j ? bound : 0.0) - a(i, j);
  return bound - power_iteration(shifted, max_iters, tol);
}

}  // namespace ind::la
