#include "la/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <type_traits>

#include "govern/budget.hpp"
#include "govern/env.hpp"
#include "la/kernels.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::la {
namespace {

double magnitude(double x) { return std::abs(x); }
double magnitude(float x) { return std::abs(static_cast<double>(x)); }
double magnitude(const Complex& x) { return std::abs(x); }
double magnitude(const std::complex<float>& x) {
  return std::abs(std::complex<double>(x));
}

// Unit-magnitude direction of x (Hager estimator); 1 for zero entries.
double sign_of(double x) { return x >= 0.0 ? 1.0 : -1.0; }
float sign_of(float x) { return x >= 0.0f ? 1.0f : -1.0f; }
Complex sign_of(const Complex& x) {
  const double m = std::abs(x);
  return m == 0.0 ? Complex{1.0, 0.0} : x / m;
}
std::complex<float> sign_of(const std::complex<float>& x) {
  const float m = std::abs(x);
  return m == 0.0f ? std::complex<float>{1.0f, 0.0f} : x / m;
}

// Scalar field of T: float for the single-precision instantiations (their
// complex type divides only by float), double otherwise.
template <typename T>
struct RealOf {
  using type = double;
};
template <>
struct RealOf<float> {
  using type = float;
};
template <>
struct RealOf<std::complex<float>> {
  using type = float;
};

template <typename T>
inline constexpr bool kSinglePrecisionV =
    std::is_same_v<T, float> || std::is_same_v<T, std::complex<float>>;

// Effective panel width: an explicit LuOptions::block wins, otherwise the
// process-wide IND_LU_BLOCK knob (read once; the block size must stay fixed
// within a run for the bitwise-determinism contract).
std::size_t resolve_block(std::size_t requested) {
  if (requested != 0) return std::min<std::size_t>(requested, 512);
  static const std::size_t env_block = static_cast<std::size_t>(
      govern::env_u64("IND_LU_BLOCK", 48, 1, 512, "la").value);
  return env_block;
}

}  // namespace

template <typename T>
LuFactor<T>::LuFactor(DenseMatrix<T> a, const LuOptions& opts)
    : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuFactor: matrix must be square");
  constexpr bool single = kSinglePrecisionV<T>;
  runtime::ScopedTimer timer(single ? "factor.lu.f32" : "factor.lu");
  const std::size_t n = lu_.rows();
  runtime::MetricsRegistry::instance().max_count(
      single ? "factor.lu.f32.max_dim" : "factor.lu.max_dim",
      static_cast<std::int64_t>(n));
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  // Capture ||A||_1 and max|A| before elimination overwrites the entries;
  // both feed the post-factorisation condition / growth diagnostics. (Row
  // traversal with per-column accumulators keeps the scan cache-friendly;
  // each column's sum is still accumulated in ascending row order.)
  T* const d = lu_.data();
  double amax = 0.0;
  {
    std::vector<double> colsum(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const T* ri = d + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double m = magnitude(ri[j]);
        colsum[j] += m;
        if (m > amax) amax = m;
      }
    }
    for (std::size_t j = 0; j < n; ++j) norm1_ = std::max(norm1_, colsum[j]);
  }

  const std::size_t nb = resolve_block(opts.block);
  runtime::CancelToken* const cancel =
      govern::Governor::instance().cancel_token();

  // Blocked right-looking elimination. Each element receives its updates in
  // ascending pivot order — panel rank-1s touch only panel columns, the TRSM
  // applies pivots k0..k1 to the panel's trailing rows in ascending order,
  // and the GEMM does the same for the trailing matrix — so the factor is
  // bitwise-identical to the unblocked loop and to itself at any thread
  // count (disjoint chunk writes, fixed block size).
  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t k1 = std::min(k0 + nb, n);

    // --- panel factor: columns k0..k1 over all remaining rows -------------
    for (std::size_t k = k0; k < k1; ++k) {
      // Budget poll, one per eliminated column with the trailing row count
      // as the unit charge — pure function of (n, k), so a work-budget trip
      // is bitwise deterministic. CancelledError passes through the recovery
      // ladder (it catches only SingularMatrixError).
      if (govern::checkpoint(n - k)) govern::throw_if_cancelled("lu.factor");
      // Partial pivoting: pick the largest magnitude in column k. The column
      // is fully updated through pivot k-1 at this point, so the choice —
      // and the whole permutation — matches the unblocked elimination.
      std::size_t pivot = k;
      double best = magnitude(d[k * n + k]);
      for (std::size_t i = k + 1; i < n; ++i) {
        const double cand = magnitude(d[i * n + k]);
        if (cand > best) {
          best = cand;
          pivot = i;
        }
      }
      if (best == 0.0)
        throw SingularMatrixError("LuFactor: singular matrix at column " +
                                  std::to_string(k));
      if (pivot != k) {
        for (std::size_t j = 0; j < n; ++j)
          std::swap(d[k * n + j], d[pivot * n + j]);
        std::swap(perm_[k], perm_[pivot]);
        perm_sign_ = -perm_sign_;
      }
      const T diag = d[k * n + k];
      const T* const rk = d + k * n;
      // Rank-1 update restricted to the panel's own columns; the trailing
      // columns are updated later by the TRSM/GEMM pair in the same
      // per-element order. No zero-skip: `-0.0 - (-0.0 * x)` and a skipped
      // update differ in the sign of zero, which would break the bitwise
      // blocked == unblocked contract.
      auto panel_rows = [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          T* ri = d + i * n;
          const T factor = ri[k] / diag;
          ri[k] = factor;
          for (std::size_t j = k + 1; j < k1; ++j) ri[j] -= factor * rk[j];
        }
      };
      const std::size_t rows = n - k - 1;
      if (rows >= 64)
        runtime::parallel_for(
            rows,
            [&](std::size_t a_, std::size_t b_) {
              panel_rows(k + 1 + a_, k + 1 + b_);
            },
            {.grain = 16});
      else
        panel_rows(k + 1, n);
    }
    if (k1 == n) break;

    const std::size_t kb = k1 - k0;
    const std::size_t nc = n - k1;  // trailing columns == trailing rows

    // --- TRSM: U block = L_panel^-1 * A(k0..k1, k1..n), column chunks -----
    // Chunk charges are linear in the column span, so the work-unit total
    // (nc * kb per panel) is independent of chunking / thread count.
    if (nc >= 64) {
      runtime::parallel_for(
          nc,
          [&](std::size_t jb0, std::size_t jb1) {
            if (govern::checkpoint((jb1 - jb0) * kb)) return;
            kernels::trsm_lower_unit_minus(kb, jb1 - jb0, d + k0 * n + k0, n,
                                           d + k0 * n + k1 + jb0, n);
          },
          {.grain = 64, .cancel = cancel});
    } else if (!govern::checkpoint(nc * kb)) {
      kernels::trsm_lower_unit_minus(kb, nc, d + k0 * n + k0, n,
                                     d + k0 * n + k1, n);
    }
    govern::throw_if_cancelled("lu.factor");

    // --- GEMM: trailing matrix -= L(k1..n, panel) * U(panel, k1..n) -------
    if (nc >= 64) {
      runtime::parallel_for(
          nc,
          [&](std::size_t i0, std::size_t i1) {
            if (govern::checkpoint((i1 - i0) * kb)) return;
            kernels::gemm_minus(i1 - i0, nc, kb, d + (k1 + i0) * n + k0, n,
                                d + k0 * n + k1, n, d + (k1 + i0) * n + k1,
                                n);
          },
          {.grain = 256, .cancel = cancel});
    } else if (!govern::checkpoint(nc * kb)) {
      kernels::gemm_minus(nc, nc, kb, d + k1 * n + k0, n, d + k0 * n + k1, n,
                          d + k1 * n + k1, n);
    }
    govern::throw_if_cancelled("lu.factor");
  }

  double umax = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      umax = std::max(umax, magnitude(lu_(i, j)));
  pivot_growth_ = amax > 0.0 ? umax / amax : 0.0;
}

template <typename T>
std::vector<T> LuFactor<T>::solve(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size");
  std::vector<T> x(n);
  // Apply permutation, then forward-substitute with unit-diagonal L.
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back-substitute with U.
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

template <typename T>
DenseMatrix<T> LuFactor<T>::solve(const DenseMatrix<T>& b) const {
  const std::size_t n = size();
  // Validate at the call site, not from inside a pool worker.
  if (b.rows() != n)
    throw std::invalid_argument("LuFactor::solve: rhs has " +
                                std::to_string(b.rows()) +
                                " rows; expected " + std::to_string(n));
  DenseMatrix<T> x(b.rows(), b.cols());
  if (b.cols() == 0 || n == 0) return x;
  // Blocked multi-RHS solve: disjoint column chunks in parallel, each swept
  // in narrow strips so one strip of every RHS row stays cache-resident
  // while the packed factor streams through exactly once per strip. The
  // per-element update order (ascending j within each row's substitution)
  // matches the vector solve, so every column is bitwise-identical to
  // solve(vector).
  constexpr std::size_t kStrip = 32;
  const T* const lu = lu_.data();
  runtime::parallel_for(
      b.cols(),
      [&](std::size_t j_begin, std::size_t j_end) {
        std::vector<T> buf;
        for (std::size_t s0 = j_begin; s0 < j_end; s0 += kStrip) {
          const std::size_t s1 = std::min(s0 + kStrip, j_end);
          const std::size_t w = s1 - s0;
          buf.assign(n * w, T{});
          // Permuted gather of the strip.
          for (std::size_t i = 0; i < n; ++i) {
            const T* src = b.data() + perm_[i] * b.cols() + s0;
            T* dst = buf.data() + i * w;
            for (std::size_t c = 0; c < w; ++c) dst[c] = src[c];
          }
          // Forward-substitute with unit-diagonal L.
          for (std::size_t i = 1; i < n; ++i) {
            const T* li = lu + i * n;
            T* xi = buf.data() + i * w;
            for (std::size_t j = 0; j < i; ++j) {
              const T lij = li[j];
              const T* xj = buf.data() + j * w;
              for (std::size_t c = 0; c < w; ++c) xi[c] -= lij * xj[c];
            }
          }
          // Back-substitute with U.
          for (std::size_t ii = n; ii-- > 0;) {
            const T* ui = lu + ii * n;
            T* xi = buf.data() + ii * w;
            for (std::size_t j = ii + 1; j < n; ++j) {
              const T uij = ui[j];
              const T* xj = buf.data() + j * w;
              for (std::size_t c = 0; c < w; ++c) xi[c] -= uij * xj[c];
            }
            const T diag = ui[ii];
            for (std::size_t c = 0; c < w; ++c) xi[c] /= diag;
          }
          for (std::size_t i = 0; i < n; ++i) {
            const T* src = buf.data() + i * w;
            T* dst = x.data() + i * x.cols() + s0;
            for (std::size_t c = 0; c < w; ++c) dst[c] = src[c];
          }
        }
      },
      {.grain = 4});
  return x;
}

template <typename T>
std::vector<T> LuFactor<T>::solve_transposed(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n)
    throw std::invalid_argument("LuFactor::solve_transposed: size");
  // P A = L U  =>  A^T = U^T L^T P; solve U^T z = b (forward, diag of U),
  // then L^T w = z (backward, unit diag), then x = P^T w.
  std::vector<T> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    T acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = z[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * z[j];
    z[ii] = acc;
  }
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

template <typename T>
double LuFactor<T>::condition_estimate() const {
  const std::size_t n = size();
  if (n == 0) return 0.0;
  // Hager's 1-norm estimator for ||A^-1||_1: maximise ||A^-1 x||_1 over the
  // unit 1-norm ball by following sign-vector gradients. Deterministic, a
  // bounded handful of O(n^2) solves.
  using R = typename RealOf<T>::type;
  std::vector<T> x(n, T(static_cast<R>(1.0 / static_cast<double>(n))));
  double est = 0.0;
  std::size_t last_j = n;  // unit-vector index of the previous iteration
  for (int iter = 0; iter < 5; ++iter) {
    const std::vector<T> y = solve(x);
    double y1 = 0.0;
    for (const T& v : y) y1 += magnitude(v);
    if (!std::isfinite(y1)) return std::numeric_limits<double>::infinity();
    est = std::max(est, y1);
    std::vector<T> xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = sign_of(y[i]);
    const std::vector<T> z = solve_transposed(xi);
    std::size_t j = 0;
    double zmax = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double m = magnitude(z[i]);
      if (m > zmax) {
        zmax = m;
        j = i;
      }
    }
    if (j == last_j || zmax <= y1) break;
    last_j = j;
    std::fill(x.begin(), x.end(), T{});
    x[j] = T{1.0};
  }
  return norm1_ * est;
}

template <typename T>
T LuFactor<T>::determinant() const {
  T det = static_cast<T>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

template class LuFactor<double>;
template class LuFactor<Complex>;
template class LuFactor<float>;
template class LuFactor<std::complex<float>>;

Vector solve(Matrix a, const Vector& b) { return LU(std::move(a)).solve(b); }

CVector solve(CMatrix a, const CVector& b) {
  return CLU(std::move(a)).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LU(a).solve(Matrix::identity(a.rows()));
}

}  // namespace ind::la
