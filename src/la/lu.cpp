#include "la/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "govern/budget.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::la {
namespace {

double magnitude(double x) { return std::abs(x); }
double magnitude(const Complex& x) { return std::abs(x); }

// Unit-magnitude direction of x (Hager estimator); 1 for zero entries.
double sign_of(double x) { return x >= 0.0 ? 1.0 : -1.0; }
Complex sign_of(const Complex& x) {
  const double m = std::abs(x);
  return m == 0.0 ? Complex{1.0, 0.0} : x / m;
}

}  // namespace

template <typename T>
LuFactor<T>::LuFactor(DenseMatrix<T> a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuFactor: matrix must be square");
  runtime::ScopedTimer timer("factor.lu");
  const std::size_t n = lu_.rows();
  runtime::MetricsRegistry::instance().max_count(
      "factor.lu.max_dim", static_cast<std::int64_t>(n));
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  // Capture ||A||_1 and max|A| before elimination overwrites the entries;
  // both feed the post-factorisation condition / growth diagnostics.
  double amax = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double colsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double m = magnitude(lu_(i, j));
      colsum += m;
      amax = std::max(amax, m);
    }
    norm1_ = std::max(norm1_, colsum);
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Budget poll, one per eliminated column with the trailing row count as
    // the unit charge — the run total n(n+1)/2 depends only on n, so a
    // work-budget trip is bitwise deterministic. CancelledError passes
    // through the recovery ladder (it catches only SingularMatrixError).
    if (govern::checkpoint(n - k))
      govern::throw_if_cancelled("lu.factor");
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = magnitude(lu_(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best == 0.0)
      throw SingularMatrixError("LuFactor: singular matrix at column " +
                                std::to_string(k));
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const T diag = lu_(k, k);
    // Trailing-panel update. Each row i > k is eliminated independently with
    // arithmetic identical to the serial loop (row k is read-only here), so
    // the parallel path is bitwise-equal to serial; the gate just skips pool
    // dispatch when the remaining panel is too small to pay for it.
    auto update_rows = [&](std::size_t i_begin, std::size_t i_end) {
      for (std::size_t i = i_begin; i < i_end; ++i) {
        const T factor = lu_(i, k) / diag;
        lu_(i, k) = factor;
        if (factor == T{}) continue;
        for (std::size_t j = k + 1; j < n; ++j)
          lu_(i, j) -= factor * lu_(k, j);
      }
    };
    const std::size_t rows = n - k - 1;
    if (rows >= 64)
      runtime::parallel_for(
          rows,
          [&](std::size_t a, std::size_t b) {
            update_rows(k + 1 + a, k + 1 + b);
          },
          {.grain = 16});
    else
      update_rows(k + 1, n);
  }

  double umax = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      umax = std::max(umax, magnitude(lu_(i, j)));
  pivot_growth_ = amax > 0.0 ? umax / amax : 0.0;
}

template <typename T>
std::vector<T> LuFactor<T>::solve(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size");
  std::vector<T> x(n);
  // Apply permutation, then forward-substitute with unit-diagonal L.
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back-substitute with U.
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

template <typename T>
DenseMatrix<T> LuFactor<T>::solve(const DenseMatrix<T>& b) const {
  DenseMatrix<T> x(b.rows(), b.cols());
  // Column-parallel multi-RHS solve: columns are independent and each chunk
  // writes a disjoint set of them, so this matches the serial column loop.
  runtime::parallel_for(b.cols(), [&](std::size_t j_begin, std::size_t j_end) {
    std::vector<T> col(b.rows());
    for (std::size_t j = j_begin; j < j_end; ++j) {
      for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
      const auto sol = solve(col);
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
    }
  });
  return x;
}

template <typename T>
std::vector<T> LuFactor<T>::solve_transposed(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n)
    throw std::invalid_argument("LuFactor::solve_transposed: size");
  // P A = L U  =>  A^T = U^T L^T P; solve U^T z = b (forward, diag of U),
  // then L^T w = z (backward, unit diag), then x = P^T w.
  std::vector<T> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    T acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = z[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * z[j];
    z[ii] = acc;
  }
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

template <typename T>
double LuFactor<T>::condition_estimate() const {
  const std::size_t n = size();
  if (n == 0) return 0.0;
  // Hager's 1-norm estimator for ||A^-1||_1: maximise ||A^-1 x||_1 over the
  // unit 1-norm ball by following sign-vector gradients. Deterministic, a
  // bounded handful of O(n^2) solves.
  std::vector<T> x(n, T{1.0} / static_cast<double>(n));
  double est = 0.0;
  std::size_t last_j = n;  // unit-vector index of the previous iteration
  for (int iter = 0; iter < 5; ++iter) {
    const std::vector<T> y = solve(x);
    double y1 = 0.0;
    for (const T& v : y) y1 += magnitude(v);
    if (!std::isfinite(y1)) return std::numeric_limits<double>::infinity();
    est = std::max(est, y1);
    std::vector<T> xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = sign_of(y[i]);
    const std::vector<T> z = solve_transposed(xi);
    std::size_t j = 0;
    double zmax = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double m = magnitude(z[i]);
      if (m > zmax) {
        zmax = m;
        j = i;
      }
    }
    if (j == last_j || zmax <= y1) break;
    last_j = j;
    std::fill(x.begin(), x.end(), T{});
    x[j] = T{1.0};
  }
  return norm1_ * est;
}

template <typename T>
T LuFactor<T>::determinant() const {
  T det = static_cast<T>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

template class LuFactor<double>;
template class LuFactor<Complex>;

Vector solve(Matrix a, const Vector& b) { return LU(std::move(a)).solve(b); }

CVector solve(CMatrix a, const CVector& b) {
  return CLU(std::move(a)).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LU(a).solve(Matrix::identity(a.rows()));
}

}  // namespace ind::la
