#include "la/lu.hpp"

#include <cmath>
#include <numeric>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::la {
namespace {

double magnitude(double x) { return std::abs(x); }
double magnitude(const Complex& x) { return std::abs(x); }

}  // namespace

template <typename T>
LuFactor<T>::LuFactor(DenseMatrix<T> a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuFactor: matrix must be square");
  runtime::ScopedTimer timer("factor.lu");
  const std::size_t n = lu_.rows();
  runtime::MetricsRegistry::instance().max_count(
      "factor.lu.max_dim", static_cast<std::int64_t>(n));
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = magnitude(lu_(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best == 0.0)
      throw SingularMatrixError("LuFactor: singular matrix at column " +
                                std::to_string(k));
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const T diag = lu_(k, k);
    // Trailing-panel update. Each row i > k is eliminated independently with
    // arithmetic identical to the serial loop (row k is read-only here), so
    // the parallel path is bitwise-equal to serial; the gate just skips pool
    // dispatch when the remaining panel is too small to pay for it.
    auto update_rows = [&](std::size_t i_begin, std::size_t i_end) {
      for (std::size_t i = i_begin; i < i_end; ++i) {
        const T factor = lu_(i, k) / diag;
        lu_(i, k) = factor;
        if (factor == T{}) continue;
        for (std::size_t j = k + 1; j < n; ++j)
          lu_(i, j) -= factor * lu_(k, j);
      }
    };
    const std::size_t rows = n - k - 1;
    if (rows >= 64)
      runtime::parallel_for(
          rows,
          [&](std::size_t a, std::size_t b) {
            update_rows(k + 1 + a, k + 1 + b);
          },
          {.grain = 16});
    else
      update_rows(k + 1, n);
  }
}

template <typename T>
std::vector<T> LuFactor<T>::solve(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size");
  std::vector<T> x(n);
  // Apply permutation, then forward-substitute with unit-diagonal L.
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back-substitute with U.
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

template <typename T>
DenseMatrix<T> LuFactor<T>::solve(const DenseMatrix<T>& b) const {
  DenseMatrix<T> x(b.rows(), b.cols());
  // Column-parallel multi-RHS solve: columns are independent and each chunk
  // writes a disjoint set of them, so this matches the serial column loop.
  runtime::parallel_for(b.cols(), [&](std::size_t j_begin, std::size_t j_end) {
    std::vector<T> col(b.rows());
    for (std::size_t j = j_begin; j < j_end; ++j) {
      for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
      const auto sol = solve(col);
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
    }
  });
  return x;
}

template <typename T>
T LuFactor<T>::determinant() const {
  T det = static_cast<T>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

template class LuFactor<double>;
template class LuFactor<Complex>;

Vector solve(Matrix a, const Vector& b) { return LU(std::move(a)).solve(b); }

CVector solve(CMatrix a, const CVector& b) {
  return CLU(std::move(a)).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LU(a).solve(Matrix::identity(a.rows()));
}

}  // namespace ind::la
