// Cholesky (LL^T) factorisation for symmetric positive-definite systems.
//
// Two roles in this repo, both straight from the paper:
//  * PSD verification of sparsified partial-inductance matrices (Section 4:
//    truncation can yield a non-positive-definite matrix, whereas shell /
//    block-diagonal schemes guarantee positive definiteness).
//  * Fast direct solves of the manipulated MNA matrix in the combined
//    block-diagonal + PRIMA flow, which the paper notes "can be solved very
//    fast using a direct solver based on the Cholesky method".
#pragma once

#include <optional>

#include "la/dense_matrix.hpp"

namespace ind::la {

/// Cholesky factor L with A = L L^T. Construction fails (empty optional via
/// Cholesky::factor) if A is not positive definite.
class Cholesky {
 public:
  /// Attempts the factorisation; std::nullopt if a pivot is <= 0 (matrix not
  /// positive definite to working precision).
  static std::optional<Cholesky> factor(const Matrix& a);

  std::size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  Vector solve(const Vector& b) const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// True if the symmetric matrix is positive definite (Cholesky succeeds).
/// This is the stability certificate used throughout sparsify/.
bool is_positive_definite(const Matrix& a);

/// Smallest eigenvalue estimate via bisection on `is_positive_definite`
/// applied to A - t*I. Used to quantify *how* indefinite truncation made the
/// inductance matrix. `scale_hint` should be a typical diagonal magnitude.
double min_eigenvalue_bisect(const Matrix& a, double scale_hint,
                             int iterations = 60);

}  // namespace ind::la
