// Restarted GMRES for complex linear systems, matrix-free.
//
// The FFT-accelerated loop extractor (src/fast/) applies the MQS system
// operator in O(n log n) without ever materialising it, so the factor-based
// solvers in lu.hpp / sparse_lu.hpp do not apply. GMRES(m) with a right
// preconditioner is the standard companion: right preconditioning keeps the
// monitored residual equal to the *true* residual ||b - A x|| (the Arnoldi
// recurrence runs on A M^-1), so the convergence test is meaningful even
// when the preconditioner is crude.
//
// Determinism contract: the Arnoldi process, the Givens least-squares update
// and the restart schedule are strictly serial and allocation-stable — given
// the same operator apply results, the iterate sequence is bitwise identical
// at any thread count. Per-iteration work is charged to the governor with a
// unit count that is a pure function of the problem size, so IND_WORK_BUDGET
// trips inside the loop reproduce bitwise (govern/budget.hpp contract).
//
// Fault injection: each iteration asks fire(Site::GmresIter) once; an
// injected fault is treated as a numerical breakdown of the Arnoldi basis
// (result.breakdown), which the caller's recovery ladder handles like any
// real stagnation (retry -> larger restart -> dense fallback).
#pragma once

#include <cstddef>
#include <functional>

#include "la/dense_matrix.hpp"

namespace ind::la {

/// y = op(x); must not retain references to x or y past the call.
using CApplyFn = std::function<void(const CVector& x, CVector& y)>;

struct GmresOptions {
  std::size_t restart = 60;       ///< Krylov dimension per cycle, m
  std::size_t max_restarts = 20;  ///< cycles before giving up
  double tol = 1e-10;             ///< relative residual ||b - Ax|| / ||b||
  /// A cycle that shrinks the residual by less than this factor counts as
  /// stagnated; two consecutive stagnant cycles abort the solve so the
  /// caller's ladder can escalate instead of burning the iteration budget.
  double stagnation_ratio = 0.9;
  /// Work units charged to govern::checkpoint() per iteration, scaled by the
  /// problem size inside gmres() (pure function of n — see budget.hpp).
  std::size_t work_divisor = 256;
};

struct GmresResult {
  bool converged = false;
  bool stagnated = false;   ///< aborted on consecutive no-progress cycles
  bool breakdown = false;   ///< Arnoldi breakdown (incl. injected faults)
  std::size_t iterations = 0;  ///< total Arnoldi steps across all cycles
  std::size_t restarts = 0;    ///< completed restart cycles
  double relative_residual = -1.0;  ///< final true-residual ratio; -1 if b=0
};

/// Solves A x = b with restarted GMRES. `apply` computes y = A x. When
/// `precond` is non-null it computes y = M^-1 x and the iteration solves
/// A M^-1 u = b with x = M^-1 u (right preconditioning). `x` is the initial
/// guess on entry (zero it for a cold start) and the best iterate on return.
/// Throws govern::CancelledError when the run budget trips mid-iteration.
GmresResult gmres(const CApplyFn& apply, const CVector& b, CVector& x,
                  const CApplyFn* precond = nullptr,
                  const GmresOptions& opts = {});

}  // namespace ind::la
