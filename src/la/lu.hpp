// Dense LU factorisation with partial pivoting, for real and complex systems.
//
// Used by the transient engine (one factorisation per constant timestep,
// reused for every step) and by the AC engine (one complex factorisation per
// frequency point), mirroring how interconnect simulators amortise solves.
//
// The elimination is cache-blocked (la/kernels.hpp): panel factor with
// partial pivoting, unit-lower TRSM on the panel's trailing row block, then
// a rank-kb GEMM on the trailing matrix. Because every kernel applies the
// updates to each element in ascending pivot order, the blocked factor is
// bitwise-identical to the classic unblocked loop (block = 1) and to itself
// at any IND_THREADS for a fixed block size. float / complex<float>
// instantiations back the mixed-precision refinement path (la/refine.hpp).
#pragma once

#include <complex>
#include <stdexcept>

#include "la/dense_matrix.hpp"

namespace ind::la {

/// Thrown when a factorisation encounters an (numerically) singular pivot.
class SingularMatrixError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Fixed blocking configuration of a factorisation. Results are bitwise
/// deterministic per configuration: the same block size reproduces the same
/// bits at any thread count, and every block size is bitwise-identical to
/// the unblocked elimination (block = 1) by the kernel ordering contract.
struct LuOptions {
  /// Panel width. 0 resolves to the IND_LU_BLOCK env knob (default 48,
  /// clamped to [1, 512]); 1 degenerates to the classic unblocked loop.
  std::size_t block = 0;
};

/// LU decomposition P*A = L*U with partial pivoting, stored packed in-place.
template <typename T>
class LuFactor {
 public:
  LuFactor() = default;

  /// Factorises a square matrix. Throws SingularMatrixError on breakdown.
  explicit LuFactor(DenseMatrix<T> a) : LuFactor(std::move(a), LuOptions{}) {}
  LuFactor(DenseMatrix<T> a, const LuOptions& opts);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Solves A X = B over column blocks (each column's arithmetic is
  /// bitwise-identical to the vector solve). Throws std::invalid_argument
  /// up front when B.rows() != size().
  DenseMatrix<T> solve(const DenseMatrix<T>& b) const;

  /// Solves A^T x = b (used by the 1-norm condition estimator).
  std::vector<T> solve_transposed(const std::vector<T>& b) const;

  /// Determinant (product of pivots with sign of the permutation).
  T determinant() const;

  /// Packed L\U storage (unit-lower L below the diagonal, U on and above).
  /// Exposed for the determinism digests in bench/tests.
  const DenseMatrix<T>& packed() const { return lu_; }

  /// Row permutation: row i of the factored system came from row perm()[i].
  const std::vector<std::size_t>& perm() const { return perm_; }

  // --- robustness diagnostics ----------------------------------------------
  /// 1-norm of the original (unfactored) matrix.
  double norm1() const { return norm1_; }

  /// Element-growth ratio max|U| / max|A|: large growth flags a factorisation
  /// whose backward error is poor even though no pivot was exactly zero.
  double pivot_growth() const { return pivot_growth_; }

  /// Deterministic 1-norm condition estimate kappa_1(A) ~= ||A||_1 ||A^-1||_1
  /// via Hager's method (a handful of forward/transposed solves, O(n^2)).
  double condition_estimate() const;

 private:
  DenseMatrix<T> lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  double norm1_ = 0.0;
  double pivot_growth_ = 0.0;
};

using LU = LuFactor<double>;
using CLU = LuFactor<Complex>;
// Single-precision factors of the mixed-precision refinement path.
using FLU = LuFactor<float>;
using CFLU = LuFactor<std::complex<float>>;

/// Convenience: solve A x = b with a one-shot factorisation.
Vector solve(Matrix a, const Vector& b);
CVector solve(CMatrix a, const CVector& b);

/// Dense inverse (used for the K = L^-1 matrix of Section 4).
Matrix inverse(const Matrix& a);

}  // namespace ind::la
