#include "la/amd.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

namespace ind::la {
namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

std::vector<std::size_t> amd_order(const CscMatrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("amd_order: matrix must be square");
  const std::size_t n = a.rows();
  std::vector<std::size_t> order;
  order.reserve(n);
  if (n == 0) return order;

  // Symmetric adjacency of A + Aᵀ, no self-loops, sorted and deduplicated.
  std::vector<std::vector<std::size_t>> var_adj(n);
  {
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_idx();
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = cp[j]; p < cp[j + 1]; ++p) {
        const std::size_t i = ri[p];
        if (i == j) continue;
        var_adj[i].push_back(j);
        var_adj[j].push_back(i);
      }
    }
    for (auto& nb : var_adj) {
      std::sort(nb.begin(), nb.end());
      nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    }
  }

  // Quotient graph: an eliminated pivot p becomes element p whose variable
  // list elem_vars[p] is the clique its elimination would fill in. Variables
  // track plain-edge neighbours (var_adj, shrinking as edges get covered by
  // elements) plus adjacent elements (var_elem).
  std::vector<std::vector<std::size_t>> elem_vars(n);
  std::vector<std::vector<std::size_t>> var_elem(n);
  std::vector<char> alive(n, 1);
  std::vector<char> absorbed(n, 0);
  std::vector<std::size_t> degree(n), mark(n, kNone);

  // (degree, node) priority set: deterministic min-degree with
  // smallest-index tie-break.
  std::set<std::pair<std::size_t, std::size_t>> queue;
  for (std::size_t i = 0; i < n; ++i) {
    degree[i] = var_adj[i].size();
    queue.emplace(degree[i], i);
  }

  std::vector<std::size_t> lp;  // variables of the new element
  for (std::size_t k = 0; k < n; ++k) {
    const auto [d, p] = *queue.begin();
    queue.erase(queue.begin());
    (void)d;

    // L_p = (adjacent variables ∪ variables of adjacent elements) \ {p}.
    lp.clear();
    mark[p] = k;
    for (const std::size_t v : var_adj[p]) {
      if (!alive[v] || mark[v] == k) continue;
      mark[v] = k;
      lp.push_back(v);
    }
    for (const std::size_t e : var_elem[p]) {
      for (const std::size_t v : elem_vars[e]) {
        if (!alive[v] || mark[v] == k) continue;
        mark[v] = k;
        lp.push_back(v);
      }
    }
    std::sort(lp.begin(), lp.end());

    // Old elements reachable from p are absorbed into the new element p.
    for (const std::size_t e : var_elem[p]) {
      absorbed[e] = 1;
      elem_vars[e].clear();
      elem_vars[e].shrink_to_fit();
    }
    var_elem[p].clear();
    elem_vars[p] = lp;

    for (const std::size_t i : lp) {
      // Edges into L_p ∪ {p} are now covered by element p; dead variables
      // are dropped on the same pass.
      auto& nb = var_adj[i];
      nb.erase(std::remove_if(nb.begin(), nb.end(),
                              [&](std::size_t v) {
                                return !alive[v] || v == p || mark[v] == k;
                              }),
               nb.end());
      auto& el = var_elem[i];
      el.erase(std::remove_if(el.begin(), el.end(),
                              [&](std::size_t e) { return absorbed[e] != 0; }),
               el.end());
      el.push_back(p);

      // Approximate external degree: plain edges plus element sizes (shared
      // members may be double-counted — the "approximate" in AMD).
      std::size_t d2 = nb.size();
      for (const std::size_t e : el) d2 += elem_vars[e].size() - 1;
      queue.erase({degree[i], i});
      degree[i] = d2;
      queue.emplace(d2, i);
    }

    alive[p] = 0;
    var_adj[p].clear();
    var_adj[p].shrink_to_fit();
    order.push_back(p);
  }
  return order;
}

}  // namespace ind::la
