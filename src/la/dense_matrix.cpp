#include "la/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace ind::la {

double max_abs(const Matrix& m) {
  double best = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      best = std::max(best, std::abs(m(i, j)));
  return best;
}

double frobenius_norm(const Matrix& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) acc += m(i, j) * m(i, j);
  return std::sqrt(acc);
}

double inf_norm(const Vector& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

double inf_norm(const CVector& v) {
  double best = 0.0;
  for (const Complex& x : v) best = std::max(best, std::abs(x));
  return best;
}

double dot(const Vector& a, const Vector& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

void axpy(double s, const Vector& b, Vector& a) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

bool is_symmetric(const Matrix& m, double tol) {
  if (m.rows() != m.cols()) return false;
  const double scale = std::max(max_abs(m), 1e-300);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = i + 1; j < m.cols(); ++j)
      if (std::abs(m(i, j) - m(j, i)) > tol * scale) return false;
  return true;
}

}  // namespace ind::la
