// Block orthonormalisation via modified Gram-Schmidt.
//
// PRIMA (Section 4, [20]) builds an orthonormal projection basis from block
// Krylov vectors; numerically this is a repeated-MGS QR of tall-skinny
// matrices. Rank-deficient columns (deflation) are dropped, which PRIMA
// requires when ports outnumber independent moments.
#pragma once

#include "la/dense_matrix.hpp"

namespace ind::la {

struct QrResult {
  Matrix q;              ///< n x r with orthonormal columns (r <= input cols)
  std::size_t rank = 0;  ///< number of retained columns
};

/// Orthonormalises the columns of `a` (modified Gram-Schmidt with one
/// re-orthogonalisation pass). Columns whose residual norm falls below
/// `drop_tol * original_norm` are deflated.
QrResult orthonormalize(const Matrix& a, double drop_tol = 1e-10);

/// Orthonormalises the columns of `a` against an existing orthonormal basis
/// `q` first, then internally. Returns only the *new* orthonormal columns.
QrResult orthonormalize_against(const Matrix& a, const Matrix& q,
                                double drop_tol = 1e-10);

/// Horizontal concatenation [a | b] (b may be empty).
Matrix hcat(const Matrix& a, const Matrix& b);

}  // namespace ind::la
