#include "la/sparse.hpp"

#include <algorithm>
#include <stdexcept>

namespace ind::la {

Matrix TripletMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (const Entry& e : entries_) m(e.row, e.col) += e.value;
  return m;
}

CscMatrix::CscMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> col_ptr,
                     std::vector<std::size_t> row_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  if (col_ptr_.size() != cols_ + 1 || row_idx_.size() != values_.size() ||
      (cols_ > 0 && col_ptr_.back() != values_.size()))
    throw std::invalid_argument("CscMatrix: inconsistent compressed arrays");
  for (std::size_t r : row_idx_)
    if (r >= rows_) throw std::invalid_argument("CscMatrix: row out of range");
  recharge();
}

CscMatrix::CscMatrix(const TripletMatrix& t) : rows_(t.rows()), cols_(t.cols()) {
  // Count entries per column.
  std::vector<std::size_t> count(cols_ + 1, 0);
  for (const auto& e : t.entries()) {
    if (e.row >= rows_ || e.col >= cols_)
      throw std::out_of_range("CscMatrix: triplet out of range");
    ++count[e.col + 1];
  }
  col_ptr_.assign(cols_ + 1, 0);
  for (std::size_t j = 0; j < cols_; ++j) col_ptr_[j + 1] = col_ptr_[j] + count[j + 1];

  std::vector<std::size_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  std::vector<std::size_t> raw_rows(t.entry_count());
  std::vector<double> raw_vals(t.entry_count());
  for (const auto& e : t.entries()) {
    const std::size_t pos = cursor[e.col]++;
    raw_rows[pos] = e.row;
    raw_vals[pos] = e.value;
  }

  // Sort each column by row and merge duplicates.
  row_idx_.reserve(raw_rows.size());
  values_.reserve(raw_vals.size());
  std::vector<std::size_t> new_ptr(cols_ + 1, 0);
  std::vector<std::pair<std::size_t, double>> colbuf;
  for (std::size_t j = 0; j < cols_; ++j) {
    colbuf.clear();
    for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p)
      colbuf.emplace_back(raw_rows[p], raw_vals[p]);
    std::sort(colbuf.begin(), colbuf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::size_t col_start = row_idx_.size();
    for (const auto& [row, val] : colbuf) {
      const bool merge = row_idx_.size() > col_start && row_idx_.back() == row;
      if (merge) {
        values_.back() += val;
      } else {
        row_idx_.push_back(row);
        values_.push_back(val);
      }
    }
    new_ptr[j + 1] = row_idx_.size();
  }
  col_ptr_ = std::move(new_ptr);
  recharge();
}

Vector CscMatrix::apply(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CscMatrix::apply: size");
  Vector y(rows_, 0.0);
  for (std::size_t j = 0; j < cols_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p)
      y[row_idx_[p]] += values_[p] * xj;
  }
  return y;
}

Matrix CscMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t j = 0; j < cols_; ++j)
    for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p)
      m(row_idx_[p], j) += values_[p];
  return m;
}

}  // namespace ind::la
