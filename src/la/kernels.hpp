// Cache-blocked BLAS3-style micro-kernels for the dense layer.
//
// These are the building blocks of the blocked right-looking LU and the
// blocked Cholesky panels: a rank-kb GEMM update and a unit-lower TRSM,
// written as portable auto-vectorizable loops (contiguous row-major inner
// j loop, no intrinsics, no FMA contraction dependence) rather than calls
// into an external BLAS.
//
// Determinism / bitwise contract. Every kernel applies its updates to each
// output element C(i, j) as a sequence of individual `c -= a * b`
// subtractions in ascending k (resp. ascending m) order. That is exactly the
// order in which the classic unblocked right-looking elimination touches the
// element, so a blocked factorisation built from these kernels is
// bitwise-identical to the unblocked loop — and, since parallel callers give
// each chunk a disjoint row/column range, bitwise-identical at any
// IND_THREADS. The k-unrolling below fuses 8 consecutive pivot updates of an
// element into one load/compute/store chain; each fused chain still applies
// the same rounded `c - a*b` subtractions in the same ascending-k order, so
// the values are unchanged. This relies on the build not enabling FMA
// contraction (see the top-level CMakeLists: -mno-fma on purpose).
//
// Shape note: the j loop is innermost and contiguous on B rows and the C row.
// That is deliberately NOT a fixed-size register tile — with leading
// dimensions only known at run time, GCC's SLP vectoriser abandons small
// fixed-extent accumulator arrays (everything spills to the stack, measured
// ~4x slower at n = 2048), while a contiguous innermost j loop vectorises
// cleanly regardless of stride. Unrolling k by 8 then cuts the C-row
// load/store traffic 8x, which is what makes the update compute-bound: the
// unrolled body saturates both FP ports of a non-FMA AVX2 core (~4 flops per
// cycle). Unrolling further (12/16) spills the broadcast registers and is
// measurably slower.
#pragma once

#include <algorithm>
#include <cstddef>

namespace ind::la::kernels {

/// Column-strip width for the GEMM update: the 8 active B row strips
/// (kGemmUnrollK x kGemmStrip x 8 bytes = 16 KiB for doubles) plus the C row
/// strip stay L1-resident across the i loop.
inline constexpr std::size_t kGemmStrip = 256;

/// Per-type k-direction unroll: each pass over a C row strip applies this
/// many consecutive pivots, so C is loaded and stored once per that many
/// rank-1 updates. 8 saturates both FP ports for double; wider types
/// (complex arithmetic, float's doubled lane count) spill the unrolled
/// broadcast registers at 8 and measure faster at 4.
template <typename T>
inline constexpr std::size_t kGemmUnrollK = 4;
template <>
inline constexpr std::size_t kGemmUnrollK<double> = 8;

/// C -= A * B for row-major operands with independent leading dimensions:
/// C is mr x nc (ldc), A is mr x kb (lda), B is kb x nc (ldb).
/// Per-element accumulation order: for each (i, j), k ascends 0..kb-1.
template <typename T>
void gemm_minus(std::size_t mr, std::size_t nc, std::size_t kb, const T* a,
                std::size_t lda, const T* b, std::size_t ldb, T* c,
                std::size_t ldc) {
  constexpr std::size_t KU = kGemmUnrollK<T>;
  for (std::size_t j0 = 0; j0 < nc; j0 += kGemmStrip) {
    const std::size_t j1 = std::min(j0 + kGemmStrip, nc);
    for (std::size_t i = 0; i < mr; ++i) {
      const T* ai = a + i * lda;
      T* ci = c + i * ldc;
      std::size_t k = 0;
      for (; k + KU <= kb; k += KU) {
        T x[KU];
        const T* bp[KU];
        for (std::size_t u = 0; u < KU; ++u) {
          x[u] = ai[k + u];
          bp[u] = b + (k + u) * ldb;
        }
        for (std::size_t j = j0; j < j1; ++j) {
          T s = ci[j];
          for (std::size_t u = 0; u < KU; ++u) s -= x[u] * bp[u][j];
          ci[j] = s;
        }
      }
      for (; k < kb; ++k) {
        const T aik = ai[k];
        const T* bk = b + k * ldb;
        for (std::size_t j = j0; j < j1; ++j) ci[j] -= aik * bk[j];
      }
    }
  }
}

/// In-place forward substitution with a unit-lower triangular block:
/// C <- L^-1 C where L is the kb x kb unit-lower block at `l` (ldl) and C is
/// kb x nc (ldc). Row k of the result accumulates -= L(k, m) * C(m, :) in
/// ascending m < k — the same per-element order as unblocked elimination
/// applying pivot steps m = 0..k-1 to a row of the trailing matrix.
template <typename T>
void trsm_lower_unit_minus(std::size_t kb, std::size_t nc, const T* l,
                           std::size_t ldl, T* c, std::size_t ldc) {
  for (std::size_t k = 1; k < kb; ++k) {
    const T* lk = l + k * ldl;
    T* ck = c + k * ldc;
    for (std::size_t m = 0; m < k; ++m) {
      const T lkm = lk[m];
      const T* cm = c + m * ldc;
      for (std::size_t j = 0; j < nc; ++j) ck[j] -= lkm * cm[j];
    }
  }
}

}  // namespace ind::la::kernels
