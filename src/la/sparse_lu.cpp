#include "la/sparse_lu.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "runtime/metrics.hpp"

namespace ind::la {
namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

SparseLu::SparseLu(const CscMatrix& a) : n_(a.rows()) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("SparseLu: matrix must be square");
  runtime::ScopedTimer timer("factor.sparse_lu");
  runtime::MetricsRegistry::instance().max_count(
      "factor.sparse_lu.max_nnz", static_cast<std::int64_t>(a.nnz()));
  lower_.resize(n_);
  upper_.resize(n_);
  diag_.assign(n_, 0.0);
  perm_.assign(n_, kNone);

  std::vector<std::size_t> pinv(n_, kNone);  // original row -> pivot step
  std::vector<double> x(n_, 0.0);
  std::vector<std::size_t> mark(n_, kNone);  // last column that visited row
  std::vector<std::size_t> node_stack, child_pos, pattern;
  node_stack.reserve(n_);
  child_pos.reserve(n_);
  pattern.reserve(64);

  const auto& cp = a.col_ptr();
  const auto& ri = a.row_idx();
  const auto& av = a.values();

  for (std::size_t k = 0; k < n_; ++k) {
    // --- Symbolic: pattern of x = L \ A(:,k) via DFS through L's columns.
    pattern.clear();
    for (std::size_t p = cp[k]; p < cp[k + 1]; ++p) {
      std::size_t start = ri[p];
      if (mark[start] == k) continue;
      node_stack.assign(1, start);
      child_pos.assign(1, 0);
      mark[start] = k;
      while (!node_stack.empty()) {
        const std::size_t node = node_stack.back();
        const std::size_t piv = pinv[node];
        const auto* col = piv == kNone ? nullptr : &lower_[piv];
        bool descended = false;
        while (col && child_pos.back() < col->rows.size()) {
          const std::size_t child = col->rows[child_pos.back()++];
          if (mark[child] != k) {
            mark[child] = k;
            node_stack.push_back(child);
            child_pos.push_back(0);
            descended = true;
            break;
          }
        }
        if (!descended) {
          pattern.push_back(node);  // post-order
          node_stack.pop_back();
          child_pos.pop_back();
        }
      }
    }

    // --- Numeric: scatter A(:,k), then eliminate in topological order.
    for (std::size_t node : pattern) x[node] = 0.0;
    for (std::size_t p = cp[k]; p < cp[k + 1]; ++p) x[ri[p]] += av[p];
    for (std::size_t idx = pattern.size(); idx-- > 0;) {
      const std::size_t node = pattern[idx];
      const std::size_t piv = pinv[node];
      if (piv == kNone) continue;
      const double xn = x[node];
      if (xn == 0.0) continue;
      const Col& col = lower_[piv];
      for (std::size_t q = 0; q < col.rows.size(); ++q)
        x[col.rows[q]] -= col.vals[q] * xn;
    }

    // --- Partial pivoting among not-yet-pivoted rows.
    std::size_t pivot_row = kNone;
    double best = 0.0;
    for (std::size_t node : pattern) {
      if (pinv[node] != kNone) continue;
      const double mag = std::abs(x[node]);
      if (mag > best) {
        best = mag;
        pivot_row = node;
      }
    }
    if (pivot_row == kNone || best == 0.0)
      throw SingularMatrixError("SparseLu: singular at column " +
                                std::to_string(k));
    perm_[k] = pivot_row;
    pinv[pivot_row] = k;
    diag_[k] = x[pivot_row];

    for (std::size_t node : pattern) {
      const double val = x[node];
      x[node] = 0.0;
      if (node == pivot_row || val == 0.0) continue;
      const std::size_t piv = pinv[node];
      if (piv != kNone) {
        upper_[k].rows.push_back(piv);
        upper_[k].vals.push_back(val);
      } else {
        lower_[k].rows.push_back(node);
        lower_[k].vals.push_back(val / diag_[k]);
      }
    }
  }
}

std::size_t SparseLu::fill_nnz() const {
  std::size_t nnz = n_;
  for (const Col& c : lower_) nnz += c.rows.size();
  for (const Col& c : upper_) nnz += c.rows.size();
  return nnz;
}

Vector SparseLu::solve(const Vector& b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve: size");
  // Forward substitution: y = L^{-1} P b, with L columns holding original
  // row indices so updates scatter directly into `work`.
  Vector work = b;
  Vector y(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = work[perm_[k]];
    y[k] = yk;
    if (yk == 0.0) continue;
    const Col& col = lower_[k];
    for (std::size_t q = 0; q < col.rows.size(); ++q)
      work[col.rows[q]] -= col.vals[q] * yk;
  }
  // Back substitution with U (entries of column k sit at pivot rows < k).
  for (std::size_t k = n_; k-- > 0;) {
    const double xk = y[k] / diag_[k];
    y[k] = xk;
    if (xk == 0.0) continue;
    const Col& col = upper_[k];
    for (std::size_t q = 0; q < col.rows.size(); ++q)
      y[col.rows[q]] -= col.vals[q] * xk;
  }
  return y;
}

}  // namespace ind::la
