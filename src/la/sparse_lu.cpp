#include "la/sparse_lu.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "govern/budget.hpp"
#include "la/amd.hpp"
#include "runtime/metrics.hpp"

namespace ind::la {
namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
// Threshold for diagonal-preference pivoting: the diagonal entry is taken
// whenever it is within this factor of the column's max magnitude (the
// usual MNA pivtol). Keeps the pivot sequence stable across value-only
// refactorisations of diagonally dominant circuit matrices, where a strict
// max-magnitude rule flips between near-equal off-diagonals and forces
// needless full refactorisations.
constexpr double kDiagPreference = 1e-3;
}

SparseLuSymbolic::SparseLuSymbolic(const CscMatrix& a) : n_(a.rows()) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("SparseLuSymbolic: matrix must be square");
  runtime::ScopedTimer timer("factor.sparse_lu.symbolic");
  order_ = amd_order(a);
  col_ptr_ = a.col_ptr();
  row_idx_ = a.row_idx();
}

bool SparseLuSymbolic::matches_pattern(const CscMatrix& a) const {
  return analysed() && a.rows() == n_ && a.cols() == n_ &&
         a.col_ptr() == col_ptr_ && a.row_idx() == row_idx_;
}

SparseLu::SparseLu(const CscMatrix& a) : SparseLu(a, SparseLuSymbolic(a)) {}

SparseLu::SparseLu(const CscMatrix& a, SparseLuSymbolic symbolic)
    : symbolic_(std::move(symbolic)), n_(a.rows()) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("SparseLu: matrix must be square");
  if (!symbolic_.matches_pattern(a)) symbolic_ = SparseLuSymbolic(a);
  if (symbolic_.factored()) {
    runtime::ScopedTimer timer("factor.sparse_lu.numeric");
    if (factor_impl<true>(a)) {
      runtime::MetricsRegistry::instance().add_count(
          "factor.sparse_lu.refactors", 1);
      return;
    }
    runtime::MetricsRegistry::instance().add_count(
        "factor.sparse_lu.pivot_drift", 1);
  }
  runtime::ScopedTimer timer("factor.sparse_lu");
  runtime::MetricsRegistry::instance().max_count(
      "factor.sparse_lu.max_nnz", static_cast<std::int64_t>(a.nnz()));
  factor_impl<false>(a);
  runtime::MetricsRegistry::instance().max_count(
      "factor.sparse_lu.fill_nnz", static_cast<std::int64_t>(fill_nnz()));
}

void SparseLu::refactor(const CscMatrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("SparseLu::refactor: matrix must be square");
  n_ = a.rows();
  if (symbolic_.factored() && symbolic_.matches_pattern(a)) {
    runtime::ScopedTimer timer("factor.sparse_lu.numeric");
    if (factor_impl<true>(a)) {
      runtime::MetricsRegistry::instance().add_count(
          "factor.sparse_lu.refactors", 1);
      return;
    }
    runtime::MetricsRegistry::instance().add_count(
        "factor.sparse_lu.pivot_drift", 1);
  }
  if (!symbolic_.matches_pattern(a)) symbolic_ = SparseLuSymbolic(a);
  runtime::ScopedTimer timer("factor.sparse_lu");
  runtime::MetricsRegistry::instance().max_count(
      "factor.sparse_lu.max_nnz", static_cast<std::int64_t>(a.nnz()));
  factor_impl<false>(a);
  runtime::MetricsRegistry::instance().max_count(
      "factor.sparse_lu.fill_nnz", static_cast<std::int64_t>(fill_nnz()));
}

template <bool kReuse>
bool SparseLu::factor_impl(const CscMatrix& a) {
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_idx();
  const auto& av = a.values();
  const auto& order = symbolic_.order_;
  auto& perm = symbolic_.perm_;
  auto& reach_ptr = symbolic_.reach_ptr_;
  auto& reach = symbolic_.reach_;

  lower_.resize(n_);
  upper_.resize(n_);
  diag_.assign(n_, 0.0);
  x_.assign(n_, 0.0);
  pinv_.assign(n_, kNone);  // original row -> pivot step

  std::vector<std::size_t> node_stack, child_pos, pattern;
  if constexpr (!kReuse) {
    // A partially recorded schedule (thrown singularity) must never be
    // mistaken for a valid one: invalidate up front, rebuild, and only the
    // complete loop below leaves reach_ptr at its full n+1 size.
    perm.assign(n_, kNone);
    reach_ptr.clear();
    reach.clear();
    mark_.assign(n_, kNone);  // last column that visited row
    node_stack.reserve(n_);
    child_pos.reserve(n_);
    pattern.reserve(64);
  }

  for (std::size_t k = 0; k < n_; ++k) {
    // Budget poll every 64 columns: the unit total is a pure function of n
    // (the factorisation is serial), so a work-budget trip here is
    // deterministic. CancelledError propagates past the recovery ladder
    // (which catches only SingularMatrixError) to the degradation ladder.
    if ((k & 63u) == 0 && govern::checkpoint(64))
      govern::throw_if_cancelled("sparse_lu.factor");
    const std::size_t j = order[k];
    const std::size_t* pat = nullptr;
    std::size_t pat_size = 0;
    if constexpr (kReuse) {
      // --- Symbolic phase skipped: replay the cached per-column reach.
      pat = reach.data() + reach_ptr[k];
      pat_size = reach_ptr[k + 1] - reach_ptr[k];
    } else {
      // --- Symbolic: pattern of x = L \ A(:,j) via DFS through L's columns.
      pattern.clear();
      for (std::size_t p = cp[j]; p < cp[j + 1]; ++p) {
        std::size_t start = ri[p];
        if (mark_[start] == k) continue;
        node_stack.assign(1, start);
        child_pos.assign(1, 0);
        mark_[start] = k;
        while (!node_stack.empty()) {
          const std::size_t node = node_stack.back();
          const std::size_t piv = pinv_[node];
          const auto* col = piv == kNone ? nullptr : &lower_[piv];
          bool descended = false;
          while (col && child_pos.back() < col->rows.size()) {
            const std::size_t child = col->rows[child_pos.back()++];
            if (mark_[child] != k) {
              mark_[child] = k;
              node_stack.push_back(child);
              child_pos.push_back(0);
              descended = true;
              break;
            }
          }
          if (!descended) {
            pattern.push_back(node);  // post-order
            node_stack.pop_back();
            child_pos.pop_back();
          }
        }
      }
      pat = pattern.data();
      pat_size = pattern.size();
    }

    // --- Numeric: scatter A(:,j), then eliminate in topological order.
    for (std::size_t idx = 0; idx < pat_size; ++idx) x_[pat[idx]] = 0.0;
    for (std::size_t p = cp[j]; p < cp[j + 1]; ++p) x_[ri[p]] += av[p];
    for (std::size_t idx = pat_size; idx-- > 0;) {
      const std::size_t node = pat[idx];
      const std::size_t piv = pinv_[node];
      if (piv == kNone) continue;
      const double xn = x_[node];
      if (xn == 0.0) continue;
      const Col& col = lower_[piv];
      for (std::size_t q = 0; q < col.rows.size(); ++q)
        x_[col.rows[q]] -= col.vals[q] * xn;
    }

    // --- Partial pivoting among not-yet-pivoted rows, preferring the
    // diagonal when it is within kDiagPreference of the column max. The
    // rule is shared by both modes, so the replayed sequence verifies
    // against exactly the choice a from-scratch factorisation would make.
    std::size_t pivot_row = kNone;
    double best = 0.0;
    double diag_mag = -1.0;  // row j still unpivoted and in the pattern
    for (std::size_t idx = 0; idx < pat_size; ++idx) {
      const std::size_t node = pat[idx];
      if (pinv_[node] != kNone) continue;
      const double mag = std::abs(x_[node]);
      if (node == j) diag_mag = mag;
      if (mag > best) {
        best = mag;
        pivot_row = node;
      }
    }
    if (diag_mag > 0.0 && diag_mag >= kDiagPreference * best) pivot_row = j;
    if constexpr (kReuse) {
      // The cached schedule is only valid while the fresh pivot choice
      // agrees with the recorded one (a kNone here is a singularity — the
      // full path rebuilds and reports it consistently).
      if (pivot_row != perm[k]) return false;
    } else {
      if (pivot_row == kNone || best == 0.0)
        throw SingularMatrixError("SparseLu: singular at column " +
                                  std::to_string(k));
      perm[k] = pivot_row;
    }
    pinv_[pivot_row] = k;
    diag_[k] = x_[pivot_row];

    // Numerically-zero entries are kept so the stored pattern is a pure
    // function of A's pattern and the pivot sequence — the invariant that
    // makes the replayed schedule bitwise-equivalent to a fresh DFS.
    Col& lo = lower_[k];
    Col& up = upper_[k];
    lo.rows.clear();
    lo.vals.clear();
    up.rows.clear();
    up.vals.clear();
    for (std::size_t idx = 0; idx < pat_size; ++idx) {
      const std::size_t node = pat[idx];
      const double val = x_[node];
      x_[node] = 0.0;
      if (node == pivot_row) continue;
      const std::size_t piv = pinv_[node];
      if (piv != kNone) {
        up.rows.push_back(piv);
        up.vals.push_back(val);
      } else {
        lo.rows.push_back(node);
        lo.vals.push_back(val / diag_[k]);
      }
    }

    if constexpr (!kReuse) {
      if (reach_ptr.empty()) reach_ptr.push_back(0);
      reach.insert(reach.end(), pattern.begin(), pattern.end());
      reach_ptr.push_back(reach.size());
    }
  }
  if constexpr (!kReuse) {
    if (reach_ptr.empty()) reach_ptr.push_back(0);  // n == 0
  }
  std::size_t bytes = diag_.size() * sizeof(double);
  for (const Col& c : lower_)
    bytes += c.rows.size() * sizeof(std::size_t) +
             c.vals.size() * sizeof(double);
  for (const Col& c : upper_)
    bytes += c.rows.size() * sizeof(std::size_t) +
             c.vals.size() * sizeof(double);
  charge_.set(bytes);
  return true;
}

std::size_t SparseLu::fill_nnz() const {
  std::size_t nnz = n_;
  for (const Col& c : lower_) nnz += c.rows.size();
  for (const Col& c : upper_) nnz += c.rows.size();
  return nnz;
}

Vector SparseLu::solve(const Vector& b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve: size");
  const auto& perm = symbolic_.perm_;
  const auto& order = symbolic_.order_;
  // Forward substitution: y = L^{-1} P b, with L columns holding original
  // row indices so updates scatter directly into `work`.
  Vector work = b;
  Vector y(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = work[perm[k]];
    y[k] = yk;
    if (yk == 0.0) continue;
    const Col& col = lower_[k];
    for (std::size_t q = 0; q < col.rows.size(); ++q)
      work[col.rows[q]] -= col.vals[q] * yk;
  }
  // Back substitution with U (entries of column k sit at pivot rows < k).
  for (std::size_t k = n_; k-- > 0;) {
    const double xk = y[k] / diag_[k];
    y[k] = xk;
    if (xk == 0.0) continue;
    const Col& col = upper_[k];
    for (std::size_t q = 0; q < col.rows.size(); ++q)
      y[col.rows[q]] -= col.vals[q] * xk;
  }
  // Undo the fill-reducing column permutation: step k solved for x[order[k]].
  Vector x(n_);
  for (std::size_t k = 0; k < n_; ++k) x[order[k]] = y[k];
  return x;
}

}  // namespace ind::la
