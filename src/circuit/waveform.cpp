#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ind::circuit {

std::optional<double> crossing_time(const la::Vector& time,
                                    const la::Vector& v, double level,
                                    bool rising) {
  if (time.size() != v.size())
    throw std::invalid_argument("crossing_time: size mismatch");
  if (v.empty()) return std::nullopt;
  // Already at (or beyond) the level at the first sample: the scan below
  // starts at i = 1 with a strict previous-sample inequality, which would
  // miss a waveform starting exactly at `level` — including an
  // exact-level plateau [level, level, ...] that never satisfies it.
  if (rising ? v[0] >= level : v[0] <= level) return time[0];
  for (std::size_t i = 1; i < v.size(); ++i) {
    const bool crossed = rising ? (v[i - 1] < level && v[i] >= level)
                                : (v[i - 1] > level && v[i] <= level);
    if (!crossed) continue;
    const double alpha = (level - v[i - 1]) / (v[i] - v[i - 1]);
    return time[i - 1] + alpha * (time[i] - time[i - 1]);
  }
  return std::nullopt;
}

std::optional<double> delay_50(const la::Vector& time, const la::Vector& v,
                               double v_initial, double v_final) {
  const double level = 0.5 * (v_initial + v_final);
  return crossing_time(time, v, level, v_final > v_initial);
}

double overshoot_fraction(const la::Vector& v, double v_initial,
                          double v_final) {
  const double swing = std::abs(v_final - v_initial);
  if (swing == 0.0 || v.empty()) return 0.0;
  // Worst excursion outside the [v_initial, v_final] band, either side:
  // a rising edge that rings back *below* its starting level (the
  // undershoot the paper's Figure 4 waveforms exhibit) is just as much an
  // excursion as the overshoot past the settled value.
  const double lo = std::min(v_initial, v_final);
  const double hi = std::max(v_initial, v_final);
  double worst = 0.0;
  for (double x : v) worst = std::max({worst, x - hi, lo - x});
  return worst / swing;
}

double peak_noise(const la::Vector& v, double nominal) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::abs(x - nominal));
  return worst;
}

SkewReport measure_skew(const la::Vector& time,
                        const std::vector<la::Vector>& sink_waveforms,
                        const std::vector<std::string>& sink_names,
                        double v_initial, double v_final) {
  if (sink_waveforms.size() != sink_names.size())
    throw std::invalid_argument("measure_skew: names/waveforms mismatch");
  if (sink_waveforms.empty())
    throw std::invalid_argument("measure_skew: no sinks");
  SkewReport report;
  report.worst_delay = -std::numeric_limits<double>::infinity();
  report.best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sink_waveforms.size(); ++i) {
    const auto d = delay_50(time, sink_waveforms[i], v_initial, v_final);
    if (!d.has_value()) {
      // A sink that never reaches 50% is reported explicitly instead of as
      // an infinite delay — a delay of inf used to poison the skew into
      // inf - inf = NaN when no sink crossed at all.
      report.non_crossing_sinks.push_back(sink_names[i]);
      continue;
    }
    if (*d > report.worst_delay) {
      report.worst_delay = *d;
      report.worst_sink = sink_names[i];
    }
    if (*d < report.best_delay) {
      report.best_delay = *d;
      report.best_sink = sink_names[i];
    }
  }
  if (report.non_crossing_sinks.size() == sink_waveforms.size()) {
    // No sink crossed: delays are unbounded but the skew stays well-defined
    // (inf, not inf - inf = NaN).
    report.worst_delay = std::numeric_limits<double>::infinity();
    report.best_delay = std::numeric_limits<double>::infinity();
    report.skew = std::numeric_limits<double>::infinity();
    return report;
  }
  report.skew = report.worst_delay - report.best_delay;
  return report;
}

}  // namespace ind::circuit
