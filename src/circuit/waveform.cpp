#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ind::circuit {

std::optional<double> crossing_time(const la::Vector& time,
                                    const la::Vector& v, double level,
                                    bool rising) {
  if (time.size() != v.size())
    throw std::invalid_argument("crossing_time: size mismatch");
  for (std::size_t i = 1; i < v.size(); ++i) {
    const bool crossed = rising ? (v[i - 1] < level && v[i] >= level)
                                : (v[i - 1] > level && v[i] <= level);
    if (!crossed) continue;
    const double alpha = (level - v[i - 1]) / (v[i] - v[i - 1]);
    return time[i - 1] + alpha * (time[i] - time[i - 1]);
  }
  return std::nullopt;
}

std::optional<double> delay_50(const la::Vector& time, const la::Vector& v,
                               double v_initial, double v_final) {
  const double level = 0.5 * (v_initial + v_final);
  return crossing_time(time, v, level, v_final > v_initial);
}

double overshoot_fraction(const la::Vector& v, double v_initial,
                          double v_final) {
  const double swing = std::abs(v_final - v_initial);
  if (swing == 0.0 || v.empty()) return 0.0;
  double worst = 0.0;
  for (double x : v) {
    const double beyond =
        v_final > v_initial ? x - v_final : v_final - x;
    worst = std::max(worst, beyond);
  }
  return worst / swing;
}

double peak_noise(const la::Vector& v, double nominal) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::abs(x - nominal));
  return worst;
}

SkewReport measure_skew(const la::Vector& time,
                        const std::vector<la::Vector>& sink_waveforms,
                        const std::vector<std::string>& sink_names,
                        double v_initial, double v_final) {
  if (sink_waveforms.size() != sink_names.size())
    throw std::invalid_argument("measure_skew: names/waveforms mismatch");
  if (sink_waveforms.empty())
    throw std::invalid_argument("measure_skew: no sinks");
  SkewReport report;
  report.worst_delay = -std::numeric_limits<double>::infinity();
  report.best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sink_waveforms.size(); ++i) {
    const auto d = delay_50(time, sink_waveforms[i], v_initial, v_final);
    const double delay = d.value_or(std::numeric_limits<double>::infinity());
    if (delay > report.worst_delay) {
      report.worst_delay = delay;
      report.worst_sink = sink_names[i];
    }
    if (delay < report.best_delay) {
      report.best_delay = delay;
      report.best_sink = sink_names[i];
    }
  }
  report.skew = report.worst_delay - report.best_delay;
  return report;
}

}  // namespace ind::circuit
