#include "circuit/transient.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "govern/budget.hpp"
#include "la/lu.hpp"
#include "la/sparse_lu.hpp"
#include "robust/fault_injection.hpp"
#include "robust/recovery.hpp"
#include "runtime/metrics.hpp"

namespace ind::circuit {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Either a dense LU or a sparse LU behind one interface, factored through
// the robust fallback ladder (retry -> dense fallback -> gmin escalation).
class Factor {
 public:
  void factor_dense(const la::Matrix& a, robust::SolveReport& report) {
    dense_ = std::make_unique<la::LU>(
        robust::factor_dense_with_recovery(a, report, "transient"));
    usable_ = dense_->size() > 0;
    sparse_ = {};
  }
  void factor_sparse(const la::CscMatrix& a, robust::SolveReport& report) {
    sparse_ = robust::factor_sparse_with_recovery(a, report, "transient");
    usable_ = sparse_.usable();
    dense_.reset();
  }
  /// In-place sparse refactorisation: reuses the previous factor's symbolic
  /// state (ordering, reach, pivot sequence) when the pattern is unchanged,
  /// which is exactly the driver-transition case.
  void refactor_sparse(const la::CscMatrix& a, robust::SolveReport& report) {
    if (dense_) {
      factor_sparse(a, report);
      return;
    }
    robust::refactor_sparse_with_recovery(sparse_, a, report, "transient");
    usable_ = sparse_.usable();
  }
  bool usable() const { return usable_; }
  la::Vector solve(const la::Vector& b) const {
    return dense_ ? dense_->solve(b) : sparse_.solve(b);
  }

 private:
  std::unique_ptr<la::LU> dense_;
  robust::GuardedSparseFactor sparse_;
  bool usable_ = false;
};

double probe_value(const Probe& p, const Mna& mna, const la::Vector& x,
                   double t) {
  const Netlist& nl = mna.netlist();
  auto node_v = [&](NodeId n) {
    return n >= 0 ? x[static_cast<std::size_t>(n)] : 0.0;
  };
  switch (p.kind) {
    case ProbeKind::NodeVoltage:
      return x[p.index];
    case ProbeKind::InductorCurrent:
      return x[mna.inductor_branch(p.index)];
    case ProbeKind::VSourceCurrent:
      return x[mna.vsource_branch(p.index)];
    case ProbeKind::DriverPullUpCurrent: {
      const SwitchedDriver& d = nl.drivers().at(p.index);
      return d.g_up(t) * (node_v(d.vdd) - node_v(d.out));
    }
    case ProbeKind::DriverPullDownCurrent: {
      const SwitchedDriver& d = nl.drivers().at(p.index);
      return d.g_dn(t) * (node_v(d.out) - node_v(d.gnd));
    }
  }
  throw std::logic_error("probe_value: unknown probe kind");
}

// Fingerprint of the driver conductance state; a refactorisation is needed
// exactly when this changes between steps.
std::vector<double> driver_state(const Netlist& nl, double t) {
  std::vector<double> s;
  s.reserve(2 * nl.drivers().size());
  for (const SwitchedDriver& d : nl.drivers()) {
    s.push_back(d.g_up(t));
    s.push_back(d.g_dn(t));
  }
  return s;
}

}  // namespace

const la::Vector& TransientResult::waveform(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return samples[i];
  throw std::out_of_range("TransientResult::waveform: no probe named " + name);
}

TransientResult transient(const Netlist& netlist,
                          const std::vector<Probe>& probes,
                          const TransientOptions& options) {
  if (options.dt <= 0.0 || options.t_stop <= 0.0)
    throw std::invalid_argument("transient: dt and t_stop must be positive");
  runtime::ScopedTimer timer("solve.transient");

  Mna mna(netlist);
  const std::size_t n = mna.size();
  if (n == 0) throw std::invalid_argument("transient: empty circuit");

  la::TripletMatrix g_static_t, c_t;
  mna.stamp_static(g_static_t, c_t);
  const la::CscMatrix g_static(g_static_t);
  const la::CscMatrix c_csc(c_t);

  // Auto solver selection: dense for small systems and for dense-coupled
  // ones (the fully coupled PEEC L-block stamps O(n^2) mutual terms, where
  // sparse elimination would just rediscover a dense factor); sparse for
  // everything grid-shaped, where the AMD-ordered sparse LU with symbolic
  // reuse wins by orders of magnitude.
  const double density =
      n == 0 ? 1.0
             : static_cast<double>(g_static.nnz() + c_csc.nnz()) /
                   (static_cast<double>(n) * static_cast<double>(n));
  const bool dense =
      options.solver == TransientOptions::Solver::Dense ||
      (options.solver == TransientOptions::Solver::Auto &&
       (n <= options.dense_threshold || density > options.auto_density));
  // Dense copies are only materialised on the dense path.
  la::Matrix g_dense, c_dense;
  if (dense) {
    g_dense = g_static_t.to_dense();
    c_dense = c_t.to_dense();
  }

  TransientResult result;
  result.unknowns = n;
  result.used_dense = dense;
  result.names.reserve(probes.size());
  for (const Probe& p : probes) result.names.push_back(p.name);
  result.samples.assign(probes.size(), {});

  const double h = options.dt;
  const double c_scale = options.backward_euler ? 1.0 / h : 2.0 / h;

  // Builds the companion factor G + scale*C (+ drivers at t) through the
  // robust fallback ladder; a failed ladder leaves the factor unusable and
  // the failure recorded in `report`.
  auto build_factor = [&](double scale, double t, robust::SolveReport& rep) {
    Factor f;
    if (dense) {
      la::Matrix a = g_dense;
      if (scale != 0.0)
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j)
            a(i, j) += scale * c_dense(i, j);
      la::TripletMatrix drv(n, n);
      mna.stamp_drivers(drv, t);
      for (const auto& e : drv.entries()) a(e.row, e.col) += e.value;
      f.factor_dense(a, rep);
    } else {
      la::TripletMatrix a = g_static_t;
      mna.stamp_drivers(a, t);
      if (scale != 0.0)
        for (const auto& e : c_t.entries())
          a.add(e.row, e.col, scale * e.value);
      f.factor_sparse(la::CscMatrix(a), rep);
    }
    return f;
  };
  auto finish = [&]() {
    auto& metrics = runtime::MetricsRegistry::instance();
    metrics.add_count("solve.transient.steps",
                      static_cast<std::int64_t>(
                          result.time.empty() ? 0 : result.time.size() - 1));
    metrics.add_count("solve.transient.refactors",
                      static_cast<std::int64_t>(result.refactor_count));
    metrics.max_count("solve.transient.max_unknowns",
                      static_cast<std::int64_t>(n));
    result.report.record("transient");
    return std::move(result);
  };
  auto fail = [&](std::string detail) {
    result.report.raise_status(robust::SolveStatus::Failed);
    if (!result.report.detail.empty()) result.report.detail += "; ";
    result.report.detail += std::move(detail);
    return finish();
  };

  Factor factor;
  std::vector<double> factored_state;
  auto refactor = [&](double t) {
    const auto t0 = Clock::now();
    if (dense) {
      factor = build_factor(c_scale, t, result.report);
    } else {
      // Re-stamping produces the same triplet sequence every time, so the
      // compressed pattern is identical across driver transitions and the
      // persistent factor's numeric-only refactor path applies.
      la::TripletMatrix a = g_static_t;
      mna.stamp_drivers(a, t);
      if (c_scale != 0.0)
        for (const auto& e : c_t.entries())
          a.add(e.row, e.col, c_scale * e.value);
      factor.refactor_sparse(la::CscMatrix(a), result.report);
    }
    factored_state = driver_state(netlist, t);
    ++result.refactor_count;
    result.factor_seconds += seconds_since(t0);
    return factor.usable();
  };

  // --- DC operating point at t = 0: G(0) x = b(0).
  la::Vector x(n, 0.0);
  {
    const auto t0 = Clock::now();
    la::Vector b0;
    mna.rhs(0.0, b0);
    Factor dc = build_factor(0.0, 0.0, result.report);
    if (!dc.usable()) return fail("DC operating point factorisation failed");
    x = dc.solve(b0);
    result.step_seconds += seconds_since(t0);
    if (!robust::all_finite(x))
      return fail("DC operating point is non-finite");
  }

  // Re-integrates one step [t_start, t_start + h] as `sub` backward-Euler
  // substeps (L-stable, so it damps blow-ups trapezoidal can ring on). The
  // substep companion matrix stamps the drivers at the end of the interval —
  // the same approximation the outer loop makes between refactorisations.
  // Returns a non-finite vector when the rung itself fails.
  auto integrate_substeps = [&](const la::Vector& x_start, double t_start,
                                int sub) {
    const double hs = h / sub;
    robust::SolveReport subrep;
    Factor f = build_factor(1.0 / hs, t_start + h, subrep);
    la::Vector xs = x_start;
    if (!f.usable()) {
      // Keep the rung's actions/detail, but let the outer ladder decide the
      // final status: a later rung (different dt, different matrix) may
      // still succeed.
      for (const auto& act : subrep.actions)
        result.report.actions.push_back(act);
      if (!subrep.detail.empty()) {
        if (!result.report.detail.empty()) result.report.detail += "; ";
        result.report.detail += subrep.detail;
      }
      xs.assign(n, std::numeric_limits<double>::quiet_NaN());
      return xs;
    }
    result.report.merge(subrep);
    for (int i = 1; i <= sub; ++i) {
      la::Vector bs;
      mna.rhs(t_start + i * hs, bs);
      la::Vector ys = c_csc.apply(xs);
      for (std::size_t j = 0; j < n; ++j) ys[j] = ys[j] / hs + bs[j];
      xs = f.solve(ys);
      if (robust::fault::fire(robust::fault::Site::TransientStep))
        xs[0] = std::numeric_limits<double>::quiet_NaN();
      if (!robust::all_finite(xs)) break;
    }
    return xs;
  };

  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(options.t_stop / h));
  result.time.reserve(steps + 1);
  for (auto& s : result.samples) s.reserve(steps + 1);

  auto record = [&](double t) {
    result.time.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p)
      result.samples[p].push_back(probe_value(probes[p], mna, x, t));
  };
  record(0.0);

  if (!refactor(h))  // matrix for the first step, at t1
    return fail("companion matrix factorisation failed");

  la::Vector b_prev;
  mna.rhs(0.0, b_prev);
  // Budget charge per step: the dominant per-step cost is the backsolve —
  // n^2 on the dense path, nnz-proportional on the sparse one. Both are pure
  // functions of the problem shape, so the running total stays deterministic,
  // and a cheaper (sparser) model genuinely reports less work — which is what
  // lets the analyzer's degradation ladder find a rung that fits the budget.
  const std::uint64_t step_cost =
      dense ? static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n)
            : static_cast<std::uint64_t>(g_static.nnz() + c_csc.nnz() + n);
  for (std::size_t k = 1; k <= steps; ++k) {
    // Budget poll per step. A tripped budget keeps the waveform prefix
    // computed so far, marked truncated — an explicit partial answer beats
    // none when the deadline is the binding limit.
    if (govern::checkpoint(step_cost)) {
      result.truncated = true;
      result.report.add_action(
          robust::RecoveryKind::BudgetExceeded, 0, 0.0,
          std::string("transient truncated at step ") + std::to_string(k) +
              " [" +
              govern::to_string(govern::Governor::instance().cancel_kind()) +
              "]");
      break;
    }
    const double t_prev = (k - 1) * h;
    const double t_next = k * h;

    // Refactor only if driver conductances moved since the factored state.
    if (driver_state(netlist, t_next) != factored_state) {
      try {
        if (!refactor(t_next))
          return fail("companion matrix factorisation failed at t = " +
                      std::to_string(t_next) + " s");
      } catch (const govern::CancelledError& e) {
        // A budget trip inside the factorisation kernel: keep the waveform
        // prefix instead of surfacing the throw.
        result.truncated = true;
        result.report.add_action(robust::RecoveryKind::BudgetExceeded, 0, 0.0,
                                 std::string("transient truncated at step ") +
                                     std::to_string(k) + " [" +
                                     govern::to_string(e.kind()) + "]");
        break;
      }
    }

    const auto t0 = Clock::now();
    la::Vector b_next;
    mna.rhs(t_next, b_next);

    la::Vector y = c_csc.apply(x);
    for (double& v : y) v *= c_scale;
    if (options.backward_euler) {
      for (std::size_t i = 0; i < n; ++i) y[i] += b_next[i];
    } else {
      // Trapezoidal: y = (2/h)C x_n - G(t_n) x_n + b_n + b_{n+1}.
      la::Vector gx(n, 0.0);
      mna.apply_g(g_static, t_prev, x, gx);
      for (std::size_t i = 0; i < n; ++i)
        y[i] += b_next[i] + b_prev[i] - gx[i];
    }

    const la::Vector x_prev = x;
    x = factor.solve(y);
    if (robust::fault::fire(robust::fault::Site::TransientStep))
      x[0] = std::numeric_limits<double>::quiet_NaN();
    if (!robust::all_finite(x)) {
      const std::string site = "transient step " + std::to_string(k);
      // Rung 0: plain re-solve. A transient (injected) fault clears here,
      // and the re-solved step is bitwise identical to an undisturbed run.
      result.report.add_action(robust::RecoveryKind::Retry, 0, 0.0, site);
      x = factor.solve(y);
      if (robust::fault::fire(robust::fault::Site::TransientStep))
        x[0] = std::numeric_limits<double>::quiet_NaN();
      // Rungs 1..max_step_retries: re-integrate the step at halved dt.
      for (int m = 1;
           !robust::all_finite(x) && m <= options.max_step_retries; ++m) {
        const int sub = 1 << m;
        result.report.add_action(robust::RecoveryKind::DtHalving, m, h / sub,
                                 site);
        x = integrate_substeps(x_prev, t_prev, sub);
      }
      if (!robust::all_finite(x))
        return fail("non-finite solution at step " + std::to_string(k) +
                    " (t = " + std::to_string(t_next) + " s) after " +
                    std::to_string(options.max_step_retries) +
                    " dt-halving retries");
    }
    b_prev = std::move(b_next);
    result.step_seconds += seconds_since(t0);
    record(t_next);
  }
  return finish();
}

}  // namespace ind::circuit
