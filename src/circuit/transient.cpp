#include "circuit/transient.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "la/lu.hpp"
#include "la/sparse_lu.hpp"
#include "runtime/metrics.hpp"

namespace ind::circuit {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Either a dense LU or a sparse LU behind one interface.
class Factor {
 public:
  void factor_dense(la::Matrix a) {
    dense_ = std::make_unique<la::LU>(std::move(a));
    sparse_.reset();
  }
  void factor_sparse(const la::CscMatrix& a) {
    sparse_ = std::make_unique<la::SparseLu>(a);
    dense_.reset();
  }
  la::Vector solve(const la::Vector& b) const {
    return dense_ ? dense_->solve(b) : sparse_->solve(b);
  }

 private:
  std::unique_ptr<la::LU> dense_;
  std::unique_ptr<la::SparseLu> sparse_;
};

double probe_value(const Probe& p, const Mna& mna, const la::Vector& x,
                   double t) {
  const Netlist& nl = mna.netlist();
  auto node_v = [&](NodeId n) {
    return n >= 0 ? x[static_cast<std::size_t>(n)] : 0.0;
  };
  switch (p.kind) {
    case ProbeKind::NodeVoltage:
      return x[p.index];
    case ProbeKind::InductorCurrent:
      return x[mna.inductor_branch(p.index)];
    case ProbeKind::VSourceCurrent:
      return x[mna.vsource_branch(p.index)];
    case ProbeKind::DriverPullUpCurrent: {
      const SwitchedDriver& d = nl.drivers().at(p.index);
      return d.g_up(t) * (node_v(d.vdd) - node_v(d.out));
    }
    case ProbeKind::DriverPullDownCurrent: {
      const SwitchedDriver& d = nl.drivers().at(p.index);
      return d.g_dn(t) * (node_v(d.out) - node_v(d.gnd));
    }
  }
  throw std::logic_error("probe_value: unknown probe kind");
}

// Fingerprint of the driver conductance state; a refactorisation is needed
// exactly when this changes between steps.
std::vector<double> driver_state(const Netlist& nl, double t) {
  std::vector<double> s;
  s.reserve(2 * nl.drivers().size());
  for (const SwitchedDriver& d : nl.drivers()) {
    s.push_back(d.g_up(t));
    s.push_back(d.g_dn(t));
  }
  return s;
}

}  // namespace

const la::Vector& TransientResult::waveform(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return samples[i];
  throw std::out_of_range("TransientResult::waveform: no probe named " + name);
}

TransientResult transient(const Netlist& netlist,
                          const std::vector<Probe>& probes,
                          const TransientOptions& options) {
  if (options.dt <= 0.0 || options.t_stop <= 0.0)
    throw std::invalid_argument("transient: dt and t_stop must be positive");
  runtime::ScopedTimer timer("solve.transient");

  Mna mna(netlist);
  const std::size_t n = mna.size();
  if (n == 0) throw std::invalid_argument("transient: empty circuit");

  la::TripletMatrix g_static_t, c_t;
  mna.stamp_static(g_static_t, c_t);
  const la::CscMatrix g_static(g_static_t);
  const la::CscMatrix c_csc(c_t);

  const bool dense =
      options.solver == TransientOptions::Solver::Dense ||
      (options.solver == TransientOptions::Solver::Auto &&
       n <= options.dense_threshold);
  // Dense copies are only materialised on the dense path.
  la::Matrix g_dense, c_dense;
  if (dense) {
    g_dense = g_static_t.to_dense();
    c_dense = c_t.to_dense();
  }

  TransientResult result;
  result.unknowns = n;
  result.used_dense = dense;
  result.names.reserve(probes.size());
  for (const Probe& p : probes) result.names.push_back(p.name);
  result.samples.assign(probes.size(), {});

  const double h = options.dt;
  const double c_scale = options.backward_euler ? 1.0 / h : 2.0 / h;

  Factor factor;
  std::vector<double> factored_state;
  auto refactor = [&](double t) {
    const auto t0 = Clock::now();
    if (dense) {
      la::Matrix a = g_dense;
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          a(i, j) += c_scale * c_dense(i, j);
      la::TripletMatrix drv(n, n);
      mna.stamp_drivers(drv, t);
      for (const auto& e : drv.entries()) a(e.row, e.col) += e.value;
      factor.factor_dense(std::move(a));
    } else {
      la::TripletMatrix a = g_static_t;
      mna.stamp_drivers(a, t);
      for (const auto& e : c_t.entries())
        a.add(e.row, e.col, c_scale * e.value);
      factor.factor_sparse(la::CscMatrix(a));
    }
    factored_state = driver_state(netlist, t);
    ++result.refactor_count;
    result.factor_seconds += seconds_since(t0);
  };

  // --- DC operating point at t = 0: G(0) x = b(0).
  la::Vector x(n, 0.0);
  {
    const auto t0 = Clock::now();
    la::Vector b0;
    mna.rhs(0.0, b0);
    if (dense) {
      la::Matrix a = g_dense;
      la::TripletMatrix drv(n, n);
      mna.stamp_drivers(drv, 0.0);
      for (const auto& e : drv.entries()) a(e.row, e.col) += e.value;
      x = la::LU(std::move(a)).solve(b0);
    } else {
      la::TripletMatrix a = g_static_t;
      mna.stamp_drivers(a, 0.0);
      x = la::SparseLu(la::CscMatrix(a)).solve(b0);
    }
    result.step_seconds += seconds_since(t0);
  }

  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(options.t_stop / h));
  result.time.reserve(steps + 1);
  for (auto& s : result.samples) s.reserve(steps + 1);

  auto record = [&](double t) {
    result.time.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p)
      result.samples[p].push_back(probe_value(probes[p], mna, x, t));
  };
  record(0.0);

  refactor(h);  // matrix for the first step, at t1

  la::Vector b_prev;
  mna.rhs(0.0, b_prev);
  for (std::size_t k = 1; k <= steps; ++k) {
    const double t_prev = (k - 1) * h;
    const double t_next = k * h;

    // Refactor only if driver conductances moved since the factored state.
    if (driver_state(netlist, t_next) != factored_state) refactor(t_next);

    const auto t0 = Clock::now();
    la::Vector b_next;
    mna.rhs(t_next, b_next);

    la::Vector y = c_csc.apply(x);
    for (double& v : y) v *= c_scale;
    if (options.backward_euler) {
      for (std::size_t i = 0; i < n; ++i) y[i] += b_next[i];
    } else {
      // Trapezoidal: y = (2/h)C x_n - G(t_n) x_n + b_n + b_{n+1}.
      la::Vector gx(n, 0.0);
      mna.apply_g(g_static, t_prev, x, gx);
      for (std::size_t i = 0; i < n; ++i)
        y[i] += b_next[i] + b_prev[i] - gx[i];
    }

    x = factor.solve(y);
    b_prev = std::move(b_next);
    result.step_seconds += seconds_since(t0);
    record(t_next);
  }
  auto& metrics = runtime::MetricsRegistry::instance();
  metrics.add_count("solve.transient.steps",
                    static_cast<std::int64_t>(steps));
  metrics.add_count("solve.transient.refactors",
                    static_cast<std::int64_t>(result.refactor_count));
  metrics.max_count("solve.transient.max_unknowns",
                    static_cast<std::int64_t>(n));
  return result;
}

}  // namespace ind::circuit
