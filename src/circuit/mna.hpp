// Modified Nodal Analysis assembly.
//
// Unknown ordering: node voltages [0, N), inductor branch currents
// [N, N+NL), voltage-source branch currents [N+NL, N+NL+NV). The switched
// drivers contribute *time-varying* conductances and are stamped separately
// so the engines can detect when a refactorisation is actually needed.
#pragma once

#include "circuit/netlist.hpp"
#include "la/dense_matrix.hpp"
#include "la/sparse.hpp"

namespace ind::circuit {

class Mna {
 public:
  explicit Mna(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  std::size_t size() const { return size_; }
  std::size_t num_nodes() const { return n_nodes_; }
  std::size_t inductor_branch(std::size_t k) const { return n_nodes_ + k; }
  std::size_t vsource_branch(std::size_t k) const {
    return n_nodes_ + n_inductors_ + k;
  }

  /// Stamps every *time-invariant* element into G (conductance/incidence)
  /// and C (capacitance/inductance), i.e. the system G x + C x' = b(t)
  /// before driver conductances are added.
  void stamp_static(la::TripletMatrix& g, la::TripletMatrix& c) const;

  /// Appends the driver pull-up/pull-down conductances evaluated at time t.
  void stamp_drivers(la::TripletMatrix& g, double t) const;

  /// Source vector b(t).
  void rhs(double t, la::Vector& out) const;

  /// y += G(t) x where G(t) = static G + driver conductances at time t.
  /// `g_static` must be the CSC compression of the static stamps.
  void apply_g(const la::CscMatrix& g_static, double t, const la::Vector& x,
               la::Vector& y) const;

  /// Minimum conductance added from every node to ground for numerical
  /// robustness (also stamped by stamp_static).
  double gmin = 1e-12;

 private:
  const Netlist* netlist_;
  std::size_t n_nodes_ = 0, n_inductors_ = 0, n_vsources_ = 0, size_ = 0;
};

/// Dense G, C system plus a port incidence matrix B — the inputs PRIMA
/// needs. Port k is a current injection at a node.
struct DenseSystem {
  la::Matrix g;
  la::Matrix c;
  la::Matrix b;  ///< size x num_ports
};

/// Builds the dense MNA system with unit current-injection columns at
/// `port_nodes`. Driver conductances are evaluated at `driver_time`; a
/// negative `driver_time` excludes the drivers entirely (used by the PRIMA
/// co-simulation flow, which keeps switching devices outside the reduced
/// linear macromodel).
DenseSystem build_dense_system(const Netlist& netlist,
                               const std::vector<NodeId>& port_nodes,
                               double driver_time = 1e12);

}  // namespace ind::circuit
