// Time-domain source waveforms.
//
// Everything the paper's model needs: ramps for switching gate inputs,
// pulses, and the pseudo-random piecewise-linear profiles used for the
// "time-varying current sources connected at random locations" that model
// background switching activity in the grid (Section 3).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ind::circuit {

/// Piecewise-linear waveform; flat extrapolation outside the defined range.
class Pwl {
 public:
  Pwl() = default;
  explicit Pwl(std::vector<std::pair<double, double>> points);

  /// Value at time t (linear interpolation, clamped ends).
  double operator()(double t) const;

  bool empty() const { return points_.empty(); }
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

  // --- factories ---
  static Pwl constant(double value);
  /// 0 -> `amplitude` linear ramp starting at t0 with the given rise time.
  static Pwl ramp(double t0, double rise, double amplitude);
  /// Falling ramp `amplitude` -> 0.
  static Pwl falling_ramp(double t0, double fall, double amplitude);
  /// Single pulse with linear edges.
  static Pwl pulse(double t0, double rise, double width, double fall,
                   double amplitude);

 private:
  std::vector<std::pair<double, double>> points_;  // sorted by time
};

/// Deterministic xorshift-based generator for reproducible pseudo-random
/// switching profiles (no global RNG state; same seed -> same workload).
class SwitchingProfileGenerator {
 public:
  explicit SwitchingProfileGenerator(std::uint64_t seed) : state_(seed | 1) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// A background-current profile: a sequence of triangular current pulses
  /// of random height in [0, peak_amps] at random times in [0, t_stop],
  /// modelling "different parts of the chip switching at different times".
  Pwl background_current(double t_stop, double peak_amps, int pulses);

 private:
  std::uint64_t state_;
};

}  // namespace ind::circuit
