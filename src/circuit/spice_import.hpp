// SPICE deck import: the inverse of spice_export for the linear subset
// (R, C, L, K, V, I cards with numeric or PWL/DC values). Lets users bring
// externally extracted netlists into the analysis flows, and closes the
// round-trip test loop on the exporter.
//
// Unsupported cards (models, subcircuits, behavioural sources) are counted
// and skipped rather than rejected, so decks written by other tools load
// with their linear backbone intact.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"
#include "robust/validate.hpp"

namespace ind::circuit {

struct SpiceImportResult {
  Netlist netlist;
  std::size_t parsed_cards = 0;
  std::size_t skipped_cards = 0;  ///< unsupported element types

  /// Electrical sanity of the parsed netlist (floating nodes, non-positive
  /// element values, |k| > 1 couplings, ...). Parsing succeeds even when
  /// issues are present; callers decide how strict to be.
  robust::ValidationReport validation;
};

/// Parses a SPICE deck. Node "0" (and "gnd") map to the reference; other
/// node names become named netlist nodes. Throws std::invalid_argument on
/// malformed supported cards; the message carries the 1-based source line
/// number of the offending card.
SpiceImportResult parse_spice(std::istream& is);
SpiceImportResult parse_spice(const std::string& deck);

/// Parses a SPICE value with engineering suffix: 1k, 2.2u, 10MEG, 5n, 3p...
double parse_spice_value(const std::string& token);

}  // namespace ind::circuit
