// Waveform measurements: the quantities the paper's experiments report —
// 50% delay, worst delay, skew across sinks, overshoot/undershoot.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "la/dense_matrix.hpp"

namespace ind::circuit {

/// First time the waveform reaches `level` in the given direction
/// (linear interpolation between samples); nullopt if it never does.
/// A waveform already at-or-beyond the level at its first sample (>= for
/// rising, <= for falling) reports time[0] — this covers waveforms that
/// start exactly at the level, including exact-level plateaus.
std::optional<double> crossing_time(const la::Vector& time,
                                    const la::Vector& v, double level,
                                    bool rising = true);

/// 50%-of-swing delay from t=0 for a rising (or falling) waveform that
/// settles at `v_final` starting from `v_initial`.
std::optional<double> delay_50(const la::Vector& time, const la::Vector& v,
                               double v_initial, double v_final);

/// Worst excursion outside the [v_initial, v_final] band, as a fraction of
/// the swing (0 when the waveform stays inside the band). Captures both
/// overshoot past the settled value and undershoot back past the starting
/// value on a ringing edge.
double overshoot_fraction(const la::Vector& v, double v_initial,
                          double v_final);

/// Maximum absolute deviation of the waveform from `nominal` — the noise
/// metric used for victim nets in the crosstalk experiments.
double peak_noise(const la::Vector& v, double nominal);

struct SkewReport {
  double worst_delay = 0.0;
  double best_delay = 0.0;
  double skew = 0.0;  ///< worst - best, over the sinks that crossed
  std::string worst_sink;
  std::string best_sink;
  /// Sinks whose waveform never reached 50% of the swing. They are
  /// excluded from the delay/skew statistics rather than folded in as
  /// infinite delays (which used to turn the skew into inf - inf = NaN
  /// when no sink crossed).
  std::vector<std::string> non_crossing_sinks;
};

/// Delay/skew across a set of sink waveforms (all assumed to share the
/// same time axis and initial/final levels). Delay/skew statistics cover
/// the sinks that crossed 50%; non-crossing sinks are listed in
/// `non_crossing_sinks`. If no sink crosses at all, delays and skew are
/// +inf (never NaN) and the worst/best sink names are empty.
SkewReport measure_skew(const la::Vector& time,
                        const std::vector<la::Vector>& sink_waveforms,
                        const std::vector<std::string>& sink_names,
                        double v_initial, double v_final);

}  // namespace ind::circuit
