// Waveform measurements: the quantities the paper's experiments report —
// 50% delay, worst delay, skew across sinks, overshoot/undershoot.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "la/dense_matrix.hpp"

namespace ind::circuit {

/// First time the waveform crosses `level` in the given direction
/// (linear interpolation between samples); nullopt if it never does.
std::optional<double> crossing_time(const la::Vector& time,
                                    const la::Vector& v, double level,
                                    bool rising = true);

/// 50%-of-swing delay from t=0 for a rising (or falling) waveform that
/// settles at `v_final` starting from `v_initial`.
std::optional<double> delay_50(const la::Vector& time, const la::Vector& v,
                               double v_initial, double v_final);

/// Peak overshoot above the settled value, as a fraction of the swing
/// (0 when the waveform never exceeds v_final).
double overshoot_fraction(const la::Vector& v, double v_initial,
                          double v_final);

/// Maximum absolute deviation of the waveform from `nominal` — the noise
/// metric used for victim nets in the crosstalk experiments.
double peak_noise(const la::Vector& v, double nominal);

struct SkewReport {
  double worst_delay = 0.0;
  double best_delay = 0.0;
  double skew = 0.0;  ///< worst - best
  std::string worst_sink;
  std::string best_sink;
};

/// Delay/skew across a set of sink waveforms (all assumed to share the
/// same time axis and initial/final levels). Sinks that never cross 50%
/// are reported with infinite delay.
SkewReport measure_skew(const la::Vector& time,
                        const std::vector<la::Vector>& sink_waveforms,
                        const std::vector<std::string>& sink_names,
                        double v_initial, double v_final);

}  // namespace ind::circuit
