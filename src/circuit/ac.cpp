#include "circuit/ac.hpp"

#include <stdexcept>

#include "la/lu.hpp"
#include "runtime/metrics.hpp"

namespace ind::circuit {

AcResult ac_solve(const Netlist& netlist, const AcExcitation& excitation,
                  double omega, double driver_time) {
  runtime::ScopedTimer timer("solve.ac");
  Mna mna(netlist);
  const std::size_t n = mna.size();

  la::TripletMatrix g, c;
  mna.stamp_static(g, c);
  mna.stamp_drivers(g, driver_time);

  la::CMatrix a(n, n);
  for (const auto& e : g.entries()) a(e.row, e.col) += e.value;
  const la::Complex jw{0.0, omega};
  for (const auto& e : c.entries()) a(e.row, e.col) += jw * e.value;

  la::CVector b(n, la::Complex{});
  switch (excitation.kind) {
    case AcExcitation::Kind::VSource:
      if (excitation.index >= netlist.vsources().size())
        throw std::out_of_range("ac_solve: vsource index");
      b[mna.vsource_branch(excitation.index)] = 1.0;
      break;
    case AcExcitation::Kind::ISource: {
      if (excitation.index >= netlist.isources().size())
        throw std::out_of_range("ac_solve: isource index");
      const ISource& src = netlist.isources()[excitation.index];
      if (src.a >= 0) b[static_cast<std::size_t>(src.a)] -= 1.0;
      if (src.b >= 0) b[static_cast<std::size_t>(src.b)] += 1.0;
      break;
    }
  }

  AcResult result{la::CLU(std::move(a)).solve(b), std::move(mna)};
  return result;
}

}  // namespace ind::circuit
