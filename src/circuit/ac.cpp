#include "circuit/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "la/lu.hpp"
#include "robust/recovery.hpp"
#include "runtime/metrics.hpp"

namespace ind::circuit {
namespace {

// One frequency point over pre-assembled stamps. Splitting the stamping
// from the per-omega solve lets ac_sweep share a single Mna + G/C pattern
// across the whole sweep instead of re-deriving them every point.
AcResult solve_stamped(const Mna& mna, const la::TripletMatrix& g,
                       const la::TripletMatrix& c,
                       const AcExcitation& excitation, double omega) {
  runtime::ScopedTimer timer("solve.ac");
  const Netlist& netlist = mna.netlist();
  const std::size_t n = mna.size();

  la::CMatrix a(n, n);
  for (const auto& e : g.entries()) a(e.row, e.col) += e.value;
  const la::Complex jw{0.0, omega};
  for (const auto& e : c.entries()) a(e.row, e.col) += jw * e.value;

  la::CVector b(n, la::Complex{});
  switch (excitation.kind) {
    case AcExcitation::Kind::VSource:
      if (excitation.index >= netlist.vsources().size())
        throw std::out_of_range("ac_solve: vsource index");
      b[mna.vsource_branch(excitation.index)] = 1.0;
      break;
    case AcExcitation::Kind::ISource: {
      if (excitation.index >= netlist.isources().size())
        throw std::out_of_range("ac_solve: isource index");
      const ISource& src = netlist.isources()[excitation.index];
      if (src.a >= 0) b[static_cast<std::size_t>(src.a)] -= 1.0;
      if (src.b >= 0) b[static_cast<std::size_t>(src.b)] += 1.0;
      break;
    }
  }

  robust::SolveReport report;
  la::CLU lu = robust::factor_dense_with_recovery(a, report, "ac");
  la::CVector x(n, la::Complex{});
  if (lu.size() > 0) {
    x = lu.solve(b);
    if (!robust::all_finite(x)) {
      report.raise_status(robust::SolveStatus::Failed);
      report.detail = "ac: non-finite solution";
      x.assign(n, la::Complex{});
    } else {
      // Relative residual ||Ax - b|| / ||b|| of the (possibly regularised)
      // solve against the ORIGINAL matrix, so gmin fallbacks show their
      // true perturbation.
      double rnorm = 0.0, bnorm = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        la::Complex ri = -b[i];
        for (std::size_t j = 0; j < n; ++j) ri += a(i, j) * x[j];
        rnorm += std::norm(ri);
        bnorm += std::norm(b[i]);
      }
      report.residual_norm =
          bnorm > 0.0 ? std::sqrt(rnorm / bnorm) : std::sqrt(rnorm);
    }
  }
  report.record("ac");
  AcResult result{std::move(x), mna, std::move(report)};
  return result;
}

}  // namespace

AcResult ac_solve(const Netlist& netlist, const AcExcitation& excitation,
                  double omega, double driver_time) {
  Mna mna(netlist);
  la::TripletMatrix g, c;
  mna.stamp_static(g, c);
  mna.stamp_drivers(g, driver_time);
  return solve_stamped(mna, g, c, excitation, omega);
}

std::vector<AcResult> ac_sweep(const Netlist& netlist,
                               const AcExcitation& excitation,
                               const std::vector<double>& omegas,
                               double driver_time) {
  Mna mna(netlist);
  la::TripletMatrix g, c;
  mna.stamp_static(g, c);
  mna.stamp_drivers(g, driver_time);
  std::vector<AcResult> sweep;
  sweep.reserve(omegas.size());
  for (const double omega : omegas)
    sweep.push_back(solve_stamped(mna, g, c, excitation, omega));
  return sweep;
}

}  // namespace ind::circuit
