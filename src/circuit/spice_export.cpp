#include "circuit/spice_export.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "la/lu.hpp"

namespace ind::circuit {
namespace {

std::string node_name(NodeId n) {
  return n < 0 ? "0" : "n" + std::to_string(n);
}

void write_pwl(std::ostream& os, const Pwl& w) {
  if (w.points().size() <= 1) {
    os << "DC " << (w.points().empty() ? 0.0 : w.points().front().second);
    return;
  }
  os << "PWL(";
  bool first = true;
  for (const auto& [t, v] : w.points()) {
    if (!first) os << ' ';
    os << t << ' ' << v;
    first = false;
  }
  os << ')';
}

}  // namespace

void write_spice(std::ostream& os, const Netlist& netlist,
                 const SpiceExportOptions& opts) {
  os << "* " << opts.title << "\n";

  std::size_t idx = 0;
  for (const Resistor& r : netlist.resistors())
    os << "R" << idx++ << ' ' << node_name(r.a) << ' ' << node_name(r.b)
       << ' ' << r.ohms << "\n";
  idx = 0;
  for (const Capacitor& c : netlist.capacitors())
    os << "C" << idx++ << ' ' << node_name(c.a) << ' ' << node_name(c.b)
       << ' ' << c.farads << "\n";
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    const Inductor& l = netlist.inductors()[k];
    os << "L" << k << ' ' << node_name(l.a) << ' ' << node_name(l.b) << ' '
       << l.henries << "\n";
  }

  // Mutual coupling: K cards with the coupling coefficient clamped into the
  // physical range (round-off can push |M| marginally past sqrt(L1 L2)).
  idx = 0;
  auto write_k = [&](std::size_t i, std::size_t j, double m) {
    const double li = netlist.inductors()[i].henries;
    const double lj = netlist.inductors()[j].henries;
    double coeff = m / std::sqrt(li * lj);
    coeff = std::clamp(coeff, -0.999999, 0.999999);
    os << "K" << idx++ << " L" << i << " L" << j << ' ' << coeff << "\n";
  };
  for (const Mutual& m : netlist.mutuals()) write_k(m.i, m.j, m.henries);

  // K-matrix groups: either refuse, or expand via L = K^-1 into standard
  // self + mutual cards (rewriting the member self inductances).
  if (!netlist.kmatrix_groups().empty()) {
    if (!opts.expand_kmatrix_groups)
      throw std::invalid_argument(
          "write_spice: netlist has K-matrix groups; set "
          "expand_kmatrix_groups to export them as coupled inductors");
    for (const KMatrixGroup& grp : netlist.kmatrix_groups()) {
      const std::size_t n = grp.inductors.size();
      la::Matrix k(n, n);
      for (const KMatrixGroup::Entry& e : grp.entries) k(e.row, e.col) = e.value;
      const la::Matrix l = la::inverse(k);
      // Re-emit the member inductors with the recovered self values (the
      // originals were bypassed by the K rows), then the mutual cards.
      for (std::size_t a = 0; a < n; ++a) {
        const Inductor& ind = netlist.inductors()[grp.inductors[a]];
        os << "LK" << grp.inductors[a] << ' ' << node_name(ind.a) << ' '
           << node_name(ind.b) << ' ' << l(a, a) << "\n";
      }
      for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b) {
          if (l(a, b) == 0.0) continue;
          double coeff = l(a, b) / std::sqrt(l(a, a) * l(b, b));
          coeff = std::clamp(coeff, -0.999999, 0.999999);
          os << "K" << idx++ << " LK" << grp.inductors[a] << " LK"
             << grp.inductors[b] << ' ' << coeff << "\n";
        }
    }
  }

  for (std::size_t k = 0; k < netlist.vsources().size(); ++k) {
    const VSource& v = netlist.vsources()[k];
    os << "V" << k << ' ' << node_name(v.a) << ' ' << node_name(v.b) << ' ';
    write_pwl(os, v.waveform);
    os << "\n";
  }
  for (std::size_t k = 0; k < netlist.isources().size(); ++k) {
    const ISource& i = netlist.isources()[k];
    os << "I" << k << ' ' << node_name(i.a) << ' ' << node_name(i.b) << ' ';
    write_pwl(os, i.waveform);
    os << "\n";
  }

  // Switched drivers: behavioural current sources whose conductance follows
  // a PWL control voltage (ngspice B-source syntax).
  for (std::size_t k = 0; k < netlist.drivers().size(); ++k) {
    const SwitchedDriver& d = netlist.drivers()[k];
    auto sample_ramp = [&](auto g_of_t, const std::string& ctrl) {
      os << "V" << ctrl << ' ' << ctrl << " 0 PWL(0 " << g_of_t(0.0);
      const double t0 = d.start;
      const double t1 = d.start + d.slew;
      for (double t = t0; t <= t1 + 0.5 * opts.driver_sample_step;
           t += opts.driver_sample_step)
        os << ' ' << std::max(t, 1e-15) << ' ' << g_of_t(t);
      os << ' ' << t1 + 1.0 << ' ' << g_of_t(t1 + 1.0) << ")\n";
    };
    const std::string up = "ctrlu" + std::to_string(k);
    const std::string dn = "ctrld" + std::to_string(k);
    sample_ramp([&](double t) { return d.g_up(t); }, up);
    sample_ramp([&](double t) { return d.g_dn(t); }, dn);
    os << "BDRVU" << k << ' ' << node_name(d.vdd) << ' ' << node_name(d.out)
       << " I=V(" << up << ")*(V(" << node_name(d.vdd) << ")-V("
       << node_name(d.out) << "))\n";
    os << "BDRVD" << k << ' ' << node_name(d.out) << ' ' << node_name(d.gnd)
       << " I=V(" << dn << ")*(V(" << node_name(d.out) << ")-V("
       << node_name(d.gnd) << "))\n";
  }
  os << ".end\n";
}

std::string to_spice(const Netlist& netlist, const SpiceExportOptions& opts) {
  std::ostringstream os;
  write_spice(os, netlist, opts);
  return os.str();
}

}  // namespace ind::circuit
