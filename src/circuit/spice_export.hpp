// SPICE deck export.
//
// Every flow in the paper ultimately hands a netlist to SPICE ("the
// complete circuit is simulated in SPICE"); this writer emits the library's
// Netlist in standard SPICE syntax so the models can be cross-checked in
// any external simulator: R/C/L cards, K cards for mutual coupling,
// PWL-driven V/I sources, and the switched drivers expanded into
// voltage-controlled switch pairs with PWL control waveforms.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace ind::circuit {

struct SpiceExportOptions {
  std::string title = "inductance101 export";
  /// Timestep used to sample driver conductance ramps into PWL controls.
  double driver_sample_step = 5e-12;
  /// K-matrix groups cannot be expressed in SPICE directly; when true they
  /// are exported as the equivalent dense mutual-inductor set (requires the
  /// caller to have kept self inductances meaningful), otherwise the export
  /// throws on K groups.
  bool expand_kmatrix_groups = false;
};

/// Writes the netlist as a SPICE deck. Node 0 is ground; internal node ids
/// are emitted as n<id>.
void write_spice(std::ostream& os, const Netlist& netlist,
                 const SpiceExportOptions& opts = {});

/// Convenience: deck as a string.
std::string to_spice(const Netlist& netlist,
                     const SpiceExportOptions& opts = {});

}  // namespace ind::circuit
