#include "circuit/mna.hpp"

#include <stdexcept>

namespace ind::circuit {
namespace {

// Stamps a two-terminal conductance between nodes a and b (kGround skipped).
void stamp_conductance(la::TripletMatrix& m, NodeId a, NodeId b, double g) {
  if (a >= 0) m.add(static_cast<std::size_t>(a), static_cast<std::size_t>(a), g);
  if (b >= 0) m.add(static_cast<std::size_t>(b), static_cast<std::size_t>(b), g);
  if (a >= 0 && b >= 0) {
    m.add(static_cast<std::size_t>(a), static_cast<std::size_t>(b), -g);
    m.add(static_cast<std::size_t>(b), static_cast<std::size_t>(a), -g);
  }
}

}  // namespace

Mna::Mna(const Netlist& netlist) : netlist_(&netlist) {
  n_nodes_ = netlist.num_nodes();
  n_inductors_ = netlist.inductors().size();
  n_vsources_ = netlist.vsources().size();
  size_ = n_nodes_ + n_inductors_ + n_vsources_;
}

void Mna::stamp_static(la::TripletMatrix& g, la::TripletMatrix& c) const {
  g.resize(size_, size_);
  c.resize(size_, size_);
  const Netlist& nl = *netlist_;

  for (const Resistor& r : nl.resistors())
    stamp_conductance(g, r.a, r.b, 1.0 / r.ohms);
  for (const Capacitor& cap : nl.capacitors())
    stamp_conductance(c, cap.a, cap.b, cap.farads);

  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const Inductor& l = nl.inductors()[k];
    const std::size_t br = inductor_branch(k);
    // KCL: branch current leaves node a, enters node b.
    if (l.a >= 0) g.add(static_cast<std::size_t>(l.a), br, 1.0);
    if (l.b >= 0) g.add(static_cast<std::size_t>(l.b), br, -1.0);
    // Branch equation: v_a - v_b - L di/dt (- sum M dj/dt) = 0, or the
    // K-matrix form K (v_a - v_b) - di/dt = 0 when the inductor belongs to
    // a K group (stamped below).
    if (!nl.inductor_in_kgroup(k)) {
      if (l.a >= 0) g.add(br, static_cast<std::size_t>(l.a), 1.0);
      if (l.b >= 0) g.add(br, static_cast<std::size_t>(l.b), -1.0);
      c.add(br, br, -l.henries);
    }
  }
  for (const Mutual& m : nl.mutuals()) {
    if (nl.inductor_in_kgroup(m.i) || nl.inductor_in_kgroup(m.j))
      throw std::logic_error("Mna: mutual on K-group inductor");
    c.add(inductor_branch(m.i), inductor_branch(m.j), -m.henries);
    c.add(inductor_branch(m.j), inductor_branch(m.i), -m.henries);
  }

  for (const KMatrixGroup& grp : nl.kmatrix_groups()) {
    // Branch rows: sum_j K_mj (v_aj - v_bj) - dI_m/dt = 0.
    for (std::size_t m = 0; m < grp.inductors.size(); ++m)
      c.add(inductor_branch(grp.inductors[m]),
            inductor_branch(grp.inductors[m]), -1.0);
    for (const KMatrixGroup::Entry& e : grp.entries) {
      const std::size_t row = inductor_branch(grp.inductors[e.row]);
      const Inductor& lj = nl.inductors()[grp.inductors[e.col]];
      if (lj.a >= 0) g.add(row, static_cast<std::size_t>(lj.a), e.value);
      if (lj.b >= 0) g.add(row, static_cast<std::size_t>(lj.b), -e.value);
    }
  }

  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const VSource& v = nl.vsources()[k];
    const std::size_t br = vsource_branch(k);
    if (v.a >= 0) {
      g.add(static_cast<std::size_t>(v.a), br, 1.0);
      g.add(br, static_cast<std::size_t>(v.a), 1.0);
    }
    if (v.b >= 0) {
      g.add(static_cast<std::size_t>(v.b), br, -1.0);
      g.add(br, static_cast<std::size_t>(v.b), -1.0);
    }
  }

  if (gmin > 0.0)
    for (std::size_t i = 0; i < n_nodes_; ++i) g.add(i, i, gmin);
}

void Mna::stamp_drivers(la::TripletMatrix& g, double t) const {
  for (const SwitchedDriver& d : netlist_->drivers()) {
    stamp_conductance(g, d.out, d.vdd, d.g_up(t));
    stamp_conductance(g, d.out, d.gnd, d.g_dn(t));
  }
}

void Mna::rhs(double t, la::Vector& out) const {
  out.assign(size_, 0.0);
  for (const ISource& src : netlist_->isources()) {
    const double i = src.waveform(t);
    if (src.a >= 0) out[static_cast<std::size_t>(src.a)] -= i;
    if (src.b >= 0) out[static_cast<std::size_t>(src.b)] += i;
  }
  for (std::size_t k = 0; k < netlist_->vsources().size(); ++k)
    out[vsource_branch(k)] = netlist_->vsources()[k].waveform(t);
}

void Mna::apply_g(const la::CscMatrix& g_static, double t, const la::Vector& x,
                  la::Vector& y) const {
  const la::Vector gx = g_static.apply(x);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += gx[i];
  // Driver conductances applied directly (few entries, avoids re-compressing).
  for (const SwitchedDriver& d : netlist_->drivers()) {
    for (const auto& [node_a, node_b, g] :
         {std::tuple{d.out, d.vdd, d.g_up(t)}, std::tuple{d.out, d.gnd, d.g_dn(t)}}) {
      const double va = node_a >= 0 ? x[static_cast<std::size_t>(node_a)] : 0.0;
      const double vb = node_b >= 0 ? x[static_cast<std::size_t>(node_b)] : 0.0;
      const double i = g * (va - vb);
      if (node_a >= 0) y[static_cast<std::size_t>(node_a)] += i;
      if (node_b >= 0) y[static_cast<std::size_t>(node_b)] -= i;
    }
  }
}

DenseSystem build_dense_system(const Netlist& netlist,
                               const std::vector<NodeId>& port_nodes,
                               double driver_time) {
  Mna mna(netlist);
  la::TripletMatrix g, c;
  mna.stamp_static(g, c);
  if (driver_time >= 0.0) mna.stamp_drivers(g, driver_time);
  DenseSystem sys;
  sys.g = g.to_dense();
  sys.c = c.to_dense();
  sys.b.resize(mna.size(), port_nodes.size());
  for (std::size_t p = 0; p < port_nodes.size(); ++p) {
    if (port_nodes[p] < 0)
      throw std::invalid_argument("build_dense_system: ground port");
    sys.b(static_cast<std::size_t>(port_nodes[p]), p) = 1.0;
  }
  return sys;
}

}  // namespace ind::circuit
