// Transient analysis: trapezoidal (default) or backward-Euler integration of
// G(t) x + C x' = b(t).
//
// The companion matrix A = G + (2/h)C is factorised once and reused across
// steps; the switched drivers are the only time-varying conductances, so the
// engine refactorises only while a driver is mid-transition. Matrices factor
// dense (LU) or sparse (AMD-ordered Gilbert-Peierls) depending on size and
// coupling density — the dense path matches the fully coupled PEEC L-block,
// the sparse path the grid-sized RC / sparsified models of Table 1. Sparse
// driver-transition refactorisations share one SparseLuSymbolic (the pattern
// never changes), so only the numeric phase reruns per transition.
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "robust/diagnostics.hpp"

namespace ind::circuit {

enum class ProbeKind {
  NodeVoltage,
  InductorCurrent,
  VSourceCurrent,
  DriverPullUpCurrent,   ///< current from vdd rail into the output
  DriverPullDownCurrent  ///< current from the output into the gnd rail
};

struct Probe {
  ProbeKind kind = ProbeKind::NodeVoltage;
  std::size_t index = 0;  ///< node id / inductor idx / vsource idx / driver idx
  std::string name;
};

struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;
  enum class Solver { Auto, Dense, Sparse } solver = Solver::Auto;
  /// Auto: dense at or below this size. Above it the AMD-ordered sparse LU
  /// with symbolic reuse is faster for anything grid-shaped, so the
  /// threshold only needs to cover genuinely small systems.
  std::size_t dense_threshold = 128;
  /// Auto: dense when nnz(G) + nnz(C) exceeds this fraction of n^2 — the
  /// fully coupled PEEC L-block case, where sparse elimination would just
  /// rediscover a (slower) dense factor.
  double auto_density = 0.20;
  bool backward_euler = false;        ///< default: trapezoidal
  /// Bounded dt-halving retries when a step produces non-finite state: retry
  /// m re-integrates the step as 2^m backward-Euler substeps (after one
  /// plain re-solve, which alone clears transient/injected faults).
  int max_step_retries = 3;
};

struct TransientResult {
  la::Vector time;
  std::vector<la::Vector> samples;  ///< one waveform per probe
  std::vector<std::string> names;   ///< probe names

  // Run statistics (the paper's Table 1 reports run-times per model).
  double factor_seconds = 0.0;
  double step_seconds = 0.0;
  std::size_t refactor_count = 0;
  std::size_t unknowns = 0;
  bool used_dense = false;
  /// True when a resource budget (deadline / memory / work) cancelled the
  /// integration mid-run: `time`/`samples` hold the prefix computed so far
  /// and the report carries a BudgetExceeded action. The partial waveform
  /// is usable but must be surfaced as truncated, never as complete.
  bool truncated = false;

  /// Robustness diagnostics: factorisation condition estimate, every
  /// fallback action taken (gmin regularisation, dense fallback, dt
  /// halving), and the final status. A Failed status means the integration
  /// stopped early and `time`/`samples` hold the prefix computed so far.
  robust::SolveReport report;

  /// Waveform lookup by probe name; throws if absent.
  const la::Vector& waveform(const std::string& name) const;
};

TransientResult transient(const Netlist& netlist,
                          const std::vector<Probe>& probes,
                          const TransientOptions& options);

}  // namespace ind::circuit
