// Small-signal AC analysis: solves (G + j w C) x = b for a unit phasor
// excitation at one independent source, all other sources zeroed.
//
// Used to validate reduced-order models against the full PEEC model in the
// frequency domain and to characterise the loop-model ladder fit (Fig. 3).
// Dense complex factorisation — intended for the moderate-size systems these
// comparisons run on; the loop extractor (loop/) has its own large-scale
// complex path.
#pragma once

#include <vector>

#include "circuit/mna.hpp"
#include "robust/diagnostics.hpp"

namespace ind::circuit {

struct AcExcitation {
  enum class Kind { VSource, ISource };
  Kind kind = Kind::VSource;
  std::size_t index = 0;
};

struct AcResult {
  la::CVector x;  ///< full MNA solution (nodes then branches)
  Mna mna;        ///< index map for interpreting x

  /// Robustness diagnostics: condition estimate of G + jwC, relative
  /// residual of the solve, and any gmin-regularisation fallback taken.
  /// A Failed status leaves `x` all-zero.
  robust::SolveReport report;

  la::Complex node_voltage(NodeId node) const {
    return node >= 0 ? x[static_cast<std::size_t>(node)] : la::Complex{};
  }
  la::Complex inductor_current(std::size_t k) const {
    return x[mna.inductor_branch(k)];
  }
  la::Complex vsource_current(std::size_t k) const {
    return x[mna.vsource_branch(k)];
  }
};

/// Solves the AC system at angular frequency `omega` (rad/s). Switched
/// drivers contribute their conductance at `driver_time` (default: fully
/// settled).
AcResult ac_solve(const Netlist& netlist, const AcExcitation& excitation,
                  double omega, double driver_time = 1e12);

/// Frequency sweep sharing one assembled pattern: the MNA index maps and
/// the G / C stamps are built once, so every point costs one complex
/// assembly + factorisation (only jw changes between points) instead of a
/// full netlist re-stamp. Results are identical to calling ac_solve per
/// omega.
std::vector<AcResult> ac_sweep(const Netlist& netlist,
                               const AcExcitation& excitation,
                               const std::vector<double>& omegas,
                               double driver_time = 1e12);

}  // namespace ind::circuit
