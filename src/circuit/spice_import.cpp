#include "circuit/spice_import.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ind::circuit {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Splits a card into tokens, treating PWL(...) as a single token stream:
// parentheses and commas become spaces first.
std::vector<std::string> tokenize(const std::string& line) {
  std::string cleaned = line;
  for (char& c : cleaned)
    if (c == '(' || c == ')' || c == ',' || c == '=') c = ' ';
  std::istringstream is(cleaned);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

}  // namespace

double parse_spice_value(const std::string& token) {
  const std::string s = lower(token);
  std::size_t pos = 0;
  double value;
  try {
    value = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_spice_value: not a number: " + token);
  }
  const std::string suffix = s.substr(pos);
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  if (suffix.rfind("mil", 0) == 0) return value * 25.4e-6;
  switch (suffix[0]) {
    case 't': return value * 1e12;
    case 'g': return value * 1e9;
    case 'k': return value * 1e3;
    case 'm': return value * 1e-3;
    case 'u': return value * 1e-6;
    case 'n': return value * 1e-9;
    case 'p': return value * 1e-12;
    case 'f': return value * 1e-15;
    default: return value;  // unit tails like "ohm", "v", "hz"
  }
}

SpiceImportResult parse_spice(std::istream& is) {
  SpiceImportResult out;
  Netlist& nl = out.netlist;
  std::map<std::string, std::size_t> inductor_by_name;
  struct PendingK {
    std::string l1, l2;
    double coeff;
    std::size_t line_no;
  };
  std::vector<PendingK> pending_k;

  auto node_of = [&](const std::string& name) -> NodeId {
    const std::string n = lower(name);
    if (n == "0" || n == "gnd") return kGround;
    return nl.node(n);
  };
  auto source_waveform = [&](const std::vector<std::string>& toks,
                             std::size_t start) -> Pwl {
    if (start >= toks.size()) return Pwl::constant(0.0);
    const std::string kind = lower(toks[start]);
    if (kind == "dc") {
      return Pwl::constant(
          start + 1 < toks.size() ? parse_spice_value(toks[start + 1]) : 0.0);
    }
    if (kind == "pwl") {
      std::vector<std::pair<double, double>> pts;
      for (std::size_t k = start + 1; k + 1 < toks.size(); k += 2)
        pts.emplace_back(parse_spice_value(toks[k]),
                         parse_spice_value(toks[k + 1]));
      return Pwl(std::move(pts));
    }
    // Bare numeric value == DC.
    return Pwl::constant(parse_spice_value(toks[start]));
  };

  std::string raw;
  std::string pending_line;
  std::size_t line_no = 0;          // 1-based line currently being read
  std::size_t pending_start = 0;    // line where the pending card began
  auto flush_line = [&](const std::string& line, std::size_t card_line) {
    if (line.empty()) return;
    const char lead = static_cast<char>(std::tolower(line[0]));
    if (lead == '*' || lead == '.') return;  // comment / control card
    const auto toks = tokenize(line);
    if (toks.empty()) return;
    const std::string name = lower(toks[0]);
    try {
      switch (lead) {
        case 'r':
          if (toks.size() < 4) throw std::invalid_argument("R card too short");
          nl.add_resistor(node_of(toks[1]), node_of(toks[2]),
                          parse_spice_value(toks[3]));
          ++out.parsed_cards;
          break;
        case 'c':
          if (toks.size() < 4) throw std::invalid_argument("C card too short");
          nl.add_capacitor(node_of(toks[1]), node_of(toks[2]),
                           parse_spice_value(toks[3]));
          ++out.parsed_cards;
          break;
        case 'l':
          if (toks.size() < 4) throw std::invalid_argument("L card too short");
          inductor_by_name[name] = nl.add_inductor(
              node_of(toks[1]), node_of(toks[2]), parse_spice_value(toks[3]));
          ++out.parsed_cards;
          break;
        case 'k': {
          if (toks.size() < 4) throw std::invalid_argument("K card too short");
          const double coeff = parse_spice_value(toks[3]);
          // A physical coupling coefficient satisfies |k| <= 1; beyond that
          // the inductance block goes indefinite (Section 4), so reject the
          // card at the parse boundary rather than in the solver.
          if (!(std::abs(coeff) <= 1.0))
            throw std::invalid_argument(
                "K card coupling coefficient |k| = " + toks[3] +
                " exceeds 1");
          pending_k.push_back(
              {lower(toks[1]), lower(toks[2]), coeff, card_line});
          ++out.parsed_cards;
          break;
        }
        case 'v':
          if (toks.size() < 3) throw std::invalid_argument("V card too short");
          nl.add_vsource(node_of(toks[1]), node_of(toks[2]),
                         source_waveform(toks, 3));
          ++out.parsed_cards;
          break;
        case 'i':
          if (toks.size() < 3) throw std::invalid_argument("I card too short");
          nl.add_isource(node_of(toks[1]), node_of(toks[2]),
                         source_waveform(toks, 3));
          ++out.parsed_cards;
          break;
        default:
          ++out.skipped_cards;  // B, E, G, M, X, ... unsupported
          break;
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string(e.what()) + " in card: " + line +
                                  " (line " + std::to_string(card_line) + ")");
    }
  };

  while (std::getline(is, raw)) {
    ++line_no;
    // Continuation lines start with '+'.
    if (!raw.empty() && raw[0] == '+') {
      pending_line += ' ' + raw.substr(1);
      continue;
    }
    flush_line(pending_line, pending_start);
    pending_line = raw;
    pending_start = line_no;
  }
  flush_line(pending_line, pending_start);

  // Resolve K cards now that every inductor is known.
  for (const PendingK& k : pending_k) {
    const auto i1 = inductor_by_name.find(k.l1);
    const auto i2 = inductor_by_name.find(k.l2);
    if (i1 == inductor_by_name.end() || i2 == inductor_by_name.end())
      throw std::invalid_argument("parse_spice: K card references unknown " +
                                  k.l1 + "/" + k.l2 + " (line " +
                                  std::to_string(k.line_no) + ")");
    const double m =
        k.coeff * std::sqrt(nl.inductors()[i1->second].henries *
                            nl.inductors()[i2->second].henries);
    nl.add_mutual(i1->second, i2->second, m);
  }
  out.validation = robust::validate(nl);
  return out;
}

SpiceImportResult parse_spice(const std::string& deck) {
  std::istringstream is(deck);
  return parse_spice(is);
}

}  // namespace ind::circuit
