// Circuit netlist: the element container shared by every model in the repo
// (detailed PEEC, sparsified variants, loop model, reduced-order macros).
//
// Supported elements map one-to-one onto the paper's Section-3 model:
// resistors, grounded/coupling capacitors, self inductors with mutual terms,
// K-matrix-coupled inductor groups (Section 4, [17]), independent V/I
// sources with PWL waveforms, and switched CMOS drivers (time-varying
// pull-up/pull-down conductances between the output and the local rails).
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/sources.hpp"

namespace ind::circuit {

/// Node handle; kGround is the reference node (not an MNA unknown).
using NodeId = int;
inline constexpr NodeId kGround = -1;

struct Resistor {
  NodeId a = kGround, b = kGround;
  double ohms = 0.0;
};

struct Capacitor {
  NodeId a = kGround, b = kGround;
  double farads = 0.0;
};

/// Inductor with its own MNA branch-current unknown; current flows a -> b.
struct Inductor {
  NodeId a = kGround, b = kGround;
  double henries = 0.0;
};

/// Mutual inductance between two inductor branches (by inductor index).
struct Mutual {
  std::size_t i = 0, j = 0;
  double henries = 0.0;
};

/// A group of inductors governed by a sparse K = L^-1 matrix instead of
/// L/M values: K (v_a - v_b) = dI/dt per branch (Devgan et al., ICCAD 2000).
/// Self terms of the group's inductors are ignored while the group is
/// active; the K entries fully define the coupling.
struct KMatrixGroup {
  std::vector<std::size_t> inductors;  ///< member inductor indices
  struct Entry {
    std::size_t row = 0, col = 0;  ///< indices into `inductors`
    double value = 0.0;            ///< 1/henries
  };
  std::vector<Entry> entries;  ///< sparse symmetric K
};

/// Independent voltage source (adds a branch current unknown), v(a)-v(b)=e(t).
struct VSource {
  NodeId a = kGround, b = kGround;
  Pwl waveform;
};

/// Independent current source, current flows from a to b through the source.
struct ISource {
  NodeId a = kGround, b = kGround;
  Pwl waveform;
};

/// Switched CMOS driver: pull-up conductance g_up(t) between `out` and
/// `vdd`, pull-down g_dn(t) between `out` and `gnd`. A rising output ramps
/// g_up from 0 to 1/R while g_dn ramps 1/R to 0 over `slew` seconds starting
/// at `start`; both partially conduct mid-transition, producing the
/// short-circuit current I1 of Fig. 1.
struct SwitchedDriver {
  NodeId out = kGround;
  NodeId vdd = kGround;
  NodeId gnd = kGround;
  double pull_ohms = 30.0;
  double slew = 50e-12;
  double start = 0.0;
  bool rising = true;
  /// Fraction of the transition during which both halves conduct (around
  /// the midpoint). 1.0 = full crossfade (maximum short-circuit current);
  /// realistic CMOS input slopes give a short both-on window.
  double overlap = 0.25;
  /// The transition ramp is quantised into this many conductance plateaus so
  /// the transient engine refactorises a bounded number of times per edge
  /// (0 = continuous ramp, refactor every step during the slew).
  int quantize_levels = 8;
  std::string name;

  double g_up(double t) const;
  double g_dn(double t) const;
  /// True if the conductances still change after time t.
  bool settled_by(double t) const { return t >= start + slew; }
};

class Netlist {
 public:
  // --- nodes ---------------------------------------------------------------
  /// Get-or-create a named node.
  NodeId node(const std::string& name);
  /// Fresh anonymous node.
  NodeId make_node();
  /// Number of non-ground nodes.
  std::size_t num_nodes() const { return static_cast<std::size_t>(next_node_); }
  /// Lookup only; kGround-1 (=-2) if absent.
  NodeId find_node(const std::string& name) const;

  // --- element insertion ----------------------------------------------------
  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  std::size_t add_inductor(NodeId a, NodeId b, double henries);
  /// Replaces an inductor's self value (used by sparsification schemes that
  /// shift the diagonal, e.g. the shell method).
  void set_inductance(std::size_t inductor, double henries);
  void add_mutual(std::size_t i, std::size_t j, double henries);
  void add_kmatrix_group(KMatrixGroup group);
  std::size_t add_vsource(NodeId a, NodeId b, Pwl waveform);
  std::size_t add_isource(NodeId a, NodeId b, Pwl waveform);
  std::size_t add_driver(SwitchedDriver driver);

  // --- element access (used by the MNA builder and benches) -----------------
  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<Mutual>& mutuals() const { return mutuals_; }
  const std::vector<KMatrixGroup>& kmatrix_groups() const { return kgroups_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<SwitchedDriver>& drivers() const { return drivers_; }
  std::vector<SwitchedDriver>& drivers() { return drivers_; }

  /// True if any inductor belongs to a K group (its self-L stamp is then
  /// replaced by the group's K rows).
  bool inductor_in_kgroup(std::size_t inductor) const;

  /// Element-count summary (the paper's Table 1 reports exactly these).
  struct Counts {
    std::size_t resistors = 0, capacitors = 0, inductors = 0, mutuals = 0;
  };
  Counts counts() const;

 private:
  NodeId next_node_ = 0;
  std::unordered_map<std::string, NodeId> named_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<Mutual> mutuals_;
  std::vector<KMatrixGroup> kgroups_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<SwitchedDriver> drivers_;
  std::vector<bool> in_kgroup_;
};

}  // namespace ind::circuit
