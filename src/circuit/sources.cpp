#include "circuit/sources.hpp"

#include <algorithm>
#include <stdexcept>

namespace ind::circuit {

Pwl::Pwl(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  if (!std::is_sorted(points_.begin(), points_.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; }))
    throw std::invalid_argument("Pwl: points must be sorted by time");
}

double Pwl::operator()(double t) const {
  if (points_.empty()) return 0.0;
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double value, const auto& p) { return value < p.first; });
  const auto& [t1, v1] = *it;
  const auto& [t0, v0] = *(it - 1);
  const double alpha = (t - t0) / (t1 - t0);
  return v0 + alpha * (v1 - v0);
}

Pwl Pwl::constant(double value) { return Pwl({{0.0, value}}); }

Pwl Pwl::ramp(double t0, double rise, double amplitude) {
  return Pwl({{t0, 0.0}, {t0 + rise, amplitude}});
}

Pwl Pwl::falling_ramp(double t0, double fall, double amplitude) {
  return Pwl({{t0, amplitude}, {t0 + fall, 0.0}});
}

Pwl Pwl::pulse(double t0, double rise, double width, double fall,
               double amplitude) {
  return Pwl({{t0, 0.0},
              {t0 + rise, amplitude},
              {t0 + rise + width, amplitude},
              {t0 + rise + width + fall, 0.0}});
}

double SwitchingProfileGenerator::uniform() {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const std::uint64_t x = state_ * 0x2545F4914F6CDD1DULL;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

Pwl SwitchingProfileGenerator::background_current(double t_stop,
                                                  double peak_amps,
                                                  int pulses) {
  std::vector<double> starts(static_cast<std::size_t>(pulses));
  for (double& s : starts) s = uniform() * t_stop * 0.8;
  std::sort(starts.begin(), starts.end());

  std::vector<std::pair<double, double>> pts;
  pts.emplace_back(0.0, 0.0);
  double t_last = 0.0;
  for (double s : starts) {
    const double height = peak_amps * (0.3 + 0.7 * uniform());
    const double dur = t_stop * (0.02 + 0.08 * uniform());
    const double start = std::max(s, t_last + 1e-15);
    pts.emplace_back(start, 0.0);
    pts.emplace_back(start + 0.5 * dur, height);
    pts.emplace_back(start + dur, 0.0);
    t_last = start + dur;
  }
  pts.emplace_back(std::max(t_stop, t_last + 1e-15), 0.0);
  // Re-sort defensively; overlapping pulses collapse to interleaved points.
  std::sort(pts.begin(), pts.end());
  // Deduplicate identical time stamps.
  pts.erase(std::unique(pts.begin(), pts.end(),
                        [](const auto& a, const auto& b) {
                          return a.first == b.first;
                        }),
            pts.end());
  return Pwl(std::move(pts));
}

}  // namespace ind::circuit
