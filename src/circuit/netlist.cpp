#include "circuit/netlist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ind::circuit {

namespace {

// Linear crossfade in [0,1] of the transition progress at time t.
double progress(double t, double start, double slew) {
  if (t <= start) return 0.0;
  if (t >= start + slew) return 1.0;
  return (t - start) / slew;
}

}  // namespace

namespace {

// Turning-on device: ramps 0 -> 1 over progress [0.5 - ov/2, 1].
double turn_on(double p, double ov) {
  const double t0 = 0.5 * (1.0 - ov);
  return std::clamp((p - t0) / (1.0 - t0), 0.0, 1.0);
}

// Turning-off device: ramps 1 -> 0 over progress [0, 0.5 + ov/2].
double turn_off(double p, double ov) {
  const double t1 = 0.5 * (1.0 + ov);
  return std::clamp(1.0 - p / t1, 0.0, 1.0);
}

}  // namespace

double SwitchedDriver::g_up(double t) const {
  double p = progress(t, start, slew);
  if (quantize_levels > 0) p = std::round(p * quantize_levels) / quantize_levels;
  const double frac = rising ? turn_on(p, overlap) : turn_off(p, overlap);
  return frac / pull_ohms;
}

double SwitchedDriver::g_dn(double t) const {
  double p = progress(t, start, slew);
  if (quantize_levels > 0) p = std::round(p * quantize_levels) / quantize_levels;
  const double frac = rising ? turn_off(p, overlap) : turn_on(p, overlap);
  return frac / pull_ohms;
}

NodeId Netlist::node(const std::string& name) {
  const auto it = named_.find(name);
  if (it != named_.end()) return it->second;
  const NodeId id = next_node_++;
  named_.emplace(name, id);
  return id;
}

NodeId Netlist::make_node() { return next_node_++; }

NodeId Netlist::find_node(const std::string& name) const {
  const auto it = named_.find(name);
  return it == named_.end() ? kGround - 1 : it->second;
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("add_resistor: ohms <= 0");
  resistors_.push_back({a, b, ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  if (farads < 0.0) throw std::invalid_argument("add_capacitor: farads < 0");
  if (farads > 0.0) capacitors_.push_back({a, b, farads});
}

std::size_t Netlist::add_inductor(NodeId a, NodeId b, double henries) {
  if (henries <= 0.0) throw std::invalid_argument("add_inductor: henries <= 0");
  inductors_.push_back({a, b, henries});
  in_kgroup_.push_back(false);
  return inductors_.size() - 1;
}

void Netlist::set_inductance(std::size_t inductor, double henries) {
  if (inductor >= inductors_.size())
    throw std::out_of_range("set_inductance: bad inductor index");
  if (henries <= 0.0)
    throw std::invalid_argument("set_inductance: henries <= 0");
  inductors_[inductor].henries = henries;
}

void Netlist::add_mutual(std::size_t i, std::size_t j, double henries) {
  if (i >= inductors_.size() || j >= inductors_.size() || i == j)
    throw std::invalid_argument("add_mutual: bad inductor indices");
  // Passivity bound |M| <= sqrt(Li Lj) is the caller's responsibility (the
  // whole point of Section 4 is that naive sparsification can violate the
  // matrix-level equivalent); we only reject the trivially bad case.
  mutuals_.push_back({i, j, henries});
}

void Netlist::add_kmatrix_group(KMatrixGroup group) {
  for (std::size_t k : group.inductors) {
    if (k >= inductors_.size())
      throw std::invalid_argument("add_kmatrix_group: bad inductor index");
    in_kgroup_[k] = true;
  }
  kgroups_.push_back(std::move(group));
}

std::size_t Netlist::add_vsource(NodeId a, NodeId b, Pwl waveform) {
  vsources_.push_back({a, b, std::move(waveform)});
  return vsources_.size() - 1;
}

std::size_t Netlist::add_isource(NodeId a, NodeId b, Pwl waveform) {
  isources_.push_back({a, b, std::move(waveform)});
  return isources_.size() - 1;
}

std::size_t Netlist::add_driver(SwitchedDriver driver) {
  if (driver.pull_ohms <= 0.0)
    throw std::invalid_argument("add_driver: pull_ohms <= 0");
  if (driver.slew <= 0.0) throw std::invalid_argument("add_driver: slew <= 0");
  drivers_.push_back(std::move(driver));
  return drivers_.size() - 1;
}

bool Netlist::inductor_in_kgroup(std::size_t inductor) const {
  return inductor < in_kgroup_.size() && in_kgroup_[inductor];
}

Netlist::Counts Netlist::counts() const {
  Counts c;
  c.resistors = resistors_.size();
  c.capacitors = capacitors_.size();
  c.inductors = inductors_.size();
  c.mutuals = mutuals_.size();
  for (const auto& g : kgroups_) {
    for (const auto& e : g.entries)
      if (e.row < e.col) ++c.mutuals;
  }
  return c;
}

}  // namespace ind::circuit
