#include "store/artifact_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <vector>

#include "govern/env.hpp"
#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"

namespace ind::store {
namespace fs = std::filesystem;
namespace {

// Serialises directory-level operations (evictions, reconfiguration) within
// the process; cross-process safety comes from atomic renames.
std::mutex g_mutex;

}  // namespace

ArtifactCache& ArtifactCache::instance() {
  static ArtifactCache cache;
  return cache;
}

ArtifactCache::ArtifactCache() {
  const char* dir = std::getenv("IND_CACHE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const govern::EnvValue cap =
      govern::env_u64("IND_CACHE_MAX_BYTES", kDefaultMaxBytes, kMinConfigBytes,
                      kMaxConfigBytes, "store");
  configure(dir, cap.value);
}

void ArtifactCache::configure(std::string dir, std::uint64_t max_bytes) {
  std::scoped_lock lock(g_mutex);
  dir_ = std::move(dir);
  max_bytes_ = max_bytes;
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    runtime::MetricsRegistry::instance().add_count("store.dir_failures", 1);
    dir_.clear();  // unusable directory: run with the cache off
    return;
  }
  // Crash recovery on every (re)configure: a previous process killed
  // mid-write must never poison this one.
  recover_locked();
}

ArtifactCache::RecoveryReport ArtifactCache::recover() {
  std::scoped_lock lock(g_mutex);
  return recover_locked();
}

namespace {

/// Parses the 32-hex fingerprint out of `<kind>-<32hex>.art`. Returns false
/// for names that do not follow the cache's naming scheme (foreign files are
/// validated by checksums alone).
bool digest_from_name(const std::string& stem, Digest* out) {
  const std::size_t dash = stem.rfind('-');
  if (dash == std::string::npos || stem.size() - dash - 1 != 32) return false;
  std::uint64_t halves[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int k = 0; k < 16; ++k) {
      const char c = stem[dash + 1 + static_cast<std::size_t>(half * 16 + k)];
      std::uint64_t nibble;
      if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        nibble = static_cast<std::uint64_t>(c - 'A' + 10);
      else
        return false;
      halves[half] = (halves[half] << 4) | nibble;
    }
  }
  out->hi = halves[0];
  out->lo = halves[1];
  return true;
}

}  // namespace

ArtifactCache::RecoveryReport ArtifactCache::recover_locked() {
  RecoveryReport report;
  if (dir_.empty()) return report;
  auto& metrics = runtime::MetricsRegistry::instance();
  const fs::path qdir = fs::path(dir_) / "quarantine";
  std::error_code ec;
  // One quarantine generation: the previous sweep's exhibits made it through
  // a full process lifetime without anyone asking for them.
  fs::remove_all(qdir, ec);

  const auto quarantine = [&](const fs::path& p, const std::string& why) {
    std::error_code qec;
    fs::create_directories(qdir, qec);
    fs::rename(p, qdir / p.filename(), qec);
    if (qec) fs::remove(p, qec);  // quarantine unusable: drop the file
    metrics.add_count("store.quarantined", 1);
    metrics.add_count("store.quarantined." + why, 1);
  };

  std::vector<fs::path> tmps, arts;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (ec) return report;
    std::error_code fec;
    if (!de.is_regular_file(fec)) continue;
    const std::string name = de.path().filename().string();
    if (name.find(".tmp") != std::string::npos)
      tmps.push_back(de.path());
    else if (de.path().extension() == ".art")
      arts.push_back(de.path());
  }

  for (const fs::path& p : tmps) {
    // An orphaned temp file is a writer that died between open and rename —
    // by construction it may be torn, so it never graduates to .art.
    quarantine(p, "tmp");
    ++report.quarantined_tmp;
  }
  for (const fs::path& p : arts) {
    ++report.scanned;
    Digest want;
    const bool have_want = digest_from_name(p.stem().string(), &want);
    try {
      (void)read_artifact(p.string(), have_want ? &want : nullptr);
      ++report.recovered;
      metrics.add_count("store.recovered", 1);
    } catch (const StoreError& e) {
      quarantine(p, to_string(e.code()));
      ++report.quarantined_corrupt;
    }
  }
  return report;
}

std::string ArtifactCache::path_for(const std::string& kind,
                                    const Digest& fp) const {
  return dir_ + "/" + kind + "-" + fp.hex() + ".art";
}

std::optional<Artifact> ArtifactCache::load(const std::string& kind,
                                            const Digest& fp,
                                            robust::SolveReport* report) {
  if (!enabled()) return std::nullopt;
  auto& metrics = runtime::MetricsRegistry::instance();
  const std::string path = path_for(kind, fp);
  {
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      metrics.add_count("store.misses", 1);
      return std::nullopt;
    }
  }
  try {
    Artifact a = read_artifact(path, &fp);
    if (robust::fault::fire(robust::fault::Site::StoreRead))
      throw StoreError(StoreErrc::ChecksumMismatch,
                       "injected artifact-read fault (" + path + ")");
    if (a.kind != kind)
      throw StoreError(StoreErrc::Malformed, "kind '" + a.kind +
                                                 "' under a '" + kind +
                                                 "' file name");
    metrics.add_count("store.hits", 1);
    metrics.add_count("store.hit_bytes",
                      static_cast<std::int64_t>(a.total_bytes()));
    // Refresh recency for LRU eviction.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return a;
  } catch (const StoreError& e) {
    metrics.add_count("store.corrupt", 1);
    metrics.add_count(std::string("store.corrupt.") + to_string(e.code()), 1);
    if (report != nullptr)
      report->add_action(robust::RecoveryKind::ArtifactRecompute, 0, 0.0,
                         std::string(to_string(e.code())) + " reading " + kind +
                             "-" + fp.hex());
    std::error_code ec;
    fs::remove(path, ec);
    metrics.add_count("store.misses", 1);
    return std::nullopt;
  }
}

void ArtifactCache::save(const Artifact& a) {
  if (!enabled()) return;
  auto& metrics = runtime::MetricsRegistry::instance();
  const std::string path = path_for(a.kind, a.fingerprint);
  try {
    write_artifact(path, a);
    metrics.add_count("store.saves", 1);
  } catch (const StoreError&) {
    metrics.add_count("store.save_failures", 1);
    return;
  }
  evict_to_cap(path);
}

void ArtifactCache::evict_to_cap(const std::string& keep_path) {
  std::scoped_lock lock(g_mutex);
  std::error_code ec;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (ec) return;
    if (!de.is_regular_file(ec) || de.path().extension() != ".art") continue;
    Entry e{de.path(), de.last_write_time(ec),
            static_cast<std::uint64_t>(de.file_size(ec))};
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= max_bytes_) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  auto& metrics = runtime::MetricsRegistry::instance();
  for (const Entry& e : entries) {
    if (total <= max_bytes_) break;
    if (e.path == keep_path) continue;  // never evict what was just written
    if (fs::remove(e.path, ec)) {
      total -= e.size;
      metrics.add_count("store.evictions", 1);
      metrics.add_count("store.evicted_bytes",
                        static_cast<std::int64_t>(e.size));
    }
  }
}

}  // namespace ind::store
