// Deterministic content hashing for the artifact store.
//
// Fingerprints key the on-disk cache, so they must be a pure function of the
// bytes fed in: no pointers, no timestamps, no thread counts. Doubles are
// hashed by their IEEE-754 bit pattern (so +0.0 and -0.0 differ, and the
// fingerprint is exactly as strict as the bitwise-identity guarantee the
// runtime layer makes). The digest is 128 bits built from two independent
// FNV-1a streams — not cryptographic, but collision-safe at cache scale and
// dependency-free.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace ind::store {

/// 128-bit content digest; formats as 32 lowercase hex digits.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest&) const = default;
  std::string hex() const;
};

/// Incremental FNV-1a over two lanes with distinct offset bases.
class Hasher {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t k = 0; k < n; ++k) {
      a_ = (a_ ^ p[k]) * kPrime;
      b_ = (b_ ^ p[k]) * kPrime;
      b_ ^= b_ >> 29;  // decorrelate the lanes
    }
  }

  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Length-prefixed, so "ab","c" never collides with "a","bc".
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void f64s(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }

  Digest digest() const { return {a_, b_}; }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t a_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t b_ = 0x6c62272e07bb0142ULL;  // FNV-0 basis of the 128-bit form
};

/// One-shot digest of a byte buffer.
Digest hash_bytes(const void* data, std::size_t n);

}  // namespace ind::store
