#include "store/hash.hpp"

#include <cstdio>

namespace ind::store {

std::string Digest::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Digest hash_bytes(const void* data, std::size_t n) {
  Hasher h;
  h.bytes(data, n);
  return h.digest();
}

}  // namespace ind::store
