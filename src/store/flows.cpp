#include "store/flows.hpp"

#include "govern/budget.hpp"
#include "runtime/metrics.hpp"
#include "sparsify/kmatrix.hpp"
#include "store/artifact_cache.hpp"

namespace ind::store::serde {
namespace {

void put_pwl(ByteWriter& w, const circuit::Pwl& pwl) {
  w.u64(pwl.points().size());
  for (const auto& [t, v] : pwl.points()) {
    w.f64(t);
    w.f64(v);
  }
}

circuit::Pwl get_pwl(ByteReader& r) {
  const std::uint64_t n = r.count(r.u64(), 2 * sizeof(double));
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [t, v] : pts) {
    t = r.f64();
    v = r.f64();
  }
  return pts.empty() ? circuit::Pwl{} : circuit::Pwl(std::move(pts));
}

void put_sizes(ByteWriter& w, const std::vector<std::size_t>& v) {
  w.u64(v.size());
  for (std::size_t x : v) w.u64(x);
}

std::vector<std::size_t> get_sizes(ByteReader& r) {
  const std::uint64_t n = r.count(r.u64(), sizeof(std::uint64_t));
  std::vector<std::size_t> v(n);
  for (auto& x : v) x = r.u64();
  return v;
}

void put_nodes(ByteWriter& w, const std::vector<circuit::NodeId>& v) {
  w.u64(v.size());
  for (circuit::NodeId n : v) w.i32(n);
}

std::vector<circuit::NodeId> get_nodes(ByteReader& r) {
  const std::uint64_t n = r.count(r.u64(), 4);
  std::vector<circuit::NodeId> v(n);
  for (auto& x : v) x = r.i32();
  return v;
}

}  // namespace

void put(ByteWriter& w, const circuit::Netlist& nl) {
  w.u64(nl.num_nodes());
  w.u64(nl.resistors().size());
  for (const auto& e : nl.resistors()) {
    w.i32(e.a); w.i32(e.b); w.f64(e.ohms);
  }
  w.u64(nl.capacitors().size());
  for (const auto& e : nl.capacitors()) {
    w.i32(e.a); w.i32(e.b); w.f64(e.farads);
  }
  w.u64(nl.inductors().size());
  for (const auto& e : nl.inductors()) {
    w.i32(e.a); w.i32(e.b); w.f64(e.henries);
  }
  w.u64(nl.mutuals().size());
  for (const auto& e : nl.mutuals()) {
    w.u64(e.i); w.u64(e.j); w.f64(e.henries);
  }
  w.u64(nl.kmatrix_groups().size());
  for (const auto& g : nl.kmatrix_groups()) {
    put_sizes(w, g.inductors);
    w.u64(g.entries.size());
    for (const auto& e : g.entries) {
      w.u64(e.row); w.u64(e.col); w.f64(e.value);
    }
  }
  w.u64(nl.vsources().size());
  for (const auto& e : nl.vsources()) {
    w.i32(e.a); w.i32(e.b); put_pwl(w, e.waveform);
  }
  w.u64(nl.isources().size());
  for (const auto& e : nl.isources()) {
    w.i32(e.a); w.i32(e.b); put_pwl(w, e.waveform);
  }
  w.u64(nl.drivers().size());
  for (const auto& d : nl.drivers()) {
    w.i32(d.out); w.i32(d.vdd); w.i32(d.gnd);
    w.f64(d.pull_ohms);
    w.f64(d.slew);
    w.f64(d.start);
    w.boolean(d.rising);
    w.f64(d.overlap);
    w.i32(d.quantize_levels);
    w.str(d.name);
  }
}

void get(ByteReader& r, circuit::Netlist& nl) {
  nl = circuit::Netlist{};
  const std::uint64_t n_nodes = r.u64();
  for (std::uint64_t k = 0; k < n_nodes; ++k) nl.make_node();
  const std::uint64_t n_res = r.count(r.u64(), 8 + sizeof(double));
  for (std::uint64_t k = 0; k < n_res; ++k) {
    const circuit::NodeId a = r.i32();
    const circuit::NodeId b = r.i32();
    nl.add_resistor(a, b, r.f64());
  }
  const std::uint64_t n_cap = r.count(r.u64(), 8 + sizeof(double));
  for (std::uint64_t k = 0; k < n_cap; ++k) {
    const circuit::NodeId a = r.i32();
    const circuit::NodeId b = r.i32();
    nl.add_capacitor(a, b, r.f64());
  }
  const std::uint64_t n_ind = r.count(r.u64(), 8 + sizeof(double));
  for (std::uint64_t k = 0; k < n_ind; ++k) {
    const circuit::NodeId a = r.i32();
    const circuit::NodeId b = r.i32();
    nl.add_inductor(a, b, r.f64());
  }
  const std::uint64_t n_mut = r.count(r.u64(), 16 + sizeof(double));
  for (std::uint64_t k = 0; k < n_mut; ++k) {
    const std::size_t i = r.u64();
    const std::size_t j = r.u64();
    nl.add_mutual(i, j, r.f64());
  }
  const std::uint64_t n_kg = r.count(r.u64(), 8);
  for (std::uint64_t k = 0; k < n_kg; ++k) {
    circuit::KMatrixGroup g;
    g.inductors = get_sizes(r);
    const std::uint64_t ne = r.count(r.u64(), 16 + sizeof(double));
    g.entries.resize(ne);
    for (auto& e : g.entries) {
      e.row = r.u64();
      e.col = r.u64();
      e.value = r.f64();
    }
    nl.add_kmatrix_group(std::move(g));
  }
  const std::uint64_t n_vs = r.count(r.u64(), 16);
  for (std::uint64_t k = 0; k < n_vs; ++k) {
    const circuit::NodeId a = r.i32();
    const circuit::NodeId b = r.i32();
    nl.add_vsource(a, b, get_pwl(r));
  }
  const std::uint64_t n_is = r.count(r.u64(), 16);
  for (std::uint64_t k = 0; k < n_is; ++k) {
    const circuit::NodeId a = r.i32();
    const circuit::NodeId b = r.i32();
    nl.add_isource(a, b, get_pwl(r));
  }
  const std::uint64_t n_drv = r.count(r.u64(), 24);
  for (std::uint64_t k = 0; k < n_drv; ++k) {
    circuit::SwitchedDriver d;
    d.out = r.i32();
    d.vdd = r.i32();
    d.gnd = r.i32();
    d.pull_ohms = r.f64();
    d.slew = r.f64();
    d.start = r.f64();
    d.rising = r.boolean();
    d.overlap = r.f64();
    d.quantize_levels = r.i32();
    d.name = r.str();
    nl.add_driver(std::move(d));
  }
}

void put(ByteWriter& w, const peec::PeecModel& m) {
  put(w, m.netlist);
  put(w, m.layout);
  put(w, m.extraction);
  put_nodes(w, m.seg_a);
  put_nodes(w, m.seg_b);
  put_sizes(w, m.seg_inductor);
  w.u64(m.nodes.size());
  for (const peec::NodeInfo& n : m.nodes) {
    w.f64(n.at.x); w.f64(n.at.y);
    w.i32(n.layer);
    w.i32(n.net);
    w.u8(static_cast<std::uint8_t>(n.kind));
  }
  w.i32(m.ideal_vdd);
  put_nodes(w, m.substrate_nodes);
  w.u64(m.receiver_probes.size());
  for (const circuit::Probe& p : m.receiver_probes) {
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.u64(p.index);
    w.str(p.name);
  }
  w.u64(m.receiver_names.size());
  for (const std::string& s : m.receiver_names) w.str(s);
  put_sizes(w, m.driver_indices);
  w.f64(m.vdd_volts);
}

void get(ByteReader& r, peec::PeecModel& m) {
  m = peec::PeecModel{};
  get(r, m.netlist);
  get(r, m.layout);
  get(r, m.extraction);
  m.seg_a = get_nodes(r);
  m.seg_b = get_nodes(r);
  m.seg_inductor = get_sizes(r);
  const std::uint64_t n_nodes = r.count(r.u64(), 2 * sizeof(double) + 9);
  m.nodes.resize(n_nodes);
  for (peec::NodeInfo& n : m.nodes) {
    n.at.x = r.f64(); n.at.y = r.f64();
    n.layer = r.i32();
    n.net = r.i32();
    n.kind = static_cast<geom::NetKind>(r.u8());
  }
  m.ideal_vdd = r.i32();
  m.substrate_nodes = get_nodes(r);
  const std::uint64_t n_probes = r.count(r.u64(), 17);
  m.receiver_probes.resize(n_probes);
  for (circuit::Probe& p : m.receiver_probes) {
    p.kind = static_cast<circuit::ProbeKind>(r.u8());
    p.index = r.u64();
    p.name = r.str();
  }
  const std::uint64_t n_names = r.count(r.u64(), 8);
  m.receiver_names.resize(n_names);
  for (std::string& s : m.receiver_names) s = r.str();
  m.driver_indices = get_sizes(r);
  m.vdd_volts = r.f64();
}

void put(ByteWriter& w, const mor::ReducedModel& m) {
  put(w, m.g);
  put(w, m.c);
  put(w, m.b);
  put(w, m.l);
  put(w, m.v);
  put(w, m.report);
}

void get(ByteReader& r, mor::ReducedModel& m) {
  m = mor::ReducedModel{};
  get(r, m.g);
  get(r, m.c);
  get(r, m.b);
  get(r, m.l);
  get(r, m.v);
  get(r, m.report);
}

}  // namespace ind::store::serde

namespace ind::store {
namespace {

/// Shared hit/miss skeleton: returns the decoded object on a hit, otherwise
/// computes, stores and returns it. `Serialize`/`Deserialize` run under the
/// store.(de)serialize timers so cache overhead is visible in BENCH json.
template <typename T, typename Compute, typename Put, typename Get>
T cached(const char* kind, const Digest& fp, Compute compute, Put put_fn,
         Get get_fn) {
  // An already-cancelled run must not start a compute just to populate the
  // cache; the degradation ladder handles the throw.
  govern::throw_if_cancelled(kind);
  ArtifactCache& cache = ArtifactCache::instance();
  robust::SolveReport report;
  if (auto artifact = cache.load(kind, fp, &report)) {
    runtime::ScopedTimer t("store.deserialize");
    T value;
    ByteReader r = artifact->reader(kind);
    get_fn(r, value);
    if (!report.actions.empty()) report.record("store");
    return value;
  }
  T value = compute();
  // A compute that ran to completion under a fired token may still be
  // partial (a parallel stage skipped chunks): never persist it.
  if (govern::Governor::instance().cancelled()) {
    runtime::MetricsRegistry::instance().add_count("store.save_skipped", 1);
    return value;
  }
  Artifact a;
  a.kind = kind;
  a.fingerprint = fp;
  ByteWriter w;
  {
    runtime::ScopedTimer t("store.serialize");
    put_fn(w, value);
  }
  a.add(kind, std::move(w));
  cache.save(a);
  if (!report.actions.empty()) report.record("store");
  return value;
}

}  // namespace

void hash_peec_options(Hasher& h, const peec::PeecOptions& o) {
  h.boolean(o.rc_only);
  h.u8(static_cast<std::uint8_t>(o.mutual_policy));
  h.f64(o.mutual_window);
  h.f64(o.coupling_window);
  h.f64(o.max_segment_length);
  h.f64(o.vdd);
  h.boolean(o.decap.enable);
  h.f64(o.decap.total_capacitance);
  h.f64(o.decap.series_tau);
  h.i64(o.decap.sites);
  h.boolean(o.background.enable);
  h.i64(o.background.sources);
  h.f64(o.background.peak_current);
  h.i64(o.background.pulses);
  h.f64(o.background.window);
  h.u64(o.background.seed);
  h.boolean(o.package.include);
  h.f64(o.package.resistance_scale);
  h.f64(o.package.inductance_scale);
  h.boolean(o.substrate.enable);
  h.f64(o.substrate.pitch);
  h.f64(o.substrate.sheet_resistance);
  h.f64(o.substrate.tap_resistance);
  h.i64(o.substrate.taps_per_side);
  h.f64(o.substrate.nwell_cap_total);
  h.i64(o.substrate.max_nodes_per_axis);
  h.f64(o.snap);
}

void hash_matrix(Hasher& h, const la::Matrix& m) {
  h.u64(m.rows());
  h.u64(m.cols());
  h.bytes(m.data(), m.rows() * m.cols() * sizeof(double));
}

Digest fingerprint(const geom::Layout& layout, const peec::PeecOptions& opts) {
  Hasher h = fingerprint_base("peec_model");
  hash_layout(h, layout);
  hash_peec_options(h, opts);
  return h.digest();
}

Digest fingerprint_prima(const la::Matrix& g, const la::Matrix& c,
                         const la::Matrix& b, const la::Matrix& l,
                         const mor::PrimaOptions& opts) {
  Hasher h = fingerprint_base("prima_rom");
  hash_matrix(h, g);
  hash_matrix(h, c);
  hash_matrix(h, b);
  hash_matrix(h, l);
  h.u64(opts.max_order);
  h.f64(opts.s0);
  h.f64(opts.deflation_tol);
  return h.digest();
}

Digest fingerprint_kmatrix(const la::Matrix& partial_l,
                           double threshold_ratio) {
  Hasher h = fingerprint_base("kmatrix");
  hash_matrix(h, partial_l);
  h.f64(threshold_ratio);
  return h.digest();
}

peec::PeecModel cached_peec_model(const geom::Layout& input,
                                  const peec::PeecOptions& opts) {
  if (!ArtifactCache::instance().enabled())
    return peec::build_peec_model(input, opts);
  return cached<peec::PeecModel>(
      "peec_model", fingerprint(input, opts),
      [&] { return peec::build_peec_model(input, opts); },
      [](ByteWriter& w, const peec::PeecModel& m) { serde::put(w, m); },
      [](ByteReader& r, peec::PeecModel& m) { serde::get(r, m); });
}

mor::ReducedModel cached_prima_reduce(const la::Matrix& g, const la::Matrix& c,
                                      const la::Matrix& b, const la::Matrix& l,
                                      const mor::PrimaOptions& opts) {
  if (!ArtifactCache::instance().enabled())
    return mor::prima_reduce(g, c, b, l, opts);
  return cached<mor::ReducedModel>(
      "prima_rom", fingerprint_prima(g, c, b, l, opts),
      [&] { return mor::prima_reduce(g, c, b, l, opts); },
      [](ByteWriter& w, const mor::ReducedModel& m) { serde::put(w, m); },
      [](ByteReader& r, mor::ReducedModel& m) { serde::get(r, m); });
}

sparsify::SparsifiedL cached_kmatrix_sparsify(const la::Matrix& partial_l,
                                              double threshold_ratio) {
  if (!ArtifactCache::instance().enabled())
    return sparsify::kmatrix_sparsify(partial_l, threshold_ratio);
  return cached<sparsify::SparsifiedL>(
      "kmatrix", fingerprint_kmatrix(partial_l, threshold_ratio),
      [&] { return sparsify::kmatrix_sparsify(partial_l, threshold_ratio); },
      [](ByteWriter& w, const sparsify::SparsifiedL& s) { serde::put(w, s); },
      [](ByteReader& r, sparsify::SparsifiedL& s) { serde::get(r, s); });
}

}  // namespace ind::store
