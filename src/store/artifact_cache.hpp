// On-disk content-addressed artifact cache.
//
// Off by default: the cache activates only when IND_CACHE_DIR names a
// directory (created on demand), so tier-1 behaviour is unchanged unless a
// user opts in. Artifacts are keyed purely by content fingerprint — nothing
// thread- or time-dependent enters the key — so any process, at any
// IND_THREADS setting, addressing the same layout + options reads the same
// bytes and reproduces bitwise-identical results.
//
//   file name     <kind>-<32-hex-fingerprint>.art
//   writes        temp file + atomic rename (write_artifact)
//   size cap      IND_CACHE_MAX_BYTES (default 1 GiB); least-recently-used
//                 artifacts (by mtime, refreshed on hit) are evicted after
//                 each store
//   corruption    any StoreError on read is counted (store.corrupt.<code>),
//                 the bad file is removed, and the caller recomputes; the
//                 fallback is surfaced through robust::SolveReport as an
//                 ArtifactRecompute recovery action, never a crash
//   fault site    IND_FAULT_INJECT=store_read@N forces the corruption path
//   recovery      every configure() (so: every startup with IND_CACHE_DIR)
//                 sweeps the directory: orphaned .tmp partial writes and
//                 entries failing validation move to quarantine/ —
//                 store.recovered / store.quarantined[.*] counters;
//                 IND_FAULT_INJECT=store_write@N leaves a torn .tmp behind
//                 exactly like a kill -9 mid-commit
//
// Metrics: store.hits / store.misses / store.corrupt[.*] / store.evictions /
// store.evicted_bytes counters and store.{serialize,deserialize,read,write}
// timers, all published into BENCH_*.json via the MetricsRegistry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "robust/diagnostics.hpp"
#include "store/format.hpp"

namespace ind::store {

class ArtifactCache {
 public:
  /// Process-wide cache configured from the environment on first use.
  static ArtifactCache& instance();

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// Cache lookup. Returns the artifact on a hit; std::nullopt on a miss.
  /// A corrupt or unreadable file is treated as a miss: the file is deleted,
  /// store.corrupt.* is counted, and when `report` is non-null the fallback
  /// is logged there as an ArtifactRecompute recovery action.
  std::optional<Artifact> load(const std::string& kind, const Digest& fp,
                               robust::SolveReport* report = nullptr);

  /// Stores the artifact under its kind + fingerprint (atomic write-rename),
  /// then enforces the LRU size cap. I/O failures are counted
  /// (store.save_failures) and swallowed — a broken cache directory must
  /// never take the computation down.
  void save(const Artifact& a);

  /// Path an artifact would live at (exposed for tests and tooling).
  std::string path_for(const std::string& kind, const Digest& fp) const;

  /// Test hooks: reconfigure at runtime. An empty dir disables the cache.
  /// Runs a recover() sweep over the new directory (see below).
  void configure(std::string dir, std::uint64_t max_bytes = kDefaultMaxBytes);

  struct RecoveryReport {
    std::uint64_t scanned = 0;           ///< .art files examined
    std::uint64_t recovered = 0;         ///< intact entries kept
    std::uint64_t quarantined_tmp = 0;   ///< orphaned .tmp* partial writes
    std::uint64_t quarantined_corrupt = 0;  ///< checksum/decode failures
  };

  /// Crash-recovery sweep: moves orphaned `.tmp*` partial writes (a writer
  /// died between open and rename) and `.art` entries that fail full
  /// validation (checksums + name-embedded fingerprint) into a
  /// `quarantine/` subdirectory, keeping everything intact. Counted as
  /// store.recovered / store.quarantined[.tmp|.<errc>]. Runs automatically
  /// from configure() — i.e. at every process start with IND_CACHE_DIR set —
  /// so a kill -9 mid-write can never poison later runs; quarantined files
  /// are kept for one generation (the next sweep clears the subdirectory)
  /// for post-mortem inspection.
  RecoveryReport recover();

  static constexpr std::uint64_t kDefaultMaxBytes = 1ULL << 30;  // 1 GiB
  /// IND_CACHE_MAX_BYTES outside [1 MiB, 1 TiB] is a misconfiguration, not a
  /// request: a sub-MiB cap evicts every artifact as it lands, a multi-TiB
  /// cap is almost certainly a units mistake. Values clamp with a warning.
  static constexpr std::uint64_t kMinConfigBytes = 1ULL << 20;  // 1 MiB
  static constexpr std::uint64_t kMaxConfigBytes = 1ULL << 40;  // 1 TiB

 private:
  ArtifactCache();
  void evict_to_cap(const std::string& keep_path);
  RecoveryReport recover_locked();

  std::string dir_;
  std::uint64_t max_bytes_ = kDefaultMaxBytes;
};

}  // namespace ind::store
