// Binary (de)serialization of the numerical core types.
//
// Round trips are bitwise exact: doubles are stored as their IEEE-754 bytes,
// orderings are preserved, and nothing is renormalised on the way back in —
// a deserialized artifact feeds the solvers the same bits the original
// computation produced, which is what makes warm-cache results identical to
// cold ones at any thread count.
//
// Layering note: this translation unit covers everything up to extract/
// (dense + sparse + complex matrices, layouts, extractions, solve reports).
// Serde for circuit/PEEC/PRIMA types lives in store/flows.hpp, one CMake
// target higher, so the extraction cache can be used *inside* the PEEC
// builder without a dependency cycle.
#pragma once

#include "extract/extractor.hpp"
#include "geom/layout.hpp"
#include "la/dense_matrix.hpp"
#include "la/sparse.hpp"
#include "robust/diagnostics.hpp"
#include "sparsify/mutual_spec.hpp"
#include "store/format.hpp"
#include "store/hash.hpp"

namespace ind::store::serde {

// --- linear algebra --------------------------------------------------------
void put(ByteWriter& w, const la::Matrix& m);
void get(ByteReader& r, la::Matrix& m);
void put(ByteWriter& w, const la::CMatrix& m);
void get(ByteReader& r, la::CMatrix& m);
void put(ByteWriter& w, const la::TripletMatrix& m);
void get(ByteReader& r, la::TripletMatrix& m);
void put(ByteWriter& w, const la::CscMatrix& m);
void get(ByteReader& r, la::CscMatrix& m);

// --- sparsified inductance (L form and K = L^-1 form) ----------------------
void put(ByteWriter& w, const sparsify::SparsifiedL& s);
void get(ByteReader& r, sparsify::SparsifiedL& s);

// --- geometry --------------------------------------------------------------
void put(ByteWriter& w, const geom::Technology& t);
void get(ByteReader& r, geom::Technology& t);
void put(ByteWriter& w, const geom::Layout& l);
void get(ByteReader& r, geom::Layout& l);

// --- extraction ------------------------------------------------------------
void put(ByteWriter& w, const extract::Extraction& x);
void get(ByteReader& r, extract::Extraction& x);

// --- robustness diagnostics (rides along inside cached models) -------------
void put(ByteWriter& w, const robust::SolveReport& rep);
void get(ByteReader& r, robust::SolveReport& rep);

}  // namespace ind::store::serde

namespace ind::store {

/// Seeds a hasher with the store salt, the artifact format version and the
/// artifact kind, so any format evolution invalidates every old key at once.
Hasher fingerprint_base(std::string_view kind);

/// Feeds the complete physical content of a layout into `h` (technology,
/// nets, segments, vias, pads, drivers, receivers — every numeric field by
/// bit pattern). Nothing thread-, time- or address-dependent contributes.
void hash_layout(Hasher& h, const geom::Layout& layout);

void hash_extraction_options(Hasher& h, const extract::ExtractionOptions& o);

/// Cache key for an extraction artifact: layout + options + format version.
Digest fingerprint(const geom::Layout& layout,
                   const extract::ExtractionOptions& opts);

/// Cache-aware wrapper around extract::extract(): on a warm cache the
/// partial-L / coupling-cap / R assembly is skipped entirely and the stored
/// matrices are returned bit-for-bit. With the cache disabled this is
/// exactly extract::extract().
extract::Extraction cached_extraction(const geom::Layout& layout,
                                      const extract::ExtractionOptions& opts);

}  // namespace ind::store
