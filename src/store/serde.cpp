#include "store/serde.hpp"

#include <cstring>

#include "govern/budget.hpp"
#include "runtime/metrics.hpp"
#include "store/artifact_cache.hpp"

namespace ind::store::serde {
namespace {

template <typename T>
void put_dense(ByteWriter& w, const la::DenseMatrix<T>& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  w.raw(m.data(), m.rows() * m.cols() * sizeof(T));
}

template <typename T>
void get_dense(ByteReader& r, la::DenseMatrix<T>& m) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  if (cols != 0 && rows > r.remaining() / cols)  // also rejects overflow
    throw StoreError(StoreErrc::Truncated, "matrix dims exceed payload");
  const std::uint64_t total = r.count(rows * cols, sizeof(T));
  m.resize(rows, cols);
  r.raw(m.data(), total * sizeof(T));
}

void put_sizes(ByteWriter& w, const std::vector<std::size_t>& v) {
  w.u64(v.size());
  for (std::size_t x : v) w.u64(x);
}

std::vector<std::size_t> get_sizes(ByteReader& r) {
  const std::uint64_t n = r.count(r.u64(), sizeof(std::uint64_t));
  std::vector<std::size_t> v(n);
  for (auto& x : v) x = r.u64();
  return v;
}

}  // namespace

void put(ByteWriter& w, const la::Matrix& m) { put_dense(w, m); }
void get(ByteReader& r, la::Matrix& m) { get_dense(r, m); }
void put(ByteWriter& w, const la::CMatrix& m) { put_dense(w, m); }
void get(ByteReader& r, la::CMatrix& m) { get_dense(r, m); }

void put(ByteWriter& w, const la::TripletMatrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  w.u64(m.entry_count());
  for (const auto& e : m.entries()) {
    w.u64(e.row);
    w.u64(e.col);
    w.f64(e.value);
  }
}

void get(ByteReader& r, la::TripletMatrix& m) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  m = la::TripletMatrix(rows, cols);
  const std::uint64_t n = r.count(r.u64(), 3 * sizeof(std::uint64_t));
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t i = r.u64();
    const std::uint64_t j = r.u64();
    m.add(i, j, r.f64());
  }
}

void put(ByteWriter& w, const la::CscMatrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  put_sizes(w, m.col_ptr());
  put_sizes(w, m.row_idx());
  w.f64s(m.values());
}

void get(ByteReader& r, la::CscMatrix& m) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  auto col_ptr = get_sizes(r);
  auto row_idx = get_sizes(r);
  auto values = r.f64s();
  try {
    m = la::CscMatrix(rows, cols, std::move(col_ptr), std::move(row_idx),
                      std::move(values));
  } catch (const std::invalid_argument& e) {
    throw StoreError(StoreErrc::Malformed, e.what());
  }
}

void put(ByteWriter& w, const sparsify::SparsifiedL& s) {
  w.f64s(s.diag);
  w.u64(s.terms.size());
  for (const auto& t : s.terms) {
    w.u64(t.i);
    w.u64(t.j);
    w.f64(t.value);
  }
  w.boolean(s.use_kmatrix);
  w.u64(s.k_entries.size());
  for (const auto& k : s.k_entries) {
    w.u64(k.i);
    w.u64(k.j);
    w.f64(k.value);
  }
}

void get(ByteReader& r, sparsify::SparsifiedL& s) {
  s = sparsify::SparsifiedL{};
  s.diag = r.f64s();
  const std::uint64_t nt = r.count(r.u64(), 3 * sizeof(std::uint64_t));
  s.terms.resize(nt);
  for (auto& t : s.terms) {
    t.i = r.u64();
    t.j = r.u64();
    t.value = r.f64();
  }
  s.use_kmatrix = r.boolean();
  const std::uint64_t nk = r.count(r.u64(), 3 * sizeof(std::uint64_t));
  s.k_entries.resize(nk);
  for (auto& k : s.k_entries) {
    k.i = r.u64();
    k.j = r.u64();
    k.value = r.f64();
  }
}

void put(ByteWriter& w, const geom::Technology& t) {
  w.u64(t.layers.size());
  for (const geom::Layer& l : t.layers) {
    w.i32(l.index);
    w.f64(l.z_bottom);
    w.f64(l.thickness);
    w.f64(l.sheet_resistance);
    w.u8(l.preferred == geom::Axis::X ? 0 : 1);
    w.f64(l.dielectric_below);
  }
  w.f64(t.epsilon_r);
  w.f64(t.via_resistance);
  w.f64(t.substrate_z);
}

void get(ByteReader& r, geom::Technology& t) {
  t = geom::Technology{};
  const std::uint64_t n = r.count(r.u64(), 4 + 4 * sizeof(double) + 1);
  t.layers.resize(n);
  for (geom::Layer& l : t.layers) {
    l.index = r.i32();
    l.z_bottom = r.f64();
    l.thickness = r.f64();
    l.sheet_resistance = r.f64();
    l.preferred = r.u8() == 0 ? geom::Axis::X : geom::Axis::Y;
    l.dielectric_below = r.f64();
  }
  t.epsilon_r = r.f64();
  t.via_resistance = r.f64();
  t.substrate_z = r.f64();
}

void put(ByteWriter& w, const geom::Layout& l) {
  put(w, l.tech());
  w.u64(l.num_nets());
  for (std::size_t n = 0; n < l.num_nets(); ++n) {
    const geom::NetInfo& net = l.net(static_cast<int>(n));
    w.str(net.name);
    w.u8(static_cast<std::uint8_t>(net.kind));
  }
  w.u64(l.segments().size());
  for (const geom::Segment& s : l.segments()) {
    w.f64(s.a.x); w.f64(s.a.y);
    w.f64(s.b.x); w.f64(s.b.y);
    w.f64(s.width);
    w.f64(s.thickness);
    w.f64(s.z);
    w.i32(s.layer);
    w.i32(s.net);
    w.u8(static_cast<std::uint8_t>(s.kind));
  }
  w.u64(l.vias().size());
  for (const geom::Via& v : l.vias()) {
    w.f64(v.at.x); w.f64(v.at.y);
    w.i32(v.lower_layer);
    w.i32(v.upper_layer);
    w.i32(v.cuts);
    w.i32(v.net);
  }
  w.u64(l.pads().size());
  for (const geom::Pad& p : l.pads()) {
    w.f64(p.at.x); w.f64(p.at.y);
    w.i32(p.layer);
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.f64(p.resistance);
    w.f64(p.inductance);
  }
  w.u64(l.drivers().size());
  for (const geom::Driver& d : l.drivers()) {
    w.f64(d.at.x); w.f64(d.at.y);
    w.i32(d.layer);
    w.i32(d.signal_net);
    w.f64(d.strength_ohm);
    w.f64(d.slew);
    w.f64(d.start_time);
    w.boolean(d.rising);
    w.str(d.name);
  }
  w.u64(l.receivers().size());
  for (const geom::Receiver& rc : l.receivers()) {
    w.f64(rc.at.x); w.f64(rc.at.y);
    w.i32(rc.layer);
    w.i32(rc.signal_net);
    w.f64(rc.load_cap);
    w.str(rc.name);
  }
}

void get(ByteReader& r, geom::Layout& l) {
  geom::Technology tech;
  get(r, tech);
  l = geom::Layout(std::move(tech));
  const std::uint64_t n_nets = r.count(r.u64(), 1);
  for (std::uint64_t n = 0; n < n_nets; ++n) {
    std::string name = r.str();
    const auto kind = static_cast<geom::NetKind>(r.u8());
    l.add_net(std::move(name), kind);
  }
  const std::uint64_t n_segs = r.count(r.u64(), 7 * sizeof(double) + 9);
  for (std::uint64_t k = 0; k < n_segs; ++k) {
    geom::Segment s;
    s.a.x = r.f64(); s.a.y = r.f64();
    s.b.x = r.f64(); s.b.y = r.f64();
    s.width = r.f64();
    s.thickness = r.f64();
    s.z = r.f64();
    s.layer = r.i32();
    s.net = r.i32();
    s.kind = static_cast<geom::NetKind>(r.u8());
    l.add_segment(s);
  }
  const std::uint64_t n_vias = r.count(r.u64(), 2 * sizeof(double) + 16);
  for (std::uint64_t k = 0; k < n_vias; ++k) {
    geom::Point at{r.f64(), r.f64()};
    const int lower = r.i32();
    const int upper = r.i32();
    const int cuts = r.i32();
    const int net = r.i32();
    l.add_via(net, at, lower, upper, cuts);
  }
  const std::uint64_t n_pads = r.count(r.u64(), 4 * sizeof(double) + 5);
  for (std::uint64_t k = 0; k < n_pads; ++k) {
    geom::Pad p;
    p.at.x = r.f64(); p.at.y = r.f64();
    p.layer = r.i32();
    p.kind = static_cast<geom::NetKind>(r.u8());
    p.resistance = r.f64();
    p.inductance = r.f64();
    l.add_pad(p);
  }
  const std::uint64_t n_drv = r.count(r.u64(), 5 * sizeof(double) + 9);
  for (std::uint64_t k = 0; k < n_drv; ++k) {
    geom::Driver d;
    d.at.x = r.f64(); d.at.y = r.f64();
    d.layer = r.i32();
    d.signal_net = r.i32();
    d.strength_ohm = r.f64();
    d.slew = r.f64();
    d.start_time = r.f64();
    d.rising = r.boolean();
    d.name = r.str();
    l.add_driver(std::move(d));
  }
  const std::uint64_t n_rcv = r.count(r.u64(), 3 * sizeof(double) + 8);
  for (std::uint64_t k = 0; k < n_rcv; ++k) {
    geom::Receiver rc;
    rc.at.x = r.f64(); rc.at.y = r.f64();
    rc.layer = r.i32();
    rc.signal_net = r.i32();
    rc.load_cap = r.f64();
    rc.name = r.str();
    l.add_receiver(std::move(rc));
  }
}

void put(ByteWriter& w, const extract::Extraction& x) {
  w.f64s(x.resistance);
  w.f64s(x.ground_cap);
  put(w, x.partial_l);
  w.u64(x.coupling.size());
  for (const extract::CouplingCap& c : x.coupling) {
    w.u64(c.i);
    w.u64(c.j);
    w.f64(c.value);
  }
  w.f64s(x.via_resistance);
}

void get(ByteReader& r, extract::Extraction& x) {
  x = extract::Extraction{};
  x.resistance = r.f64s();
  x.ground_cap = r.f64s();
  get(r, x.partial_l);
  const std::uint64_t n = r.count(r.u64(), 3 * sizeof(std::uint64_t));
  x.coupling.resize(n);
  for (auto& c : x.coupling) {
    c.i = r.u64();
    c.j = r.u64();
    c.value = r.f64();
  }
  x.via_resistance = r.f64s();
}

void put(ByteWriter& w, const robust::SolveReport& rep) {
  w.u8(static_cast<std::uint8_t>(rep.status));
  w.f64(rep.condition_estimate);
  w.f64(rep.pivot_growth);
  w.f64(rep.residual_norm);
  w.u64(rep.actions.size());
  for (const robust::RecoveryAction& a : rep.actions) {
    w.u8(static_cast<std::uint8_t>(a.kind));
    w.i32(a.attempt);
    w.f64(a.magnitude);
    w.str(a.where);
  }
  w.str(rep.detail);
}

void get(ByteReader& r, robust::SolveReport& rep) {
  rep = robust::SolveReport{};
  rep.status = static_cast<robust::SolveStatus>(r.u8());
  rep.condition_estimate = r.f64();
  rep.pivot_growth = r.f64();
  rep.residual_norm = r.f64();
  const std::uint64_t n = r.count(r.u64(), 2 * sizeof(double) + 5);
  rep.actions.resize(n);
  for (auto& a : rep.actions) {
    a.kind = static_cast<robust::RecoveryKind>(r.u8());
    a.attempt = r.i32();
    a.magnitude = r.f64();
    a.where = r.str();
  }
  rep.detail = r.str();
}

}  // namespace ind::store::serde

namespace ind::store {

Hasher fingerprint_base(std::string_view kind) {
  Hasher h;
  h.str("ind-artifact");
  h.u32(kFormatVersion);
  h.str(kind);
  return h;
}

void hash_layout(Hasher& h, const geom::Layout& layout) {
  const geom::Technology& t = layout.tech();
  h.u64(t.layers.size());
  for (const geom::Layer& l : t.layers) {
    h.i64(l.index);
    h.f64(l.z_bottom);
    h.f64(l.thickness);
    h.f64(l.sheet_resistance);
    h.u8(l.preferred == geom::Axis::X ? 0 : 1);
    h.f64(l.dielectric_below);
  }
  h.f64(t.epsilon_r);
  h.f64(t.via_resistance);
  h.f64(t.substrate_z);

  h.u64(layout.num_nets());
  for (std::size_t n = 0; n < layout.num_nets(); ++n) {
    const geom::NetInfo& net = layout.net(static_cast<int>(n));
    h.str(net.name);
    h.u8(static_cast<std::uint8_t>(net.kind));
  }
  h.u64(layout.segments().size());
  for (const geom::Segment& s : layout.segments()) {
    h.f64(s.a.x); h.f64(s.a.y);
    h.f64(s.b.x); h.f64(s.b.y);
    h.f64(s.width);
    h.f64(s.thickness);
    h.f64(s.z);
    h.i64(s.layer);
    h.i64(s.net);
    h.u8(static_cast<std::uint8_t>(s.kind));
  }
  h.u64(layout.vias().size());
  for (const geom::Via& v : layout.vias()) {
    h.f64(v.at.x); h.f64(v.at.y);
    h.i64(v.lower_layer);
    h.i64(v.upper_layer);
    h.i64(v.cuts);
    h.i64(v.net);
  }
  h.u64(layout.pads().size());
  for (const geom::Pad& p : layout.pads()) {
    h.f64(p.at.x); h.f64(p.at.y);
    h.i64(p.layer);
    h.u8(static_cast<std::uint8_t>(p.kind));
    h.f64(p.resistance);
    h.f64(p.inductance);
  }
  h.u64(layout.drivers().size());
  for (const geom::Driver& d : layout.drivers()) {
    h.f64(d.at.x); h.f64(d.at.y);
    h.i64(d.layer);
    h.i64(d.signal_net);
    h.f64(d.strength_ohm);
    h.f64(d.slew);
    h.f64(d.start_time);
    h.boolean(d.rising);
    h.str(d.name);
  }
  h.u64(layout.receivers().size());
  for (const geom::Receiver& rc : layout.receivers()) {
    h.f64(rc.at.x); h.f64(rc.at.y);
    h.i64(rc.layer);
    h.i64(rc.signal_net);
    h.f64(rc.load_cap);
    h.str(rc.name);
  }
}

void hash_extraction_options(Hasher& h, const extract::ExtractionOptions& o) {
  h.f64(o.mutual_window);
  h.f64(o.coupling_window);
  h.boolean(o.extract_inductance);
}

Digest fingerprint(const geom::Layout& layout,
                   const extract::ExtractionOptions& opts) {
  Hasher h = fingerprint_base("extraction");
  hash_layout(h, layout);
  hash_extraction_options(h, opts);
  return h.digest();
}

extract::Extraction cached_extraction(const geom::Layout& layout,
                                      const extract::ExtractionOptions& opts) {
  ArtifactCache& cache = ArtifactCache::instance();
  if (!cache.enabled()) return extract::extract(layout, opts);

  const Digest fp = fingerprint(layout, opts);
  robust::SolveReport report;
  if (auto artifact = cache.load("extraction", fp, &report)) {
    runtime::ScopedTimer t("store.deserialize");
    extract::Extraction x;
    ByteReader r = artifact->reader("extraction");
    serde::get(r, x);
    if (!report.actions.empty()) report.record("store");
    return x;
  }
  extract::Extraction x = extract::extract(layout, opts);
  // A fired cancel token means a parallel assembly stage may have skipped
  // chunks — the extraction could be partial, so it must not be persisted.
  if (govern::Governor::instance().cancelled()) {
    runtime::MetricsRegistry::instance().add_count("store.save_skipped", 1);
    return x;
  }
  Artifact a;
  a.kind = "extraction";
  a.fingerprint = fp;
  ByteWriter w;
  serde::put(w, x);
  a.add("extraction", std::move(w));
  cache.save(a);
  if (!report.actions.empty()) report.record("store");
  return x;
}

}  // namespace ind::store
