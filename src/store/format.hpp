// Versioned binary artifact format.
//
// File layout (all integers little-endian; the endianness tag rejects
// foreign-endian files instead of byte-swapping — cache artifacts are
// machine-local by design):
//
//   offset  size  field
//   0       8     magic "INDART\x00\x01"
//   8       4     format version (u32, kFormatVersion)
//   12      1     endianness tag (0x01 = little)
//   13      1     reserved (0)
//   14      2     kind length (u16) followed by the kind string
//   ..      16    fingerprint echo (Digest hi, lo) — lets a reader verify
//                 the file really is the artifact its name claims
//   ..      4     section count (u32)
//   per section:
//           2+n   name (u16 length + bytes)
//           8     payload size (u64)
//           8     FNV-1a-64 checksum of the payload (u64)
//           *     payload bytes
//
// Sections are independently checksummed, so a reader can tell *which* part
// of a multi-gigabyte artifact rotted, and truncation is distinguishable
// from bit rot (Truncated vs ChecksumMismatch). Readers are strict: any
// malformed header raises StoreError with a machine-readable code; the cache
// converts that into a recompute-and-rewrite, never a crash.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/hash.hpp"

namespace ind::store {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr unsigned char kMagic[8] = {'I', 'N', 'D', 'A',
                                            'R', 'T', 0x00, 0x01};
inline constexpr std::uint8_t kLittleEndianTag = 0x01;

/// Machine-readable failure modes, each distinguishable by callers/tests.
enum class StoreErrc {
  IoError,           ///< open/read/write/rename failed
  BadMagic,          ///< not an artifact file at all
  VersionMismatch,   ///< produced by a different format version
  EndianMismatch,    ///< produced on a foreign-endian machine
  Truncated,         ///< file ends before a declared payload does
  ChecksumMismatch,  ///< a section's bytes do not match their checksum
  FingerprintMismatch,  ///< file content is a different artifact
  Malformed,         ///< structurally invalid payload during decode
};

const char* to_string(StoreErrc code);

class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrc code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}
  StoreErrc code() const { return code_; }

 private:
  StoreErrc code_;
};

/// Append-only little-endian byte buffer used by every serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void f64s(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }

  /// Bulk append (used for large contiguous payloads, e.g. matrix data).
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over a decoded section; every overrun throws
/// StoreError(Truncated) instead of reading garbage.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::uint16_t u16() { std::uint16_t v; raw(&v, sizeof v); return v; }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  std::int32_t i32() { std::int32_t v; raw(&v, sizeof v); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, sizeof v); return v; }
  bool boolean() { return u8() != 0; }
  double f64() { double v; raw(&v, sizeof v); return v; }
  std::string str() {
    const std::uint64_t n = count(u64(), 1);
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  std::vector<double> f64s() {
    const std::uint64_t n = count(u64(), sizeof(double));
    std::vector<double> v(n);
    raw(v.data(), n * sizeof(double));
    return v;
  }

  /// Validates that a decoded element count fits in the remaining bytes
  /// (cheap armor against decoding garbage as a huge allocation).
  std::uint64_t count(std::uint64_t n, std::size_t elem_size) const {
    if (elem_size != 0 && n > remaining() / elem_size)
      throw StoreError(StoreErrc::Truncated,
                       "declared count exceeds remaining bytes");
    return n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

  /// Bulk extract; throws Truncated past the end like every other getter.
  void raw(void* out, std::size_t n) {
    if (n > remaining())
      throw StoreError(StoreErrc::Truncated, "read past end of section");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// An artifact in memory: a kind tag, the fingerprint it was stored under,
/// and named byte sections (one per serialized sub-object).
struct Artifact {
  std::string kind;
  Digest fingerprint;
  struct Section {
    std::string name;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Section> sections;

  void add(std::string name, ByteWriter&& w) {
    sections.push_back({std::move(name), w.take()});
  }
  /// Section lookup; throws StoreError(Malformed) when absent.
  const std::vector<std::uint8_t>& section(const std::string& name) const;
  ByteReader reader(const std::string& name) const {
    return ByteReader(section(name));
  }
  std::size_t total_bytes() const;
};

/// Encodes an artifact to the full file image (header + sections).
std::vector<std::uint8_t> encode_artifact(const Artifact& a);

/// Decodes and validates a file image. `expect` (when non-null) must match
/// the embedded fingerprint. Throws StoreError on any malformation.
Artifact decode_artifact(const std::vector<std::uint8_t>& image,
                         const Digest* expect = nullptr);

/// Stream-based file I/O. write_artifact writes to `path + ".tmp<pid>"` and
/// atomically renames, so readers never observe a half-written artifact.
void write_artifact(const std::string& path, const Artifact& a);
Artifact read_artifact(const std::string& path, const Digest* expect = nullptr);

}  // namespace ind::store
