// Cache-aware wrappers around the expensive pipeline stages, plus serde for
// the model-level types they persist (Netlist, PeecModel, PRIMA ROM).
//
// This is the layer the Section-4 flow plugs into: PEEC model assembly,
// K-matrix construction and PRIMA reduction each check the content-addressed
// ArtifactCache first and fall back to the real computation on a miss (or on
// a corrupt artifact, which is logged as a robust.* recovery action). With
// IND_CACHE_DIR unset every wrapper is a zero-overhead pass-through.
//
// Lives above peec/, sparsify/ and mor/ in the build graph (store/serde.hpp
// explains the split): ind_store_flows links those targets, and core/ links
// ind_store_flows.
#pragma once

#include "circuit/netlist.hpp"
#include "mor/prima.hpp"
#include "peec/model_builder.hpp"
#include "sparsify/mutual_spec.hpp"
#include "store/serde.hpp"

namespace ind::store::serde {

/// Netlist round trip. The anonymous-node count and every element vector are
/// preserved exactly; the named-node lookup table is not (the cached models
/// are all builder-produced and never name nodes).
void put(ByteWriter& w, const circuit::Netlist& nl);
void get(ByteReader& r, circuit::Netlist& nl);

void put(ByteWriter& w, const peec::PeecModel& m);
void get(ByteReader& r, peec::PeecModel& m);

void put(ByteWriter& w, const mor::ReducedModel& m);
void get(ByteReader& r, mor::ReducedModel& m);

}  // namespace ind::store::serde

namespace ind::store {

void hash_peec_options(Hasher& h, const peec::PeecOptions& o);
void hash_matrix(Hasher& h, const la::Matrix& m);

/// Cache keys for the three model-level artifact kinds.
Digest fingerprint(const geom::Layout& layout, const peec::PeecOptions& opts);
Digest fingerprint_prima(const la::Matrix& g, const la::Matrix& c,
                         const la::Matrix& b, const la::Matrix& l,
                         const mor::PrimaOptions& opts);
Digest fingerprint_kmatrix(const la::Matrix& partial_l, double threshold_ratio);

/// peec::build_peec_model with a warm path: a hit skips refinement,
/// extraction and netlist assembly entirely and restores the stored model
/// bit-for-bit (the "assemble.*"/"extract.*" phase timers stay untouched).
peec::PeecModel cached_peec_model(const geom::Layout& input,
                                  const peec::PeecOptions& opts);

/// mor::prima_reduce with a warm path keyed on the exact (G, C, B, L) bits.
mor::ReducedModel cached_prima_reduce(const la::Matrix& g, const la::Matrix& c,
                                      const la::Matrix& b, const la::Matrix& l,
                                      const mor::PrimaOptions& opts);

/// sparsify::kmatrix_sparsify with a warm path (the K build inverts the full
/// partial-L matrix — the most expensive sparsification scheme).
sparsify::SparsifiedL cached_kmatrix_sparsify(const la::Matrix& partial_l,
                                              double threshold_ratio);

}  // namespace ind::store
