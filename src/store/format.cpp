#include "store/format.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"

namespace ind::store {
namespace {

std::uint64_t fnv64(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t k = 0; k < n; ++k) h = (h ^ p[k]) * 0x100000001b3ULL;
  return h;
}

}  // namespace

const char* to_string(StoreErrc code) {
  switch (code) {
    case StoreErrc::IoError: return "io_error";
    case StoreErrc::BadMagic: return "bad_magic";
    case StoreErrc::VersionMismatch: return "version_mismatch";
    case StoreErrc::EndianMismatch: return "endian_mismatch";
    case StoreErrc::Truncated: return "truncated";
    case StoreErrc::ChecksumMismatch: return "checksum_mismatch";
    case StoreErrc::FingerprintMismatch: return "fingerprint_mismatch";
    case StoreErrc::Malformed: return "malformed";
  }
  return "unknown";
}

const std::vector<std::uint8_t>& Artifact::section(
    const std::string& name) const {
  for (const Section& s : sections)
    if (s.name == name) return s.bytes;
  throw StoreError(StoreErrc::Malformed, "missing section '" + name + "'");
}

std::size_t Artifact::total_bytes() const {
  std::size_t n = 0;
  for (const Section& s : sections) n += s.bytes.size();
  return n;
}

std::vector<std::uint8_t> encode_artifact(const Artifact& a) {
  ByteWriter w;
  for (unsigned char m : kMagic) w.u8(m);
  w.u32(kFormatVersion);
  w.u8(std::endian::native == std::endian::little ? kLittleEndianTag : 0x02);
  w.u8(0);  // reserved
  if (a.kind.size() > 0xffff)
    throw StoreError(StoreErrc::Malformed, "kind string too long");
  w.u16(static_cast<std::uint16_t>(a.kind.size()));
  for (char c : a.kind) w.u8(static_cast<std::uint8_t>(c));
  w.u64(a.fingerprint.hi);
  w.u64(a.fingerprint.lo);
  w.u32(static_cast<std::uint32_t>(a.sections.size()));
  for (const Artifact::Section& s : a.sections) {
    if (s.name.size() > 0xffff)
      throw StoreError(StoreErrc::Malformed, "section name too long");
    w.u16(static_cast<std::uint16_t>(s.name.size()));
    for (char c : s.name) w.u8(static_cast<std::uint8_t>(c));
    w.u64(s.bytes.size());
    w.u64(fnv64(s.bytes.data(), s.bytes.size()));
    w.raw(s.bytes.data(), s.bytes.size());
  }
  return w.take();
}

Artifact decode_artifact(const std::vector<std::uint8_t>& image,
                         const Digest* expect) {
  // The header is parsed with a dedicated reader so its Truncated errors are
  // re-labelled: a file shorter than the fixed header is indistinguishable
  // from random bytes, which callers should see as BadMagic.
  if (image.size() < sizeof kMagic)
    throw StoreError(StoreErrc::BadMagic, "file shorter than magic");
  if (std::memcmp(image.data(), kMagic, sizeof kMagic) != 0)
    throw StoreError(StoreErrc::BadMagic, "magic bytes do not match");

  ByteReader r(image.data() + sizeof kMagic, image.size() - sizeof kMagic);
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    throw StoreError(StoreErrc::VersionMismatch,
                     "artifact version " + std::to_string(version) +
                         ", reader expects " + std::to_string(kFormatVersion));
  const std::uint8_t endian = r.u8();
  const std::uint8_t native =
      std::endian::native == std::endian::little ? kLittleEndianTag : 0x02;
  if (endian != native)
    throw StoreError(StoreErrc::EndianMismatch,
                     "artifact written on a foreign-endian machine");
  r.u8();  // reserved

  Artifact a;
  const std::uint16_t kind_len = r.u16();
  a.kind.resize(kind_len);
  for (std::uint16_t k = 0; k < kind_len; ++k)
    a.kind[k] = static_cast<char>(r.u8());
  a.fingerprint.hi = r.u64();
  a.fingerprint.lo = r.u64();
  if (expect != nullptr && !(a.fingerprint == *expect))
    throw StoreError(StoreErrc::FingerprintMismatch,
                     "expected " + expect->hex() + ", file holds " +
                         a.fingerprint.hex());

  const std::uint32_t n_sections = r.u32();
  for (std::uint32_t s = 0; s < n_sections; ++s) {
    Artifact::Section sec;
    const std::uint16_t name_len = r.u16();
    sec.name.resize(name_len);
    for (std::uint16_t k = 0; k < name_len; ++k)
      sec.name[k] = static_cast<char>(r.u8());
    const std::uint64_t size = r.u64();
    const std::uint64_t checksum = r.u64();
    if (size > r.remaining())
      throw StoreError(StoreErrc::Truncated,
                       "section '" + sec.name + "' payload cut short");
    sec.bytes.resize(size);
    r.raw(sec.bytes.data(), size);
    if (fnv64(sec.bytes.data(), sec.bytes.size()) != checksum)
      throw StoreError(StoreErrc::ChecksumMismatch,
                       "section '" + sec.name + "' failed its checksum");
    a.sections.push_back(std::move(sec));
  }
  return a;
}

void write_artifact(const std::string& path, const Artifact& a) {
  std::vector<std::uint8_t> image;
  {
    runtime::ScopedTimer t("store.serialize");
    image = encode_artifact(a);
  }
  runtime::ScopedTimer t("store.write");
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp" + std::to_string(::getpid());

  // Crash-safe commit: write + fsync the temp file, rename over the final
  // name, then fsync the directory so the rename itself is durable. A crash
  // at any point leaves either the old state or a `.tmp` orphan — never a
  // half-written `.art` — and ArtifactCache::recover() quarantines orphans
  // at the next startup.
  //
  // Deterministic chaos hook: a fired store_write commits only half the
  // image to the temp file and aborts before the rename — exactly the
  // on-disk state a kill -9 mid-write leaves behind.
  const bool torn = robust::fault::fire(robust::fault::Site::StoreWrite);
  const std::size_t commit_bytes = torn ? image.size() / 2 : image.size();

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0)
    throw StoreError(StoreErrc::IoError, "cannot open '" + tmp + "': " +
                                             std::strerror(errno));
  std::size_t written = 0;
  while (written < commit_bytes) {
    const ssize_t r =
        ::write(fd, image.data() + written, commit_bytes - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      std::error_code ec;
      fs::remove(tmp, ec);
      throw StoreError(StoreErrc::IoError,
                       "short write to '" + tmp + "': " + why);
    }
    written += static_cast<std::size_t>(r);
  }
  if (torn) {
    ::close(fd);  // leave the partial .tmp behind, like a crashed writer
    throw StoreError(StoreErrc::IoError,
                     "store_write fault injected: torn write left at '" + tmp +
                         "'");
  }
  if (::fsync(fd) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    std::error_code ec;
    fs::remove(tmp, ec);
    throw StoreError(StoreErrc::IoError, "fsync '" + tmp + "': " + why);
  }
  ::close(fd);

  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw StoreError(StoreErrc::IoError, "rename to '" + path + "' failed");
  }
  // fsync the parent directory: the rename is not durable until the
  // directory metadata reaches disk. Best-effort — some filesystems refuse
  // O_RDONLY directory fsyncs; the tmp+rename ordering above already
  // guarantees we can never observe a torn final file.
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  runtime::MetricsRegistry::instance().add_count(
      "store.write_bytes", static_cast<std::int64_t>(image.size()));
}

Artifact read_artifact(const std::string& path, const Digest* expect) {
  runtime::ScopedTimer t("store.read");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    throw StoreError(StoreErrc::IoError, "cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(image.data()), size);
  if (!in)
    throw StoreError(StoreErrc::IoError, "short read from '" + path + "'");
  runtime::MetricsRegistry::instance().add_count(
      "store.read_bytes", static_cast<std::int64_t>(image.size()));
  return decode_artifact(image, expect);
}

}  // namespace ind::store
