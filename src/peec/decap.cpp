#include "peec/decap.hpp"

#include <stdexcept>

namespace ind::peec {

double estimate_block_decap(double total_transistor_width_m,
                            double switching_fraction, double cap_per_width) {
  if (switching_fraction < 0.0 || switching_fraction > 1.0)
    throw std::invalid_argument(
        "estimate_block_decap: switching_fraction outside [0,1]");
  if (total_transistor_width_m < 0.0)
    throw std::invalid_argument("estimate_block_decap: negative width");
  return cap_per_width * total_transistor_width_m * (1.0 - switching_fraction);
}

}  // namespace ind::peec
