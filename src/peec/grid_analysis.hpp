// Power-grid IR-drop analysis (the [12] substrate: "Model and analysis for
// combined package and on-chip power grid simulation").
//
// Static analysis replaces the switching gates by DC current loads drawn
// from the grid at distributed sites and reports the worst VDD droop / GND
// bounce — the quantity the decap and pad placement of Section 3 exist to
// control. The transient counterpart is the ordinary `circuit::transient`
// run on the same model with background sources enabled.
#pragma once

#include "peec/model_builder.hpp"

namespace ind::peec {

struct IrDropOptions {
  double total_current = 50e-3;  ///< amps drawn by the logic
  int load_sites = 32;           ///< distributed draw points
};

struct IrDropReport {
  double worst_vdd_droop = 0.0;   ///< volts below nominal VDD
  double worst_gnd_bounce = 0.0;  ///< volts above 0
  circuit::NodeId worst_vdd_node = circuit::kGround;
  circuit::NodeId worst_gnd_node = circuit::kGround;
  la::Vector node_voltages;       ///< full DC solution (MNA order)
};

/// Static IR-drop of the model's grid. The model must contain a power and a
/// ground network (pads included); inductors are DC shorts, capacitors open.
IrDropReport static_ir_drop(const PeecModel& model,
                            const IrDropOptions& opts = {});

}  // namespace ind::peec
