#include "peec/grid_analysis.hpp"

#include <stdexcept>

#include "circuit/mna.hpp"
#include "la/sparse_lu.hpp"

namespace ind::peec {

IrDropReport static_ir_drop(const PeecModel& model, const IrDropOptions& opts) {
  // Collect the distributed draw sites: power node -> nearest ground node.
  std::vector<circuit::NodeId> power_nodes, ground_nodes;
  for (std::size_t i = 0; i < model.nodes.size(); ++i) {
    if (model.nodes[i].kind == geom::NetKind::Power)
      power_nodes.push_back(static_cast<circuit::NodeId>(i));
    if (model.nodes[i].kind == geom::NetKind::Ground)
      ground_nodes.push_back(static_cast<circuit::NodeId>(i));
  }
  if (power_nodes.empty() || ground_nodes.empty())
    throw std::invalid_argument("static_ir_drop: model has no P/G networks");
  const std::size_t sites =
      std::min<std::size_t>(std::max(opts.load_sites, 1), power_nodes.size());
  const double i_site = opts.total_current / static_cast<double>(sites);
  const std::size_t stride =
      std::max<std::size_t>(1, power_nodes.size() / sites);

  // DC system: G(t -> settled drivers) x = b, loads added directly.
  const circuit::Mna mna(model.netlist);
  la::TripletMatrix g, c;
  mna.stamp_static(g, c);
  mna.stamp_drivers(g, 1e12);
  la::Vector b;
  mna.rhs(0.0, b);
  for (std::size_t k = 0; k < sites; ++k) {
    const circuit::NodeId p = power_nodes[(k * stride) % power_nodes.size()];
    const circuit::NodeId gn =
        model.nearest_node(model.nodes[static_cast<std::size_t>(p)].at,
                           geom::NetKind::Ground);
    b[static_cast<std::size_t>(p)] -= i_site;
    if (gn >= 0) b[static_cast<std::size_t>(gn)] += i_site;
  }

  IrDropReport report;
  report.node_voltages = la::SparseLu(la::CscMatrix(g)).solve(b);

  for (const circuit::NodeId p : power_nodes) {
    const double droop =
        model.vdd_volts - report.node_voltages[static_cast<std::size_t>(p)];
    if (droop > report.worst_vdd_droop) {
      report.worst_vdd_droop = droop;
      report.worst_vdd_node = p;
    }
  }
  for (const circuit::NodeId gn : ground_nodes) {
    const double bounce = report.node_voltages[static_cast<std::size_t>(gn)];
    if (bounce > report.worst_gnd_bounce) {
      report.worst_gnd_bounce = bounce;
      report.worst_gnd_node = gn;
    }
  }
  return report;
}

}  // namespace ind::peec
