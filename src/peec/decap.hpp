// Statistical device decoupling-capacitance model (Section 3, [12]).
//
// "During normal chip operation, approximately 10-20% of the gates switch
// while the remaining 80-90% remain static. The parasitic device capacitance
// of these non-switching gates results in a significant decoupling
// capacitance effect." The paper estimates this with a statistical model
// applied per circuit block, scaled by total transistor width. We implement
// that aggregate model directly: the grid sees a distributed series-RC
// between the power and ground meshes.
#pragma once

#include <cstdint>

namespace ind::peec {

struct DecapOptions {
  bool enable = true;
  /// Aggregate non-switching device capacitance distributed over the grid.
  double total_capacitance = 200e-12;  // farads
  /// Effective channel/series time constant of the decap (R_site = tau/C_site).
  double series_tau = 20e-12;  // seconds
  /// Number of distributed attachment sites on the lowest grid layer.
  int sites = 64;
};

/// Statistical estimate from block-level parameters, following [12]:
/// capacitance scales with the total transistor width of the non-switching
/// fraction of the block.
///
///   C_decap = c_gate_per_width * W_total * (1 - switching_fraction)
///
/// with c_gate_per_width representative of a 0.18 um process
/// (~1.5 fF per um of transistor width, gate + junction).
double estimate_block_decap(double total_transistor_width_m,
                            double switching_fraction,
                            double cap_per_width = 1.5e-15 / 1e-6);

}  // namespace ind::peec
