// Detailed PEEC circuit-model builder (Section 3 of the paper).
//
// From a Layout it constructs the full partial-element equivalent circuit:
//   * an RLC-pi stage per metal segment (R + partial self-L in series,
//     half the grounded capacitance at each end),
//   * mutual inductances between all pairs of parallel segments,
//   * coupling capacitance between all pairs of adjacent lines,
//   * via resistances between metal layers,
//   * statistical decoupling capacitance for non-switching gates,
//   * time-varying current sources for background switching activity,
//   * pad resistance + inductance to ideal package planes,
//   * switched-resistor drivers and capacitive receivers for the nets
//     under analysis.
//
// The RC-only variant (Table 1's "PEEC (RC)" row) drops every inductive
// element; the MutualPolicy::None variant keeps self inductances but defers
// mutual stamping to a sparsification scheme (sparsify/).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "extract/extractor.hpp"
#include "geom/layout.hpp"
#include "peec/decap.hpp"
#include "peec/package.hpp"

namespace ind::peec {

/// Substrate network (Section 3: the PEEC model "can also easily be
/// extended to include substrate models, N-well capacitance"): a resistive
/// mesh under the die. Interconnect ground capacitance then terminates on
/// the bulk instead of an ideal plane, substrate taps tie the mesh to the
/// ground grid, and the N-well junction capacitance couples the power grid
/// into the bulk — the coupling path that makes "low-impedance substrate"
/// matter for supply integrity.
struct SubstrateOptions {
  bool enable = false;
  double pitch = geom::um(100.0);     ///< mesh node pitch
  double sheet_resistance = 40.0;     ///< ohm/sq effective bulk sheet rho
  double tap_resistance = 200.0;      ///< substrate contact resistance
  int taps_per_side = 2;              ///< contacts to the ground grid
  double nwell_cap_total = 50e-12;    ///< junction cap, power grid -> bulk
  int max_nodes_per_axis = 24;        ///< mesh size clamp
};

struct BackgroundOptions {
  bool enable = false;
  int sources = 16;            ///< number of random attachment points
  double peak_current = 5e-3;  ///< amps per source
  int pulses = 4;              ///< switching events per source
  double window = 2e-9;        ///< time span of the activity, seconds
  std::uint64_t seed = 42;     ///< deterministic workload seed
};

struct PeecOptions {
  bool rc_only = false;  ///< drop all inductance (the RC comparison model)
  enum class MutualPolicy {
    None,  ///< self inductances only; mutuals added later (sparsify/)
    Full   ///< stamp every nonzero mutual of the extraction window
  } mutual_policy = MutualPolicy::Full;
  double mutual_window = 1e9;                     ///< metres
  double coupling_window = geom::um(5.0);         ///< metres
  double max_segment_length = geom::um(200.0);    ///< PEEC granularity
  double vdd = 1.8;                               ///< volts
  DecapOptions decap{};
  BackgroundOptions background{};
  PackageOptions package{};
  SubstrateOptions substrate{};
  double snap = 1e-9;  ///< node coordinate snapping, metres
};

inline constexpr std::size_t kNoInductor =
    std::numeric_limits<std::size_t>::max();

/// Everything known about an electrical node: where it is and what it is.
struct NodeInfo {
  geom::Point at;
  int layer = 0;
  int net = -1;
  geom::NetKind kind = geom::NetKind::Signal;
};

struct PeecModel {
  circuit::Netlist netlist;
  geom::Layout layout;              ///< the refined layout actually modelled
  extract::Extraction extraction;   ///< parasitics of `layout.segments()`

  std::vector<circuit::NodeId> seg_a, seg_b;  ///< end nodes per segment
  std::vector<std::size_t> seg_inductor;      ///< kNoInductor when RC-only
  std::vector<NodeInfo> nodes;                ///< indexed by NodeId

  circuit::NodeId ideal_vdd = circuit::kGround;  ///< package-side supply
  std::vector<circuit::NodeId> substrate_nodes;  ///< bulk mesh (if enabled)

  std::vector<circuit::Probe> receiver_probes;   ///< sink voltage probes
  std::vector<std::string> receiver_names;
  std::vector<std::size_t> driver_indices;       ///< netlist driver indices

  double vdd_volts = 1.8;

  /// Nearest node of the given kind to a point (any layer); kGround if the
  /// model has no such node.
  circuit::NodeId nearest_node(geom::Point p, geom::NetKind kind) const;

  /// Element counts (Table 1 rows: Num. of R / C / L / # mutuals).
  circuit::Netlist::Counts counts() const { return netlist.counts(); }
};

/// Builds the model. The input layout's wires may be arbitrarily long; the
/// builder first cuts them at every electrical connection point (vias,
/// drivers, receivers, pads) and then subdivides to `max_segment_length`.
PeecModel build_peec_model(const geom::Layout& input, const PeecOptions& opts);

/// The refinement pass alone (exposed for tests and for the loop extractor,
/// which shares the node-splitting rules).
geom::Layout refine_layout(const geom::Layout& input, double max_segment_length);

}  // namespace ind::peec
