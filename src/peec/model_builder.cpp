#include "peec/model_builder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "robust/validate.hpp"
#include "runtime/metrics.hpp"
#include "store/serde.hpp"

namespace ind::peec {
namespace {

using geom::Layout;
using geom::NetKind;
using geom::Point;
using geom::Segment;

}  // namespace

geom::Layout refine_layout(const geom::Layout& input,
                           double max_segment_length) {
  return geom::refine(input, max_segment_length);
}

circuit::NodeId PeecModel::nearest_node(geom::Point p, NetKind kind) const {
  circuit::NodeId best = circuit::kGround;
  double best_d = 1e300;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind != kind) continue;
    const double d = geom::distance(nodes[i].at, p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<circuit::NodeId>(i);
    }
  }
  return best;
}

PeecModel build_peec_model(const geom::Layout& input, const PeecOptions& opts) {
  runtime::ScopedTimer timer("assemble.peec");
  // Input validation front door: degenerate geometry (shorts, zero-width
  // wires, non-Manhattan segments, broken vias) would otherwise surface as
  // silently merged nodes or a singular MNA system three layers down.
  if (const auto validation = robust::validate(input); validation.has_errors())
    throw std::invalid_argument("build_peec_model: invalid layout\n" +
                                validation.summary());
  PeecModel m;
  m.vdd_volts = opts.vdd;
  m.layout = refine_layout(input, opts.max_segment_length);

  extract::ExtractionOptions xopts;
  xopts.mutual_window = opts.mutual_window;
  xopts.coupling_window = opts.coupling_window;
  xopts.extract_inductance = !opts.rc_only;
  // Content-addressed cache over the most expensive stage (no-op unless
  // IND_CACHE_DIR is set): a warm run restores the partial-L / coupling /
  // R arrays bit-for-bit instead of re-assembling them.
  m.extraction = store::cached_extraction(m.layout, xopts);

  const auto& segs = m.layout.segments();
  circuit::Netlist& nl = m.netlist;

  // --- node management: snap coordinates so touching endpoints merge.
  std::unordered_map<std::uint64_t, circuit::NodeId> node_map;
  const double snap = opts.snap;
  auto key_of = [&](const Point& p, int layer) {
    const auto qx = static_cast<std::int64_t>(std::llround(p.x / snap));
    const auto qy = static_cast<std::int64_t>(std::llround(p.y / snap));
    // Pack layer|x|y into one 64-bit key (coordinates fit in 28 bits at
    // 1 nm snap over a +-13 cm span — far beyond any die).
    const std::uint64_t ux = static_cast<std::uint64_t>(qx + (1LL << 27));
    const std::uint64_t uy = static_cast<std::uint64_t>(qy + (1LL << 27));
    return (static_cast<std::uint64_t>(layer) << 56) | (ux << 28) | uy;
  };
  auto get_node = [&](const Point& p, int layer, int net, NetKind kind) {
    const std::uint64_t key = key_of(p, layer);
    const auto it = node_map.find(key);
    if (it != node_map.end()) return it->second;
    const circuit::NodeId id = nl.make_node();
    node_map.emplace(key, id);
    m.nodes.push_back({p, layer, net, kind});
    return id;
  };
  auto find_node = [&](const Point& p, int layer) -> circuit::NodeId {
    const auto it = node_map.find(key_of(p, layer));
    return it == node_map.end() ? circuit::kGround : it->second;
  };
  auto make_internal_node = [&](const Point& p, int layer, int net,
                                NetKind kind) {
    const circuit::NodeId id = nl.make_node();
    m.nodes.push_back({p, layer, net, kind});
    return id;
  };

  // --- substrate mesh (optional): a resistive bulk grid under the die.
  int sub_nx = 0, sub_ny = 0;
  double sub_px = 1.0, sub_py = 1.0;
  geom::Point sub_origin{0.0, 0.0};
  if (opts.substrate.enable && !segs.empty()) {
    const auto [lo, hi] = m.layout.bounding_box();
    sub_origin = lo;
    auto axis_count = [&](double extent) {
      const int raw =
          static_cast<int>(std::ceil(extent / opts.substrate.pitch)) + 1;
      return std::clamp(raw, 2, opts.substrate.max_nodes_per_axis);
    };
    sub_nx = axis_count(hi.x - lo.x);
    sub_ny = axis_count(hi.y - lo.y);
    sub_px = sub_nx > 1 ? (hi.x - lo.x) / (sub_nx - 1) : 1.0;
    sub_py = sub_ny > 1 ? (hi.y - lo.y) / (sub_ny - 1) : 1.0;
    for (int iy = 0; iy < sub_ny; ++iy)
      for (int ix = 0; ix < sub_nx; ++ix)
        m.substrate_nodes.push_back(make_internal_node(
            {lo.x + ix * sub_px, lo.y + iy * sub_py}, 0, -1,
            NetKind::Substrate));
    // Mesh resistors: sheet model, R = rho_sq * length / width.
    const double rs = opts.substrate.sheet_resistance;
    auto sub_at = [&](int ix, int iy) {
      return m.substrate_nodes[static_cast<std::size_t>(iy * sub_nx + ix)];
    };
    for (int iy = 0; iy < sub_ny; ++iy)
      for (int ix = 0; ix < sub_nx; ++ix) {
        if (ix + 1 < sub_nx)
          nl.add_resistor(sub_at(ix, iy), sub_at(ix + 1, iy),
                          std::max(rs * sub_px / sub_py, 1e-3));
        if (iy + 1 < sub_ny)
          nl.add_resistor(sub_at(ix, iy), sub_at(ix, iy + 1),
                          std::max(rs * sub_py / sub_px, 1e-3));
      }
  }
  auto ground_reference = [&](const geom::Point& p) -> circuit::NodeId {
    if (m.substrate_nodes.empty()) return circuit::kGround;
    const int ix = std::clamp(
        static_cast<int>(std::lround((p.x - sub_origin.x) / sub_px)), 0,
        sub_nx - 1);
    const int iy = std::clamp(
        static_cast<int>(std::lround((p.y - sub_origin.y) / sub_py)), 0,
        sub_ny - 1);
    return m.substrate_nodes[static_cast<std::size_t>(iy * sub_nx + ix)];
  };

  // --- RLC-pi stage per segment.
  m.seg_a.resize(segs.size());
  m.seg_b.resize(segs.size());
  m.seg_inductor.assign(segs.size(), kNoInductor);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const Segment& s = segs[i];
    const circuit::NodeId na = get_node(s.a, s.layer, s.net, s.kind);
    const circuit::NodeId nb = get_node(s.b, s.layer, s.net, s.kind);
    m.seg_a[i] = na;
    m.seg_b[i] = nb;
    const double r = std::max(m.extraction.resistance[i], 1e-6);
    if (opts.rc_only) {
      nl.add_resistor(na, nb, r);
    } else {
      const circuit::NodeId mid =
          make_internal_node(s.center(), s.layer, s.net, s.kind);
      // Branch current a -> mid matches the segment orientation used for
      // the mutual-inductance signs.
      m.seg_inductor[i] = nl.add_inductor(na, mid, m.extraction.partial_l(i, i));
      nl.add_resistor(mid, nb, r);
    }
    // Interconnect ground capacitance terminates on the bulk when the
    // substrate mesh is modelled, on the ideal reference otherwise.
    const double cg = 0.5 * m.extraction.ground_cap[i];
    nl.add_capacitor(na, ground_reference(s.a), cg);
    nl.add_capacitor(nb, ground_reference(s.b), cg);
  }

  // --- coupling capacitance split across the nearer end pairs.
  for (const extract::CouplingCap& cc : m.extraction.coupling) {
    const Segment& si = segs[cc.i];
    const Segment& sj = segs[cc.j];
    const bool straight = geom::distance(si.a, sj.a) + geom::distance(si.b, sj.b) <=
                          geom::distance(si.a, sj.b) + geom::distance(si.b, sj.a);
    const circuit::NodeId ja = straight ? m.seg_a[cc.j] : m.seg_b[cc.j];
    const circuit::NodeId jb = straight ? m.seg_b[cc.j] : m.seg_a[cc.j];
    nl.add_capacitor(m.seg_a[cc.i], ja, 0.5 * cc.value);
    nl.add_capacitor(m.seg_b[cc.i], jb, 0.5 * cc.value);
  }

  // --- vias.
  for (std::size_t v = 0; v < m.layout.vias().size(); ++v) {
    const geom::Via& via = m.layout.vias()[v];
    const circuit::NodeId lo = find_node(via.at, via.lower_layer);
    const circuit::NodeId hi = find_node(via.at, via.upper_layer);
    if (lo < 0 || hi < 0 || lo == hi) continue;  // no metal at one end
    nl.add_resistor(lo, hi, std::max(m.extraction.via_resistance[v], 1e-6));
  }

  // --- ideal external supply (package planes are ideal, Section 3).
  auto ensure_ideal_vdd = [&]() {
    if (m.ideal_vdd == circuit::kGround) {
      m.ideal_vdd = make_internal_node({0, 0}, 0, -1, NetKind::Power);
      nl.add_vsource(m.ideal_vdd, circuit::kGround,
                     circuit::Pwl::constant(opts.vdd));
    }
    return m.ideal_vdd;
  };

  // --- pads: series R (+L unless RC-only) to the ideal planes.
  if (opts.package.include) {
    for (const geom::Pad& pad : m.layout.pads()) {
      const circuit::NodeId chip = find_node(pad.at, pad.layer);
      if (chip < 0) continue;  // pad over empty metal
      const circuit::NodeId ideal = pad.kind == NetKind::Power
                                        ? ensure_ideal_vdd()
                                        : circuit::kGround;
      const PadImpedance z = pad_impedance(pad, opts.package);
      if (opts.rc_only || z.inductance <= 0.0) {
        nl.add_resistor(chip, ideal, std::max(z.resistance, 1e-6));
      } else {
        const circuit::NodeId mid =
            make_internal_node(pad.at, pad.layer, -1, pad.kind);
        nl.add_inductor(chip, mid, z.inductance);
        nl.add_resistor(mid, ideal, std::max(z.resistance, 1e-6));
      }
    }
  }

  const bool has_power_grid =
      m.nearest_node({0, 0}, NetKind::Power) != circuit::kGround;
  const bool has_ground_grid =
      m.nearest_node({0, 0}, NetKind::Ground) != circuit::kGround;

  // --- drivers: switched resistors between the output and the local rails.
  for (const geom::Driver& d : m.layout.drivers()) {
    circuit::NodeId out = find_node(d.at, d.layer);
    if (out < 0)
      throw std::runtime_error("build_peec_model: driver '" + d.name +
                               "' not on any wire");
    const circuit::NodeId vdd_node =
        has_power_grid ? m.nearest_node(d.at, NetKind::Power)
                       : ensure_ideal_vdd();
    const circuit::NodeId gnd_node =
        has_ground_grid ? m.nearest_node(d.at, NetKind::Ground)
                        : circuit::kGround;
    circuit::SwitchedDriver drv;
    drv.out = out;
    drv.vdd = vdd_node;
    drv.gnd = gnd_node;
    drv.pull_ohms = d.strength_ohm;
    drv.slew = d.slew;
    drv.start = d.start_time;
    drv.rising = d.rising;
    drv.name = d.name;
    m.driver_indices.push_back(nl.add_driver(std::move(drv)));
  }

  // --- receivers: gate capacitance split between the local rails, so both
  // the charge current I2 (to ground) and discharge current I3 (to power)
  // of Fig. 1 exist.
  for (const geom::Receiver& r : m.layout.receivers()) {
    circuit::NodeId pin = find_node(r.at, r.layer);
    if (pin < 0)
      throw std::runtime_error("build_peec_model: receiver '" + r.name +
                               "' not on any wire");
    const circuit::NodeId gnd_node =
        has_ground_grid ? m.nearest_node(r.at, NetKind::Ground)
                        : circuit::kGround;
    const circuit::NodeId vdd_node =
        has_power_grid ? m.nearest_node(r.at, NetKind::Power)
                       : ensure_ideal_vdd();
    nl.add_capacitor(pin, gnd_node, 0.5 * r.load_cap);
    nl.add_capacitor(pin, vdd_node, 0.5 * r.load_cap);
    m.receiver_probes.push_back({circuit::ProbeKind::NodeVoltage,
                                 static_cast<std::size_t>(pin), r.name});
    m.receiver_names.push_back(r.name);
  }

  // --- distributed decoupling capacitance between the grids.
  if (opts.decap.enable && has_power_grid && has_ground_grid &&
      opts.decap.sites > 0) {
    std::vector<circuit::NodeId> power_nodes;
    for (std::size_t i = 0; i < m.nodes.size(); ++i)
      if (m.nodes[i].kind == NetKind::Power)
        power_nodes.push_back(static_cast<circuit::NodeId>(i));
    const std::size_t sites =
        std::min<std::size_t>(opts.decap.sites, power_nodes.size());
    const double c_site = opts.decap.total_capacitance / sites;
    const double r_site = std::max(opts.decap.series_tau / c_site, 1e-6);
    const std::size_t stride = std::max<std::size_t>(1, power_nodes.size() / sites);
    for (std::size_t k = 0; k < sites; ++k) {
      const circuit::NodeId p = power_nodes[(k * stride) % power_nodes.size()];
      const circuit::NodeId g = m.nearest_node(m.nodes[p].at, NetKind::Ground);
      const circuit::NodeId mid =
          make_internal_node(m.nodes[p].at, m.nodes[p].layer, -1,
                             NetKind::Power);
      nl.add_resistor(p, mid, r_site);
      nl.add_capacitor(mid, g, c_site);
    }
  }

  // --- background switching activity: time-varying current sources at
  // pseudo-random grid locations.
  if (opts.background.enable && has_power_grid && has_ground_grid) {
    circuit::SwitchingProfileGenerator gen(opts.background.seed);
    std::vector<circuit::NodeId> power_nodes;
    for (std::size_t i = 0; i < m.nodes.size(); ++i)
      if (m.nodes[i].kind == NetKind::Power)
        power_nodes.push_back(static_cast<circuit::NodeId>(i));
    for (int s = 0; s < opts.background.sources && !power_nodes.empty(); ++s) {
      const std::size_t pick = static_cast<std::size_t>(
          gen.uniform() * static_cast<double>(power_nodes.size()));
      const circuit::NodeId p = power_nodes[std::min(pick, power_nodes.size() - 1)];
      const circuit::NodeId g = m.nearest_node(m.nodes[p].at, NetKind::Ground);
      nl.add_isource(p, g,
                     gen.background_current(opts.background.window,
                                            opts.background.peak_current,
                                            opts.background.pulses));
    }
  }

  // --- substrate taps and N-well junction capacitance.
  if (!m.substrate_nodes.empty()) {
    // Taps: evenly strided bulk nodes contact the ground network.
    const std::size_t tap_count = std::min<std::size_t>(
        std::max(1, 4 * opts.substrate.taps_per_side),
        m.substrate_nodes.size());
    const std::size_t stride =
        std::max<std::size_t>(1, m.substrate_nodes.size() / tap_count);
    for (std::size_t t = 0; t < tap_count; ++t) {
      const circuit::NodeId sub =
          m.substrate_nodes[(t * stride) % m.substrate_nodes.size()];
      const circuit::NodeId gnd =
          has_ground_grid
              ? m.nearest_node(m.nodes[static_cast<std::size_t>(sub)].at,
                               NetKind::Ground)
              : circuit::kGround;
      nl.add_resistor(sub, gnd, std::max(opts.substrate.tap_resistance, 1e-3));
    }
    // N-well junction capacitance from the power grid into the bulk.
    if (has_power_grid && opts.substrate.nwell_cap_total > 0.0) {
      std::vector<circuit::NodeId> power_nodes;
      for (std::size_t i = 0; i < m.nodes.size(); ++i)
        if (m.nodes[i].kind == NetKind::Power)
          power_nodes.push_back(static_cast<circuit::NodeId>(i));
      const std::size_t sites = std::min<std::size_t>(16, power_nodes.size());
      if (sites > 0) {
        const double c_site = opts.substrate.nwell_cap_total / sites;
        const std::size_t pstride =
            std::max<std::size_t>(1, power_nodes.size() / sites);
        for (std::size_t k = 0; k < sites; ++k) {
          const circuit::NodeId p =
              power_nodes[(k * pstride) % power_nodes.size()];
          nl.add_capacitor(
              p, ground_reference(m.nodes[static_cast<std::size_t>(p)].at),
              c_site);
        }
      }
    }
  }

  // --- mutual inductances.
  if (!opts.rc_only && opts.mutual_policy == PeecOptions::MutualPolicy::Full) {
    for (std::size_t i = 0; i < segs.size(); ++i)
      for (std::size_t j = i + 1; j < segs.size(); ++j)
        if (m.extraction.partial_l(i, j) != 0.0)
          nl.add_mutual(m.seg_inductor[i], m.seg_inductor[j],
                        m.extraction.partial_l(i, j));
  }

  return m;
}

}  // namespace ind::peec
