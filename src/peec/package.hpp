// Pad / package model (Section 3).
//
// "The package is modeled as a bar, including the pad and a via between the
// pad and package", with the package planes assumed ideal. Each supply pad
// therefore contributes a lumped series R + L between the on-chip grid node
// and an ideal external supply.
#pragma once

#include "geom/segment.hpp"

namespace ind::peec {

struct PackageOptions {
  bool include = true;
  /// Multipliers applied to every pad's own R/L (lets benches sweep package
  /// quality without regenerating layouts).
  double resistance_scale = 1.0;
  double inductance_scale = 1.0;
};

/// Lumped pad model after scaling.
struct PadImpedance {
  double resistance = 0.0;
  double inductance = 0.0;
};

PadImpedance pad_impedance(const geom::Pad& pad, const PackageOptions& opts);

}  // namespace ind::peec
