#include "peec/package.hpp"

namespace ind::peec {

PadImpedance pad_impedance(const geom::Pad& pad, const PackageOptions& opts) {
  return {pad.resistance * opts.resistance_scale,
          pad.inductance * opts.inductance_scale};
}

}  // namespace ind::peec
