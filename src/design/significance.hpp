// When does inductance matter? (Deutsch et al. [1], the paper's opening
// citation: "When are Transmission-Line Effects Important for On-Chip
// Interconnections?")
//
// The classical screen: transmission-line (inductive) behaviour is
// significant for a line of length l, total resistance R, and per-length
// inductance/capacitance L', C' when
//
//     t_r / (2 sqrt(L'C'))   <   l   <   2/R' * sqrt(L'/C')
//
// i.e. the line is long enough that the driver edge resolves the flight
// time, yet short enough that resistive attenuation has not killed the
// wave. Below we also provide Elmore delay (the standard RC screen) so the
// two estimates bracket the simulated behaviour.
#pragma once

#include "geom/layout.hpp"
#include "loop/port_extractor.hpp"

namespace ind::design {

/// Per-unit-length electrical parameters of a signal net against its
/// environment, derived from the extraction kernels.
struct LineParameters {
  double r_per_m = 0.0;  ///< ohm/m  (signal conductor DC)
  double l_per_m = 0.0;  ///< H/m    (loop inductance at `freq`)
  double c_per_m = 0.0;  ///< F/m    (ground + coupling capacitance)
  double length = 0.0;   ///< m

  double characteristic_impedance() const;  ///< sqrt(L'/C')
  double flight_time() const;               ///< l * sqrt(L'C')
};

/// Extracts the line parameters of `signal_net` (loop L at `freq` via the
/// MQS solver, C from the Chern models, R from the sheet model).
LineParameters extract_line_parameters(
    const geom::Layout& layout, int signal_net, double freq = 2e9,
    const loop::LoopExtractionOptions& opts = {});

struct SignificanceReport {
  double lower_bound = 0.0;  ///< metres: below this, the edge hides the wave
  double upper_bound = 0.0;  ///< metres: above this, attenuation dominates
  double length = 0.0;       ///< the net's actual length
  bool inductance_significant = false;  ///< lower < length < upper

  /// Edge-rate criterion expressed as a ratio (length / lower bound):
  /// > 1 means the flight time is resolvable.
  double edge_ratio = 0.0;
  /// Attenuation criterion (upper bound / length): > 1 means underdamped.
  double damping_ratio = 0.0;
};

/// Applies the Deutsch window for a driver rise time `t_rise`.
SignificanceReport inductance_significance(const LineParameters& line,
                                           double t_rise);

/// Elmore delay of a uniform RC line with a driver resistance and a lumped
/// load: t = R_drv (C_line + C_load) + R_line (C_line/2 + C_load).
double elmore_delay(const LineParameters& line, double driver_ohms,
                    double load_farads);

}  // namespace ind::design
