// Simultaneous shield insertion and net ordering (He et al. [21];
// Section 7): "Coupling noise can be reduced by simultaneously inserting
// shields and ordering nets, subject to constraints on area, and bounds on
// inductive and capacitive noise. This optimization problem was found to be
// NP-hard and hence was solved by algorithms based on greedy approaches or
// simulated annealing."
//
// We implement the abstract track-assignment problem with both heuristics
// (plus exhaustive search as a small-instance oracle), and a generator that
// realises a solution as a concrete bus layout for extraction-based
// validation.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/topologies.hpp"
#include "la/dense_matrix.hpp"

namespace ind::design {

struct ShieldOrderProblem {
  int nets = 0;
  /// sensitivity(i, j): weight of noise injected by net j into net i
  /// (aggressor activity x victim sensitivity); diagonal ignored.
  la::Matrix sensitivity;
  int max_shields = 0;     ///< area budget
  double cap_weight = 1.0; ///< relative weight of capacitive noise
  double ind_weight = 1.0; ///< relative weight of inductive noise
  /// Per-victim noise bounds ("bounds on inductive and capacitive noise",
  /// [21]); violations enter the cost through a large penalty so every
  /// solver prefers feasible assignments.
  double cap_noise_bound = 1e300;
  double ind_noise_bound = 1e300;
  double bound_penalty = 1e6;
};

/// Per-victim noise received under an assignment (same units as the cost).
struct NoiseBreakdown {
  la::Vector cap_in;  ///< capacitive noise into each net
  la::Vector ind_in;  ///< inductive noise into each net
};

NoiseBreakdown compute_noise(const ShieldOrderProblem& p,
                             const struct TrackAssignment& t);

/// True if every victim satisfies both bounds.
bool is_feasible(const ShieldOrderProblem& p,
                 const struct TrackAssignment& t);

/// A solution: nets placed left-to-right in `order`, with an optional shield
/// after each position (shield_after.back() unused).
struct TrackAssignment {
  std::vector<int> order;          ///< permutation of [0, nets)
  std::vector<bool> shield_after;  ///< size nets; slot between k and k+1

  int shields_used() const;
};

/// Cost model: capacitive noise couples adjacent unshielded pairs only;
/// inductive noise decays with track distance and is attenuated by each
/// intervening shield (which provides a nearby current return):
///   cap: sum w_ij  over adjacent pairs with no shield between
///   ind: sum w_ij / (d_ij * (1 + shields_between)^2)
double evaluate_cost(const ShieldOrderProblem& p, const TrackAssignment& t);

/// Greedy: sort-by-aggressiveness ordering, then repeatedly insert the
/// shield with the largest cost reduction until the budget is exhausted.
TrackAssignment solve_greedy(const ShieldOrderProblem& p);

/// Simulated annealing over (order, shields) with deterministic seeding.
TrackAssignment solve_annealing(const ShieldOrderProblem& p,
                                std::uint64_t seed = 1,
                                int iterations = 20000);

/// Exhaustive oracle (factorial cost — instances up to ~7 nets only).
TrackAssignment solve_exhaustive(const ShieldOrderProblem& p);

/// Realises an assignment as a parallel-bus layout (shield tracks grounded)
/// so its actual extracted coupling can be compared against the cost model.
geom::Layout realize_assignment(const TrackAssignment& t,
                                const geom::BusSpec& track_template);

}  // namespace ind::design
