// Design-technique evaluation metrics (Section 7).
//
// Each guideline in the paper — shielding, ground planes, inter-digitation,
// staggered repeaters, twisted bundles — claims a reduction in loop
// inductance or coupling noise. These helpers quantify both claims on real
// extracted models so the Section-7 benches can reproduce Figs. 5-9.
#pragma once

#include <vector>

#include "circuit/transient.hpp"
#include "extract/extractor.hpp"
#include "geom/layout.hpp"
#include "loop/port_extractor.hpp"
#include "peec/model_builder.hpp"

namespace ind::design {

/// Loop inductance (henries) of `net` at one frequency, using the Section-5
/// extraction setup (port at driver, receivers shorted to local ground).
double loop_inductance_at(const geom::Layout& layout, int net, double freq,
                          const loop::LoopExtractionOptions& opts = {});

/// Signed net-to-net mutual partial inductance: sum of M_ij over segment
/// pairs (i in net_a, j in net_b). Opposing current loops contribute with
/// opposite signs, so twisted bundles drive this toward zero while parallel
/// bundles accumulate it.
double net_mutual_inductance(const geom::Layout& layout, int net_a, int net_b,
                             double max_segment_length = geom::um(100.0));

/// Loop-referenced mutual coupling: the flux an aggressor's current couples
/// into the *loop* formed by the victim and its return conductor,
///   M_loop = M(aggressor, victim) - M(aggressor, return).
/// This is the quantity the twisted-bundle layout cancels (Fig. 9): position
/// swaps flip which of the two terms dominates, so the regions' signed
/// contributions alternate.
double net_loop_mutual(const geom::Layout& layout, int aggressor_net,
                       int victim_net, int return_net,
                       double max_segment_length = geom::um(100.0));

/// Loop-to-loop mutual between two complementary pairs (a+, a-) and
/// (v+, v-): the aggressor current flows out on a+ and back on a-, the
/// victim loop is spanned by v+ and v-. This is the flux the twisted-bundle
/// structure drives to zero:
///   M = [M(a+,v+) - M(a+,v-)] - [M(a-,v+) - M(a-,v-)].
double pair_loop_mutual(const geom::Layout& layout, int a_plus, int a_minus,
                        int v_plus, int v_minus,
                        double max_segment_length = geom::um(100.0));

/// Net-to-net coupling capacitance (farads) over adjacent segment pairs.
double net_coupling_capacitance(const geom::Layout& layout, int net_a,
                                int net_b,
                                double coupling_window = geom::um(5.0));

struct NoiseResult {
  double peak_volts = 0.0;       ///< worst deviation at the victim sink
  double victim_delay = 0.0;     ///< 50% delay if the victim also switches (else 0)
};

/// Crosstalk experiment: the listed aggressor nets switch, every other
/// driver is held quiet, and the victim receiver's waveform is measured.
NoiseResult victim_noise(const geom::Layout& layout,
                         const std::vector<int>& aggressor_nets,
                         int victim_net, const peec::PeecOptions& peec_opts,
                         const circuit::TransientOptions& tran_opts);

struct WorstPatternResult {
  std::vector<bool> rising;  ///< polarity per aggressor (order of the input list)
  double peak_volts = 0.0;   ///< the worst victim noise found
};

/// Exhaustive worst-case switching-pattern search: tries every rising /
/// falling combination of the aggressors (2^n transient runs) and returns
/// the pattern maximising victim noise — the signal-integrity sign-off
/// question behind the Section-7 noise bounds.
WorstPatternResult worst_switching_pattern(
    const geom::Layout& layout, const std::vector<int>& aggressor_nets,
    int victim_net, const peec::PeecOptions& peec_opts,
    const circuit::TransientOptions& tran_opts);

}  // namespace ind::design
