#include "design/significance.hpp"

#include <cmath>
#include <stdexcept>

#include "extract/capacitance.hpp"
#include "extract/resistance.hpp"

namespace ind::design {

double LineParameters::characteristic_impedance() const {
  return std::sqrt(l_per_m / c_per_m);
}

double LineParameters::flight_time() const {
  return length * std::sqrt(l_per_m * c_per_m);
}

LineParameters extract_line_parameters(
    const geom::Layout& layout, int signal_net, double freq,
    const loop::LoopExtractionOptions& opts) {
  const geom::Layout refined = geom::refine(layout, opts.max_segment_length);
  LineParameters p;
  double r_total = 0.0, c_total = 0.0;
  for (std::size_t i = 0; i < refined.segments().size(); ++i) {
    const geom::Segment& s = refined.segments()[i];
    if (s.net != signal_net) continue;
    p.length += s.length();
    r_total += extract::segment_resistance(s, refined.tech());
    c_total += extract::segment_ground_cap(s, refined.tech());
  }
  // Coupling capacitance to other conductors loads the net too.
  for (const auto& [i, j] : refined.adjacent_pairs(geom::um(5.0))) {
    const auto& si = refined.segments()[i];
    const auto& sj = refined.segments()[j];
    if ((si.net == signal_net) == (sj.net == signal_net)) continue;
    c_total += extract::segment_coupling_cap(si, sj, refined.tech());
  }
  if (p.length <= 0.0)
    throw std::invalid_argument("extract_line_parameters: net has no wires");

  const double l_loop =
      loop::extract_loop_rl(layout, signal_net, {freq}, opts)[0].inductance;
  p.r_per_m = r_total / p.length;
  p.c_per_m = c_total / p.length;
  p.l_per_m = l_loop / p.length;
  return p;
}

SignificanceReport inductance_significance(const LineParameters& line,
                                           double t_rise) {
  if (line.l_per_m <= 0.0 || line.c_per_m <= 0.0)
    throw std::invalid_argument("inductance_significance: non-positive L'/C'");
  SignificanceReport rep;
  rep.length = line.length;
  rep.lower_bound = t_rise / (2.0 * std::sqrt(line.l_per_m * line.c_per_m));
  rep.upper_bound = (2.0 / line.r_per_m) *
                    std::sqrt(line.l_per_m / line.c_per_m);
  rep.inductance_significant =
      line.length > rep.lower_bound && line.length < rep.upper_bound;
  rep.edge_ratio = line.length / rep.lower_bound;
  rep.damping_ratio = rep.upper_bound / line.length;
  return rep;
}

double elmore_delay(const LineParameters& line, double driver_ohms,
                    double load_farads) {
  const double r_line = line.r_per_m * line.length;
  const double c_line = line.c_per_m * line.length;
  return driver_ohms * (c_line + load_farads) +
         r_line * (0.5 * c_line + load_farads);
}

}  // namespace ind::design
