#include "design/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuit/waveform.hpp"
#include "extract/partial_inductance.hpp"

namespace ind::design {

double loop_inductance_at(const geom::Layout& layout, int net, double freq,
                          const loop::LoopExtractionOptions& opts) {
  return loop::extract_loop_rl(layout, net, {freq}, opts)[0].inductance;
}

double net_mutual_inductance(const geom::Layout& layout, int net_a, int net_b,
                             double max_segment_length) {
  const geom::Layout refined = geom::refine(layout, max_segment_length);
  const auto& segs = refined.segments();
  double acc = 0.0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].net != net_a) continue;
    for (std::size_t j = 0; j < segs.size(); ++j) {
      if (segs[j].net != net_b) continue;
      acc += extract::mutual_between(segs[i], segs[j]);
    }
  }
  return acc;
}

double net_loop_mutual(const geom::Layout& layout, int aggressor_net,
                       int victim_net, int return_net,
                       double max_segment_length) {
  return net_mutual_inductance(layout, aggressor_net, victim_net,
                               max_segment_length) -
         net_mutual_inductance(layout, aggressor_net, return_net,
                               max_segment_length);
}

double pair_loop_mutual(const geom::Layout& layout, int a_plus, int a_minus,
                        int v_plus, int v_minus, double max_segment_length) {
  return net_loop_mutual(layout, a_plus, v_plus, v_minus, max_segment_length) -
         net_loop_mutual(layout, a_minus, v_plus, v_minus, max_segment_length);
}

double net_coupling_capacitance(const geom::Layout& layout, int net_a,
                                int net_b, double coupling_window) {
  const auto& segs = layout.segments();
  double acc = 0.0;
  for (const auto& [i, j] : layout.adjacent_pairs(coupling_window)) {
    const bool ab = segs[i].net == net_a && segs[j].net == net_b;
    const bool ba = segs[i].net == net_b && segs[j].net == net_a;
    if (!ab && !ba) continue;
    acc += extract::segment_coupling_cap(segs[i], segs[j], layout.tech());
  }
  return acc;
}

WorstPatternResult worst_switching_pattern(
    const geom::Layout& layout, const std::vector<int>& aggressor_nets,
    int victim_net, const peec::PeecOptions& peec_opts,
    const circuit::TransientOptions& tran_opts) {
  if (aggressor_nets.size() > 12)
    throw std::invalid_argument(
        "worst_switching_pattern: too many aggressors for exhaustive search");
  WorstPatternResult best;
  best.rising.assign(aggressor_nets.size(), true);
  for (unsigned mask = 0; mask < (1u << aggressor_nets.size()); ++mask) {
    geom::Layout work = layout;
    for (geom::Driver& d : work.drivers()) {
      for (std::size_t a = 0; a < aggressor_nets.size(); ++a)
        if (d.signal_net == aggressor_nets[a])
          d.rising = ((mask >> a) & 1u) == 0u;
    }
    const NoiseResult res =
        victim_noise(work, aggressor_nets, victim_net, peec_opts, tran_opts);
    if (res.peak_volts > best.peak_volts) {
      best.peak_volts = res.peak_volts;
      for (std::size_t a = 0; a < aggressor_nets.size(); ++a)
        best.rising[a] = ((mask >> a) & 1u) == 0u;
    }
  }
  return best;
}

NoiseResult victim_noise(const geom::Layout& layout,
                         const std::vector<int>& aggressor_nets,
                         int victim_net, const peec::PeecOptions& peec_opts,
                         const circuit::TransientOptions& tran_opts) {
  // Quiet every driver that is not an aggressor: its transition is pushed
  // far beyond the simulation window so it just holds its initial level.
  geom::Layout work = layout;
  for (geom::Driver& d : work.drivers()) {
    const bool aggressor =
        std::find(aggressor_nets.begin(), aggressor_nets.end(),
                  d.signal_net) != aggressor_nets.end();
    if (!aggressor) d.start_time = 1e3;  // effectively never
  }

  peec::PeecModel model = peec::build_peec_model(work, peec_opts);

  // Probe the victim's receiver.
  const geom::Receiver* victim = nullptr;
  for (const geom::Receiver& r : model.layout.receivers())
    if (r.signal_net == victim_net) {
      victim = &r;
      break;
    }
  if (!victim)
    throw std::invalid_argument("victim_noise: victim net has no receiver");

  std::vector<circuit::Probe> probes;
  for (std::size_t i = 0; i < model.receiver_probes.size(); ++i)
    if (model.receiver_names[i] == victim->name)
      probes.push_back(model.receiver_probes[i]);
  const circuit::TransientResult res =
      circuit::transient(model.netlist, probes, tran_opts);

  NoiseResult out;
  const la::Vector& w = res.samples.at(0);
  // Victim drivers hold low, so nominal is the initial level.
  out.peak_volts = circuit::peak_noise(w, w.front());
  return out;
}

}  // namespace ind::design
