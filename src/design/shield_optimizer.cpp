#include "design/shield_optimizer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ind::design {
namespace {

// Track coordinate of each net, counting shields as occupied slots.
std::vector<int> net_positions(const TrackAssignment& t) {
  std::vector<int> pos(t.order.size());
  int cursor = 0;
  for (std::size_t k = 0; k < t.order.size(); ++k) {
    pos[k] = cursor;
    ++cursor;
    if (k < t.shield_after.size() && t.shield_after[k]) ++cursor;
  }
  return pos;
}

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed | 1) {}
  double uniform() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return static_cast<double>((state * 0x2545F4914F6CDD1DULL) >> 11) *
           0x1.0p-53;
  }
  std::size_t index(std::size_t n) {
    return std::min(static_cast<std::size_t>(uniform() * n), n - 1);
  }
};

void validate(const ShieldOrderProblem& p) {
  if (p.nets < 1) throw std::invalid_argument("shield optimizer: nets < 1");
  if (p.sensitivity.rows() != static_cast<std::size_t>(p.nets) ||
      p.sensitivity.cols() != static_cast<std::size_t>(p.nets))
    throw std::invalid_argument("shield optimizer: sensitivity shape");
}

TrackAssignment identity_assignment(int nets) {
  TrackAssignment t;
  t.order.resize(static_cast<std::size_t>(nets));
  std::iota(t.order.begin(), t.order.end(), 0);
  t.shield_after.assign(static_cast<std::size_t>(nets), false);
  return t;
}

}  // namespace

int TrackAssignment::shields_used() const {
  int n = 0;
  for (std::size_t k = 0; k + 1 < shield_after.size(); ++k)
    if (shield_after[k]) ++n;
  return n;
}

NoiseBreakdown compute_noise(const ShieldOrderProblem& p,
                             const TrackAssignment& t) {
  validate(p);
  if (t.order.size() != static_cast<std::size_t>(p.nets))
    throw std::invalid_argument("compute_noise: order size");
  NoiseBreakdown nb;
  nb.cap_in.assign(static_cast<std::size_t>(p.nets), 0.0);
  nb.ind_in.assign(static_cast<std::size_t>(p.nets), 0.0);
  const std::vector<int> pos = net_positions(t);
  auto w_into = [&](int victim, int aggressor) {
    return p.sensitivity(static_cast<std::size_t>(victim),
                         static_cast<std::size_t>(aggressor));
  };
  for (std::size_t k = 0; k < t.order.size(); ++k) {
    int shields_between = t.shield_after[k] ? 1 : 0;
    for (std::size_t m = k + 1; m < t.order.size(); ++m) {
      const int a = t.order[k], b = t.order[m];
      const double d = pos[m] - pos[k];
      const double atten =
          1.0 / (d * (1.0 + shields_between) * (1.0 + shields_between));
      if (m == k + 1 && shields_between == 0) {
        nb.cap_in[static_cast<std::size_t>(a)] += w_into(a, b);
        nb.cap_in[static_cast<std::size_t>(b)] += w_into(b, a);
      }
      nb.ind_in[static_cast<std::size_t>(a)] += w_into(a, b) * atten;
      nb.ind_in[static_cast<std::size_t>(b)] += w_into(b, a) * atten;
      if (m < t.shield_after.size() && t.shield_after[m]) ++shields_between;
    }
  }
  return nb;
}

bool is_feasible(const ShieldOrderProblem& p, const TrackAssignment& t) {
  const NoiseBreakdown nb = compute_noise(p, t);
  for (std::size_t i = 0; i < nb.cap_in.size(); ++i)
    if (nb.cap_in[i] > p.cap_noise_bound || nb.ind_in[i] > p.ind_noise_bound)
      return false;
  return true;
}

double evaluate_cost(const ShieldOrderProblem& p, const TrackAssignment& t) {
  const NoiseBreakdown nb = compute_noise(p, t);
  double cap = 0.0, ind = 0.0, violation = 0.0;
  for (std::size_t i = 0; i < nb.cap_in.size(); ++i) {
    cap += nb.cap_in[i];
    ind += nb.ind_in[i];
    violation += std::max(0.0, nb.cap_in[i] - p.cap_noise_bound) +
                 std::max(0.0, nb.ind_in[i] - p.ind_noise_bound);
  }
  return p.cap_weight * cap + p.ind_weight * ind +
         p.bound_penalty * violation;
}

TrackAssignment solve_greedy(const ShieldOrderProblem& p) {
  validate(p);
  TrackAssignment best = identity_assignment(p.nets);

  // 2-opt on the ordering: swap pairs while the cost improves.
  double best_cost = evaluate_cost(p, best);
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < best.order.size(); ++i) {
      for (std::size_t j = i + 1; j < best.order.size(); ++j) {
        std::swap(best.order[i], best.order[j]);
        const double c = evaluate_cost(p, best);
        if (c < best_cost - 1e-15) {
          best_cost = c;
          improved = true;
        } else {
          std::swap(best.order[i], best.order[j]);
        }
      }
    }
  }

  // Greedy shield insertion: repeatedly take the slot with the biggest win.
  while (best.shields_used() < p.max_shields) {
    double best_gain = 0.0;
    std::ptrdiff_t best_slot = -1;
    for (std::size_t k = 0; k + 1 < best.shield_after.size(); ++k) {
      if (best.shield_after[k]) continue;
      best.shield_after[k] = true;
      const double c = evaluate_cost(p, best);
      best.shield_after[k] = false;
      const double gain = best_cost - c;
      if (gain > best_gain) {
        best_gain = gain;
        best_slot = static_cast<std::ptrdiff_t>(k);
      }
    }
    if (best_slot < 0) break;  // no slot helps
    best.shield_after[static_cast<std::size_t>(best_slot)] = true;
    best_cost -= best_gain;
  }
  return best;
}

TrackAssignment solve_annealing(const ShieldOrderProblem& p,
                                std::uint64_t seed, int iterations) {
  validate(p);
  Rng rng(seed);
  TrackAssignment cur = solve_greedy(p);  // warm start
  TrackAssignment best = cur;
  double cur_cost = evaluate_cost(p, cur);
  double best_cost = cur_cost;

  const double t_start = std::max(cur_cost, 1e-12);
  for (int it = 0; it < iterations; ++it) {
    const double temp =
        t_start * std::pow(1e-4, static_cast<double>(it) / iterations);
    TrackAssignment cand = cur;
    if (p.nets > 1 && rng.uniform() < 0.6) {
      const std::size_t i = rng.index(cand.order.size());
      const std::size_t j = rng.index(cand.order.size());
      std::swap(cand.order[i], cand.order[j]);
    } else if (cand.shield_after.size() > 1) {
      const std::size_t k = rng.index(cand.shield_after.size() - 1);
      cand.shield_after[k] = !cand.shield_after[k];
      if (cand.shields_used() > p.max_shields) continue;  // over budget
    }
    const double c = evaluate_cost(p, cand);
    if (c <= cur_cost || rng.uniform() < std::exp((cur_cost - c) / temp)) {
      cur = std::move(cand);
      cur_cost = c;
      if (c < best_cost) {
        best = cur;
        best_cost = c;
      }
    }
  }
  return best;
}

TrackAssignment solve_exhaustive(const ShieldOrderProblem& p) {
  validate(p);
  if (p.nets > 8)
    throw std::invalid_argument("solve_exhaustive: too many nets (> 8)");
  TrackAssignment t = identity_assignment(p.nets);
  TrackAssignment best = t;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> perm = t.order;
  std::sort(perm.begin(), perm.end());
  const unsigned slots = static_cast<unsigned>(p.nets - 1);
  do {
    t.order = perm;
    for (unsigned mask = 0; mask < (1u << slots); ++mask) {
      if (static_cast<int>(std::popcount(mask)) > p.max_shields) continue;
      for (unsigned k = 0; k < slots; ++k)
        t.shield_after[k] = (mask >> k) & 1u;
      t.shield_after[slots] = false;
      const double c = evaluate_cost(p, t);
      if (c < best_cost) {
        best_cost = c;
        best = t;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

geom::Layout realize_assignment(const TrackAssignment& t,
                                const geom::BusSpec& track_template) {
  geom::Layout layout(geom::default_tech());
  const int gnd = layout.add_net("gnd", geom::NetKind::Ground);

  const double pitch = track_template.width + track_template.spacing;
  double y = track_template.origin.y;
  auto add_track = [&](int net) {
    layout.add_wire(net, track_template.layer, {track_template.origin.x, y},
                    {track_template.origin.x + track_template.length, y},
                    track_template.width);
    y += pitch;
  };

  for (std::size_t k = 0; k < t.order.size(); ++k) {
    const int net = layout.add_net("net" + std::to_string(t.order[k]),
                                   geom::NetKind::Signal);
    const double track_y = y;
    add_track(net);
    if (track_template.add_drivers) {
      geom::Driver d;
      d.at = {track_template.origin.x, track_y};
      d.layer = track_template.layer;
      d.signal_net = net;
      d.strength_ohm = track_template.driver_res;
      d.slew = track_template.slew;
      d.name = "net" + std::to_string(t.order[k]) + "_drv";
      layout.add_driver(std::move(d));
      geom::Receiver r;
      r.at = {track_template.origin.x + track_template.length, track_y};
      r.layer = track_template.layer;
      r.signal_net = net;
      r.load_cap = track_template.sink_cap;
      r.name = "net" + std::to_string(t.order[k]) + "_rcv";
      layout.add_receiver(std::move(r));
    }
    if (k < t.shield_after.size() && t.shield_after[k]) add_track(gnd);
  }
  return layout;
}

}  // namespace ind::design
