// Solver fallback ladder: guarded factorisations with bounded, deterministic
// recovery from singular / near-singular systems.
//
// Ladder rungs (fixed escalation schedule, no RNG):
//   dense (real or complex):
//     0. factor as-is
//     1. plain retry            — clears injected faults bitwise-identically
//     2+ diagonal gmin regularisation at kGminLevels[k], refactor
//   sparse:
//     0. factor as-is
//     1. plain retry
//     2. dense-LU fallback      — partial pivoting over the full matrix
//        (skipped above dense_fallback_limit unknowns)
//     3+ diagonal gmin regularisation at kGminLevels[k], sparse refactor
//
// Each rung taken is recorded as a RecoveryAction in the SolveReport; an
// exhausted ladder yields status Failed and an empty factor instead of a
// thrown SingularMatrixError, so callers degrade gracefully.
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "la/lu.hpp"
#include "la/refine.hpp"
#include "la/sparse.hpp"
#include "la/sparse_lu.hpp"
#include "robust/diagnostics.hpp"

namespace ind::robust {

/// Deterministic gmin escalation schedule (siemens added to every diagonal).
inline constexpr std::array<double, 3> kGminLevels = {1e-9, 1e-6, 1e-3};

/// Factors a dense real / complex system through the fallback ladder.
/// On failure the returned factor is empty (size() == 0) and
/// report.failed() is true; diagnostics (condition estimate, pivot growth)
/// are filled from the successful factorisation otherwise.
la::LU factor_dense_with_recovery(const la::Matrix& a, SolveReport& report,
                                  std::string_view where);
la::CLU factor_dense_with_recovery(const la::CMatrix& a, SolveReport& report,
                                   std::string_view where);

/// Outcome of a guarded sparse factorisation: exactly one of `sparse` /
/// `dense` is set on success (dense when the fallback rung rescued the
/// factorisation), neither on failure.
struct GuardedSparseFactor {
  std::unique_ptr<la::SparseLu> sparse;
  std::unique_ptr<la::LU> dense;

  bool usable() const { return sparse != nullptr || dense != nullptr; }
  la::Vector solve(const la::Vector& b) const {
    return sparse ? sparse->solve(b) : dense->solve(b);
  }
};

/// Mixed-precision guarded dense solve: float32 blocked factor + float64
/// iterative refinement (la/refine.hpp), guarded by the f32 factor's
/// condition / pivot-growth estimates. When the guard trips, the factor is
/// singular in f32, or refinement stalls above tolerance, a
/// RecoveryKind::MixedPrecisionFallback action is recorded and the solve
/// falls back to the full-double ladder above — whose first rung factors
/// the matrix as-is, so the fallback result is bitwise-identical to the
/// plain double path. On an exhausted ladder the returned vector is empty
/// and report.failed() is true.
la::Vector solve_dense_mixed_with_recovery(
    const la::Matrix& a, const la::Vector& b, SolveReport& report,
    std::string_view where, const la::RefineOptions& opts = {});
la::CVector solve_dense_mixed_with_recovery(
    const la::CMatrix& a, const la::CVector& b, SolveReport& report,
    std::string_view where, const la::RefineOptions& opts = {});

GuardedSparseFactor factor_sparse_with_recovery(
    const la::CscMatrix& a, SolveReport& report, std::string_view where,
    std::size_t dense_fallback_limit = 2048);

/// Re-factorises `f` in place through the same ladder as
/// factor_sparse_with_recovery. An existing sparse factor is reused via
/// SparseLu::refactor — numeric-only when pattern and pivot sequence are
/// unchanged, so driver-transition refactorisations and gmin-shifted
/// retries skip the symbolic work — and the result stays bitwise-identical
/// to a from-scratch ladder run. Without a usable sparse factor (first
/// call, or after a dense fallback) this degrades to the from-scratch
/// ladder. On an exhausted ladder `f` is left unusable and the report
/// Failed. Setting IND_SPARSE_NO_REFACTOR=1 forces the from-scratch ladder
/// every time (A/B oracle for the reuse path).
void refactor_sparse_with_recovery(GuardedSparseFactor& f,
                                   const la::CscMatrix& a, SolveReport& report,
                                   std::string_view where,
                                   std::size_t dense_fallback_limit = 2048);

/// True when every entry is finite (no NaN / inf).
bool all_finite(const la::Vector& v);
bool all_finite(const la::CVector& v);

}  // namespace ind::robust
