#include "robust/fault_injection.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "runtime/metrics.hpp"

namespace ind::robust::fault {
namespace {

struct SiteState {
  std::atomic<std::int64_t> calls{0};
  std::atomic<std::int64_t> fired{0};
  bool always = false;
  std::vector<std::int64_t> targets;  // sorted call indices
};

struct Config {
  std::array<SiteState, kSiteCount> sites;
  std::once_flag env_once;
  std::mutex mutex;  // guards target rewrites in configure()/clear()
};

Config& config() {
  static Config c;
  return c;
}

constexpr std::array<const char*, kSiteCount> kSiteNames = {
    "dense_lu_pivot", "sparse_lu_pivot", "transient_step", "krylov_block",
    "ladder_jacobian", "store_read", "budget_check", "serve_read",
    "store_write", "serve_send", "gmres_iter", "worker_exec"};

int site_index_from_name(const std::string& name) {
  for (int i = 0; i < kSiteCount; ++i)
    if (name == kSiteNames[static_cast<std::size_t>(i)]) return i;
  return -1;
}

std::int64_t parse_index(const std::string& text) {
  std::size_t pos = 0;
  std::int64_t v = -1;
  try {
    v = std::stoll(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || v < 0)
    throw std::invalid_argument("IND_FAULT_INJECT: bad call index '" + text +
                                "'");
  return v;
}

/// Parses the full spec into fresh site states. Grammar:
///   spec    := entry (';' entry)*
///   entry   := site '@' indices
///   indices := '*' | index (',' index)*
///   index   := N | N '-' M
void apply_spec(const std::string& spec) {
  Config& c = config();
  std::scoped_lock lock(c.mutex);
  for (SiteState& s : c.sites) {
    s.calls.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
    s.always = false;
    s.targets.clear();
  }
  std::size_t begin = 0;
  bool any = false;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace.
    const auto first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    entry = entry.substr(first, entry.find_last_not_of(" \t") - first + 1);
    const std::size_t at = entry.find('@');
    if (at == std::string::npos)
      throw std::invalid_argument("IND_FAULT_INJECT: entry '" + entry +
                                  "' missing '@'");
    const int site = site_index_from_name(entry.substr(0, at));
    if (site < 0)
      throw std::invalid_argument("IND_FAULT_INJECT: unknown site '" +
                                  entry.substr(0, at) + "'");
    SiteState& state = c.sites[static_cast<std::size_t>(site)];
    std::string indices = entry.substr(at + 1);
    if (indices == "*") {
      state.always = true;
    } else {
      std::size_t ib = 0;
      while (ib <= indices.size()) {
        std::size_t ie = indices.find(',', ib);
        if (ie == std::string::npos) ie = indices.size();
        const std::string tok = indices.substr(ib, ie - ib);
        ib = ie + 1;
        if (tok.empty()) continue;
        const std::size_t dash = tok.find('-');
        if (dash == std::string::npos) {
          state.targets.push_back(parse_index(tok));
        } else {
          const std::int64_t lo = parse_index(tok.substr(0, dash));
          const std::int64_t hi = parse_index(tok.substr(dash + 1));
          if (hi < lo)
            throw std::invalid_argument("IND_FAULT_INJECT: bad range '" + tok +
                                        "'");
          for (std::int64_t k = lo; k <= hi; ++k) state.targets.push_back(k);
        }
      }
      std::sort(state.targets.begin(), state.targets.end());
    }
    any = true;
  }
  detail::g_active.store(any, std::memory_order_relaxed);
}

void load_env_spec() {
  const char* env = std::getenv("IND_FAULT_INJECT");
  if (env == nullptr || *env == '\0') {
    detail::g_active.store(false, std::memory_order_relaxed);
    return;
  }
  apply_spec(env);
}

}  // namespace

namespace detail {

// Armed at static init purely on the presence of the variable; the spec is
// parsed on the first fire() so a malformed value fails loudly at the first
// guarded operation, not during static initialisation.
std::atomic<bool> g_active{[] {
  const char* env = std::getenv("IND_FAULT_INJECT");
  return env != nullptr && *env != '\0';
}()};

bool fire_slow(Site site) {
  Config& c = config();
  std::call_once(c.env_once, load_env_spec);
  if (!g_active.load(std::memory_order_relaxed)) return false;
  SiteState& s = c.sites[static_cast<std::size_t>(site)];
  const std::int64_t idx = s.calls.fetch_add(1, std::memory_order_relaxed);
  const bool hit =
      s.always ||
      std::binary_search(s.targets.begin(), s.targets.end(), idx);
  if (hit) {
    s.fired.fetch_add(1, std::memory_order_relaxed);
    runtime::MetricsRegistry::instance().add_count("robust.fault.injected", 1);
  }
  return hit;
}

}  // namespace detail

void configure(const std::string& spec) {
  Config& c = config();
  // Make sure the env spec never overwrites a programmatic one later.
  std::call_once(c.env_once, [] {});
  if (spec.empty()) {
    clear();
    return;
  }
  apply_spec(spec);
}

void clear() {
  Config& c = config();
  std::call_once(c.env_once, [] {});
  detail::g_active.store(false, std::memory_order_relaxed);
  std::scoped_lock lock(c.mutex);
  for (SiteState& s : c.sites) {
    s.calls.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
    s.always = false;
    s.targets.clear();
  }
}

std::int64_t fired(Site site) {
  return config()
      .sites[static_cast<std::size_t>(site)]
      .fired.load(std::memory_order_relaxed);
}

std::int64_t calls(Site site) {
  return config()
      .sites[static_cast<std::size_t>(site)]
      .calls.load(std::memory_order_relaxed);
}

const char* site_name(Site site) {
  return kSiteNames[static_cast<std::size_t>(site)];
}

}  // namespace ind::robust::fault
