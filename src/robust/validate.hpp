// Input validation front door.
//
// Degenerate inputs (floating nodes, non-positive element values, over-unity
// mutual coupling, zero-width or overlapping wires) are the usual origin of
// the singular MNA systems the fallback ladder then has to rescue; these
// passes catch them at the boundary — spice_import, layout_io, and the PEEC
// model builder all run them — and return structured issues with source
// locations instead of letting the solver discover the problem as a
// singular pivot three layers down.
//
// The implementations compile into the owning layer (validate_netlist.cpp
// into ind_circuit, validate_layout.cpp into ind_geom); this header only
// forward-declares the validated types so it stays dependency-free.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ind::circuit {
class Netlist;
}
namespace ind::geom {
class Layout;
}

namespace ind::robust {

enum class Severity { Warning, Error };

struct ValidationIssue {
  Severity severity = Severity::Error;
  /// Stable machine-readable code, e.g. "floating-node", "k-over-unity",
  /// "zero-width-wire", "layout-short".
  std::string code;
  /// Human-readable description naming the offending elements.
  std::string message;
  /// Source location: "node 3", "inductors 2 and 5", "segment 7", ...
  std::string location;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  std::size_t error_count() const {
    std::size_t n = 0;
    for (const ValidationIssue& i : issues)
      if (i.severity == Severity::Error) ++n;
    return n;
  }
  std::size_t warning_count() const {
    return issues.size() - error_count();
  }
  bool has_errors() const { return error_count() > 0; }

  void add(Severity severity, std::string code, std::string message,
           std::string location) {
    issues.push_back(
        {severity, std::move(code), std::move(message), std::move(location)});
  }

  /// One line per issue: "error [code] message (location)".
  std::string summary() const {
    std::string out;
    for (const ValidationIssue& i : issues) {
      if (!out.empty()) out += '\n';
      out += i.severity == Severity::Error ? "error" : "warning";
      out += " [" + i.code + "] " + i.message;
      if (!i.location.empty()) out += " (" + i.location + ")";
    }
    return out;
  }
};

/// Electrical sanity of a netlist: floating / capacitor-only nodes,
/// non-positive R/L/C values, mutual coupling |k| > 1.
ValidationReport validate(const circuit::Netlist& netlist);

/// Geometric sanity of a layout: zero-width or zero-length wires,
/// degenerate vias, cross-net same-layer metal overlap (shorts).
ValidationReport validate(const geom::Layout& layout);

}  // namespace ind::robust
