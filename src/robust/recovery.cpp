#include "robust/recovery.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"

namespace ind::robust {
namespace {

template <typename T>
la::LuFactor<T> guarded_dense_factor(const la::DenseMatrix<T>& a,
                                     SolveReport& report,
                                     std::string_view where) {
  const std::size_t n = a.rows();
  const int rungs = 2 + static_cast<int>(kGminLevels.size());
  for (int attempt = 0; attempt < rungs; ++attempt) {
    const double gmin =
        attempt >= 2 ? kGminLevels[static_cast<std::size_t>(attempt - 2)] : 0.0;
    if (attempt == 1)
      report.add_action(RecoveryKind::Retry, 0, 0.0, std::string(where));
    else if (attempt >= 2)
      report.add_action(RecoveryKind::GminRegularization, attempt - 1, gmin,
                        std::string(where));
    if (fault::fire(fault::Site::DenseLuPivot)) {
      report.detail = std::string(where) + ": injected singular dense pivot";
      continue;
    }
    la::DenseMatrix<T> work = a;
    for (std::size_t i = 0; i < n; ++i) work(i, i) += gmin;
    try {
      la::LuFactor<T> factor(std::move(work));
      report.pivot_growth =
          std::max(report.pivot_growth, factor.pivot_growth());
      report.condition_estimate =
          std::max(report.condition_estimate, factor.condition_estimate());
      return factor;
    } catch (const la::SingularMatrixError& e) {
      report.detail = std::string(where) + ": " + e.what();
    }
  }
  report.raise_status(SolveStatus::Failed);
  return la::LuFactor<T>{};
}

template <typename T>
std::vector<T> mixed_solve_impl(const la::DenseMatrix<T>& a,
                                const std::vector<T>& b, SolveReport& report,
                                std::string_view where,
                                const la::RefineOptions& opts) {
  auto& metrics = runtime::MetricsRegistry::instance();
  double guard_cond = 0.0;
  if (fault::fire(fault::Site::DenseLuPivot)) {
    report.detail = std::string(where) + ": injected singular dense pivot";
  } else {
    try {
      const la::MixedLu<T> mixed(a);
      const double cond = mixed.condition_estimate();
      guard_cond = cond;
      report.pivot_growth = std::max(report.pivot_growth, mixed.pivot_growth());
      report.condition_estimate = std::max(report.condition_estimate, cond);
      if (cond <= opts.max_condition &&
          mixed.pivot_growth() <= opts.max_pivot_growth) {
        std::vector<T> x;
        const la::RefineResult rr = mixed.solve(a, b, x, opts);
        metrics.add_count("solve.mixed.refine_iterations", rr.iterations);
        report.residual_norm = rr.residual;
        if (rr.converged) {
          metrics.add_count("solve.mixed.accepted", 1);
          return x;
        }
        report.detail = std::string(where) +
                        ": f32 refinement stalled at relative residual " +
                        std::to_string(rr.residual);
      } else {
        report.detail = std::string(where) +
                        ": f32 factor guard tripped (cond " +
                        std::to_string(cond) + ", growth " +
                        std::to_string(mixed.pivot_growth()) + ")";
      }
    } catch (const la::SingularMatrixError& e) {
      report.detail = std::string(where) + ": " + e.what();
    }
  }
  // Deterministic fallback: the full-double ladder, whose first rung factors
  // `a` unmodified — bitwise-identical to never having tried f32.
  report.add_action(RecoveryKind::MixedPrecisionFallback, 0, guard_cond,
                    std::string(where));
  metrics.add_count("solve.mixed.fallbacks", 1);
  la::LuFactor<T> factor = guarded_dense_factor(a, report, where);
  if (factor.size() == 0) return {};
  return factor.solve(b);
}

la::CscMatrix with_diagonal_shift(const la::CscMatrix& a, double gmin) {
  la::TripletMatrix t(a.rows(), a.cols());
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_idx();
  const auto& av = a.values();
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t p = cp[j]; p < cp[j + 1]; ++p) t.add(ri[p], j, av[p]);
  for (std::size_t i = 0; i < a.rows(); ++i) t.add(i, i, gmin);
  return la::CscMatrix(t);
}

}  // namespace

la::LU factor_dense_with_recovery(const la::Matrix& a, SolveReport& report,
                                  std::string_view where) {
  return guarded_dense_factor(a, report, where);
}

la::CLU factor_dense_with_recovery(const la::CMatrix& a, SolveReport& report,
                                   std::string_view where) {
  return guarded_dense_factor(a, report, where);
}

la::Vector solve_dense_mixed_with_recovery(const la::Matrix& a,
                                           const la::Vector& b,
                                           SolveReport& report,
                                           std::string_view where,
                                           const la::RefineOptions& opts) {
  return mixed_solve_impl(a, b, report, where, opts);
}

la::CVector solve_dense_mixed_with_recovery(const la::CMatrix& a,
                                            const la::CVector& b,
                                            SolveReport& report,
                                            std::string_view where,
                                            const la::RefineOptions& opts) {
  return mixed_solve_impl(a, b, report, where, opts);
}

GuardedSparseFactor factor_sparse_with_recovery(const la::CscMatrix& a,
                                                SolveReport& report,
                                                std::string_view where,
                                                std::size_t
                                                    dense_fallback_limit) {
  GuardedSparseFactor out;
  auto try_sparse = [&](const la::CscMatrix& m) {
    if (fault::fire(fault::Site::SparseLuPivot)) {
      report.detail = std::string(where) + ": injected singular sparse pivot";
      return false;
    }
    try {
      out.sparse = std::make_unique<la::SparseLu>(m);
      return true;
    } catch (const la::SingularMatrixError& e) {
      report.detail = std::string(where) + ": " + e.what();
      return false;
    }
  };

  if (try_sparse(a)) return out;

  report.add_action(RecoveryKind::Retry, 0, 0.0, std::string(where));
  if (try_sparse(a)) return out;

  if (a.rows() <= dense_fallback_limit) {
    report.add_action(RecoveryKind::DenseFallback, 1,
                      static_cast<double>(a.rows()), std::string(where));
    try {
      la::LU factor(a.to_dense());
      report.pivot_growth =
          std::max(report.pivot_growth, factor.pivot_growth());
      report.condition_estimate =
          std::max(report.condition_estimate, factor.condition_estimate());
      out.dense = std::make_unique<la::LU>(std::move(factor));
      return out;
    } catch (const la::SingularMatrixError& e) {
      report.detail = std::string(where) + ": " + e.what();
    }
  }

  for (std::size_t k = 0; k < kGminLevels.size(); ++k) {
    const double gmin = kGminLevels[k];
    report.add_action(RecoveryKind::GminRegularization,
                      static_cast<int>(k) + 2, gmin, std::string(where));
    if (try_sparse(with_diagonal_shift(a, gmin))) return out;
  }

  report.raise_status(SolveStatus::Failed);
  return out;
}

void refactor_sparse_with_recovery(GuardedSparseFactor& f,
                                   const la::CscMatrix& a, SolveReport& report,
                                   std::string_view where,
                                   std::size_t dense_fallback_limit) {
  const char* off = std::getenv("IND_SPARSE_NO_REFACTOR");
  if (!f.sparse || (off && off[0] == '1')) {
    f = factor_sparse_with_recovery(a, report, where, dense_fallback_limit);
    return;
  }
  auto try_refactor = [&](const la::CscMatrix& m) {
    if (fault::fire(fault::Site::SparseLuPivot)) {
      report.detail = std::string(where) + ": injected singular sparse pivot";
      return false;
    }
    try {
      f.sparse->refactor(m);
      return true;
    } catch (const la::SingularMatrixError& e) {
      report.detail = std::string(where) + ": " + e.what();
      return false;
    }
  };

  if (try_refactor(a)) return;

  report.add_action(RecoveryKind::Retry, 0, 0.0, std::string(where));
  if (try_refactor(a)) return;

  if (a.rows() <= dense_fallback_limit) {
    report.add_action(RecoveryKind::DenseFallback, 1,
                      static_cast<double>(a.rows()), std::string(where));
    try {
      la::LU factor(a.to_dense());
      report.pivot_growth =
          std::max(report.pivot_growth, factor.pivot_growth());
      report.condition_estimate =
          std::max(report.condition_estimate, factor.condition_estimate());
      f.sparse.reset();
      f.dense = std::make_unique<la::LU>(std::move(factor));
      return;
    } catch (const la::SingularMatrixError& e) {
      report.detail = std::string(where) + ": " + e.what();
    }
  }

  for (std::size_t k = 0; k < kGminLevels.size(); ++k) {
    const double gmin = kGminLevels[k];
    report.add_action(RecoveryKind::GminRegularization,
                      static_cast<int>(k) + 2, gmin, std::string(where));
    if (try_refactor(with_diagonal_shift(a, gmin))) return;
  }

  f.sparse.reset();
  f.dense.reset();
  report.raise_status(SolveStatus::Failed);
}

bool all_finite(const la::Vector& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

bool all_finite(const la::CVector& v) {
  for (const la::Complex& x : v)
    if (!std::isfinite(x.real()) || !std::isfinite(x.imag())) return false;
  return true;
}

}  // namespace ind::robust
