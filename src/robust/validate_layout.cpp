#include <cstdio>
#include <string>

#include "geom/layout.hpp"
#include "robust/validate.hpp"

namespace ind::robust {
namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string seg_location(std::size_t index, const geom::Segment& s) {
  return "segment " + std::to_string(index) + " on layer " +
         std::to_string(s.layer);
}

}  // namespace

ValidationReport validate(const geom::Layout& layout) {
  ValidationReport report;

  // Degenerate experiments. No segments at all is an error (nothing to
  // extract); missing drivers/receivers are warnings here because bare-metal
  // extraction runs are legitimate — core::analyze, whose flows all need a
  // transition and a measurement, refuses them outright.
  if (layout.segments().empty())
    report.add(Severity::Error, "empty-layout", "layout has no segments",
               "layout");
  if (layout.drivers().empty())
    report.add(Severity::Warning, "no-drivers",
               "layout has no drivers; no transition to simulate", "layout");
  if (layout.receivers().empty())
    report.add(Severity::Warning, "no-receivers",
               "layout has no receiver pins; nothing to measure", "layout");

  const auto& segs = layout.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const geom::Segment& s = segs[i];
    if (s.width <= 0.0)
      report.add(Severity::Error, "zero-width-wire",
                 "wire has non-positive width " + num(s.width) + " m",
                 seg_location(i, s));
    if (s.length() <= 0.0)
      report.add(Severity::Error, "zero-length-wire",
                 "wire start and end coincide", seg_location(i, s));
    if (s.a.x != s.b.x && s.a.y != s.b.y)
      report.add(Severity::Error, "non-manhattan-wire",
                 "wire is not axis-aligned", seg_location(i, s));
  }

  for (std::size_t v = 0; v < layout.vias().size(); ++v) {
    const geom::Via& via = layout.vias()[v];
    if (via.lower_layer >= via.upper_layer)
      report.add(Severity::Error, "degenerate-via",
                 "via layers are not ordered (lower " +
                     std::to_string(via.lower_layer) + ", upper " +
                     std::to_string(via.upper_layer) + ")",
                 "via " + std::to_string(v));
  }

  // Cross-net metal overlap on one layer: electrically meaningless input
  // that would otherwise surface as silently merged or floating nodes.
  for (const auto& [i, j] : geom::find_layout_shorts(layout)) {
    report.add(Severity::Error, "layout-short",
               "cross-net metal overlap between segments " +
                   std::to_string(i) + " and " + std::to_string(j),
               "layer " + std::to_string(segs[i].layer));
  }

  return report;
}

}  // namespace ind::robust
