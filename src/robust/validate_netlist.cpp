#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "robust/validate.hpp"

namespace ind::robust {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

ValidationReport validate(const Netlist& nl) {
  ValidationReport report;
  const std::size_t n = nl.num_nodes();

  // Count conductive (DC-path) and capacitive touches per node.
  std::vector<int> conductive(n, 0), capacitive(n, 0);
  auto touch = [&](std::vector<int>& count, NodeId node) {
    if (node >= 0 && static_cast<std::size_t>(node) < n)
      ++count[static_cast<std::size_t>(node)];
  };
  for (const auto& r : nl.resistors()) {
    touch(conductive, r.a);
    touch(conductive, r.b);
    if (r.ohms <= 0.0)
      report.add(Severity::Error, "nonpositive-resistance",
                 "resistor with R = " + num(r.ohms) + " ohm",
                 "nodes " + std::to_string(r.a) + "/" + std::to_string(r.b));
  }
  for (const auto& l : nl.inductors()) {
    touch(conductive, l.a);
    touch(conductive, l.b);
    if (l.henries <= 0.0)
      report.add(Severity::Error, "nonpositive-inductance",
                 "inductor with L = " + num(l.henries) + " H",
                 "nodes " + std::to_string(l.a) + "/" + std::to_string(l.b));
  }
  for (const auto& v : nl.vsources()) {
    touch(conductive, v.a);
    touch(conductive, v.b);
  }
  for (const auto& d : nl.drivers()) {
    touch(conductive, d.out);
    touch(conductive, d.vdd);
    touch(conductive, d.gnd);
  }
  for (const auto& c : nl.capacitors()) {
    touch(capacitive, c.a);
    touch(capacitive, c.b);
    if (c.farads < 0.0)
      report.add(Severity::Error, "negative-capacitance",
                 "capacitor with C = " + num(c.farads) + " F",
                 "nodes " + std::to_string(c.a) + "/" + std::to_string(c.b));
  }
  // Current sources need a return path but do not create one.
  std::vector<int> injected(n, 0);
  for (const auto& i : nl.isources()) {
    touch(injected, i.a);
    touch(injected, i.b);
  }

  for (std::size_t k = 0; k < n; ++k) {
    if (conductive[k] == 0 && capacitive[k] == 0 && injected[k] == 0) {
      report.add(Severity::Error, "floating-node",
                 "node is not connected to any element",
                 "node " + std::to_string(k));
    } else if (conductive[k] == 0 && injected[k] > 0) {
      report.add(Severity::Error, "no-dc-path",
                 "current injection into a node with no conductive path",
                 "node " + std::to_string(k));
    } else if (conductive[k] == 0) {
      report.add(Severity::Warning, "no-dc-path",
                 "node reaches the rest of the circuit only through "
                 "capacitors (DC operating point relies on gmin)",
                 "node " + std::to_string(k));
    }
  }

  // Mutual coupling must satisfy |M| <= sqrt(Li Lj)  (|k| <= 1); violating
  // pairs make the inductance block indefinite (Section 4's stability trap).
  for (const auto& m : nl.mutuals()) {
    const double li = nl.inductors()[m.i].henries;
    const double lj = nl.inductors()[m.j].henries;
    const double bound = std::sqrt(li * lj);
    if (bound <= 0.0 || !(std::abs(m.henries) <= bound * (1.0 + 1e-9)))
      report.add(
          Severity::Error, "k-over-unity",
          "mutual inductance M = " + num(m.henries) + " H exceeds sqrt(Li*Lj)"
          " = " + num(bound) + " H (|k| = " +
              num(bound > 0.0 ? std::abs(m.henries) / bound
                              : std::numeric_limits<double>::infinity()) +
              ")",
          "inductors " + std::to_string(m.i) + " and " + std::to_string(m.j));
  }

  return report;
}

}  // namespace ind::robust
