// Structured numerical-robustness diagnostics.
//
// Every guarded solver entry point (dense/sparse factorisation, transient,
// AC, PRIMA, ladder fit) fills a SolveReport instead of aborting on the
// first singular pivot or non-finite intermediate: the report carries the
// final status, a condition estimate of the factored operator, the recovery
// actions the fallback ladder took, and — via record() — mirrors all of it
// into the MetricsRegistry so robustness events land in BENCH_<name>.json
// next to the timing data.
//
// Every fallback is deterministic (fixed escalation schedule, no RNG), so
// the runtime's bitwise-determinism oracles keep holding: a recovered run on
// a well-posed problem reproduces the unperturbed result exactly when the
// first ladder rung (a plain retry) clears the fault.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ind::robust {

/// Outcome of a guarded solve, ordered by severity (merge keeps the worst).
enum class SolveStatus {
  Ok,            ///< clean solve, no fallback action taken
  Recovered,     ///< succeeded after one or more fallback actions
  NonConverged,  ///< iteration finished without meeting its tolerance
  Failed,        ///< every ladder rung exhausted; result is unusable
};

/// What a fallback-ladder rung did.
enum class RecoveryKind {
  Retry,                ///< re-ran the failing operation unchanged
  GminRegularization,   ///< added g to every system diagonal and refactored
  DenseFallback,        ///< sparse LU failed; fell back to dense LU
  DtHalving,            ///< re-integrated a transient step at reduced dt
  KrylovDeflation,      ///< dropped a non-finite Krylov block column
  DampedRestart,        ///< Levenberg-Marquardt damping of a Newton step
  ArtifactRecompute,    ///< corrupt cached artifact discarded; recomputed
  BudgetExceeded,       ///< resource budget tripped; degraded or truncated
  GmresRestart,         ///< stagnated GMRES re-run with a larger Krylov space
  MixedPrecisionFallback,  ///< f32 refinement guarded out / stalled; full
                           ///< double refactor through the dense ladder
};

/// How a sandboxed serve worker process died (or failed), classified from
/// its waitpid status by serve::classify_worker_exit. Part of the recovery
/// taxonomy: the supervisor turns these into structured replies (retry on a
/// sibling, quarantine, WorkerCrashed) instead of letting a tenant's crash
/// take down the server.
enum class CrashKind {
  None = 0,   ///< worker is fine (flight answered normally)
  CleanError,  ///< worker stayed alive and answered a structured error
  Signal,      ///< died on an uncaught signal (SIGSEGV, SIGABRT, SIGBUS, ...)
  OomKill,     ///< SIGKILL — the kernel OOM killer's signature
  RlimitCpu,   ///< SIGXCPU — per-request RLIMIT_CPU sandbox trip
  RlimitMem,   ///< worker hit std::bad_alloc under RLIMIT_AS and self-exited
  ExitError,   ///< exited with an unclassified non-zero (or torn-pipe zero)
};

const char* to_string(SolveStatus status);
const char* to_string(RecoveryKind kind);
const char* to_string(CrashKind kind);

/// One fallback action, in the order taken.
struct RecoveryAction {
  RecoveryKind kind = RecoveryKind::Retry;
  int attempt = 0;         ///< 0-based escalation rung within its ladder
  double magnitude = 0.0;  ///< gmin siemens, substep dt, ... (0 if n/a)
  std::string where;       ///< site, e.g. "transient step 12"
};

/// Structured result of a guarded numerical operation.
struct SolveReport {
  SolveStatus status = SolveStatus::Ok;
  /// 1-norm condition estimate of the (last successfully) factored matrix
  /// (LU pivot growth x Hager estimator); 0 = not computed.
  double condition_estimate = 0.0;
  /// max |U| / max |A| of the factorisation; 0 = not computed.
  double pivot_growth = 0.0;
  /// Relative residual of the final solve; negative = not computed.
  double residual_norm = -1.0;
  /// Fallback actions in the order they were taken.
  std::vector<RecoveryAction> actions;
  /// Human-readable failure / recovery detail.
  std::string detail;

  bool ok() const { return status == SolveStatus::Ok; }
  /// True when the result can be consumed (possibly after recovery).
  bool usable() const {
    return status == SolveStatus::Ok || status == SolveStatus::Recovered;
  }
  bool failed() const { return status == SolveStatus::Failed; }

  /// Raises the status to at least `s` (statuses only ever escalate).
  void raise_status(SolveStatus s);

  /// Appends an action and escalates the status to at least Recovered.
  void add_action(RecoveryKind kind, int attempt, double magnitude,
                  std::string where);

  /// Absorbs a sub-operation's report: worst status wins, actions append,
  /// condition/pivot-growth keep the maximum, residual the last computed.
  void merge(const SolveReport& sub);

  /// Publishes the report into the MetricsRegistry under
  ///   robust.<site>.solves / .recovered / .nonconverged / .failed,
  ///   robust.action.<kind>  (one count per action taken), and
  ///   robust.<site>.max_log10_cond (high-water mark).
  /// BENCH_<name>.json picks these up with every other counter.
  void record(std::string_view site) const;

  /// Compact JSON object (status, cond, growth, residual, action counts).
  std::string to_json() const;
};

}  // namespace ind::robust
