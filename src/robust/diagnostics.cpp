#include "robust/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "runtime/metrics.hpp"

namespace ind::robust {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Ok: return "ok";
    case SolveStatus::Recovered: return "recovered";
    case SolveStatus::NonConverged: return "nonconverged";
    case SolveStatus::Failed: return "failed";
  }
  return "unknown";
}

const char* to_string(RecoveryKind kind) {
  switch (kind) {
    case RecoveryKind::Retry: return "retry";
    case RecoveryKind::GminRegularization: return "gmin";
    case RecoveryKind::DenseFallback: return "dense_fallback";
    case RecoveryKind::DtHalving: return "dt_halve";
    case RecoveryKind::KrylovDeflation: return "krylov_deflate";
    case RecoveryKind::DampedRestart: return "damped_restart";
    case RecoveryKind::ArtifactRecompute: return "artifact_recompute";
    case RecoveryKind::BudgetExceeded: return "budget_exceeded";
    case RecoveryKind::GmresRestart: return "gmres_restart";
    case RecoveryKind::MixedPrecisionFallback: return "mixed_precision_fallback";
  }
  return "unknown";
}

const char* to_string(CrashKind kind) {
  switch (kind) {
    case CrashKind::None: return "none";
    case CrashKind::CleanError: return "clean_error";
    case CrashKind::Signal: return "signal";
    case CrashKind::OomKill: return "oom_kill";
    case CrashKind::RlimitCpu: return "rlimit_cpu";
    case CrashKind::RlimitMem: return "rlimit_mem";
    case CrashKind::ExitError: return "exit_error";
  }
  return "unknown";
}

void SolveReport::raise_status(SolveStatus s) {
  if (static_cast<int>(s) > static_cast<int>(status)) status = s;
}

void SolveReport::add_action(RecoveryKind kind, int attempt, double magnitude,
                             std::string where) {
  actions.push_back({kind, attempt, magnitude, std::move(where)});
  raise_status(SolveStatus::Recovered);
}

void SolveReport::merge(const SolveReport& sub) {
  raise_status(sub.status);
  actions.insert(actions.end(), sub.actions.begin(), sub.actions.end());
  condition_estimate = std::max(condition_estimate, sub.condition_estimate);
  pivot_growth = std::max(pivot_growth, sub.pivot_growth);
  if (sub.residual_norm >= 0.0) residual_norm = sub.residual_norm;
  if (!sub.detail.empty()) {
    if (!detail.empty()) detail += "; ";
    detail += sub.detail;
  }
}

void SolveReport::record(std::string_view site) const {
  auto& reg = runtime::MetricsRegistry::instance();
  const std::string prefix = "robust." + std::string(site);
  reg.add_count(prefix + ".solves", 1);
  if (status != SolveStatus::Ok)
    reg.add_count(prefix + "." + to_string(status), 1);
  for (const RecoveryAction& a : actions)
    reg.add_count(std::string("robust.action.") + to_string(a.kind), 1);
  if (condition_estimate > 0.0 && std::isfinite(condition_estimate))
    reg.max_count(prefix + ".max_log10_cond",
                  static_cast<std::int64_t>(
                      std::lround(std::log10(condition_estimate))));
}

std::string SolveReport::to_json() const {
  std::ostringstream os;
  os << "{\"status\": \"" << to_string(status) << '"';
  if (condition_estimate > 0.0)
    os << ", \"condition_estimate\": " << condition_estimate;
  if (pivot_growth > 0.0) os << ", \"pivot_growth\": " << pivot_growth;
  if (residual_norm >= 0.0) os << ", \"residual_norm\": " << residual_norm;
  if (!actions.empty()) {
    std::map<std::string, int> counts;
    for (const RecoveryAction& a : actions) ++counts[to_string(a.kind)];
    os << ", \"actions\": {";
    bool first = true;
    for (const auto& [name, n] : counts) {
      if (!first) os << ", ";
      first = false;
      os << '"' << name << "\": " << n;
    }
    os << '}';
  }
  os << '}';
  return os.str();
}

}  // namespace ind::robust
