// Deterministic fault injection for exercising the numerical-recovery paths.
//
// Modelled on the runtime's IND_THREADS override: the IND_FAULT_INJECT
// environment variable selects faults to force at chosen call indices, e.g.
//
//   IND_FAULT_INJECT="dense_lu_pivot@0;transient_step@5,6;krylov_block@1"
//
// Entries are ';'-separated `site@indices`, indices are ','-separated
// 0-based call counts (per site), `a-b` ranges, or `*` (every call). Each
// guarded call site asks fire(Site) exactly once per logical operation; the
// per-site counter advances only while injection is active, so the indices
// are deterministic and a retry rung observes the *next* index — which is
// how a single-index injection recovers bitwise-identically to the
// unperturbed run.
//
// Sites live in the recovery wrappers and solver engines, never inside the
// raw la:: kernels, so un-guarded low-level callers are not destabilised.
//
// When the variable is unset the entire hook is one relaxed atomic load;
// compiling with -DIND_DISABLE_FAULT_INJECTION removes it entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ind::robust::fault {

enum class Site {
  DenseLuPivot,    ///< dense (real or complex) factorisation reports singular
  SparseLuPivot,   ///< sparse factorisation reports singular
  TransientStep,   ///< a transient step solve produces non-finite state
  KrylovBlock,     ///< a PRIMA Krylov block column comes back non-finite
  LadderJacobian,  ///< the ladder-fit Newton Jacobian appears singular
  StoreRead,       ///< a cached artifact read is treated as corrupt
  BudgetCheck,     ///< a govern::checkpoint() behaves as if the budget tripped
  ServeRead,       ///< a serve request frame is treated as malformed
  StoreWrite,      ///< an artifact commit is torn mid-write (partial .tmp left)
  ServeSend,       ///< a serve response send fails as if the peer vanished
  GmresIter,       ///< a GMRES iteration is treated as a numerical breakdown
  WorkerExec,      ///< a dispatched serve worker is killed mid-flight
};
inline constexpr int kSiteCount = 12;

namespace detail {
extern std::atomic<bool> g_active;
bool fire_slow(Site site);
}  // namespace detail

/// True while any injection spec (env or configure()) is active.
inline bool enabled() {
#ifdef IND_DISABLE_FAULT_INJECTION
  return false;
#else
  return detail::g_active.load(std::memory_order_relaxed);
#endif
}

/// Advances the per-site call counter and returns true when this call index
/// was selected for injection. No-op (and no counter advance) when inactive.
inline bool fire(Site site) {
#ifdef IND_DISABLE_FAULT_INJECTION
  (void)site;
  return false;
#else
  return detail::g_active.load(std::memory_order_relaxed) &&
         detail::fire_slow(site);
#endif
}

/// Programmatic override (tests): installs `spec` in the IND_FAULT_INJECT
/// grammar and zeroes every per-site counter. An empty spec deactivates.
/// Throws std::invalid_argument on a malformed spec.
void configure(const std::string& spec);

/// Deactivates injection and zeroes the counters.
void clear();

/// Number of times `site` actually fired since the last configure()/clear().
std::int64_t fired(Site site);

/// Call count observed at `site` since the last configure()/clear().
std::int64_t calls(Site site);

const char* site_name(Site site);

}  // namespace ind::robust::fault
