#include "sparsify/shell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "extract/partial_inductance.hpp"

namespace ind::sparsify {
namespace {

// Mutual of the pair evaluated at an overridden GMD distance.
double mutual_at_distance(const geom::Segment& s, const geom::Segment& t,
                          double d) {
  const auto g = geom::parallel_geometry(s, t);
  if (!g) return 0.0;
  const double ds = s.axis() == geom::Axis::X ? s.b.x - s.a.x : s.b.y - s.a.y;
  const double dt = t.axis() == geom::Axis::X ? t.b.x - t.a.x : t.b.y - t.a.y;
  const double sign = (ds >= 0) == (dt >= 0) ? 1.0 : -1.0;
  return sign * extract::mutual_partial_inductance(g->length_i, g->length_j,
                                                   g->axial_gap, d);
}

double pair_distance(const geom::Segment& s, const geom::Segment& t) {
  const auto g = geom::parallel_geometry(s, t);
  if (!g) return 1e300;
  const double clamp = 0.5 * (extract::self_gmd(s.width, s.thickness) +
                              extract::self_gmd(t.width, t.thickness));
  return std::max(g->center_distance(), clamp);
}

}  // namespace

SparsifiedL shell(const std::vector<geom::Segment>& segments, double radius) {
  if (radius <= 0.0) throw std::invalid_argument("shell: radius <= 0");
  const std::size_t n = segments.size();
  SparsifiedL out;
  out.diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Segment& s = segments[i];
    const double gmd = extract::self_gmd(s.width, s.thickness);
    const double self =
        extract::self_partial_inductance(s.length(), s.width, s.thickness);
    // Diagonal shift: subtract the coupling to the segment's own return
    // shell (evaluated with the same length decomposition as the self term).
    const double at_shell = extract::mutual_partial_inductance(
        s.length(), s.length(), -s.length(), std::max(radius, gmd));
    out.diag[i] = std::max(self - at_shell, 0.05 * self);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = pair_distance(segments[i], segments[j]);
      if (d >= radius) continue;
      const double m = mutual_at_distance(segments[i], segments[j], d) -
                       mutual_at_distance(segments[i], segments[j], radius);
      if (m != 0.0) out.terms.push_back({i, j, m});
    }
  }
  return out;
}

double suggest_shell_radius(const std::vector<geom::Segment>& segments,
                            const la::Matrix& partial_l, double tolerance) {
  if (tolerance <= 0.0)
    throw std::invalid_argument("suggest_shell_radius: tolerance <= 0");
  const std::size_t n = segments.size();
  // Candidate radii: geometric sweep over the span of observed distances.
  double d_min = 1e300, d_max = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = pair_distance(segments[i], segments[j]);
      if (d >= 1e300) continue;
      d_min = std::min(d_min, d);
      d_max = std::max(d_max, d);
    }
  if (d_max <= 0.0) return 1.0;  // no parallel pairs: any radius works

  for (double r = std::max(d_min, 1e-9); r < 2.0 * d_max; r *= 1.5) {
    // Worst row: fraction of |coupling| dropped beyond r relative to self.
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double dropped = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || partial_l(i, j) == 0.0) continue;
        if (pair_distance(segments[i], segments[j]) >= r)
          dropped += std::abs(partial_l(i, j));
      }
      worst = std::max(worst, dropped / partial_l(i, i));
    }
    if (worst <= tolerance) return r;
  }
  return 2.0 * d_max;
}

}  // namespace ind::sparsify
