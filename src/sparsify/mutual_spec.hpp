// Common result type of every Section-4 sparsification scheme.
//
// A scheme consumes the dense partial-inductance matrix (plus geometry where
// needed) and produces either a sparse L representation (diagonal + kept
// mutual terms, possibly with shifted values) or a sparse K = L^-1
// representation. `apply_to_netlist` stamps the result onto a PEEC netlist
// that was built with MutualPolicy::None.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.hpp"
#include "la/dense_matrix.hpp"

namespace ind::sparsify {

struct MutualTerm {
  std::size_t i = 0, j = 0;  ///< segment indices, i < j
  double value = 0.0;        ///< henries
};

struct KEntry {
  std::size_t i = 0, j = 0;  ///< segment indices, i <= j (diagonal included)
  double value = 0.0;        ///< 1/henries
};

struct SparsifiedL {
  la::Vector diag;                ///< per-segment self inductance (L form)
  std::vector<MutualTerm> terms;  ///< kept off-diagonal terms (L form)

  bool use_kmatrix = false;
  std::vector<KEntry> k_entries;  ///< K form (when use_kmatrix)

  std::size_t size() const { return diag.size(); }

  /// Number of retained off-diagonal coupling terms.
  std::size_t kept_mutual_count() const;

  /// Fraction of the n(n-1)/2 off-diagonal pairs retained.
  double density() const;

  /// Dense reconstruction: the effective L matrix in L form, or the sparse
  /// K matrix in K form (diagnostics / stability analysis).
  la::Matrix to_dense() const;
};

/// Stamps the sparsified inductance onto `netlist`. `seg_to_inductor` maps
/// segment index -> inductor index (from the PEEC builder). Segments whose
/// map entry is out of range are skipped.
void apply_to_netlist(const SparsifiedL& spec, circuit::Netlist& netlist,
                      const std::vector<std::size_t>& seg_to_inductor);

}  // namespace ind::sparsify
