// Shell (shift-truncate) sparsification [13][14] (Section 4): "associate
// each segment with a distributed current return path out to a shell of some
// radius. Segments with spacing more than this radius are assumed to have no
// inductive coupling. The inductance values of the segments within the
// radius are shifted to account for those entries that were dropped."
//
// Implementation: every entry is re-evaluated with the shifted kernel
//   M'(d) = M(d) - M(r0)      for d < r0,   0 otherwise,
// where M(x) is the Grover mutual of the same segment pair at GMD distance x
// (the diagonal shifts too, via the self-GMD). The shifted kernel vanishes
// continuously at the shell and — being a radially decreasing positive
// kernel difference — preserves positive definiteness in practice where raw
// truncation fails.
#pragma once

#include <vector>

#include "geom/segment.hpp"
#include "la/dense_matrix.hpp"
#include "sparsify/mutual_spec.hpp"

namespace ind::sparsify {

/// `radius` is the shell radius r0 (metres).
SparsifiedL shell(const std::vector<geom::Segment>& segments, double radius);

/// Moment-matched shell radius per [14]: the smallest r0 such that the
/// dropped coupling energy of the densest row falls below `tolerance` of the
/// row's self inductance. Exposed so benches can sweep it.
double suggest_shell_radius(const std::vector<geom::Segment>& segments,
                            const la::Matrix& partial_l, double tolerance);

}  // namespace ind::sparsify
