#include "sparsify/stability.hpp"

#include <algorithm>
#include <cmath>

#include "la/cholesky.hpp"
#include "la/eig.hpp"

namespace ind::sparsify {

StabilityReport analyze_matrix(const la::Matrix& m) {
  StabilityReport report;
  report.positive_definite = la::is_positive_definite(m);
  // Bisection on Cholesky success is robust even for clustered spectra,
  // where plain power iteration on the shifted matrix stalls.
  double scale = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    scale = std::max(scale, std::abs(m(i, i)));
  report.min_eigenvalue = la::min_eigenvalue_bisect(m, scale);
  report.max_eigenvalue = la::dominant_eigenvalue(m);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = i + 1; j < m.cols(); ++j)
      if (m(i, j) != 0.0) ++kept;
  report.kept_mutuals = kept;
  const std::size_t n = m.rows();
  report.density = n < 2 ? 0.0
                         : static_cast<double>(kept) /
                               (0.5 * static_cast<double>(n) *
                                static_cast<double>(n - 1));
  return report;
}

StabilityReport analyze_stability(const SparsifiedL& spec) {
  return analyze_matrix(spec.to_dense());
}

}  // namespace ind::sparsify
