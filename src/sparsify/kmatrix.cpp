#include "sparsify/kmatrix.hpp"

#include <cmath>
#include <stdexcept>

#include "la/lu.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::sparsify {

SparsifiedL kmatrix_sparsify(const la::Matrix& partial_l,
                             double threshold_ratio) {
  if (partial_l.rows() != partial_l.cols())
    throw std::invalid_argument("kmatrix_sparsify: square matrix required");
  runtime::ScopedTimer timer("sparsify.kmatrix");
  const std::size_t n = partial_l.rows();

  // K = L^-1, factored once and solved column-by-column in parallel. Each
  // column j is the same solve(e_j) the serial la::inverse performs, and
  // each chunk writes a disjoint set of columns — bitwise-identical to the
  // serial inversion at any thread count.
  const la::LU factor(partial_l);
  la::Matrix k(n, n);
  runtime::parallel_for(n, [&](std::size_t j_begin, std::size_t j_end) {
    std::vector<double> unit(n, 0.0);
    for (std::size_t j = j_begin; j < j_end; ++j) {
      unit[j] = 1.0;
      const auto col = factor.solve(unit);
      unit[j] = 0.0;
      for (std::size_t i = 0; i < n; ++i) k(i, j) = col[i];
    }
  });

  SparsifiedL out;
  out.use_kmatrix = true;
  out.diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.diag[i] = partial_l(i, i);

  // Row-parallel thresholding into per-row buckets, concatenated in row
  // order — the entry list is identical to the serial double loop's.
  std::vector<std::vector<KEntry>> row_entries(n);
  runtime::parallel_for(
      n,
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          auto& row = row_entries[i];
          row.push_back({i, i, k(i, i)});
          for (std::size_t j = i + 1; j < n; ++j) {
            const double kij = 0.5 * (k(i, j) + k(j, i));  // symmetrise
            if (kij == 0.0) continue;
            const double bound =
                threshold_ratio * std::sqrt(k(i, i) * k(j, j));
            if (std::abs(kij) >= bound) row.push_back({i, j, kij});
          }
        }
      },
      {.grain = 8});
  for (auto& row : row_entries)
    out.k_entries.insert(out.k_entries.end(), row.begin(), row.end());

  runtime::MetricsRegistry::instance().add_count(
      "sparsify.kmatrix.nnz", static_cast<std::int64_t>(out.k_entries.size()));
  return out;
}

}  // namespace ind::sparsify
