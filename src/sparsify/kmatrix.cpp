#include "sparsify/kmatrix.hpp"

#include <cmath>
#include <stdexcept>

#include "la/lu.hpp"

namespace ind::sparsify {

SparsifiedL kmatrix_sparsify(const la::Matrix& partial_l,
                             double threshold_ratio) {
  if (partial_l.rows() != partial_l.cols())
    throw std::invalid_argument("kmatrix_sparsify: square matrix required");
  const std::size_t n = partial_l.rows();
  const la::Matrix k = la::inverse(partial_l);

  SparsifiedL out;
  out.use_kmatrix = true;
  out.diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.diag[i] = partial_l(i, i);
  for (std::size_t i = 0; i < n; ++i) {
    out.k_entries.push_back({i, i, k(i, i)});
    for (std::size_t j = i + 1; j < n; ++j) {
      const double kij = 0.5 * (k(i, j) + k(j, i));  // symmetrise round-off
      if (kij == 0.0) continue;
      const double bound = threshold_ratio * std::sqrt(k(i, i) * k(j, j));
      if (std::abs(kij) >= bound) out.k_entries.push_back({i, j, kij});
    }
  }
  return out;
}

}  // namespace ind::sparsify
