#include "sparsify/mutual_spec.hpp"

#include <stdexcept>

namespace ind::sparsify {

std::size_t SparsifiedL::kept_mutual_count() const {
  if (!use_kmatrix) return terms.size();
  std::size_t count = 0;
  for (const KEntry& e : k_entries)
    if (e.i != e.j) ++count;
  return count;
}

double SparsifiedL::density() const {
  const std::size_t n = size();
  if (n < 2) return 0.0;
  return static_cast<double>(kept_mutual_count()) /
         (0.5 * static_cast<double>(n) * static_cast<double>(n - 1));
}

la::Matrix SparsifiedL::to_dense() const {
  const std::size_t n = size();
  la::Matrix m(n, n);
  if (use_kmatrix) {
    for (const KEntry& e : k_entries) {
      m(e.i, e.j) += e.value;
      if (e.i != e.j) m(e.j, e.i) += e.value;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) m(i, i) = diag[i];
    for (const MutualTerm& t : terms) {
      m(t.i, t.j) = t.value;
      m(t.j, t.i) = t.value;
    }
  }
  return m;
}

void apply_to_netlist(const SparsifiedL& spec, circuit::Netlist& netlist,
                      const std::vector<std::size_t>& seg_to_inductor) {
  auto inductor_of = [&](std::size_t seg) {
    if (seg >= seg_to_inductor.size() ||
        seg_to_inductor[seg] >= netlist.inductors().size())
      throw std::invalid_argument("apply_to_netlist: segment has no inductor");
    return seg_to_inductor[seg];
  };

  if (spec.use_kmatrix) {
    circuit::KMatrixGroup group;
    group.inductors.reserve(spec.size());
    std::vector<std::size_t> member_of(spec.size());
    for (std::size_t s = 0; s < spec.size(); ++s) {
      member_of[s] = group.inductors.size();
      group.inductors.push_back(inductor_of(s));
    }
    group.entries.reserve(2 * spec.k_entries.size());
    for (const KEntry& e : spec.k_entries) {
      group.entries.push_back({member_of[e.i], member_of[e.j], e.value});
      if (e.i != e.j)
        group.entries.push_back({member_of[e.j], member_of[e.i], e.value});
    }
    netlist.add_kmatrix_group(std::move(group));
    return;
  }

  for (std::size_t s = 0; s < spec.size(); ++s)
    netlist.set_inductance(inductor_of(s), spec.diag[s]);
  for (const MutualTerm& t : spec.terms)
    netlist.add_mutual(inductor_of(t.i), inductor_of(t.j), t.value);
}

}  // namespace ind::sparsify
