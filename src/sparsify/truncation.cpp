#include "sparsify/truncation.hpp"

#include <cmath>
#include <stdexcept>

namespace ind::sparsify {

SparsifiedL truncate(const la::Matrix& partial_l, double threshold_ratio) {
  if (partial_l.rows() != partial_l.cols())
    throw std::invalid_argument("truncate: square matrix required");
  const std::size_t n = partial_l.rows();
  SparsifiedL out;
  out.diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.diag[i] = partial_l(i, i);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double m = partial_l(i, j);
      if (m == 0.0) continue;
      const double bound =
          threshold_ratio * std::sqrt(partial_l(i, i) * partial_l(j, j));
      if (std::abs(m) >= bound) out.terms.push_back({i, j, m});
    }
  }
  return out;
}

}  // namespace ind::sparsify
