// K-matrix sparsification (Devgan et al. [17], Section 4): "defines a
// circuit matrix K as the inverse of the partial inductance matrix L. K has
// a higher degree of locality and sparsity, similar to the capacitance
// matrix, and hence is amenable to sparsification and simulation. However,
// it requires inversion of the partial inductance matrix, and a special
// circuit simulator that can handle the K matrix."
//
// Our circuit engine provides that special element (KMatrixGroup): the
// inductor branch equations become K (v_a - v_b) = dI/dt.
#pragma once

#include "la/dense_matrix.hpp"
#include "sparsify/mutual_spec.hpp"

namespace ind::sparsify {

/// Inverts the dense partial-inductance matrix and drops K entries with
/// |K_ij| < threshold_ratio * sqrt(K_ii K_jj). Diagonal entries always kept.
SparsifiedL kmatrix_sparsify(const la::Matrix& partial_l,
                             double threshold_ratio);

}  // namespace ind::sparsify
