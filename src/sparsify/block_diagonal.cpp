#include "sparsify/block_diagonal.hpp"

#include <cmath>
#include <stdexcept>

namespace ind::sparsify {

SparsifiedL block_diagonal(const la::Matrix& partial_l,
                           const std::vector<int>& section_of) {
  const std::size_t n = partial_l.rows();
  if (section_of.size() != n)
    throw std::invalid_argument("block_diagonal: section map size mismatch");
  SparsifiedL out;
  out.diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.diag[i] = partial_l(i, i);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (partial_l(i, j) != 0.0 && section_of[i] == section_of[j])
        out.terms.push_back({i, j, partial_l(i, j)});
  return out;
}

std::vector<int> sections_by_strip(const std::vector<geom::Segment>& segments,
                                   geom::Axis axis, double strip_width,
                                   double origin) {
  if (strip_width <= 0.0)
    throw std::invalid_argument("sections_by_strip: strip_width <= 0");
  std::vector<int> out;
  out.reserve(segments.size());
  for (const geom::Segment& s : segments) {
    const geom::Point c = s.center();
    const double coord = axis == geom::Axis::X ? c.x : c.y;
    out.push_back(static_cast<int>(std::floor((coord - origin) / strip_width)));
  }
  return out;
}

}  // namespace ind::sparsify
