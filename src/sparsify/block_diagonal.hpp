// Block-diagonal sparsification (Section 4): partition the topology into
// sections, keep all mutual couplings inside a section, drop all couplings
// between sections. Because each retained block is a principal submatrix of
// the (PSD) full matrix, the sparsified matrix is guaranteed positive
// definite.
#pragma once

#include <vector>

#include "geom/segment.hpp"
#include "la/dense_matrix.hpp"
#include "sparsify/mutual_spec.hpp"

namespace ind::sparsify {

/// Keeps L_ij only when section_of[i] == section_of[j].
SparsifiedL block_diagonal(const la::Matrix& partial_l,
                           const std::vector<int>& section_of);

/// Geometric sectioning: segments are assigned to vertical strips of the
/// given width along `axis` (the paper places "the signal bus of interest in
/// the middle of the corresponding section" — choose `origin` accordingly).
std::vector<int> sections_by_strip(const std::vector<geom::Segment>& segments,
                                   geom::Axis axis, double strip_width,
                                   double origin = 0.0);

}  // namespace ind::sparsify
