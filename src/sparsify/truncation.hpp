// Truncation: "the simplest approach to sparsifying the inductance matrix is
// to discard all mutual coupling terms falling below a certain threshold.
// However, the resulting matrix can become non-positive definite, and the
// sparsified system becomes active and can generate energy." (Section 4)
//
// Provided both as a baseline and as the negative example: the Section-4
// bench demonstrates the loss of positive definiteness that the paper warns
// about.
#pragma once

#include "la/dense_matrix.hpp"
#include "sparsify/mutual_spec.hpp"

namespace ind::sparsify {

/// Drops every mutual term with |L_ij| < threshold_ratio * sqrt(L_ii L_jj).
/// Diagonal entries are kept unchanged.
SparsifiedL truncate(const la::Matrix& partial_l, double threshold_ratio);

}  // namespace ind::sparsify
