// Halo / return-limited sparsification (Shepard et al. [15], Section 4):
// "based on the assumption that the currents of signal lines return within
// the region enclosed by the nearest same-direction power-ground lines."
//
// A segment's halo is the transverse interval bounded by the nearest
// same-direction, axially-overlapping power/ground conductors on each side
// (unbounded on a side with no such conductor). Mutual coupling is retained
// only when each segment lies inside the other's halo.
#pragma once

#include <vector>

#include "geom/segment.hpp"
#include "la/dense_matrix.hpp"
#include "sparsify/mutual_spec.hpp"

namespace ind::sparsify {

struct Halo {
  double lo = -1e300;  ///< transverse lower bound
  double hi = 1e300;   ///< transverse upper bound
  bool contains(double t) const { return t >= lo && t <= hi; }
};

/// The halo of segment `i`: bounded by the nearest same-direction P/G lines
/// (the shield-kind counts as ground) that overlap it axially.
Halo halo_of(const std::vector<geom::Segment>& segments, std::size_t i);

SparsifiedL halo(const std::vector<geom::Segment>& segments,
                 const la::Matrix& partial_l);

}  // namespace ind::sparsify
