#include "sparsify/halo.hpp"

#include <stdexcept>

namespace ind::sparsify {
namespace {

bool is_return_kind(geom::NetKind k) {
  return k == geom::NetKind::Power || k == geom::NetKind::Ground ||
         k == geom::NetKind::Shield;
}

}  // namespace

Halo halo_of(const std::vector<geom::Segment>& segments, std::size_t i) {
  const geom::Segment& s = segments[i];
  Halo h;
  const double t0 = s.transverse();
  for (std::size_t j = 0; j < segments.size(); ++j) {
    if (j == i) continue;
    const geom::Segment& g = segments[j];
    if (!is_return_kind(g.kind)) continue;
    const auto pg = geom::parallel_geometry(s, g);
    if (!pg || pg->overlap <= 0.0) continue;  // must run alongside
    const double t = g.transverse();
    if (t < t0)
      h.lo = std::max(h.lo, t);
    else if (t > t0)
      h.hi = std::min(h.hi, t);
  }
  return h;
}

SparsifiedL halo(const std::vector<geom::Segment>& segments,
                 const la::Matrix& partial_l) {
  const std::size_t n = segments.size();
  if (partial_l.rows() != n)
    throw std::invalid_argument("halo: matrix/segment size mismatch");

  std::vector<Halo> halos(n);
  for (std::size_t i = 0; i < n; ++i) halos[i] = halo_of(segments, i);

  SparsifiedL out;
  out.diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.diag[i] = partial_l(i, i);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (partial_l(i, j) == 0.0) continue;
      // Keep the term only when each segment sits inside the other's halo:
      // the return current of one cannot reach past the bounding P/G lines.
      if (halos[i].contains(segments[j].transverse()) &&
          halos[j].contains(segments[i].transverse()))
        out.terms.push_back({i, j, partial_l(i, j)});
    }
  }
  return out;
}

}  // namespace ind::sparsify
