// Stability / passivity analysis of sparsified inductance matrices.
//
// Section 4's central warning: truncation "can become non-positive definite,
// and the sparsified system becomes active and can generate energy", while
// block-diagonal and shell schemes "guarantee the sparsified matrix to be
// positive definite". This module produces the certificate either way.
#pragma once

#include "la/dense_matrix.hpp"
#include "sparsify/mutual_spec.hpp"

namespace ind::sparsify {

struct StabilityReport {
  bool positive_definite = false;
  double min_eigenvalue = 0.0;  ///< of the effective L (or K) matrix
  double max_eigenvalue = 0.0;
  std::size_t kept_mutuals = 0;
  double density = 0.0;  ///< off-diagonal fill fraction
};

/// Analyses the sparsified matrix: Cholesky PSD certificate plus extreme
/// eigenvalues. For a K-form result the K matrix itself is analysed (its
/// positive definiteness is what passivity requires).
StabilityReport analyze_stability(const SparsifiedL& spec);

/// Same analysis for an arbitrary dense symmetric matrix.
StabilityReport analyze_matrix(const la::Matrix& m);

}  // namespace ind::sparsify
