// Resource governance: run budgets, cooperative cancellation and the
// checkpoint hook the long-running kernels poll.
//
// A RunBudget carries up to three independent limits:
//   * deadline_ms  — wall-clock budget for the whole analyze() call
//                    (IND_DEADLINE_MS). Armed by Governor::begin_run().
//   * mem_bytes    — cap on govern::tracked_bytes(), the live dense/sparse
//                    matrix footprint (IND_MEM_BYTES).
//   * work_units   — cap on abstract work units accumulated by
//                    govern::checkpoint() (IND_WORK_BUDGET). This is the
//                    deterministic budget used by tests and CI.
//
// Determinism contract. checkpoint() is called only at deterministic chunk
// boundaries — per parallel_for chunk with a unit count that is a pure
// function of the chunk's index range, per factorisation column, per
// transient step, per Arnoldi iteration. The work-unit total of a completed
// stage is therefore a pure function of the problem shape, independent of
// thread count or scheduling. A work budget trips iff the stage's running
// total crosses the cap, and since every interleaving accumulates the same
// multiset of unit counts, *whether* a stage trips is identical at any
// thread count. After a trip the partial result is discarded and the ladder
// re-runs the analysis at a cheaper fidelity with the work counter reset
// (Governor::begin_attempt), so the delivered result is bitwise
// reproducible. Deadline and memory budgets use the same machinery but are
// inherently timing-dependent; only IND_WORK_BUDGET carries the bitwise
// guarantee.
//
// Cost when idle: checkpoint() with no budget armed is two relaxed atomic
// increments and three relaxed loads — no clock read, no lock. The
// estimated total overhead is published as govern.overhead_est_ns so the
// perf guard can enforce the <2% contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "runtime/cancel.hpp"

namespace ind::govern {

/// Why a run was cancelled. Values double as runtime::CancelToken causes
/// (None must stay 0 == "not cancelled").
enum class BudgetKind : int {
  None = 0,
  Deadline = 1,  ///< IND_DEADLINE_MS wall-clock deadline passed
  Memory = 2,    ///< tracked matrix bytes exceeded IND_MEM_BYTES
  Work = 3,      ///< deterministic work units exceeded IND_WORK_BUDGET
  External = 4,  ///< cancelled from outside (embedding service shutdown)
};

const char* to_string(BudgetKind kind);

struct RunBudget {
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
  std::uint64_t mem_bytes = 0;    ///< 0 = no memory cap
  std::uint64_t work_units = 0;   ///< 0 = no work budget

  bool any() const { return deadline_ms || mem_bytes || work_units; }

  /// Reads IND_DEADLINE_MS / IND_MEM_BYTES / IND_WORK_BUDGET via the shared
  /// env helpers (invalid values warn and count as unset).
  static RunBudget from_env();
};

/// Thrown by instrumented kernels when the governor cancels mid-stage.
/// core::analyze catches it at the ladder level and retries at a cheaper
/// fidelity; it escapes an analyze() call only for deadline/external trips
/// (retrying cannot recover elapsed wall-clock) or an exhausted ladder.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(BudgetKind kind, const std::string& where)
      : std::runtime_error(std::string("cancelled [") + to_string(kind) +
                           "] in " + where),
        kind_(kind) {}
  BudgetKind kind() const { return kind_; }

 private:
  BudgetKind kind_;
};

/// Process-wide budget state. One governed analysis runs at a time (the
/// repo's analyses are process-level operations; nested analyze() calls
/// share the enclosing budget).
class Governor {
 public:
  static Governor& instance();

  /// Installs `budget` for subsequent runs (tests; production uses the env
  /// knobs via from_env()). Does not arm the deadline — begin_run() does.
  void configure(const RunBudget& budget);
  const RunBudget& budget() const { return budget_; }

  /// Starts a governed run: re-reads nothing, arms the deadline (if any),
  /// zeroes the work counter and clears any stale cancellation.
  void begin_run();

  /// Starts a new fidelity attempt within a run: zeroes the work counter
  /// and clears the cancel token but keeps the original deadline — a run
  /// that is out of wall-clock time stays out of it. An External cancel is
  /// sticky across attempts (begin_run() clears it): the ladder must not
  /// resurrect a run its owner abandoned.
  void begin_attempt();

  /// Records `kind` as the cancel cause (first cause wins).
  void cancel(BudgetKind kind);

  BudgetKind cancel_kind() const {
    return static_cast<BudgetKind>(token_.kind());
  }
  bool cancelled() const { return token_.cancelled(); }

  /// The token to pass through ParallelOptions.cancel in instrumented
  /// kernels.
  runtime::CancelToken* cancel_token() { return &token_; }

  /// Work units accumulated since the last begin_run()/begin_attempt().
  std::uint64_t work_units() const;

  /// Milliseconds of deadline left (clamped at 0), or -1 when no deadline
  /// is armed.
  std::int64_t deadline_margin_ms() const;

  /// Publishes the govern.* gauges (work units, heartbeat, peak tracked
  /// bytes, peak RSS, deadline margin, overhead estimate) into the metrics
  /// registry. Registered as a MetricsRegistry snapshot hook, so every
  /// BENCH_*.json carries them.
  void publish() const;

 private:
  friend bool checkpoint(std::uint64_t units);

  Governor();

  RunBudget budget_;
  runtime::CancelToken token_;
  /// Sticky External-cancel latch: set by cancel(External), cleared only by
  /// begin_run(). Keeps an abandonment alive across begin_attempt()'s token
  /// reset even when another cause occupied the token's first-cause slot.
  std::atomic<bool> external_{false};
  std::atomic<std::uint64_t> work_{0};
  /// Work of every finished run/attempt, process-cumulative. Published as
  /// govern.work_units_total — this is what the CI degradation sweep sizes
  /// IND_WORK_BUDGET fractions against.
  std::atomic<std::uint64_t> total_work_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<bool> deadline_armed_{false};
  std::chrono::steady_clock::time_point deadline_at_{};
};

/// The polling hook. Instrumented kernels call this at every deterministic
/// chunk boundary with a unit count that is a pure function of the chunk;
/// returns true when the run has been cancelled (by this call or earlier).
/// Callers stop cleanly: parallel bodies return and let run_chunks skip the
/// remaining chunks via the token; serial loops throw CancelledError or
/// break to a truncated-result path.
bool checkpoint(std::uint64_t units = 1);

/// Throws CancelledError when the governor has been cancelled. Use after a
/// parallel_for that may have drained early, or before starting an
/// expensive stage.
void throw_if_cancelled(const char* where);

}  // namespace ind::govern
