#include "govern/budget.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "govern/env.hpp"
#include "govern/memory.hpp"
#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"

namespace ind::govern {
namespace {

/// Peak resident set size in bytes (VmHWM from /proc/self/status), or 0
/// where unavailable. Read only at publish time, never on the hot path.
std::int64_t peak_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoll(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

/// One-time estimate of a checkpoint() call's cost, measured against dummy
/// atomics (not by re-entering checkpoint(), which would perturb the
/// counters it is estimating).
std::int64_t checkpoint_cost_ns() {
  static const std::int64_t per_call = [] {
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    constexpr int kIters = 16384;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      a.fetch_add(1, std::memory_order_relaxed);
      b.fetch_add(1, std::memory_order_relaxed);
      (void)a.load(std::memory_order_relaxed);
      (void)b.load(std::memory_order_relaxed);
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    return std::max<std::int64_t>(1, ns / kIters);
  }();
  return per_call;
}

}  // namespace

const char* to_string(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::None: return "none";
    case BudgetKind::Deadline: return "deadline";
    case BudgetKind::Memory: return "memory";
    case BudgetKind::Work: return "work";
    case BudgetKind::External: return "external";
  }
  return "unknown";
}

RunBudget RunBudget::from_env() {
  RunBudget b;
  b.deadline_ms = env_ms("IND_DEADLINE_MS", 0).value;
  b.mem_bytes = env_u64("IND_MEM_BYTES", 0).value;
  b.work_units = env_u64("IND_WORK_BUDGET", 0).value;
  return b;
}

Governor& Governor::instance() {
  static Governor* gov = new Governor();  // never freed
  return *gov;
}

Governor::Governor() : budget_(RunBudget::from_env()) {
  runtime::MetricsRegistry::instance().add_snapshot_hook(
      [this] { publish(); });
}

void Governor::configure(const RunBudget& budget) {
  // Test hook: callers must not reconfigure while a governed run is in
  // flight (checkpoint() reads budget_ without a lock).
  budget_ = budget;
  deadline_armed_.store(false, std::memory_order_release);
}

void Governor::begin_run() {
  total_work_.fetch_add(work_.exchange(0, std::memory_order_relaxed),
                        std::memory_order_relaxed);
  external_.store(false, std::memory_order_relaxed);
  token_.reset();
  if (budget_.deadline_ms > 0) {
    deadline_at_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(budget_.deadline_ms);
    deadline_armed_.store(true, std::memory_order_release);
  } else {
    deadline_armed_.store(false, std::memory_order_release);
  }
}

void Governor::begin_attempt() {
  // New fidelity rung: fresh work counter and cancel cause, but the
  // original deadline stands — degrading does not buy more wall-clock.
  total_work_.fetch_add(work_.exchange(0, std::memory_order_relaxed),
                        std::memory_order_relaxed);
  token_.reset();
  // An external cancel (service shutdown, client disconnect) is not a
  // budget trip the ladder can degrade past: it must survive the
  // rung-to-rung token reset — and the case where another cause won the
  // first-cause slot — so the next rung sees it at its first checkpoint
  // instead of running an orphaned computation to completion.
  if (external_.load(std::memory_order_relaxed))
    token_.cancel(static_cast<int>(BudgetKind::External));
}

void Governor::cancel(BudgetKind kind) {
  if (kind == BudgetKind::External)
    external_.store(true, std::memory_order_relaxed);
  token_.cancel(static_cast<int>(kind));
}

std::uint64_t Governor::work_units() const {
  return work_.load(std::memory_order_relaxed);
}

std::int64_t Governor::deadline_margin_ms() const {
  if (!deadline_armed_.load(std::memory_order_acquire)) return -1;
  const auto margin = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline_at_ - std::chrono::steady_clock::now())
                          .count();
  return std::max<std::int64_t>(0, margin);
}

void Governor::publish() const {
  auto& reg = runtime::MetricsRegistry::instance();
  const auto set = [&reg](const char* name, std::int64_t v) {
    reg.counter(name).value.store(v, std::memory_order_relaxed);
  };
  const std::int64_t checkpoints =
      static_cast<std::int64_t>(checkpoints_.load(std::memory_order_relaxed));
  set("govern.work_units",
      static_cast<std::int64_t>(work_.load(std::memory_order_relaxed)));
  set("govern.work_units_total",
      static_cast<std::int64_t>(total_work_.load(std::memory_order_relaxed) +
                                work_.load(std::memory_order_relaxed)));
  set("govern.checkpoints", checkpoints);
  set("govern.peak_tracked_bytes", peak_tracked_bytes());
  set("govern.peak_rss_bytes", peak_rss_bytes());
  set("govern.deadline_margin_ms", deadline_margin_ms());
  set("govern.budget_armed", budget_.any() ? 1 : 0);
  set("govern.overhead_est_ns", checkpoints * checkpoint_cost_ns());
}

bool checkpoint(std::uint64_t units) {
  Governor& gov = Governor::instance();
  gov.checkpoints_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t work =
      gov.work_.fetch_add(units, std::memory_order_relaxed) + units;
  if (robust::fault::fire(robust::fault::Site::BudgetCheck))
    gov.token_.cancel(static_cast<int>(BudgetKind::Work));
  const RunBudget& b = gov.budget_;
  if (b.work_units > 0 && work > b.work_units)
    gov.token_.cancel(static_cast<int>(BudgetKind::Work));
  if (b.mem_bytes > 0 &&
      tracked_bytes() > static_cast<std::int64_t>(b.mem_bytes))
    gov.token_.cancel(static_cast<int>(BudgetKind::Memory));
  if (gov.deadline_armed_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= gov.deadline_at_)
    gov.token_.cancel(static_cast<int>(BudgetKind::Deadline));
  return gov.token_.cancelled();
}

void throw_if_cancelled(const char* where) {
  Governor& gov = Governor::instance();
  if (gov.cancelled()) throw CancelledError(gov.cancel_kind(), where);
}

}  // namespace ind::govern
