// Budget -> OS sandbox mapping for the serve worker processes.
//
// A worker lane (tools/ind_worker) runs one request at a time in its own
// process; before each request it derives hard OS backstops from the
// *effective* RunBudget (the per-request budget after the server's caps):
//
//   * RLIMIT_AS  = mem_bytes + as_slack          (0 mem budget = unlimited)
//   * RLIMIT_CPU = cpu-used-so-far + ceil(deadline_ms / 1000) + cpu_slack
//                                                (0 deadline   = unlimited)
//
// The cooperative Governor checkpoints remain the first line of defence —
// they trip deterministically and degrade gracefully. The rlimits are the
// second line for the failure modes checkpoints cannot catch: a runaway
// allocation inside a kernel (malloc returns null -> std::bad_alloc -> the
// worker exits with kWorkerOomExitCode) and a wedged loop that never polls
// a checkpoint (the kernel delivers SIGXCPU). Both surface to the
// supervisor as a classified robust::CrashKind instead of a server death.
//
// Only the *soft* limits move (lowering and re-raising a soft limit below
// an unchanged hard limit is always permitted for unprivileged processes),
// so a long-lived worker can relax back to the hard ceiling between
// requests.
#pragma once

#include <cstdint>

#include "govern/budget.hpp"

namespace ind::govern {

/// Per-request OS limits derived from an effective RunBudget. Zero means
/// "leave that limit alone".
struct WorkerRlimits {
  std::uint64_t as_bytes = 0;     ///< absolute RLIMIT_AS soft value
  std::uint64_t cpu_seconds = 0;  ///< RLIMIT_CPU headroom beyond CPU used

  bool any() const { return as_bytes != 0 || cpu_seconds != 0; }
};

/// Maps the effective budget onto rlimit values. `as_slack_bytes` covers the
/// worker's code/heap baseline on top of the tracked-matrix budget;
/// `cpu_slack_seconds` covers assembly/serde time around the governed
/// kernels so the cooperative deadline almost always fires first.
WorkerRlimits worker_rlimits(const RunBudget& effective,
                             std::uint64_t as_slack_bytes,
                             std::uint64_t cpu_slack_seconds);

/// Lowers the soft limits for the current process per `limits` (RLIMIT_CPU
/// is set to current process CPU usage + cpu_seconds). Values are clamped
/// to the hard limit. Returns false when a setrlimit call failed.
bool apply_worker_rlimits(const WorkerRlimits& limits);

/// Raises the soft limits back to the hard limits (between requests).
void relax_worker_rlimits();

/// Exit code a worker uses when an allocation fails under RLIMIT_AS: the
/// heap cannot be trusted for a structured reply, so it self-exits and the
/// supervisor classifies the death as CrashKind::RlimitMem.
inline constexpr int kWorkerOomExitCode = 77;

}  // namespace ind::govern
