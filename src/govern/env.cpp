#include "govern/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

#include "runtime/metrics.hpp"

namespace ind::govern {
namespace {

// Variables already warned about on stderr (warn once per process so a
// misconfigured knob read in a loop does not flood the log; the counters
// keep counting every occurrence).
std::mutex g_warned_mutex;
std::set<std::string>& warned_names() {
  static std::set<std::string> names;
  return names;
}

}  // namespace

const char* to_string(EnvOutcome outcome) {
  switch (outcome) {
    case EnvOutcome::Unset: return "unset";
    case EnvOutcome::Ok: return "ok";
    case EnvOutcome::Clamped: return "clamped";
    case EnvOutcome::Invalid: return "invalid";
  }
  return "unknown";
}

ParsedU64 parse_u64(const char* text) {
  if (text == nullptr || *text == '\0') return {};
  // Reject signs and whitespace up front: strtoull accepts "-1" (wrapping)
  // and leading spaces, neither of which is a sane knob value.
  if (*text == '-' || *text == '+' || *text == ' ' || *text == '\t') return {};
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return {};
  return {true, static_cast<std::uint64_t>(v)};
}

void warn_env(const char* name, const char* raw, const std::string& what,
              const char* counter_prefix, const char* counter) {
  runtime::MetricsRegistry::instance().add_count(
      std::string(counter_prefix) + "." + counter, 1);
  bool first = false;
  {
    std::scoped_lock lock(g_warned_mutex);
    first = warned_names().insert(name).second;
  }
  if (first)
    std::fprintf(stderr, "warning [env-%s] %s='%s' %s\n", counter,
                 name, raw == nullptr ? "" : raw, what.c_str());
}

EnvValue env_u64(const char* name, std::uint64_t fallback, std::uint64_t min,
                 std::uint64_t max, const char* counter_prefix) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return {fallback, EnvOutcome::Unset};
  const ParsedU64 p = parse_u64(raw);
  if (!p.valid) {
    warn_env(name, raw,
             "is not an unsigned integer; using default " +
                 std::to_string(fallback),
             counter_prefix, "env_invalid");
    return {fallback, EnvOutcome::Invalid};
  }
  if (p.value < min || p.value > max) {
    const std::uint64_t clamped = p.value < min ? min : max;
    warn_env(name, raw,
             "is outside [" + std::to_string(min) + ", " +
                 std::to_string(max) + "]; clamped to " +
                 std::to_string(clamped),
             counter_prefix, "env_clamped");
    return {clamped, EnvOutcome::Clamped};
  }
  return {p.value, EnvOutcome::Ok};
}

EnvValue env_ms(const char* name, std::uint64_t fallback_ms,
                std::uint64_t min_ms, std::uint64_t max_ms,
                const char* counter_prefix) {
  return env_u64(name, fallback_ms, min_ms, max_ms, counter_prefix);
}

}  // namespace ind::govern
