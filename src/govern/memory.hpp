// Memory accounting for the numerical workhorse containers.
//
// The resource governor's memory budget (IND_MEM_BYTES) is enforced against
// *tracked* bytes: the allocations that actually scale with problem size —
// dense matrices (the PEEC partial-L block is O(n^2)) and the sparse
// matrix / factor arrays. Tracking is two relaxed atomics per allocation
// plus a compare-exchange peak update, cheap enough to stay on permanently;
// govern::checkpoint() compares the current figure against the budget only
// at deterministic chunk boundaries (budget.hpp explains why).
//
// Two hooks are provided:
//   * TrackingAllocator — drop-in std::vector allocator; DenseMatrix uses it
//     so every copy / move / resize is accounted automatically.
//   * MemCharge — RAII byte charge for containers whose public API exposes
//     plain std::vector references (CscMatrix, SparseLu) and therefore
//     cannot swap allocators without rippling through every caller.
//
// This header is included from la/dense_matrix.hpp, the hottest header in
// the tree: keep it free of anything heavier than <atomic>.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace ind::govern {

namespace detail {
extern std::atomic<std::int64_t> g_tracked_bytes;
extern std::atomic<std::int64_t> g_peak_tracked_bytes;
}  // namespace detail

inline void mem_acquire(std::size_t bytes) {
  const std::int64_t now =
      detail::g_tracked_bytes.fetch_add(static_cast<std::int64_t>(bytes),
                                        std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  std::int64_t peak =
      detail::g_peak_tracked_bytes.load(std::memory_order_relaxed);
  while (now > peak && !detail::g_peak_tracked_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

inline void mem_release(std::size_t bytes) {
  detail::g_tracked_bytes.fetch_sub(static_cast<std::int64_t>(bytes),
                                    std::memory_order_relaxed);
}

/// Currently tracked bytes across all live matrices / factors.
inline std::int64_t tracked_bytes() {
  return detail::g_tracked_bytes.load(std::memory_order_relaxed);
}

/// High-water mark of tracked_bytes() since process start (or the last
/// reset_peak_tracked_bytes(), a test hook).
inline std::int64_t peak_tracked_bytes() {
  return detail::g_peak_tracked_bytes.load(std::memory_order_relaxed);
}

inline void reset_peak_tracked_bytes() {
  detail::g_peak_tracked_bytes.store(tracked_bytes(),
                                     std::memory_order_relaxed);
}

/// Minimal allocator that routes byte counts through mem_acquire/release.
/// Stateless, so vectors with this allocator move / swap exactly like
/// default-allocated ones.
template <typename T>
struct TrackingAllocator {
  using value_type = T;
  using is_always_equal = std::true_type;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    mem_acquire(n * sizeof(T));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    mem_release(n * sizeof(T));
    ::operator delete(p);
  }
};

template <typename T, typename U>
inline bool operator==(const TrackingAllocator<T>&,
                       const TrackingAllocator<U>&) noexcept {
  return true;
}
template <typename T, typename U>
inline bool operator!=(const TrackingAllocator<T>&,
                       const TrackingAllocator<U>&) noexcept {
  return false;
}

/// RAII byte charge for containers that cannot change allocator type.
/// Copying a charged object charges again; moving transfers the charge.
class MemCharge {
 public:
  MemCharge() = default;
  explicit MemCharge(std::size_t bytes) : bytes_(bytes) { mem_acquire(bytes_); }
  MemCharge(const MemCharge& o) : bytes_(o.bytes_) { mem_acquire(bytes_); }
  MemCharge(MemCharge&& o) noexcept : bytes_(o.bytes_) { o.bytes_ = 0; }
  MemCharge& operator=(const MemCharge& o) {
    if (this != &o) set(o.bytes_);
    return *this;
  }
  MemCharge& operator=(MemCharge&& o) noexcept {
    if (this != &o) {
      mem_release(bytes_);
      bytes_ = o.bytes_;
      o.bytes_ = 0;
    }
    return *this;
  }
  ~MemCharge() { mem_release(bytes_); }

  /// Re-charges to `bytes` (e.g. after a refactorisation changed fill).
  void set(std::size_t bytes) {
    mem_release(bytes_);
    bytes_ = bytes;
    mem_acquire(bytes_);
  }
  std::size_t bytes() const { return bytes_; }

 private:
  std::size_t bytes_ = 0;
};

}  // namespace ind::govern
