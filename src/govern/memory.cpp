#include "govern/memory.hpp"

namespace ind::govern::detail {

std::atomic<std::int64_t> g_tracked_bytes{0};
std::atomic<std::int64_t> g_peak_tracked_bytes{0};

}  // namespace ind::govern::detail
