// Shared parsing for the IND_* environment knobs.
//
// Every knob used to hand-roll its own strtol call with silently-divergent
// error handling (IND_THREADS clamped silently, IND_CACHE_MAX_BYTES accepted
// any positive integer, garbage fell back to defaults with no diagnostic).
// env_u64 / env_ms centralise the grammar and make every misconfiguration
// visible: an invalid or out-of-range value emits one structured warning
// line on stderr (once per variable per process) and bumps a
// <prefix>.env_invalid / <prefix>.env_clamped counter, so the outcome lands
// in BENCH_*.json next to everything else.
//
// This header compiles into ind_runtime (the lowest layer that has the
// MetricsRegistry) even though it lives in the govern/ directory, so both
// runtime/thread_pool.cpp and the higher govern/store layers share one
// implementation.
#pragma once

#include <cstdint>
#include <string>

namespace ind::govern {

enum class EnvOutcome {
  Unset,    ///< variable absent or empty; fallback used, no diagnostic
  Ok,       ///< parsed cleanly inside [min, max]
  Clamped,  ///< parsed but out of range; clamped into [min, max], warned
  Invalid,  ///< not a plain unsigned integer; fallback used, warned
};

const char* to_string(EnvOutcome outcome);

struct EnvValue {
  std::uint64_t value = 0;  ///< effective value (fallback unless set())
  EnvOutcome outcome = EnvOutcome::Unset;

  /// True when the variable supplied the value (possibly after clamping).
  bool set() const {
    return outcome == EnvOutcome::Ok || outcome == EnvOutcome::Clamped;
  }
};

/// Raw text -> unsigned integer. Rejects empty strings, signs, trailing
/// junk and overflow; `valid` is false for all of those.
struct ParsedU64 {
  bool valid = false;
  std::uint64_t value = 0;
};
ParsedU64 parse_u64(const char* text);

/// Reads and parses the environment variable `name` fresh on every call
/// (callers that want a process-wide value cache the result themselves).
/// Diagnostics go under `<counter_prefix>.env_invalid` /
/// `<counter_prefix>.env_clamped` plus one stderr warning per variable:
///   warning [env-invalid] IND_FOO='abc' is not an unsigned integer; ...
EnvValue env_u64(const char* name, std::uint64_t fallback,
                 std::uint64_t min = 0,
                 std::uint64_t max = UINT64_MAX,
                 const char* counter_prefix = "govern");

/// env_u64 for millisecond-valued knobs (identical grammar; the name keeps
/// call sites self-documenting).
EnvValue env_ms(const char* name, std::uint64_t fallback_ms,
                std::uint64_t min_ms = 0,
                std::uint64_t max_ms = UINT64_MAX,
                const char* counter_prefix = "govern");

/// Emits the structured warning line for `name` at most once per process
/// and bumps `<counter_prefix>.<counter>` every call. Exposed for knobs
/// whose grammar is not plain u64 (IND_THREADS' "0 means auto").
void warn_env(const char* name, const char* raw, const std::string& what,
              const char* counter_prefix, const char* counter);

}  // namespace ind::govern
