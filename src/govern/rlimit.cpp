#include "govern/rlimit.hpp"

#include <sys/resource.h>
#include <sys/time.h>

#include <algorithm>

namespace ind::govern {
namespace {

/// Seconds of CPU (user + system) this process has consumed, rounded up —
/// RLIMIT_CPU is cumulative, so each request's allowance sits on top.
std::uint64_t cpu_seconds_used() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  const std::uint64_t micros =
      static_cast<std::uint64_t>(usage.ru_utime.tv_sec) * 1000000ull +
      static_cast<std::uint64_t>(usage.ru_utime.tv_usec) +
      static_cast<std::uint64_t>(usage.ru_stime.tv_sec) * 1000000ull +
      static_cast<std::uint64_t>(usage.ru_stime.tv_usec);
  return (micros + 999999ull) / 1000000ull;
}

/// Sets the soft value of `resource`, clamped to the hard limit. A soft
/// value of RLIM_INFINITY restores the hard ceiling.
bool set_soft(int resource, rlim_t soft) {
  rlimit cur{};
  if (getrlimit(resource, &cur) != 0) return false;
  if (cur.rlim_max != RLIM_INFINITY) soft = std::min(soft, cur.rlim_max);
  if (soft == cur.rlim_cur) return true;
  rlimit next{soft, cur.rlim_max};
  return setrlimit(resource, &next) == 0;
}

}  // namespace

WorkerRlimits worker_rlimits(const RunBudget& effective,
                             std::uint64_t as_slack_bytes,
                             std::uint64_t cpu_slack_seconds) {
  WorkerRlimits limits;
  if (effective.mem_bytes != 0)
    limits.as_bytes = effective.mem_bytes + as_slack_bytes;
  if (effective.deadline_ms != 0)
    limits.cpu_seconds =
        (effective.deadline_ms + 999ull) / 1000ull + cpu_slack_seconds;
  return limits;
}

bool apply_worker_rlimits(const WorkerRlimits& limits) {
  bool ok = true;
  if (limits.as_bytes != 0)
    ok = set_soft(RLIMIT_AS, static_cast<rlim_t>(limits.as_bytes)) && ok;
  if (limits.cpu_seconds != 0)
    ok = set_soft(RLIMIT_CPU, static_cast<rlim_t>(cpu_seconds_used() +
                                                  limits.cpu_seconds)) &&
         ok;
  return ok;
}

void relax_worker_rlimits() {
  set_soft(RLIMIT_AS, RLIM_INFINITY);
  set_soft(RLIMIT_CPU, RLIM_INFINITY);
}

}  // namespace ind::govern
