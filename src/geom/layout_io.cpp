#include "geom/layout_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ind::geom {
namespace {

const char* kind_name(NetKind k) {
  switch (k) {
    case NetKind::Signal: return "signal";
    case NetKind::Power: return "power";
    case NetKind::Ground: return "ground";
    case NetKind::Shield: return "shield";
    case NetKind::Substrate: return "substrate";
  }
  return "signal";
}

NetKind kind_from(const std::string& s) {
  if (s == "signal") return NetKind::Signal;
  if (s == "power") return NetKind::Power;
  if (s == "ground") return NetKind::Ground;
  if (s == "shield") return NetKind::Shield;
  if (s == "substrate") return NetKind::Substrate;
  throw std::invalid_argument("unknown net kind: " + s);
}

double to_um(double metres) { return metres * 1e6; }

}  // namespace

void write_layout(std::ostream& os, const Layout& layout) {
  os << "# inductance101 layout\n";
  os << "tech default\n";
  for (std::size_t n = 0; n < layout.num_nets(); ++n) {
    const NetInfo& net = layout.net(static_cast<int>(n));
    os << "net " << net.name << ' ' << kind_name(net.kind) << "\n";
  }
  for (const Segment& s : layout.segments()) {
    os << "wire "
       << (s.net >= 0 ? layout.net(s.net).name : std::string("-")) << ' '
       << s.layer << ' ' << to_um(s.a.x) << ' ' << to_um(s.a.y) << ' '
       << to_um(s.b.x) << ' ' << to_um(s.b.y) << ' ' << to_um(s.width)
       << "\n";
  }
  for (const Via& v : layout.vias()) {
    os << "via " << (v.net >= 0 ? layout.net(v.net).name : std::string("-"))
       << ' ' << to_um(v.at.x) << ' ' << to_um(v.at.y) << ' ' << v.lower_layer
       << ' ' << v.upper_layer << ' ' << v.cuts << "\n";
  }
  for (const Pad& p : layout.pads()) {
    os << "pad " << kind_name(p.kind) << ' ' << p.layer << ' '
       << to_um(p.at.x) << ' ' << to_um(p.at.y) << ' ' << p.resistance << ' '
       << p.inductance << "\n";
  }
  for (const Driver& d : layout.drivers()) {
    os << "drv " << layout.net(d.signal_net).name << ' ' << d.layer << ' '
       << to_um(d.at.x) << ' ' << to_um(d.at.y) << ' ' << d.strength_ohm
       << ' ' << d.slew << ' ' << d.start_time << ' '
       << (d.rising ? 'r' : 'f') << ' '
       << (d.name.empty() ? std::string("-") : d.name) << "\n";
  }
  for (const Receiver& r : layout.receivers()) {
    os << "rcv " << layout.net(r.signal_net).name << ' ' << r.layer << ' '
       << to_um(r.at.x) << ' ' << to_um(r.at.y) << ' ' << r.load_cap << ' '
       << (r.name.empty() ? std::string("-") : r.name) << "\n";
  }
}

std::string to_text(const Layout& layout) {
  std::ostringstream os;
  write_layout(os, layout);
  return os.str();
}

Layout read_layout(std::istream& is) { return read_layout(is, nullptr); }

Layout read_layout(std::istream& is, robust::ValidationReport* validation) {
  Layout layout(default_tech());
  std::map<std::string, int> nets;
  auto net_id = [&](const std::string& name, int line) {
    const auto it = nets.find(name);
    if (it == nets.end())
      throw std::invalid_argument("layout_io: line " + std::to_string(line) +
                                  ": unknown net '" + name + "'");
    return it->second;
  };

  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    std::istringstream line(raw);
    std::string tag;
    if (!(line >> tag) || tag[0] == '#') continue;
    try {
      if (tag == "tech") {
        std::string which;
        line >> which;  // only "default" supported
      } else if (tag == "net") {
        std::string name, kind;
        if (!(line >> name >> kind))
          throw std::invalid_argument("net record too short");
        nets[name] = layout.add_net(name, kind_from(kind));
      } else if (tag == "wire") {
        std::string net;
        int layer;
        double x0, y0, x1, y1, w;
        if (!(line >> net >> layer >> x0 >> y0 >> x1 >> y1 >> w))
          throw std::invalid_argument("wire record too short");
        if (w <= 0.0)
          throw std::invalid_argument("wire width must be positive");
        layout.add_wire(net_id(net, line_no), layer, {um(x0), um(y0)},
                        {um(x1), um(y1)}, um(w));
      } else if (tag == "via") {
        std::string net;
        double x, y;
        int lo, hi, cuts;
        if (!(line >> net >> x >> y >> lo >> hi >> cuts))
          throw std::invalid_argument("via record too short");
        layout.add_via(net_id(net, line_no), {um(x), um(y)}, lo, hi, cuts);
      } else if (tag == "pad") {
        std::string kind;
        int layer;
        double x, y, r, l;
        if (!(line >> kind >> layer >> x >> y >> r >> l))
          throw std::invalid_argument("pad record too short");
        Pad pad;
        pad.kind = kind_from(kind);
        pad.layer = layer;
        pad.at = {um(x), um(y)};
        pad.resistance = r;
        pad.inductance = l;
        layout.add_pad(pad);
      } else if (tag == "drv") {
        std::string net, name;
        int layer;
        double x, y, ohms, slew, start;
        char dir;
        if (!(line >> net >> layer >> x >> y >> ohms >> slew >> start >>
              dir >> name))
          throw std::invalid_argument("drv record too short");
        Driver d;
        d.signal_net = net_id(net, line_no);
        d.layer = layer;
        d.at = {um(x), um(y)};
        d.strength_ohm = ohms;
        d.slew = slew;
        d.start_time = start;
        d.rising = dir == 'r';
        if (name != "-") d.name = name;
        layout.add_driver(std::move(d));
      } else if (tag == "rcv") {
        std::string net, name;
        int layer;
        double x, y, cap;
        if (!(line >> net >> layer >> x >> y >> cap >> name))
          throw std::invalid_argument("rcv record too short");
        Receiver r;
        r.signal_net = net_id(net, line_no);
        r.layer = layer;
        r.at = {um(x), um(y)};
        r.load_cap = cap;
        if (name != "-") r.name = name;
        layout.add_receiver(std::move(r));
      } else {
        throw std::invalid_argument("unknown record '" + tag + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("layout_io: line " + std::to_string(line_no) +
                                  ": " + e.what());
    }
  }
  if (validation) *validation = robust::validate(layout);
  return layout;
}

Layout layout_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_layout(is);
}

}  // namespace ind::geom
