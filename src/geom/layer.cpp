#include "geom/layer.hpp"

#include <stdexcept>
#include <string>

namespace ind::geom {

const Layer& Technology::layer(int index) const {
  if (index < 1 || static_cast<std::size_t>(index) > layers.size())
    throw std::out_of_range("Technology::layer: no metal-" +
                            std::to_string(index));
  return layers[static_cast<std::size_t>(index - 1)];
}

double Technology::gap_between(int lower, int upper) const {
  if (lower >= upper)
    throw std::invalid_argument("Technology::gap_between: lower >= upper");
  return layer(upper).z_bottom - layer(lower).z_top();
}

double Technology::height_above_below(int index) const {
  const Layer& l = layer(index);
  if (index == 1) return l.z_bottom - substrate_z;
  return l.z_bottom - layer(index - 1).z_top();
}

Technology default_tech() {
  Technology t;
  t.epsilon_r = 3.9;
  t.via_resistance = 1.0;
  t.substrate_z = 0.0;

  // index, z_bottom, thickness, sheet-rho (ohm/sq), preferred, gap below
  // Thin local layers, progressively thicker global layers; alternating
  // preferred directions as in standard routing stacks.
  struct Row {
    double thickness, sheet, gap;
    Axis dir;
  };
  const Row rows[] = {
      {um(0.30), 0.12, um(0.60), Axis::X},  // M1
      {um(0.35), 0.10, um(0.50), Axis::Y},  // M2
      {um(0.40), 0.08, um(0.55), Axis::X},  // M3
      {um(0.55), 0.05, um(0.60), Axis::Y},  // M4
      {um(0.90), 0.03, um(0.70), Axis::X},  // M5
      {um(1.20), 0.02, um(0.80), Axis::Y},  // M6
  };
  double z = t.substrate_z;
  int idx = 1;
  for (const Row& r : rows) {
    z += r.gap;
    Layer l;
    l.index = idx++;
    l.z_bottom = z;
    l.thickness = r.thickness;
    l.sheet_resistance = r.sheet;
    l.preferred = r.dir;
    l.dielectric_below = r.gap;
    t.layers.push_back(l);
    z += r.thickness;
  }
  return t;
}

}  // namespace ind::geom
