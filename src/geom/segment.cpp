#include "geom/segment.hpp"

#include <algorithm>

namespace ind::geom {

std::optional<ParallelGeometry> parallel_geometry(const Segment& s,
                                                  const Segment& t) {
  if (s.axis() != t.axis()) return std::nullopt;
  ParallelGeometry g;
  g.length_i = s.length();
  g.length_j = t.length();
  const double s_lo = s.lo(), s_hi = s.hi();
  const double t_lo = t.lo(), t_hi = t.hi();
  // Axial gap between nearest ends; negative when the spans overlap.
  g.axial_gap = std::max(s_lo, t_lo) - std::min(s_hi, t_hi);
  g.overlap = std::max(0.0, -g.axial_gap);
  g.lateral = std::abs(s.transverse() - t.transverse());
  g.vertical = std::abs(s.z - t.z);
  return g;
}

bool laterally_adjacent(const Segment& s, const Segment& t,
                        double max_spacing) {
  if (s.layer != t.layer) return false;
  const auto g = parallel_geometry(s, t);
  if (!g || g->overlap <= 0.0) return false;
  return edge_spacing(s, t) <= max_spacing;
}

double edge_spacing(const Segment& s, const Segment& t) {
  const double center = std::abs(s.transverse() - t.transverse());
  return center - 0.5 * (s.width + t.width);
}

}  // namespace ind::geom
