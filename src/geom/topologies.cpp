#include "geom/topologies.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace ind::geom {
namespace {

// Alternating VDD/GND strap positions across [start, start+extent] with
// `pitch` between same-net straps.
struct Strap {
  double pos;
  bool is_vdd;
};

std::vector<Strap> strap_positions(double start, double extent, double pitch) {
  std::vector<Strap> straps;
  const double half = 0.5 * pitch;
  bool vdd = true;
  for (double p = start; p <= start + extent + 1e-12; p += half) {
    straps.push_back({p, vdd});
    vdd = !vdd;
  }
  return straps;
}

}  // namespace

PowerGridNets add_power_grid(Layout& layout, const PowerGridSpec& spec) {
  PowerGridNets nets;
  nets.vdd = layout.find_net("vdd");
  if (nets.vdd < 0) nets.vdd = layout.add_net("vdd", NetKind::Power);
  nets.gnd = layout.find_net("gnd");
  if (nets.gnd < 0) nets.gnd = layout.add_net("gnd", NetKind::Ground);

  const auto h_straps =
      strap_positions(spec.origin.y, spec.extent_y, spec.pitch);
  const auto v_straps =
      strap_positions(spec.origin.x, spec.extent_x, spec.pitch);

  for (const Strap& s : h_straps) {
    const int net = s.is_vdd ? nets.vdd : nets.gnd;
    layout.add_wire(net, spec.horizontal_layer, {spec.origin.x, s.pos},
                    {spec.origin.x + spec.extent_x, s.pos}, spec.strap_width);
  }
  for (const Strap& s : v_straps) {
    const int net = s.is_vdd ? nets.vdd : nets.gnd;
    layout.add_wire(net, spec.vertical_layer, {s.pos, spec.origin.y},
                    {s.pos, spec.origin.y + spec.extent_y}, spec.strap_width);
  }

  // Vias where same-net straps cross.
  const int lo = std::min(spec.horizontal_layer, spec.vertical_layer);
  const int hi = std::max(spec.horizontal_layer, spec.vertical_layer);
  for (const Strap& h : h_straps) {
    for (const Strap& v : v_straps) {
      if (h.is_vdd != v.is_vdd) continue;
      const int net = h.is_vdd ? nets.vdd : nets.gnd;
      layout.add_via(net, {v.pos, h.pos}, lo, hi, /*cuts=*/4);
    }
  }

  // Package pads: `pads_per_side` VDD and GND pads at the north and south
  // ends of vertical (top layer) straps, spread evenly per polarity.
  if (spec.pads_per_side > 0 && !v_straps.empty()) {
    std::vector<std::size_t> vdd_straps, gnd_straps;
    for (std::size_t i = 0; i < v_straps.size(); ++i)
      (v_straps[i].is_vdd ? vdd_straps : gnd_straps).push_back(i);
    auto place = [&](const std::vector<std::size_t>& pool, NetKind kind) {
      if (pool.empty()) return;
      const std::size_t count =
          std::min<std::size_t>(spec.pads_per_side, pool.size());
      const std::size_t stride = std::max<std::size_t>(1, pool.size() / count);
      for (std::size_t k = 0; k < count; ++k) {
        const Strap& s = v_straps[pool[(k * stride) % pool.size()]];
        Pad north, south;
        north.at = {s.pos, spec.origin.y + spec.extent_y};
        south.at = {s.pos, spec.origin.y};
        north.layer = south.layer = spec.vertical_layer;
        north.kind = south.kind = kind;
        north.resistance = south.resistance = spec.pad_resistance;
        north.inductance = south.inductance = spec.pad_inductance;
        layout.add_pad(north);
        layout.add_pad(south);
      }
    };
    place(vdd_straps, NetKind::Power);
    place(gnd_straps, NetKind::Ground);
  }
  return nets;
}

namespace {

void htree_recurse(Layout& layout, int net, const ClockTreeSpec& spec,
                   double cx, double cy, double half, int level, double width,
                   int& leaf_counter) {
  if (level == 0) {
    Receiver r;
    r.at = {cx, cy};
    r.layer = spec.vertical_layer;
    r.signal_net = net;
    // Deterministic hash of the leaf index spreads the sink loads.
    std::uint64_t h = static_cast<std::uint64_t>(leaf_counter) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    const double unit = static_cast<double>(h % 1000) / 999.0;  // [0,1]
    r.load_cap =
        spec.sink_cap * (1.0 + spec.sink_cap_variation * (2.0 * unit - 1.0));
    r.name = spec.net_name + "_sink" + std::to_string(leaf_counter++);
    layout.add_receiver(std::move(r));
    return;
  }
  const double w = std::max(width, spec.min_width);
  // Horizontal bar through the centre.
  layout.add_wire(net, spec.horizontal_layer, {cx - half, cy}, {cx + half, cy},
                  w);
  const int lo = std::min(spec.horizontal_layer, spec.vertical_layer);
  const int hi = std::max(spec.horizontal_layer, spec.vertical_layer);
  for (int sx : {-1, 1}) {
    const double x = cx + sx * half;
    layout.add_via(net, {x, cy}, lo, hi, 4);
    layout.add_wire(net, spec.vertical_layer, {x, cy - 0.5 * half},
                    {x, cy + 0.5 * half}, w);
    for (int sy : {-1, 1}) {
      const double y = cy + sy * 0.5 * half;
      if (level > 1) layout.add_via(net, {x, y}, lo, hi, 4);
      htree_recurse(layout, net, spec, x, y, 0.5 * half, level - 1,
                    w * spec.taper, leaf_counter);
    }
  }
}

}  // namespace

int add_clock_htree(Layout& layout, const ClockTreeSpec& spec) {
  if (spec.levels < 1)
    throw std::invalid_argument("add_clock_htree: levels must be >= 1");
  const int net = layout.add_net(spec.net_name, NetKind::Signal);
  int leaves = 0;
  htree_recurse(layout, net, spec, spec.center.x, spec.center.y,
                0.5 * spec.span, spec.levels, spec.trunk_width, leaves);
  Driver d;
  d.at = spec.center;
  d.layer = spec.horizontal_layer;
  d.signal_net = net;
  d.strength_ohm = spec.driver_res;
  d.slew = spec.slew;
  d.name = spec.net_name + "_root";
  layout.add_driver(std::move(d));
  return net;
}

BusResult add_bus(Layout& layout, const BusSpec& spec) {
  BusResult result;
  if (spec.shield_period > 0) {
    result.shield_net = spec.shield_net >= 0
                            ? spec.shield_net
                            : (layout.find_net("gnd") >= 0
                                   ? layout.find_net("gnd")
                                   : layout.add_net("gnd", NetKind::Ground));
  }

  const double track_pitch = spec.width + spec.spacing;
  double t = spec.axis == Axis::X ? spec.origin.y : spec.origin.x;
  const double along0 = spec.axis == Axis::X ? spec.origin.x : spec.origin.y;

  auto add_track = [&](int net, double pos) {
    Point a, b;
    if (spec.axis == Axis::X) {
      a = {along0, pos};
      b = {along0 + spec.length, pos};
    } else {
      a = {pos, along0};
      b = {pos, along0 + spec.length};
    }
    layout.add_wire(net, spec.layer, a, b, spec.width);
    // Shield tracks tie to the external ground through pads at both ends —
    // a floating shield would neither carry return current nor hold the
    // drivers' DC reference.
    if (net == result.shield_net) {
      for (const Point& at : {a, b}) {
        Pad pad;
        pad.at = at;
        pad.layer = spec.layer;
        pad.kind = NetKind::Ground;
        layout.add_pad(pad);
      }
    }
    return std::pair{a, b};
  };

  int since_shield = 0;
  for (int bit = 0; bit < spec.bits; ++bit) {
    if (spec.shield_period > 0 && bit > 0 &&
        since_shield == spec.shield_period) {
      add_track(result.shield_net, t);
      t += track_pitch;
      since_shield = 0;
    }
    const int net =
        layout.add_net(spec.prefix + std::to_string(bit), NetKind::Signal);
    const auto [a, b] = add_track(net, t);
    result.signal_nets.push_back(net);
    result.track_positions.push_back(t);
    if (spec.add_drivers) {
      Driver d;
      d.at = a;
      d.layer = spec.layer;
      d.signal_net = net;
      d.strength_ohm = spec.driver_res;
      d.slew = spec.slew;
      d.name = spec.prefix + std::to_string(bit) + "_drv";
      layout.add_driver(std::move(d));
      Receiver r;
      r.at = b;
      r.layer = spec.layer;
      r.signal_net = net;
      r.load_cap = spec.sink_cap;
      r.name = spec.prefix + std::to_string(bit) + "_rcv";
      layout.add_receiver(std::move(r));
    }
    t += track_pitch;
    ++since_shield;
  }
  // Outer shields book-end the bus when shielding is requested.
  if (spec.shield_period > 0) add_track(result.shield_net, t);
  return result;
}

int add_ground_plane(Layout& layout, const GroundPlaneSpec& spec) {
  int net = spec.net;
  if (net < 0) {
    net = layout.find_net("gnd");
    if (net < 0) net = layout.add_net("gnd", NetKind::Ground);
  }
  const int lines =
      std::max(1, static_cast<int>(spec.extent_across / spec.fill_pitch) + 1);
  for (int i = 0; i < lines; ++i) {
    const double off = i * spec.fill_pitch;
    Point a, b;
    if (spec.axis == Axis::X) {
      a = {spec.origin.x, spec.origin.y + off};
      b = {spec.origin.x + spec.extent_along, spec.origin.y + off};
    } else {
      a = {spec.origin.x + off, spec.origin.y};
      b = {spec.origin.x + off, spec.origin.y + spec.extent_along};
    }
    layout.add_wire(net, spec.layer, a, b, spec.fill_width);
  }
  return net;
}

InterdigitatedResult add_interdigitated(Layout& layout,
                                        const InterdigitatedSpec& spec) {
  if (spec.fingers < 1)
    throw std::invalid_argument("add_interdigitated: fingers must be >= 1");
  InterdigitatedResult result;
  result.signal_net = layout.add_net("sig_interdig", NetKind::Signal);
  result.ground_net = layout.find_net("gnd");
  if (result.ground_net < 0)
    result.ground_net = layout.add_net("gnd", NetKind::Ground);

  const double fw = spec.total_signal_width / spec.fingers;
  double y = spec.origin.y;
  std::vector<double> finger_ys;
  for (int f = 0; f < spec.fingers; ++f) {
    layout.add_wire(result.signal_net, spec.layer, {spec.origin.x, y},
                    {spec.origin.x + spec.length, y}, fw);
    finger_ys.push_back(y);
    if (f + 1 < spec.fingers) {
      // Grounded shield between fingers, stopped short of the end straps
      // (which run orthogonally on the same layer at both ends).
      const double margin = fw + spec.spacing;
      const double shield_y =
          y + 0.5 * fw + spec.spacing + 0.5 * spec.shield_width;
      layout.add_wire(result.ground_net, spec.layer,
                      {spec.origin.x + margin, shield_y},
                      {spec.origin.x + spec.length - margin, shield_y},
                      spec.shield_width);
      y = shield_y + 0.5 * spec.shield_width + spec.spacing + 0.5 * fw;
    }
  }
  // End straps keep the fingers one electrical net.
  if (spec.fingers > 1) {
    const double y_first = finger_ys.front(), y_last = finger_ys.back();
    layout.add_wire(result.signal_net, spec.layer, {spec.origin.x, y_first},
                    {spec.origin.x, y_last}, fw);
    layout.add_wire(result.signal_net, spec.layer,
                    {spec.origin.x + spec.length, y_first},
                    {spec.origin.x + spec.length, y_last}, fw);
  }
  result.metallization_width = (finger_ys.back() - finger_ys.front()) + fw;
  return result;
}

BusResult add_staggered_bus(Layout& layout, const StaggeredBusSpec& spec) {
  BusResult result;
  const double pitch = spec.width + spec.spacing;
  for (int bit = 0; bit < spec.bits; ++bit) {
    const double y = spec.origin.y + bit * pitch;
    const int net = layout.add_net("stag" + std::to_string(bit),
                                   NetKind::Signal);
    Point west{spec.origin.x, y};
    Point east{spec.origin.x + spec.length, y};
    layout.add_wire(net, spec.layer, west, east, spec.width);
    result.signal_nets.push_back(net);
    result.track_positions.push_back(y);

    const bool drive_from_east = spec.staggered && (bit % 2 == 1);
    Driver d;
    d.at = drive_from_east ? east : west;
    d.layer = spec.layer;
    d.signal_net = net;
    d.strength_ohm = spec.driver_res;
    d.slew = spec.slew;
    d.name = "stag" + std::to_string(bit) + "_drv";
    layout.add_driver(std::move(d));
    Receiver r;
    r.at = drive_from_east ? west : east;
    r.layer = spec.layer;
    r.signal_net = net;
    r.load_cap = spec.sink_cap;
    r.name = "stag" + std::to_string(bit) + "_rcv";
    layout.add_receiver(std::move(r));
  }
  return result;
}

BusResult add_twisted_bundle(Layout& layout, const TwistedBundleSpec& spec) {
  if (spec.regions < 1)
    throw std::invalid_argument("add_twisted_bundle: regions must be >= 1");
  BusResult result;
  const double pitch = spec.width + spec.spacing;
  const double region_len = spec.length / spec.regions;
  const double jog_dx = 2.0 * spec.width;  // stagger jogs so nodes stay distinct
  const int lo = std::min(spec.layer, spec.jog_layer);
  const int hi = std::max(spec.layer, spec.jog_layer);

  if (spec.add_ground_return) {
    result.shield_net = layout.find_net("gnd");
    if (result.shield_net < 0)
      result.shield_net = layout.add_net("gnd", NetKind::Ground);
    // Straight return one track below the bundle, tied to the external
    // ground through pads at both ends (otherwise it would float and the
    // drivers' pull-downs would have no DC reference).
    const double ry = spec.origin.y - pitch;
    layout.add_wire(result.shield_net, spec.layer, {spec.origin.x, ry},
                    {spec.origin.x + spec.length, ry}, spec.width);
    for (const double rx : {spec.origin.x, spec.origin.x + spec.length}) {
      Pad pad;
      pad.at = {rx, ry};
      pad.layer = spec.layer;
      pad.kind = NetKind::Ground;
      layout.add_pad(pad);
    }
  }

  auto track_y = [&](int track) { return spec.origin.y + track * pitch; };
  // Twisting per Zhong et al. [23]: tracks 2k/2k+1 form a complementary pair
  // (the "complementary and opposite current loops"); pair k swaps its two
  // tracks whenever bit k of the region index is set. Any two pairs then see
  // a balanced schedule of relative orientations, so the loop-to-loop flux
  // contributions cancel over 2^(k+1)-region spans.
  auto track_of = [&](int bit, int region) {
    if (!spec.twisted) return bit;
    const int partner = bit ^ 1;
    if (partner >= spec.bits) return bit;  // unpaired last track stays put
    const int pair = bit / 2;
    const bool swapped = (region >> pair) & 1;
    return swapped ? partner : bit;
  };

  for (int bit = 0; bit < spec.bits; ++bit) {
    const int net =
        layout.add_net("tw" + std::to_string(bit), NetKind::Signal);
    result.signal_nets.push_back(net);
    result.track_positions.push_back(track_y(bit));

    // Crossover construction: at a boundary, net n drops to the jog layer at
    // its own staggered x, runs the vertical hop there, continues on the
    // layer below (jog_layer - 1) to a shared clearance point past every
    // other net's jog, and pops back up. Using two jog layers and staggered
    // x positions keeps all nets of the bundle short-free.
    const double clearance = (spec.bits + 1) * jog_dx;
    const int hlayer = spec.jog_layer - 1;  // horizontal crossover runs
    double prev_x = spec.origin.x;
    for (int region = 0; region < spec.regions; ++region) {
      const double y = track_y(track_of(bit, region));
      const double boundary = spec.origin.x + (region + 1) * region_len;
      const bool last = region == spec.regions - 1;
      const double y_next = last ? y : track_y(track_of(bit, region + 1));
      const double jog_x = boundary + bit * jog_dx;
      const double end_x = last ? spec.origin.x + spec.length
                                : (y_next == y ? boundary + clearance : jog_x);
      layout.add_wire(net, spec.layer, {prev_x, y}, {end_x, y}, spec.width);
      if (!last && y_next != y) {
        // Down to the jog layer, vertical hop, lateral clearance run on the
        // layer below, then back up to the routing layer.
        layout.add_via(net, {jog_x, y}, lo, hi);
        layout.add_wire(net, spec.jog_layer, {jog_x, y}, {jog_x, y_next},
                        spec.width);
        layout.add_via(net, {jog_x, y_next}, hlayer, spec.jog_layer);
        layout.add_wire(net, hlayer, {jog_x, y_next},
                        {boundary + clearance, y_next}, spec.width);
        layout.add_via(net, {boundary + clearance, y_next}, hlayer, hi);
        prev_x = boundary + clearance;
      } else {
        prev_x = end_x;
      }
    }

    Driver d;
    d.at = {spec.origin.x, track_y(track_of(bit, 0))};
    d.layer = spec.layer;
    d.signal_net = net;
    d.strength_ohm = spec.driver_res;
    d.slew = spec.slew;
    d.name = "tw" + std::to_string(bit) + "_drv";
    layout.add_driver(std::move(d));
    Receiver r;
    r.at = {spec.origin.x + spec.length,
            track_y(track_of(bit, spec.regions - 1))};
    r.layer = spec.layer;
    r.signal_net = net;
    r.load_cap = spec.sink_cap;
    r.name = "tw" + std::to_string(bit) + "_rcv";
    layout.add_receiver(std::move(r));
  }
  return result;
}

DriverReceiverGridResult add_driver_receiver_grid(
    Layout& layout, const DriverReceiverGridSpec& spec) {
  DriverReceiverGridResult result;
  result.grid_nets = add_power_grid(layout, spec.grid);

  result.signal_net = layout.add_net("sig", NetKind::Signal);
  const double cy = spec.grid.origin.y + 0.5 * spec.grid.extent_y;
  const double cx = spec.grid.origin.x +
                    0.5 * (spec.grid.extent_x - spec.signal_length);
  Point west{cx, cy};
  Point east{cx + spec.signal_length, cy};
  layout.add_wire(result.signal_net, spec.signal_layer, west, east,
                  spec.signal_width);

  Driver d;
  d.at = west;
  d.layer = spec.signal_layer;
  d.signal_net = result.signal_net;
  d.strength_ohm = spec.driver_res;
  d.slew = spec.slew;
  d.name = "sig_drv";
  layout.add_driver(std::move(d));

  Receiver r;
  r.at = east;
  r.layer = spec.signal_layer;
  r.signal_net = result.signal_net;
  r.load_cap = spec.sink_cap;
  r.name = "sig_rcv";
  layout.add_receiver(std::move(r));
  return result;
}

}  // namespace ind::geom
