#include "geom/layout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ind::geom {

int Layout::add_net(std::string name, NetKind kind) {
  nets_.push_back({std::move(name), kind});
  return static_cast<int>(nets_.size()) - 1;
}

int Layout::find_net(const std::string& name) const {
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::size_t Layout::add_wire(int net, int layer, Point a, Point b,
                             double width) {
  if (a.x != b.x && a.y != b.y)
    throw std::invalid_argument("Layout::add_wire: wire must be axis-aligned");
  if (width <= 0.0)
    throw std::invalid_argument("Layout::add_wire: width must be positive");
  const Layer& l = tech_.layer(layer);
  Segment s;
  s.a = a;
  s.b = b;
  s.width = width;
  s.thickness = l.thickness;
  s.z = l.z_center();
  s.layer = layer;
  s.net = net;
  s.kind = net >= 0 ? nets_.at(static_cast<std::size_t>(net)).kind
                    : NetKind::Signal;
  segments_.push_back(s);
  return segments_.size() - 1;
}

void Layout::add_via(int net, Point at, int lower_layer, int upper_layer,
                     int cuts) {
  if (lower_layer >= upper_layer)
    throw std::invalid_argument("Layout::add_via: lower >= upper layer");
  vias_.push_back({at, lower_layer, upper_layer, cuts, net});
}

std::vector<std::pair<std::size_t, std::size_t>> Layout::parallel_pairs(
    double max_distance) const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    for (std::size_t j = i + 1; j < segments_.size(); ++j) {
      const auto g = parallel_geometry(segments_[i], segments_[j]);
      if (!g) continue;
      if (g->center_distance() > max_distance) continue;
      out.emplace_back(i, j);
    }
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> Layout::adjacent_pairs(
    double max_spacing) const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < segments_.size(); ++i)
    for (std::size_t j = i + 1; j < segments_.size(); ++j)
      if (laterally_adjacent(segments_[i], segments_[j], max_spacing))
        out.emplace_back(i, j);
  return out;
}

double Layout::total_wirelength() const {
  double acc = 0.0;
  for (const Segment& s : segments_) acc += s.length();
  return acc;
}

std::pair<Point, Point> Layout::bounding_box() const {
  Point lo{1e300, 1e300}, hi{-1e300, -1e300};
  for (const Segment& s : segments_) {
    lo.x = std::min({lo.x, s.a.x, s.b.x});
    lo.y = std::min({lo.y, s.a.y, s.b.y});
    hi.x = std::max({hi.x, s.a.x, s.b.x});
    hi.y = std::max({hi.y, s.a.y, s.b.y});
  }
  if (segments_.empty()) return {{0, 0}, {0, 0}};
  return {lo, hi};
}

Layout subdivide(const Layout& layout, double max_len) {
  if (max_len <= 0.0)
    throw std::invalid_argument("subdivide: max_len must be positive");
  Layout fresh(layout.tech());
  for (std::size_t n = 0; n < layout.num_nets(); ++n)
    fresh.add_net(layout.net(static_cast<int>(n)).name,
                  layout.net(static_cast<int>(n)).kind);
  for (const Segment& s : layout.segments()) {
    const double len = s.length();
    const int pieces = std::max(1, static_cast<int>(std::ceil(len / max_len)));
    const double dx = (s.b.x - s.a.x) / pieces;
    const double dy = (s.b.y - s.a.y) / pieces;
    for (int k = 0; k < pieces; ++k) {
      Point a{s.a.x + k * dx, s.a.y + k * dy};
      Point b{s.a.x + (k + 1) * dx, s.a.y + (k + 1) * dy};
      fresh.add_wire(s.net, s.layer, a, b, s.width);
    }
  }
  for (const Via& v : layout.vias())
    fresh.add_via(v.net, v.at, v.lower_layer, v.upper_layer, v.cuts);
  for (const Pad& p : layout.pads()) fresh.add_pad(p);
  for (const Driver& d : layout.drivers()) fresh.add_driver(d);
  for (const Receiver& r : layout.receivers()) fresh.add_receiver(r);
  return fresh;
}

namespace {

constexpr double kRefineEps = 1e-12;

// True if point p lies on the centre-line footprint of segment s on `layer`.
bool point_on_segment(const Segment& s, const Point& p, int layer) {
  if (layer != s.layer) return false;
  const bool along_x = s.axis() == Axis::X;
  const double t = along_x ? p.y : p.x;
  const double c = along_x ? p.x : p.y;
  if (std::abs(t - s.transverse()) > 0.5 * s.width + kRefineEps) return false;
  return c >= s.lo() - kRefineEps && c <= s.hi() + kRefineEps;
}

double along_coord(const Segment& s, const Point& p) {
  return s.axis() == Axis::X ? p.x : p.y;
}

}  // namespace

Layout refine(const Layout& layout, double max_segment_length) {
  if (max_segment_length <= 0.0)
    throw std::invalid_argument("refine: max_segment_length must be positive");
  Layout out(layout.tech());
  for (std::size_t n = 0; n < layout.num_nets(); ++n)
    out.add_net(layout.net(static_cast<int>(n)).name,
                layout.net(static_cast<int>(n)).kind);

  for (const Segment& s : layout.segments()) {
    // Gather interior cut coordinates: electrical connection points must
    // coincide with segment endpoints so they become circuit nodes.
    std::vector<double> cuts;
    for (const Via& v : layout.vias()) {
      if (v.net != s.net) continue;
      if (s.layer < v.lower_layer || s.layer > v.upper_layer) continue;
      if (point_on_segment(s, v.at, s.layer))
        cuts.push_back(along_coord(s, v.at));
    }
    for (const Driver& d : layout.drivers())
      if (d.signal_net == s.net && point_on_segment(s, d.at, d.layer))
        cuts.push_back(along_coord(s, d.at));
    for (const Receiver& r : layout.receivers())
      if (r.signal_net == s.net && point_on_segment(s, r.at, r.layer))
        cuts.push_back(along_coord(s, r.at));
    for (const Pad& p : layout.pads())
      if (p.kind == s.kind && point_on_segment(s, p.at, p.layer))
        cuts.push_back(along_coord(s, p.at));

    const double lo = s.lo(), hi = s.hi();
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [](double a, double b) {
                             return std::abs(a - b) < kRefineEps;
                           }),
               cuts.end());

    std::vector<double> bounds;
    bounds.push_back(lo);
    for (double c : cuts)
      if (c > lo + kRefineEps && c < hi - kRefineEps) bounds.push_back(c);
    bounds.push_back(hi);

    const bool along_x = s.axis() == Axis::X;
    const double t = s.transverse();
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      const double piece_lo = bounds[k], piece_hi = bounds[k + 1];
      const double len = piece_hi - piece_lo;
      if (len <= kRefineEps) continue;
      const int pieces =
          std::max(1, static_cast<int>(std::ceil(len / max_segment_length)));
      const double step = len / pieces;
      for (int q = 0; q < pieces; ++q) {
        const double a = piece_lo + q * step, b = piece_lo + (q + 1) * step;
        if (along_x)
          out.add_wire(s.net, s.layer, {a, t}, {b, t}, s.width);
        else
          out.add_wire(s.net, s.layer, {t, a}, {t, b}, s.width);
      }
    }
  }
  for (const Via& v : layout.vias())
    out.add_via(v.net, v.at, v.lower_layer, v.upper_layer, v.cuts);
  for (const Pad& p : layout.pads()) out.add_pad(p);
  for (const Driver& d : layout.drivers()) out.add_driver(d);
  for (const Receiver& r : layout.receivers()) out.add_receiver(r);
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> find_layout_shorts(
    const Layout& layout) {
  std::vector<std::pair<std::size_t, std::size_t>> shorts;
  const auto& segs = layout.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      const Segment& a = segs[i];
      const Segment& b = segs[j];
      if (a.layer != b.layer || a.net == b.net) continue;
      if (a.axis() == b.axis()) {
        // Parallel: metal touches when edge spacing is non-positive and the
        // spans overlap axially.
        const auto g = parallel_geometry(a, b);
        if (g && g->overlap > 0.0 && edge_spacing(a, b) <= 0.0)
          shorts.emplace_back(i, j);
      } else {
        // Orthogonal: footprints intersect when each centre-line crosses the
        // other's span (within half-widths).
        const Segment& h = a.axis() == Axis::X ? a : b;
        const Segment& v = a.axis() == Axis::X ? b : a;
        const bool cross_x = v.transverse() + 0.5 * v.width > h.lo() &&
                             v.transverse() - 0.5 * v.width < h.hi();
        const bool cross_y = h.transverse() + 0.5 * h.width > v.lo() &&
                             h.transverse() - 0.5 * h.width < v.hi();
        if (cross_x && cross_y) shorts.emplace_back(i, j);
      }
    }
  }
  return shorts;
}

}  // namespace ind::geom
