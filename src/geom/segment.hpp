// Rectangular conductor segments: the atomic unit of PEEC modelling.
//
// Every wire in the layout is a chain of axis-aligned rectangular bars; each
// bar becomes one RLC-pi stage of the detailed circuit model (Section 3) and
// one filament (or several, after skin-effect splitting) of the
// partial-inductance computation.
#pragma once

#include <array>
#include <cmath>
#include <optional>

#include "geom/layer.hpp"

namespace ind::geom {

/// Electrical role of a conductor; drives model construction (signal nets get
/// drivers/receivers, power/ground nets connect to pads and decap).
/// Substrate marks nodes of the resistive bulk mesh (never routed metal).
enum class NetKind { Signal, Power, Ground, Shield, Substrate };

/// A 2-D point on a layer (metres).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Axis-aligned rectangular conductor bar.
///
/// The centre-line runs from `a` to `b` (a.x==b.x or a.y==b.y); `width` is
/// the lateral extent and the thickness/z come from the layer.
struct Segment {
  Point a, b;
  double width = 0.0;      ///< metres
  double thickness = 0.0;  ///< metres
  double z = 0.0;          ///< centre height above substrate, metres
  int layer = 1;           ///< metal level (1-based)
  int net = -1;            ///< net id within the Layout
  NetKind kind = NetKind::Signal;

  double length() const { return std::hypot(b.x - a.x, b.y - a.y); }
  Axis axis() const {
    return std::abs(b.x - a.x) >= std::abs(b.y - a.y) ? Axis::X : Axis::Y;
  }
  Point center() const { return {0.5 * (a.x + b.x), 0.5 * (a.y + b.y)}; }

  /// Coordinate along the segment's own axis of its start / end (sorted).
  double lo() const { return axis() == Axis::X ? std::min(a.x, b.x) : std::min(a.y, b.y); }
  double hi() const { return axis() == Axis::X ? std::max(a.x, b.x) : std::max(a.y, b.y); }
  /// The fixed transverse coordinate of the centre-line.
  double transverse() const { return axis() == Axis::X ? a.y : a.x; }
};

/// Relative placement of two parallel segments, used by the mutual-inductance
/// kernel (Grover decomposition) and by coupling-capacitance extraction.
struct ParallelGeometry {
  double length_i = 0.0;     ///< length of first segment
  double length_j = 0.0;     ///< length of second segment
  double axial_gap = 0.0;    ///< gap along the shared axis (negative = overlap)
  double lateral = 0.0;      ///< centre-to-centre distance in the routing plane
  double vertical = 0.0;     ///< centre-to-centre vertical distance
  double overlap = 0.0;      ///< axial overlap length (0 if disjoint)

  double center_distance() const { return std::hypot(lateral, vertical); }
};

/// Returns the relative geometry of two segments if they are parallel
/// (same axis); std::nullopt for orthogonal pairs, whose mutual partial
/// inductance is zero by symmetry.
std::optional<ParallelGeometry> parallel_geometry(const Segment& s,
                                                  const Segment& t);

/// True if two same-layer segments run side by side with axial overlap —
/// the candidates for lateral coupling capacitance.
bool laterally_adjacent(const Segment& s, const Segment& t,
                        double max_spacing);

/// Edge-to-edge spacing of two parallel same-layer segments.
double edge_spacing(const Segment& s, const Segment& t);

/// A vertical connection between two metal levels at a point.
struct Via {
  Point at;
  int lower_layer = 1;
  int upper_layer = 2;
  int cuts = 1;  ///< parallel via cuts (resistance divides by this)
  int net = -1;
};

/// A chip I/O pad: where package/bump inductance attaches to the grid.
struct Pad {
  Point at;
  int layer = 6;  ///< topmost metal
  NetKind kind = NetKind::Power;
  double resistance = 0.05;   ///< ohms (pad + ball)
  double inductance = 0.5e-9; ///< henries (package lead + bump)
};

}  // namespace ind::geom
