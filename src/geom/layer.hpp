// Metal layer stack / technology description.
//
// The paper's workloads live on a multi-layer interconnect stack: gates draw
// power from the lowest metal layer, external supplies arrive at the top
// layer through pads, and global signals (clock) route on thick upper
// layers. This module describes that stack; `default_tech()` is a
// representative 6-metal process of the paper's era (c. 2000, 0.18 um).
#pragma once

#include <cstddef>
#include <vector>

namespace ind::geom {

/// Length helper: micrometres to metres (all geometry is stored in metres).
constexpr double um(double x) { return x * 1e-6; }

/// Preferred routing direction of a metal layer.
enum class Axis { X, Y };

constexpr Axis orthogonal(Axis a) { return a == Axis::X ? Axis::Y : Axis::X; }

struct Layer {
  int index = 0;               ///< metal level, 1 = lowest
  double z_bottom = 0.0;       ///< bottom of the metal, metres above substrate
  double thickness = 0.0;      ///< metal thickness, metres
  double sheet_resistance = 0; ///< ohm/square
  Axis preferred = Axis::X;    ///< preferred routing direction
  double dielectric_below = 0; ///< dielectric gap to the layer (or substrate) below, metres

  double z_center() const { return z_bottom + 0.5 * thickness; }
  double z_top() const { return z_bottom + thickness; }
};

/// Full stack plus dielectric and via parameters.
struct Technology {
  std::vector<Layer> layers;     ///< layers[0] is metal-1
  double epsilon_r = 3.9;        ///< oxide relative permittivity
  double via_resistance = 1.0;   ///< ohms per via cut
  double substrate_z = 0.0;      ///< ground reference plane height

  const Layer& layer(int index) const;  ///< 1-based metal index
  std::size_t num_layers() const { return layers.size(); }

  /// Vertical dielectric gap between the top of `lower` and bottom of
  /// `upper` metal levels (1-based indices, lower < upper).
  double gap_between(int lower, int upper) const;

  /// Distance from the bottom of layer `index` to the plane below it
  /// (previous metal top, or substrate for metal-1).
  double height_above_below(int index) const;
};

/// Representative 6-layer copper/aluminium stack circa 2000 (0.18 um node):
/// thin lower layers (high sheet-rho) for local routing, thick low-resistance
/// top layers for global clock and power distribution.
Technology default_tech();

/// Physical constants.
inline constexpr double kMu0 = 4e-7 * 3.14159265358979323846;  // H/m
inline constexpr double kEps0 = 8.8541878128e-12;              // F/m

}  // namespace ind::geom
