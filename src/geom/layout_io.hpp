// Plain-text layout serialisation.
//
// A small, stable, line-oriented format so workloads can be saved, diffed,
// versioned and fed in from outside the generators. One record per line:
//
//   # comment
//   tech default
//   net  <name> <signal|power|ground|shield>
//   wire <net> <layer> <x0um> <y0um> <x1um> <y1um> <width_um>
//   via  <net> <xum> <yum> <lower> <upper> <cuts>
//   pad  <power|ground> <layer> <xum> <yum> <ohms> <henries>
//   drv  <net> <layer> <xum> <yum> <ohms> <slew_s> <start_s> <r|f> <name>
//   rcv  <net> <layer> <xum> <yum> <farads> <name>
//
// Coordinates are micrometres in the file (the natural unit for layout),
// metres in memory.
#pragma once

#include <iosfwd>
#include <string>

#include "geom/layout.hpp"
#include "robust/validate.hpp"

namespace ind::geom {

/// Writes the layout (only `tech default` is representable; a custom stack
/// round-trips geometry but reloads with the default technology).
void write_layout(std::ostream& os, const Layout& layout);
std::string to_text(const Layout& layout);

/// Parses the format above. Throws std::invalid_argument with the line
/// number on malformed records (including non-positive wire widths). The
/// two-argument overload additionally runs the geometric validation pass
/// (robust::validate) over the parsed layout and fills `validation` with
/// the structured issues found; parsing itself still succeeds.
Layout read_layout(std::istream& is);
Layout read_layout(std::istream& is, robust::ValidationReport* validation);
Layout layout_from_text(const std::string& text);

}  // namespace ind::geom
