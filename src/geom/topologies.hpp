// Parameterised layout generators for every topology the paper discusses.
//
// The paper's experiments run on proprietary Motorola layouts (a
// microprocessor global clock net over a multi-layer power grid). These
// generators are the documented substitution: they produce the same
// topology *classes* with exposed knobs (grid pitch, strap width, tree
// depth, pad count) so each experiment exercises the identical code paths.
#pragma once

#include <string>
#include <vector>

#include "geom/layout.hpp"

namespace ind::geom {

// ---------------------------------------------------------------------------
// Power / ground grid (Sections 2-3)
// ---------------------------------------------------------------------------

struct PowerGridSpec {
  double extent_x = um(1000.0);
  double extent_y = um(1000.0);
  Point origin{0.0, 0.0};
  double pitch = um(100.0);        ///< pitch between straps of the same net
  int horizontal_layer = 5;        ///< straps along X
  int vertical_layer = 6;          ///< straps along Y
  double strap_width = um(6.0);
  int pads_per_side = 2;           ///< supply pads per chip side (VDD+GND alternating)
  double pad_resistance = 0.05;    ///< ohms
  double pad_inductance = 0.5e-9;  ///< henries (package lead + bump)
};

struct PowerGridNets {
  int vdd = -1;
  int gnd = -1;
};

/// Adds an interleaved VDD/GND mesh on two layers with vias at same-net
/// crossings and package pads around the perimeter of the top layer.
PowerGridNets add_power_grid(Layout& layout, const PowerGridSpec& spec);

// ---------------------------------------------------------------------------
// Global clock H-tree (Section 6 workload)
// ---------------------------------------------------------------------------

struct ClockTreeSpec {
  int levels = 3;               ///< recursion depth; 4^levels sinks
  Point center{um(500), um(500)};
  double span = um(800.0);      ///< full horizontal extent of the top H
  int horizontal_layer = 5;
  int vertical_layer = 6;
  double trunk_width = um(8.0);
  double taper = 0.7;           ///< width multiplier per level (>= min width)
  double min_width = um(1.0);
  double sink_cap = 50e-15;     ///< sector-buffer input capacitance
  /// Deterministic per-sink load spread (fraction of sink_cap): real sector
  /// buffers differ in size, which is where clock skew comes from in an
  /// otherwise symmetric H-tree.
  double sink_cap_variation = 0.0;
  double driver_res = 10.0;     ///< root clock driver strength
  double slew = 50e-12;
  std::string net_name = "clk";
};

/// Adds an H-tree with a root driver at the centre and a receiver (sector
/// buffer) at every leaf. Returns the clock net id.
int add_clock_htree(Layout& layout, const ClockTreeSpec& spec);

// ---------------------------------------------------------------------------
// Parallel bus (crosstalk / design-technique workloads)
// ---------------------------------------------------------------------------

struct BusSpec {
  int bits = 4;
  double length = um(1000.0);
  double width = um(1.0);
  double spacing = um(1.0);     ///< edge-to-edge spacing between tracks
  int layer = 6;
  Point origin{0.0, 0.0};
  Axis axis = Axis::X;
  std::string prefix = "bus";
  int shield_period = 0;        ///< insert a ground shield every N signals (0 = none)
  int shield_net = -1;          ///< existing ground net for shields (-1: create one)
  bool add_drivers = true;
  double driver_res = 30.0;
  double sink_cap = 20e-15;
  double slew = 50e-12;
};

struct BusResult {
  std::vector<int> signal_nets;
  int shield_net = -1;
  std::vector<double> track_positions;  ///< transverse coordinate per signal
};

/// Adds a parallel bus, optionally with interleaved grounded shield tracks
/// (Fig. 5 "shielding"). Drivers sit at the `origin` end, receivers at the
/// far end.
BusResult add_bus(Layout& layout, const BusSpec& spec);

// ---------------------------------------------------------------------------
// Fig. 6: dedicated ground planes (dense grounded mesh above/below signal)
// ---------------------------------------------------------------------------

struct GroundPlaneSpec {
  int layer = 5;
  Point origin{0.0, 0.0};
  double extent_along = um(1000.0);  ///< along the fill direction
  double extent_across = um(40.0);   ///< width of the plane region
  Axis axis = Axis::X;               ///< fill direction
  double fill_width = um(2.0);
  double fill_pitch = um(4.0);
  int net = -1;                      ///< ground net (-1: create one)
};

/// Fills a region with parallel grounded lines approximating a plane (the
/// paper's "dedicated ground planes or meshes"). Returns the ground net id.
int add_ground_plane(Layout& layout, const GroundPlaneSpec& spec);

// ---------------------------------------------------------------------------
// Fig. 7: inter-digitated wide wire
// ---------------------------------------------------------------------------

struct InterdigitatedSpec {
  double total_signal_width = um(10.0);  ///< metal budget of the original wide wire
  int fingers = 1;                       ///< 1 = the original single wide wire
  double length = um(1000.0);
  double spacing = um(1.0);              ///< gap between adjacent fingers/shields
  double shield_width = um(1.0);
  int layer = 6;
  Point origin{0.0, 0.0};
};

struct InterdigitatedResult {
  int signal_net = -1;
  int ground_net = -1;
  double metallization_width = 0.0;  ///< total transverse metal footprint
};

/// Splits a wide signal wire into `fingers` thinner wires with grounded
/// shields in between, end-strapped so they remain one electrical net.
InterdigitatedResult add_interdigitated(Layout& layout,
                                        const InterdigitatedSpec& spec);

// ---------------------------------------------------------------------------
// Fig. 8: staggered inverter (repeater) patterns
// ---------------------------------------------------------------------------

struct StaggeredBusSpec {
  int bits = 3;
  double length = um(2000.0);
  double width = um(1.0);
  double spacing = um(1.0);
  int layer = 6;
  Point origin{0.0, 0.0};
  bool staggered = false;   ///< alternate driver ends on adjacent bits
  double driver_res = 30.0;
  double sink_cap = 20e-15;
  double slew = 50e-12;
};

/// Bus whose adjacent bits are driven from alternating ends when
/// `staggered`; signal polarities then alternate along the coupled run so
/// capacitive and inductive coupling tend to cancel.
BusResult add_staggered_bus(Layout& layout, const StaggeredBusSpec& spec);

// ---------------------------------------------------------------------------
// Fig. 9: twisted-bundle layout
// ---------------------------------------------------------------------------

struct TwistedBundleSpec {
  int bits = 4;
  int regions = 4;          ///< routing regions; tracks permute at boundaries
  double length = um(2000.0);
  double width = um(1.0);
  double spacing = um(1.0);
  int layer = 6;
  int jog_layer = 5;        ///< layer used for the short crossover jogs
  Point origin{0.0, 0.0};
  bool twisted = true;      ///< false = plain parallel bundle (baseline)
  bool add_ground_return = true;  ///< straight ground track along the bundle
  double driver_res = 30.0;
  double sink_cap = 20e-15;
  double slew = 50e-12;
};

/// Twisted-bundle structure: at each region boundary adjacent tracks swap in
/// a braided (alternating-phase transposition) pattern, so every net's
/// position relative to its neighbours — and to the ground return —
/// alternates region by region and the coupled flux contributions cancel.
/// The returned BusResult's shield_net is the ground return (if added).
BusResult add_twisted_bundle(Layout& layout, const TwistedBundleSpec& spec);

// ---------------------------------------------------------------------------
// Fig. 1: driver-receiver-grid current-flow testbench
// ---------------------------------------------------------------------------

struct DriverReceiverGridSpec {
  PowerGridSpec grid;
  double signal_length = um(800.0);
  double signal_width = um(2.0);
  /// Routed one level below the grid layers so the horizontal signal never
  /// shares a layer with (and thus never shorts against) the grid straps.
  int signal_layer = 4;
  double driver_res = 20.0;
  double sink_cap = 30e-15;
  double slew = 50e-12;
};

struct DriverReceiverGridResult {
  int signal_net = -1;
  PowerGridNets grid_nets;
};

/// The Figure-1 topology: one signal line routed across a small power/ground
/// grid with a driver on one side and receiver on the other, supplies via
/// pads/package.
DriverReceiverGridResult add_driver_receiver_grid(
    Layout& layout, const DriverReceiverGridSpec& spec);

}  // namespace ind::geom
