// Layout: the complete physical description handed to extraction and to the
// PEEC / loop model builders.
//
// Holds conductor segments over a technology stack, vias, supply pads, and
// the switching elements (drivers / receivers) that Section 2 of the paper
// needs to trace current loops I1/I2/I3 through the grid and package.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "geom/segment.hpp"

namespace ind::geom {

/// A gate driving a signal net: modelled downstream as a switched resistor
/// between the local power/ground grid and the net (Section 3's switching
/// device model, specialised to the net under analysis).
struct Driver {
  Point at;
  int layer = 1;
  int signal_net = -1;
  double strength_ohm = 30.0;  ///< effective pull resistance
  double slew = 50e-12;        ///< input transition time, seconds
  double start_time = 0.0;     ///< when the input starts switching
  bool rising = true;          ///< output transition direction
  std::string name;
};

/// A receiving gate: a lumped load capacitance at a pin, and a waveform
/// probe point for delay/skew measurement.
struct Receiver {
  Point at;
  int layer = 1;
  int signal_net = -1;
  double load_cap = 20e-15;  ///< farads
  std::string name;
};

struct NetInfo {
  std::string name;
  NetKind kind = NetKind::Signal;
};

class Layout {
 public:
  /// Empty layout over an empty technology (assign a real one before use).
  Layout() = default;
  explicit Layout(Technology tech) : tech_(std::move(tech)) {}

  const Technology& tech() const { return tech_; }

  // --- nets ---------------------------------------------------------------
  int add_net(std::string name, NetKind kind);
  int find_net(const std::string& name) const;  ///< -1 if absent
  const NetInfo& net(int id) const { return nets_.at(static_cast<std::size_t>(id)); }
  std::size_t num_nets() const { return nets_.size(); }

  // --- geometry -----------------------------------------------------------
  /// Adds an axis-aligned wire on `layer` from `a` to `b`; thickness and z
  /// come from the technology. Returns the segment index.
  std::size_t add_wire(int net, int layer, Point a, Point b, double width);

  void add_via(int net, Point at, int lower_layer, int upper_layer,
               int cuts = 1);
  /// Appends a fully specified segment verbatim (no technology lookup).
  /// Used by the artifact store to restore a serialized layout exactly;
  /// normal construction should go through add_wire.
  std::size_t add_segment(Segment s) {
    segments_.push_back(s);
    return segments_.size() - 1;
  }
  void add_pad(Pad pad) { pads_.push_back(pad); }
  void add_driver(Driver d) { drivers_.push_back(std::move(d)); }
  void add_receiver(Receiver r) { receivers_.push_back(std::move(r)); }

  const std::vector<Segment>& segments() const { return segments_; }
  const std::vector<Via>& vias() const { return vias_; }
  const std::vector<Pad>& pads() const { return pads_; }
  const std::vector<Driver>& drivers() const { return drivers_; }
  const std::vector<Receiver>& receivers() const { return receivers_; }
  std::vector<Driver>& drivers() { return drivers_; }
  std::vector<Receiver>& receivers() { return receivers_; }

  // --- queries ------------------------------------------------------------
  /// Pairs of same-axis segments with centre distance <= max_distance.
  /// These are the candidate mutual-inductance partners; orthogonal pairs
  /// have zero mutual partial inductance and are never returned.
  std::vector<std::pair<std::size_t, std::size_t>> parallel_pairs(
      double max_distance) const;

  /// Same-layer side-by-side pairs with edge spacing <= max_spacing — the
  /// candidates for lateral coupling capacitance.
  std::vector<std::pair<std::size_t, std::size_t>> adjacent_pairs(
      double max_spacing) const;

  /// Total routed wirelength (metres).
  double total_wirelength() const;

  /// Bounding box of all segments: {min, max}.
  std::pair<Point, Point> bounding_box() const;

 private:
  Technology tech_;
  std::vector<NetInfo> nets_;
  std::vector<Segment> segments_;
  std::vector<Via> vias_;
  std::vector<Pad> pads_;
  std::vector<Driver> drivers_;
  std::vector<Receiver> receivers_;
};

/// Returns a copy of `layout` in which every segment longer than `max_len`
/// is split into equal pieces no longer than `max_len`. Controls PEEC model
/// granularity (more segments -> finer distributed RLC, larger matrices).
Layout subdivide(const Layout& layout, double max_len);

/// Model-ready refinement: first cuts every wire at each electrical
/// connection point lying on it (vias, drivers, receivers, pads) so those
/// points become segment endpoints (= circuit nodes), then subdivides the
/// pieces to `max_segment_length`.
Layout refine(const Layout& layout, double max_segment_length);

/// Physical shorts: pairs of same-layer segments of *different* nets whose
/// metal overlaps (parallel tracks that touch, or orthogonal wires that
/// cross on one layer). A layout with shorts is not electrically meaningful
/// and the PEEC builder rejects it.
std::vector<std::pair<std::size_t, std::size_t>> find_layout_shorts(
    const Layout& layout);

}  // namespace ind::geom
