// Matrix-free partial-inductance operator over a voxel grid.
//
// Because every cell of a VoxelGrid is an identical axis-aligned bar on a
// regular lattice, the mutual partial inductance of two same-orientation
// cells depends only on their lattice offset (dx, dy, dz) — the L block is
// block-Toeplitz — and orthogonal cells do not couple at all (Grover).
// ToeplitzLOperator precomputes one kernel tensor per orientation from the
// *same* analytic Grover/GMD formulas the dense extractor uses
// (extract/partial_inductance.hpp), embeds it in a circulant of 5-smooth
// dimensions, and caches its forward 3-D FFT. Applying L·x is then
// scatter → FFT → pointwise multiply → inverse FFT → gather per
// orientation: O(n log n) instead of the dense O(n²).
//
// Cross-check contract: to_dense() materialises L from the *identical*
// kernel evaluations the FFT path multiplies with (one table, two consumers)
// — entries agree bitwise with kernel(), and the FFT apply matches the dense
// multiply to ~1e-12 relative (roundoff of the transforms only). The dense
// form doubles as the small-n oracle in tests and as the ladder's
// dense-fallback system when GMRES cannot converge.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fast/voxelize.hpp"
#include "la/dense_matrix.hpp"

namespace ind::fast {

class ToeplitzLOperator {
 public:
  /// Builds the per-orientation kernel tensors and their FFTs. Timed under
  /// "fast.kernel"; charges the governor per kernel slice.
  explicit ToeplitzLOperator(VoxelGrid grid);

  std::size_t size() const { return grid_.cells.size(); }
  const VoxelGrid& grid() const { return grid_; }

  /// Kernel entry: mutual partial inductance (henries) of two cells of the
  /// given orientation at lattice offset (dx, dy, dz); the (0,0,0) entry is
  /// the cell self inductance. Even in every component.
  double kernel(geom::Axis axis, std::int64_t dx, std::int64_t dy,
                std::int64_t dz) const;

  /// y = L x via the circulant FFT path. Bitwise deterministic at any
  /// thread count. Timed under "fast.apply".
  void apply(const la::CVector& x, la::CVector& y) const;

  /// y = L x by direct O(n²) kernel summation — the bitwise-exact dense
  /// cross-check mode (identical kernel values, no transform roundoff).
  void apply_dense(const la::CVector& x, la::CVector& y) const;

  /// Dense L over the cells, from the same kernel table (small-n oracle and
  /// the ladder's dense-fallback operator).
  la::Matrix to_dense() const;

 private:
  struct Block {
    geom::Axis axis = geom::Axis::X;
    std::vector<std::uint32_t> cells;      ///< indices into grid_.cells
    std::array<std::int64_t, 3> mn{};      ///< min lattice coords
    std::array<std::size_t, 3> dims{};     ///< lattice extent per axis
    std::array<std::size_t, 3> embed{};    ///< circulant (FFT) dims
    std::vector<std::size_t> slot;         ///< per block cell: embed index
    std::vector<la::Complex> kernel_fft;   ///< DFT of the embedded kernel
  };

  void build_block(Block& block);

  VoxelGrid grid_;
  std::vector<Block> blocks_;
};

}  // namespace ind::fast
