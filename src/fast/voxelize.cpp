#include "fast/voxelize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "runtime/metrics.hpp"

namespace ind::fast {
namespace {

std::int64_t quantize(double coord, double origin, double pitch) {
  return std::llround((coord - origin) / pitch);
}

std::uint64_t pack_coord(std::int64_t ix, std::int64_t iy, std::int64_t iz) {
  // 21 bits per axis, biased: lattices beyond +-2^20 steps are rejected at
  // voxelize() entry, so the packing is collision-free.
  const std::uint64_t bias = 1u << 20;
  return ((static_cast<std::uint64_t>(ix + static_cast<std::int64_t>(bias))) << 42) |
         ((static_cast<std::uint64_t>(iy + static_cast<std::int64_t>(bias))) << 21) |
         (static_cast<std::uint64_t>(iz + static_cast<std::int64_t>(bias)));
}

}  // namespace

double VoxelStats::relative_error(double pitch) const {
  double err = pitch > 0.0 ? max_snap / pitch : 0.0;
  if (length_in > 0.0)
    err = std::max(err, std::abs(length_out - length_in) / length_in);
  return err;
}

VoxelGrid voxelize(const std::vector<geom::Segment>& filaments,
                   const geom::Technology& tech, const VoxelOptions& opts) {
  runtime::ScopedTimer timer("fast.voxelize");
  if (filaments.empty())
    throw std::invalid_argument("voxelize: no filaments");

  VoxelGrid grid;

  // Pitch: explicit, or the shortest filament so everything keeps >= 1 cell.
  double pitch = opts.pitch;
  if (pitch <= 0.0) {
    pitch = 1e300;
    for (const geom::Segment& f : filaments)
      if (f.length() > 0.0) pitch = std::min(pitch, f.length());
    if (pitch >= 1e300) throw std::invalid_argument("voxelize: degenerate filaments");
  }
  grid.pitch = pitch;

  // Vertical pitch from the distinct filament z-planes.
  std::vector<double> zs;
  zs.reserve(filaments.size());
  for (const geom::Segment& f : filaments) zs.push_back(f.z);
  std::sort(zs.begin(), zs.end());
  zs.erase(std::unique(zs.begin(), zs.end()), zs.end());
  double pitch_z = opts.pitch_z;
  if (pitch_z <= 0.0) {
    pitch_z = pitch;
    for (std::size_t i = 1; i < zs.size(); ++i)
      pitch_z = std::min(pitch_z, zs[i] - zs[i - 1]);
  }
  grid.pitch_z = pitch_z;

  // Uniform cross-section: deterministic mean unless overridden.
  double wsum = 0.0, tsum = 0.0;
  double min_x = 1e300, min_y = 1e300;
  for (const geom::Segment& f : filaments) {
    wsum += f.width;
    tsum += f.thickness;
    min_x = std::min({min_x, f.a.x, f.b.x});
    min_y = std::min({min_y, f.a.y, f.b.y});
  }
  grid.width = opts.width > 0.0 ? opts.width
                                : wsum / static_cast<double>(filaments.size());
  grid.thickness = opts.thickness > 0.0
                       ? opts.thickness
                       : tsum / static_cast<double>(filaments.size());
  grid.origin_x = min_x;
  grid.origin_y = min_y;
  grid.origin_z = zs.front();

  std::unordered_map<std::uint64_t, std::size_t> node_of;
  node_of.reserve(filaments.size() * 2);
  auto get_node = [&](std::int64_t ix, std::int64_t iy, std::int64_t iz) {
    if (std::llabs(ix) >= (1 << 20) || std::llabs(iy) >= (1 << 20) ||
        std::llabs(iz) >= (1 << 20))
      throw std::invalid_argument("voxelize: lattice exceeds 2^20 steps");
    const auto [it, inserted] =
        node_of.try_emplace(pack_coord(ix, iy, iz), grid.node_count);
    if (inserted) {
      ++grid.node_count;
      grid.node_coord.push_back({static_cast<std::int32_t>(ix),
                                 static_cast<std::int32_t>(iy),
                                 static_cast<std::int32_t>(iz)});
    }
    return it->second;
  };

  double snap_sum = 0.0;
  std::size_t snap_count = 0;
  auto snap_err = [&](double coord, double origin, double p, std::int64_t q) {
    const double err = std::abs(coord - (origin + static_cast<double>(q) * p));
    grid.stats.max_snap = std::max(grid.stats.max_snap, err);
    snap_sum += err;
    ++snap_count;
  };

  grid.fil_node_a.reserve(filaments.size());
  grid.fil_node_b.reserve(filaments.size());
  for (std::size_t k = 0; k < filaments.size(); ++k) {
    const geom::Segment& f = filaments[k];
    const geom::Axis axis = f.axis();
    const bool along_x = axis == geom::Axis::X;
    const double a_ax = along_x ? f.a.x : f.a.y;
    const double b_ax = along_x ? f.b.x : f.b.y;
    const double tr = f.transverse();
    const double tr_origin = along_x ? grid.origin_y : grid.origin_x;
    const std::int64_t ia = quantize(a_ax, along_x ? grid.origin_x : grid.origin_y, pitch);
    const std::int64_t ib = quantize(b_ax, along_x ? grid.origin_x : grid.origin_y, pitch);
    const std::int64_t it = quantize(tr, tr_origin, pitch);
    const std::int64_t iz = quantize(f.z, grid.origin_z, pitch_z);
    snap_err(a_ax, along_x ? grid.origin_x : grid.origin_y, pitch, ia);
    snap_err(b_ax, along_x ? grid.origin_x : grid.origin_y, pitch, ib);
    snap_err(tr, tr_origin, pitch, it);
    snap_err(f.z, grid.origin_z, pitch_z, iz);
    grid.stats.max_cross_section =
        std::max(grid.stats.max_cross_section, std::abs(f.width - grid.width) +
                                                   std::abs(f.thickness -
                                                            grid.thickness));
    grid.stats.length_in += f.length();

    const std::int64_t n_cells = std::llabs(ib - ia);
    auto lattice_node = [&](std::int64_t s) {
      return along_x ? get_node(s, it, iz) : get_node(it, s, iz);
    };
    grid.fil_node_a.push_back(lattice_node(ia));
    grid.fil_node_b.push_back(lattice_node(ib));
    if (n_cells == 0) {
      ++grid.stats.dropped_filaments;
      continue;
    }
    grid.stats.length_out += static_cast<double>(n_cells) * pitch;

    // Exact total resistance, distributed evenly across the cells.
    const geom::Layer& layer = tech.layer(f.layer);
    const double rho = layer.sheet_resistance * layer.thickness;
    const double r_fil =
        std::max(rho * f.length() / (f.width * f.thickness), 1e-9);
    const double r_cell = r_fil / static_cast<double>(n_cells);

    const std::int64_t step = ib > ia ? 1 : -1;
    for (std::int64_t c = 0; c < n_cells; ++c) {
      const std::int64_t s = ia + c * step;
      const std::int64_t e = s + step;
      VoxelCell cell;
      cell.axis = axis;
      cell.filament = static_cast<std::uint32_t>(k);
      const std::int64_t lo = std::min(s, e);
      if (along_x) {
        cell.ix = static_cast<std::int32_t>(lo);
        cell.iy = static_cast<std::int32_t>(it);
      } else {
        cell.ix = static_cast<std::int32_t>(it);
        cell.iy = static_cast<std::int32_t>(lo);
      }
      cell.iz = static_cast<std::int32_t>(iz);
      grid.cells.push_back(cell);
      grid.resistance.push_back(r_cell);
      grid.node_a.push_back(lattice_node(s));
      grid.node_b.push_back(lattice_node(e));
    }
  }
  grid.stats.mean_snap = snap_count ? snap_sum / static_cast<double>(snap_count) : 0.0;

  auto& metrics = runtime::MetricsRegistry::instance();
  metrics.max_count("fast.voxel_cells",
                    static_cast<std::int64_t>(grid.cells.size()));
  metrics.max_count("fast.voxel_nodes",
                    static_cast<std::int64_t>(grid.node_count));
  return grid;
}

}  // namespace ind::fast
