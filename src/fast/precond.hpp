// Preconditioners for the FFT-GMRES loop extractor.
//
// GMRES on the MQS saddle system converges slowly without a preconditioner
// that captures the local inductive coupling. The Section-4 sparsification
// schemes are exactly that: a sparse L' ≈ L whose MQS system factors
// cheaply with the real-only la::SparseLu. This header provides
//   * voxel_sparsified_l() — lattice-aware builders of the existing schemes
//     (diagonal / block-diagonal strips / shell shift-truncate / magnitude
//     truncation, mirroring sparsify/{block_diagonal,shell,truncation}
//     semantics) that exploit the Toeplitz kernel: the value of a kept term
//     depends only on the lattice offset, so each offset is evaluated once
//     and reused for every pair, giving O(n · |window|) assembly instead of
//     the O(n²) pair scans of the dense schemes; and
//   * ComplexSparseFactor — the complex sparse preconditioner matrix
//     factored through the recovery ladder in its real-equivalent 2m × 2m
//     form [[Re, -Im], [Im, Re]], which lets the existing real SparseLu
//     (AMD ordering, symbolic/numeric split, bitwise contract) serve
//     complex systems unchanged.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "fast/toeplitz_op.hpp"
#include "la/dense_matrix.hpp"
#include "robust/recovery.hpp"
#include "sparsify/mutual_spec.hpp"

namespace ind::fast {

enum class PrecondKind {
  None,       ///< unpreconditioned GMRES (diagnostics only)
  Diag,       ///< cell self terms only
  BlockDiag,  ///< full coupling within axial strips (sparsify/block_diagonal)
  Shell,      ///< shifted kernel M(d) - M(r0) inside radius (sparsify/shell)
  Truncation, ///< raw kernel, |M_ij| >= ratio * sqrt(L_ii L_jj) kept
};

struct PrecondOptions {
  /// Diag is the default: on lattice grids the saddle system is close enough
  /// to diagonally dominant that GMRES converges in a handful of iterations,
  /// and the windowed schemes' 2-D/3-D coupling patterns incur severe sparse
  /// LU fill (observed >80x the preconditioner nnz at ~25k cells), making
  /// their factorisation dominate the whole solve. Select a windowed kind
  /// when diagonal preconditioning stagnates on tightly coupled geometry.
  PrecondKind kind = PrecondKind::Diag;
  /// Coupling window radius (metres); <= 0 selects 3.5 x pitch.
  double radius = 0.0;
  /// Truncation keep threshold (PrecondKind::Truncation).
  double truncation_ratio = 0.05;
  /// Strip width in cells along the axial direction (PrecondKind::BlockDiag).
  std::size_t strip_cells = 16;
};

/// Sparse L' over the voxel cells per the selected scheme. Deterministic:
/// term order follows cell index order.
sparsify::SparsifiedL voxel_sparsified_l(const ToeplitzLOperator& op,
                                         const PrecondOptions& opts);

struct ComplexTriplet {
  std::size_t i = 0, j = 0;
  la::Complex v;
};

/// A complex sparse factorisation backed by the real SparseLu on the
/// real-equivalent doubled system.
class ComplexSparseFactor {
 public:
  ComplexSparseFactor() = default;
  /// Factors the m x m complex system given by `entries` (duplicates sum,
  /// stamp idiom) through robust::factor_sparse_with_recovery; ladder
  /// actions land in `report`. Timed under "fast.precond_factor".
  ComplexSparseFactor(std::size_t m, const std::vector<ComplexTriplet>& entries,
                      robust::SolveReport& report, std::string_view where,
                      std::size_t dense_fallback_limit = 8192);

  bool usable() const { return factor_.usable(); }
  std::size_t size() const { return m_; }

  /// x = A^-1 b.
  la::CVector solve(const la::CVector& b) const;

 private:
  std::size_t m_ = 0;
  robust::GuardedSparseFactor factor_;
};

}  // namespace ind::fast
