// In-house mixed-radix complex FFT: 1-D plans, batched transforms, and the
// blocked 3-D transform the Toeplitz operator is built on.
//
// The circulant embedding of the partial-inductance kernel (toeplitz_op.hpp)
// needs forward/inverse 3-D DFTs of modest, highly composite sizes. Rather
// than pull in an external dependency, FftPlan implements the classic
// recursive Cooley-Tukey decomposition over the prime factorisation of n:
// radix-2/3/5 cover every size good_fft_size() produces, and a direct-DFT
// combine step handles arbitrary prime radices so *any* n is valid (the
// voxel grids themselves need not be padded to powers of two).
//
// Determinism: a single transform is strictly serial. Batched transforms
// (fft_batch, fft_3d) parallelise over *whole transforms* with
// runtime::parallel_for — each line of the 3-D tensor is read and written by
// exactly one chunk, so results are bitwise-identical to the serial loop at
// any thread count (the runtime's chunking contract). Work is charged to the
// governor per chunk with a unit count that is a pure function of the
// chunk's line range.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "la/dense_matrix.hpp"

namespace ind::fast {

/// Smallest 5-smooth integer >= n (FFT-friendly padded size).
std::size_t good_fft_size(std::size_t n);

/// Reusable transform plan for one length: prime factorisation plus the
/// length-n twiddle table. Plans are immutable after construction and safe
/// to share across threads.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t max_radix() const { return max_radix_; }

  /// Out-of-place transform of one length-n line: out[k] = sum_j in[j] w^jk
  /// with w = exp(-2*pi*i/n) forward, exp(+2*pi*i/n) inverse. The inverse is
  /// *unscaled* (apply 1/n yourself, or use the in-place helpers below).
  /// `in` and `out` must not alias.
  void transform(const la::Complex* in, la::Complex* out, bool inverse) const;

  /// In-place convenience (copies through an internal-size scratch the
  /// caller provides: scratch must hold n elements). Inverse scales by 1/n.
  void forward(la::Complex* data, la::Complex* scratch) const;
  void inverse(la::Complex* data, la::Complex* scratch) const;

 private:
  void recurse(const la::Complex* in, std::size_t in_stride, la::Complex* out,
               std::size_t n, std::size_t depth, std::size_t root_stride,
               bool inverse, la::Complex* radix_buf) const;

  std::size_t n_ = 1;
  std::size_t max_radix_ = 1;
  std::vector<std::size_t> radices_;    // prime factors, ascending
  std::vector<la::Complex> twiddles_;   // w^t, t in [0, n), forward sign
};

/// In-place transforms of `batch` contiguous length-plan.size() rows
/// starting at `data` with the given row stride (elements). Parallel over
/// rows; inverse scales by 1/n. Timed under "fast.fft".
void fft_batch(const FftPlan& plan, la::Complex* data, std::size_t batch,
               std::size_t row_stride, bool inverse);

/// In-place 3-D transform of a row-major tensor with shape {n0, n1, n2}
/// (n2 fastest-varying); data.size() must equal n0*n1*n2. Performs a batched
/// 1-D pass per axis, gathering strided lines into contiguous blocks.
/// Inverse scales by 1/(n0*n1*n2).
void fft_3d(const std::array<std::size_t, 3>& shape,
            std::vector<la::Complex>& data, bool inverse);

}  // namespace ind::fast
