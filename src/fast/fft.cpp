#include "fast/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "govern/budget.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::fast {
namespace {

// Work units per transformed line (pure function of the line length — part
// of the govern bitwise-reproducibility contract).
std::uint64_t line_units(std::size_t n) { return 1 + n / 256; }

}  // namespace

std::size_t good_fft_size(std::size_t n) {
  if (n <= 1) return 1;
  for (std::size_t s = n;; ++s) {
    std::size_t r = s;
    for (std::size_t p : {2, 3, 5})
      while (r % p == 0) r /= p;
    if (r == 1) return s;
  }
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("FftPlan: size must be positive");
  std::size_t r = n;
  for (std::size_t p = 2; p * p <= r;) {
    if (r % p == 0) {
      radices_.push_back(p);
      r /= p;
    } else {
      ++p;
    }
  }
  if (r > 1) radices_.push_back(r);
  for (std::size_t f : radices_) max_radix_ = std::max(max_radix_, f);
  twiddles_.resize(n);
  const double step = -2.0 * M_PI / static_cast<double>(n);
  for (std::size_t t = 0; t < n; ++t)
    twiddles_[t] = std::polar(1.0, step * static_cast<double>(t));
}

void FftPlan::recurse(const la::Complex* in, std::size_t in_stride,
                      la::Complex* out, std::size_t n, std::size_t depth,
                      std::size_t root_stride, bool inverse,
                      la::Complex* radix_buf) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const std::size_t r = radices_[depth];
  const std::size_t m = n / r;
  for (std::size_t q = 0; q < r; ++q)
    recurse(in + q * in_stride, in_stride * r, out + q * m, m, depth + 1,
            root_stride * r, inverse, radix_buf);
  // Combine the r sub-DFTs: X[k] = sum_q w_n^{qk} Y_q[k mod m]. Twiddles for
  // the local size n live at stride root_stride in the global table
  // (w_n = w_N^{N/n}); the inverse transform conjugates them.
  if (r == 2) {
    for (std::size_t k2 = 0; k2 < m; ++k2) {
      la::Complex w = twiddles_[k2 * root_stride];
      if (inverse) w = std::conj(w);
      const la::Complex a = out[k2];
      const la::Complex wb = w * out[m + k2];
      out[k2] = a + wb;
      out[m + k2] = a - wb;
    }
    return;
  }
  for (std::size_t k2 = 0; k2 < m; ++k2) {
    for (std::size_t q = 0; q < r; ++q) radix_buf[q] = out[q * m + k2];
    for (std::size_t k1 = 0; k1 < r; ++k1) {
      const std::size_t k = k1 * m + k2;
      la::Complex acc = radix_buf[0];
      for (std::size_t q = 1; q < r; ++q) {
        la::Complex w = twiddles_[((q * k) % n) * root_stride];
        if (inverse) w = std::conj(w);
        acc += w * radix_buf[q];
      }
      out[k] = acc;
    }
  }
}

void FftPlan::transform(const la::Complex* in, la::Complex* out,
                        bool inverse) const {
  std::vector<la::Complex> radix_buf(max_radix_);
  recurse(in, 1, out, n_, 0, 1, inverse, radix_buf.data());
}

void FftPlan::forward(la::Complex* data, la::Complex* scratch) const {
  transform(data, scratch, false);
  for (std::size_t i = 0; i < n_; ++i) data[i] = scratch[i];
}

void FftPlan::inverse(la::Complex* data, la::Complex* scratch) const {
  transform(data, scratch, true);
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] = scratch[i] * scale;
}

void fft_batch(const FftPlan& plan, la::Complex* data, std::size_t batch,
               std::size_t row_stride, bool inverse) {
  runtime::ScopedTimer timer("fast.fft");
  const std::size_t n = plan.size();
  runtime::parallel_for(
      batch,
      [&](std::size_t begin, std::size_t end) {
        if (govern::checkpoint((end - begin) * line_units(n))) return;
        std::vector<la::Complex> scratch(n);
        for (std::size_t row = begin; row < end; ++row) {
          la::Complex* line = data + row * row_stride;
          if (inverse)
            plan.inverse(line, scratch.data());
          else
            plan.forward(line, scratch.data());
        }
      },
      {.cancel = govern::Governor::instance().cancel_token()});
  govern::throw_if_cancelled("fast.fft");
}

namespace {

/// Batched transform over strided lines: line l starts at base_of(l) and its
/// elements sit `stride` apart. Gathers each line into a contiguous buffer,
/// transforms, scatters back. Same chunking/determinism story as fft_batch.
template <typename BaseFn>
void strided_pass(const FftPlan& plan, la::Complex* data, std::size_t n_lines,
                  std::size_t stride, bool inverse, const BaseFn& base_of) {
  const std::size_t n = plan.size();
  if (n == 1) return;
  runtime::parallel_for(
      n_lines,
      [&](std::size_t begin, std::size_t end) {
        if (govern::checkpoint((end - begin) * line_units(n))) return;
        std::vector<la::Complex> line(n), out(n);
        const double scale = inverse ? 1.0 / static_cast<double>(n) : 1.0;
        for (std::size_t l = begin; l < end; ++l) {
          la::Complex* base = data + base_of(l);
          for (std::size_t j = 0; j < n; ++j) line[j] = base[j * stride];
          plan.transform(line.data(), out.data(), inverse);
          for (std::size_t j = 0; j < n; ++j) base[j * stride] = out[j] * scale;
        }
      },
      {.cancel = govern::Governor::instance().cancel_token()});
  govern::throw_if_cancelled("fast.fft3d");
}

}  // namespace

void fft_3d(const std::array<std::size_t, 3>& shape,
            std::vector<la::Complex>& data, bool inverse) {
  const std::size_t n0 = shape[0], n1 = shape[1], n2 = shape[2];
  if (data.size() != n0 * n1 * n2)
    throw std::invalid_argument("fft_3d: data size does not match shape");
  runtime::ScopedTimer timer("fast.fft");
  // Fastest axis first: contiguous rows need no gather.
  if (n2 > 1) {
    const FftPlan plan2(n2);
    const std::size_t rows = n0 * n1;
    runtime::parallel_for(
        rows,
        [&](std::size_t begin, std::size_t end) {
          if (govern::checkpoint((end - begin) * line_units(n2))) return;
          std::vector<la::Complex> scratch(n2);
          for (std::size_t row = begin; row < end; ++row) {
            la::Complex* line = data.data() + row * n2;
            if (inverse)
              plan2.inverse(line, scratch.data());
            else
              plan2.forward(line, scratch.data());
          }
        },
        {.cancel = govern::Governor::instance().cancel_token()});
    govern::throw_if_cancelled("fast.fft3d");
  }
  if (n1 > 1) {
    const FftPlan plan1(n1);
    strided_pass(plan1, data.data(), n0 * n2, n2, inverse,
                 [n1, n2](std::size_t l) {
                   return (l / n2) * n1 * n2 + (l % n2);
                 });
  }
  if (n0 > 1) {
    const FftPlan plan0(n0);
    strided_pass(plan0, data.data(), n1 * n2, n1 * n2, inverse,
                 [](std::size_t l) { return l; });
  }
}

}  // namespace ind::fast
