// Voxelizer: snaps skin-split conductor filaments onto a regular lattice of
// identical unit cells, the precondition for the Toeplitz structure the FFT
// operator exploits (SuperVoxHenry-style, see DESIGN.md "Fast extraction").
//
// Each filament centre-line is snapped to the nearest lattice rows and diced
// into axis-aligned unit cells of length `pitch`; all cells share one
// representative cross-section (width x thickness), because translation
// invariance of the partial-inductance kernel — the property that makes L
// block-Toeplitz — requires every cell to be geometrically identical.
// Resistance is *not* voxel-approximated: each filament's true resistance is
// distributed evenly over its cells, so the DC path resistance is exact
// regardless of the snap. Every approximation made (endpoint snap distance,
// cross-section substitution, dropped sub-pitch filaments) is accumulated in
// VoxelStats and reported through the example/bench output so the
// accuracy/speed trade is visible, never silent.
//
// On lattice-aligned layouts (coordinates, lengths and spacings that are
// integer multiples of the pitch, uniform cross-sections) the snap error is
// identically zero and — partial inductance being exactly additive under
// subdivision (Grover's F telescopes) — the voxelized system is
// mathematically equivalent to the dense whole-filament system. This is the
// basis of the dense-vs-FFT 1e-6 agreement gate in CI.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/layer.hpp"
#include "geom/segment.hpp"

namespace ind::fast {

struct VoxelOptions {
  /// Lattice pitch in x/y (metres). <= 0 selects the shortest filament
  /// length, giving every filament at least one cell.
  double pitch = 0.0;
  /// Vertical pitch between layer planes. <= 0 selects the smallest gap
  /// between distinct filament z-centres (or `pitch` for planar layouts).
  double pitch_z = 0.0;
  /// Uniform cell cross-section. <= 0 selects the mean filament width /
  /// thickness (deterministic).
  double width = 0.0;
  double thickness = 0.0;
};

/// One unit cell: spans [ix, ix+1] x {iy} x {iz} lattice steps for an X
/// cell (y/x swapped for Y). Current flows node_a -> node_b, preserving the
/// source filament's direction.
struct VoxelCell {
  std::int32_t ix = 0, iy = 0, iz = 0;
  geom::Axis axis = geom::Axis::X;
  std::uint32_t filament = 0;  ///< source filament index
};

struct VoxelStats {
  double max_snap = 0.0;            ///< metres, worst endpoint displacement
  double mean_snap = 0.0;           ///< metres, mean endpoint displacement
  double max_cross_section = 0.0;   ///< metres, worst |w-w0| + |t-t0|
  double length_in = 0.0;           ///< total filament length before snap
  double length_out = 0.0;          ///< total cell length after snap
  std::size_t dropped_filaments = 0;  ///< sub-pitch filaments snapped away

  /// Headline relative voxelization error: worst of the endpoint snap
  /// (relative to the pitch) and the total-length distortion.
  double relative_error(double pitch) const;
};

struct VoxelGrid {
  double pitch = 0.0, pitch_z = 0.0;
  double origin_x = 0.0, origin_y = 0.0, origin_z = 0.0;
  double width = 0.0, thickness = 0.0;

  std::vector<VoxelCell> cells;
  std::vector<double> resistance;     ///< per cell, ohms (exact DC total)
  std::vector<std::size_t> node_a;    ///< per cell, lattice node ids
  std::vector<std::size_t> node_b;
  std::size_t node_count = 0;
  std::vector<std::array<std::int32_t, 3>> node_coord;  ///< per node

  /// Lattice images of each filament's parent-end nodes, in filament order —
  /// the solver ties these to its own endpoint nodes (and through them to
  /// ports, vias and shorts). A filament shorter than half a pitch maps both
  /// ends to the same node.
  std::vector<std::size_t> fil_node_a, fil_node_b;

  VoxelStats stats;

  std::size_t num_cells() const { return cells.size(); }
};

/// Snaps `filaments` (output of extract::split_all) onto the lattice.
/// `tech` supplies per-layer resistivity for the exact per-cell resistance.
VoxelGrid voxelize(const std::vector<geom::Segment>& filaments,
                   const geom::Technology& tech, const VoxelOptions& opts = {});

}  // namespace ind::fast
