#include "fast/precond.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "extract/partial_inductance.hpp"
#include "la/sparse.hpp"
#include "runtime/metrics.hpp"

namespace ind::fast {
namespace {

std::uint64_t pack3(std::int64_t x, std::int64_t y, std::int64_t z) {
  const std::uint64_t bias = 1u << 20;
  return ((static_cast<std::uint64_t>(x + static_cast<std::int64_t>(bias))) << 42) |
         ((static_cast<std::uint64_t>(y + static_cast<std::int64_t>(bias))) << 21) |
         (static_cast<std::uint64_t>(z + static_cast<std::int64_t>(bias)));
}

}  // namespace

sparsify::SparsifiedL voxel_sparsified_l(const ToeplitzLOperator& op,
                                         const PrecondOptions& opts) {
  const VoxelGrid& grid = op.grid();
  const std::size_t n = grid.cells.size();
  const double p = grid.pitch, pz = grid.pitch_z;
  const double radius = opts.radius > 0.0 ? opts.radius : 3.5 * p;
  const double self = op.kernel(geom::Axis::X, 0, 0, 0);
  const double gmd = extract::self_gmd(grid.width, grid.thickness);

  sparsify::SparsifiedL out;
  out.diag.assign(n, self);
  if (opts.kind == PrecondKind::Shell) {
    // Diagonal shift of the shell scheme (sparsify/shell.cpp): subtract the
    // coupling to the cell's own return shell, floored at 5% of self.
    const double at_shell = extract::mutual_partial_inductance(
        p, p, -p, std::max(radius, gmd));
    const double shifted = std::max(self - at_shell, 0.05 * self);
    out.diag.assign(n, shifted);
  }
  if (opts.kind == PrecondKind::None || opts.kind == PrecondKind::Diag)
    return out;

  // Lattice windows: the transverse window mirrors the dense schemes'
  // pair_distance cut; the axial cut at the same radius is an additional
  // lattice-specific bound (the shifted kernel decays like 1/s^3 axially, so
  // far collinear terms contribute nothing a preconditioner needs).
  const auto k_xy = static_cast<std::int64_t>(std::ceil(radius / p));
  const auto k_z =
      static_cast<std::int64_t>(pz > 0.0 ? std::ceil(radius / pz) : 0);

  for (const geom::Axis axis : {geom::Axis::X, geom::Axis::Y}) {
    // Cells of this orientation, hashed by lattice position.
    std::vector<std::uint32_t> cells;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> at;
    for (std::uint32_t i = 0; i < n; ++i) {
      const VoxelCell& c = grid.cells[i];
      if (c.axis != axis) continue;
      cells.push_back(i);
      at[pack3(c.ix, c.iy, c.iz)].push_back(i);
    }
    if (cells.empty()) continue;

    // One kernel evaluation per lattice offset, reused for every pair at
    // that offset (the Toeplitz property the dense schemes cannot exploit).
    struct Offset {
      std::int64_t dx, dy, dz;
      double value;
    };
    std::vector<Offset> offsets;
    for (std::int64_t dx = -k_xy; dx <= k_xy; ++dx) {
      for (std::int64_t dy = -k_xy; dy <= k_xy; ++dy) {
        for (std::int64_t dz = -k_z; dz <= k_z; ++dz) {
          const std::int64_t d_ax = axis == geom::Axis::X ? dx : dy;
          const std::int64_t d_tr = axis == geom::Axis::X ? dy : dx;
          // Transverse pair distance as the dense schemes compute it
          // (GMD-clamped centre distance; the axial gap does not enter).
          const double dist =
              std::max(std::hypot(static_cast<double>(d_tr) * p,
                                  static_cast<double>(dz) * pz),
                       gmd);
          double value = 0.0;
          switch (opts.kind) {
            case PrecondKind::Shell: {
              if (dist >= radius) break;
              const double gap =
                  (std::llabs(d_ax) - 1) * p;  // facing-end gap of the cells
              value = op.kernel(axis, dx, dy, dz) -
                      extract::mutual_partial_inductance(p, p, gap, radius);
              break;
            }
            case PrecondKind::Truncation: {
              const double m = op.kernel(axis, dx, dy, dz);
              if (std::abs(m) >= opts.truncation_ratio * self) value = m;
              break;
            }
            case PrecondKind::BlockDiag:
              value = op.kernel(axis, dx, dy, dz);
              break;
            case PrecondKind::None:
            case PrecondKind::Diag:
              break;
          }
          if (value != 0.0) offsets.push_back({dx, dy, dz, value});
        }
      }
    }

    const std::size_t strip = std::max<std::size_t>(1, opts.strip_cells);
    auto strip_of = [&](const VoxelCell& c) {
      const std::int64_t ax = axis == geom::Axis::X ? c.ix : c.iy;
      // Floor division so strips tile negative coordinates consistently.
      return ax >= 0 ? ax / static_cast<std::int64_t>(strip)
                     : -((-ax + static_cast<std::int64_t>(strip) - 1) /
                         static_cast<std::int64_t>(strip));
    };

    for (const std::uint32_t i : cells) {
      const VoxelCell& ci = grid.cells[i];
      for (const Offset& o : offsets) {
        const auto it =
            at.find(pack3(ci.ix + o.dx, ci.iy + o.dy, ci.iz + o.dz));
        if (it == at.end()) continue;
        for (const std::uint32_t j : it->second) {
          if (j <= i) continue;  // unordered pairs once (offsets cover +/-)
          if (opts.kind == PrecondKind::BlockDiag &&
              strip_of(ci) != strip_of(grid.cells[j]))
            continue;
          out.terms.push_back({i, j, o.value});
        }
      }
    }
  }
  runtime::MetricsRegistry::instance().add_count(
      "fast.precond_terms", static_cast<std::int64_t>(out.terms.size()));
  return out;
}

ComplexSparseFactor::ComplexSparseFactor(
    std::size_t m, const std::vector<ComplexTriplet>& entries,
    robust::SolveReport& report, std::string_view where,
    std::size_t dense_fallback_limit)
    : m_(m) {
  runtime::ScopedTimer timer("fast.precond_factor");
  // Real-equivalent doubled system [[Re, -Im], [Im, Re]]: the real SparseLu
  // (AMD + symbolic/numeric split, bitwise contract) factors complex
  // operators without a complex code path.
  la::TripletMatrix t(2 * m, 2 * m);
  for (const ComplexTriplet& e : entries) {
    const double re = e.v.real(), im = e.v.imag();
    if (re != 0.0) {
      t.add(e.i, e.j, re);
      t.add(e.i + m, e.j + m, re);
    }
    if (im != 0.0) {
      t.add(e.i, e.j + m, -im);
      t.add(e.i + m, e.j, im);
    }
  }
  const la::CscMatrix a(t);
  factor_ = robust::factor_sparse_with_recovery(a, report, where,
                                                dense_fallback_limit);
}

la::CVector ComplexSparseFactor::solve(const la::CVector& b) const {
  la::Vector rb(2 * m_);
  for (std::size_t i = 0; i < m_; ++i) {
    rb[i] = b[i].real();
    rb[i + m_] = b[i].imag();
  }
  const la::Vector rx = factor_.solve(rb);
  la::CVector x(m_);
  for (std::size_t i = 0; i < m_; ++i) x[i] = {rx[i], rx[i + m_]};
  return x;
}

}  // namespace ind::fast
