#include "fast/toeplitz_op.hpp"

#include <cmath>
#include <stdexcept>

#include "extract/partial_inductance.hpp"
#include "fast/fft.hpp"
#include "govern/budget.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::fast {
namespace {

/// Offset encoded by circulant slot t for a dimension of extent c embedded
/// in e slots: [0, c) holds +t, (e-c, e) holds t-e, the middle is unused
/// padding. Returns false for padding slots.
bool slot_offset(std::size_t t, std::size_t c, std::size_t e,
                 std::int64_t& d) {
  if (t < c) {
    d = static_cast<std::int64_t>(t);
    return true;
  }
  if (t + c > e) {
    d = static_cast<std::int64_t>(t) - static_cast<std::int64_t>(e);
    return true;
  }
  return false;
}

/// Two representative cells at the lattice offset (dx, dy, dz); same
/// formulas (and the same GMD clamp) as the dense extractor, so the
/// voxelized system on an aligned layout is the dense system, exactly.
/// Canonical offset sign first: K is even in the offset mathematically, but
/// the +d and -d segment placements round differently at the ULP level —
/// evaluating only the lexicographically positive representative makes the
/// operator (and to_dense()) exactly symmetric.
void offset_segments(const VoxelGrid& grid, geom::Axis axis, std::int64_t dx,
                     std::int64_t dy, std::int64_t dz, geom::Segment& s0,
                     geom::Segment& s1) {
  if (dx < 0 || (dx == 0 && (dy < 0 || (dy == 0 && dz < 0)))) {
    dx = -dx;
    dy = -dy;
    dz = -dz;
  }
  const double p = grid.pitch;
  s0.width = s1.width = grid.width;
  s0.thickness = s1.thickness = grid.thickness;
  s0.z = 0.0;
  s1.z = static_cast<double>(dz) * grid.pitch_z;
  const double ox = static_cast<double>(dx) * p;
  const double oy = static_cast<double>(dy) * p;
  if (axis == geom::Axis::X) {
    s0.a = {0.0, 0.0};
    s0.b = {p, 0.0};
    s1.a = {ox, oy};
    s1.b = {ox + p, oy};
  } else {
    s0.a = {0.0, 0.0};
    s0.b = {0.0, p};
    s1.a = {ox, oy};
    s1.b = {ox, oy + p};
  }
}

}  // namespace

double ToeplitzLOperator::kernel(geom::Axis axis, std::int64_t dx,
                                 std::int64_t dy, std::int64_t dz) const {
  if (dx == 0 && dy == 0 && dz == 0)
    return extract::self_partial_inductance(grid_.pitch, grid_.width,
                                            grid_.thickness);
  geom::Segment s0, s1;
  offset_segments(grid_, axis, dx, dy, dz, s0, s1);
  return extract::mutual_between(s0, s1);
}

ToeplitzLOperator::ToeplitzLOperator(VoxelGrid grid) : grid_(std::move(grid)) {
  runtime::ScopedTimer timer("fast.kernel");
  for (const geom::Axis axis : {geom::Axis::X, geom::Axis::Y}) {
    Block block;
    block.axis = axis;
    for (std::uint32_t i = 0; i < grid_.cells.size(); ++i)
      if (grid_.cells[i].axis == axis) block.cells.push_back(i);
    if (block.cells.empty()) continue;
    build_block(block);
    blocks_.push_back(std::move(block));
  }
}

void ToeplitzLOperator::build_block(Block& block) {
  std::array<std::int64_t, 3> mx{};
  block.mn = {INT64_MAX, INT64_MAX, INT64_MAX};
  mx = {INT64_MIN, INT64_MIN, INT64_MIN};
  for (const std::uint32_t ci : block.cells) {
    const VoxelCell& c = grid_.cells[ci];
    const std::array<std::int64_t, 3> pos = {c.ix, c.iy, c.iz};
    for (int a = 0; a < 3; ++a) {
      block.mn[a] = std::min(block.mn[a], pos[a]);
      mx[a] = std::max(mx[a], pos[a]);
    }
  }
  std::size_t total = 1;
  for (int a = 0; a < 3; ++a) {
    block.dims[a] = static_cast<std::size_t>(mx[a] - block.mn[a]) + 1;
    block.embed[a] =
        block.dims[a] == 1 ? 1 : good_fft_size(2 * block.dims[a] - 1);
    total *= block.embed[a];
  }
  const std::size_t e1 = block.embed[1], e2 = block.embed[2];
  block.slot.resize(block.cells.size());
  for (std::size_t k = 0; k < block.cells.size(); ++k) {
    const VoxelCell& c = grid_.cells[block.cells[k]];
    block.slot[k] = ((static_cast<std::size_t>(c.ix - block.mn[0])) * e1 +
                     static_cast<std::size_t>(c.iy - block.mn[1])) *
                        e2 +
                    static_cast<std::size_t>(c.iz - block.mn[2]);
  }

  // Kernel tensor over the circulant: slot (t0,t1,t2) holds the mutual at
  // lattice offset (d0,d1,d2); padding slots stay zero (they are never hit
  // by offsets between two in-grid cells). Parallel over t0 slices; each
  // slot is written by exactly one chunk, so the tensor — and everything
  // downstream of it — is bitwise-reproducible at any thread count.
  std::vector<la::Complex> kernel_grid(total, la::Complex{});
  const geom::Axis axis = block.axis;
  runtime::parallel_for(
      block.embed[0],
      [&](std::size_t begin, std::size_t end) {
        if (govern::checkpoint((end - begin) * e1 * e2 / 64 + 1)) return;
        // Per (t0, t1) row: gather the Grover arguments of every valid t2
        // slot, evaluate them in one batch sweep, scatter back. Geometry and
        // sign come from the same mutual_args the scalar kernel() uses and
        // the batch kernel's per-element arithmetic matches the scalar call,
        // so this path stays bitwise-identical to filling each slot with
        // kernel() — the Toeplitz-vs-dense exactness test pins that down.
        std::vector<std::size_t> slots;
        std::vector<double> bl1, bl2, bgap, bgmd, bsign, bval;
        for (std::size_t t0 = begin; t0 < end; ++t0) {
          std::int64_t d0;
          if (!slot_offset(t0, block.dims[0], block.embed[0], d0)) continue;
          for (std::size_t t1 = 0; t1 < e1; ++t1) {
            std::int64_t d1;
            if (!slot_offset(t1, block.dims[1], e1, d1)) continue;
            slots.clear();
            bl1.clear();
            bl2.clear();
            bgap.clear();
            bgmd.clear();
            bsign.clear();
            for (std::size_t t2 = 0; t2 < e2; ++t2) {
              std::int64_t d2;
              if (!slot_offset(t2, block.dims[2], e2, d2)) continue;
              const std::size_t slot = (t0 * e1 + t1) * e2 + t2;
              if (d0 == 0 && d1 == 0 && d2 == 0) {
                kernel_grid[slot] = extract::self_partial_inductance(
                    grid_.pitch, grid_.width, grid_.thickness);
                continue;
              }
              geom::Segment s0, s1;
              offset_segments(grid_, axis, d0, d1, d2, s0, s1);
              const auto g = geom::parallel_geometry(s0, s1);
              if (!g) {  // unreachable: lattice cells of one axis are parallel
                kernel_grid[slot] = la::Complex{};
                continue;
              }
              const extract::MutualArgs a = extract::mutual_args(s0, s1, *g);
              slots.push_back(slot);
              bl1.push_back(a.l1);
              bl2.push_back(a.l2);
              bgap.push_back(a.axial_gap);
              bgmd.push_back(a.gmd);
              bsign.push_back(a.sign);
            }
            bval.resize(slots.size());
            extract::mutual_partial_inductance_batch(slots.size(), bl1.data(),
                                                     bl2.data(), bgap.data(),
                                                     bgmd.data(), bval.data());
            for (std::size_t k = 0; k < slots.size(); ++k)
              kernel_grid[slots[k]] = bsign[k] * bval[k];
          }
        }
      },
      {.cancel = govern::Governor::instance().cancel_token()});
  govern::throw_if_cancelled("fast.kernel");
  fft_3d(block.embed, kernel_grid, false);
  block.kernel_fft = std::move(kernel_grid);
}

void ToeplitzLOperator::apply(const la::CVector& x, la::CVector& y) const {
  if (x.size() != size())
    throw std::invalid_argument("ToeplitzLOperator::apply: size mismatch");
  runtime::ScopedTimer timer("fast.apply");
  y.assign(size(), la::Complex{});
  for (const Block& block : blocks_) {
    const std::size_t total = block.kernel_fft.size();
    std::vector<la::Complex> buf(total, la::Complex{});
    // Scatter accumulates: colocated cells (collapsed filament rows) sum
    // their currents into one slot, exactly as the dense kernel matrix
    // would couple them.
    for (std::size_t k = 0; k < block.cells.size(); ++k)
      buf[block.slot[k]] += x[block.cells[k]];
    fft_3d(block.embed, buf, false);
    runtime::parallel_for(
        total,
        [&](std::size_t begin, std::size_t end) {
          if (govern::checkpoint((end - begin) / 256 + 1)) return;
          for (std::size_t i = begin; i < end; ++i)
            buf[i] *= block.kernel_fft[i];
        },
        {.cancel = govern::Governor::instance().cancel_token()});
    govern::throw_if_cancelled("fast.apply");
    fft_3d(block.embed, buf, true);
    for (std::size_t k = 0; k < block.cells.size(); ++k)
      y[block.cells[k]] = buf[block.slot[k]];
  }
}

void ToeplitzLOperator::apply_dense(const la::CVector& x,
                                    la::CVector& y) const {
  if (x.size() != size())
    throw std::invalid_argument("ToeplitzLOperator::apply_dense: size mismatch");
  y.assign(size(), la::Complex{});
  for (const Block& block : blocks_) {
    for (std::size_t a = 0; a < block.cells.size(); ++a) {
      const VoxelCell& ca = grid_.cells[block.cells[a]];
      la::Complex acc{};
      for (std::size_t b = 0; b < block.cells.size(); ++b) {
        const VoxelCell& cb = grid_.cells[block.cells[b]];
        acc += kernel(block.axis, ca.ix - cb.ix, ca.iy - cb.iy,
                      ca.iz - cb.iz) *
               x[block.cells[b]];
      }
      y[block.cells[a]] = acc;
    }
  }
}

la::Matrix ToeplitzLOperator::to_dense() const {
  const std::size_t n = size();
  la::Matrix l(n, n);
  runtime::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        if (govern::checkpoint((end - begin) * n / 64 + 1)) return;
        for (std::size_t i = begin; i < end; ++i) {
          const VoxelCell& ci = grid_.cells[i];
          for (std::size_t j = 0; j < n; ++j) {
            const VoxelCell& cj = grid_.cells[j];
            if (ci.axis != cj.axis) continue;
            l(i, j) = kernel(ci.axis, ci.ix - cj.ix, ci.iy - cj.iy,
                             ci.iz - cj.iz);
          }
        }
      },
      {.cancel = govern::Governor::instance().cancel_token()});
  govern::throw_if_cancelled("fast.to_dense");
  return l;
}

}  // namespace ind::fast
