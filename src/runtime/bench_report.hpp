// BENCH_<name>.json emission: serialises the MetricsRegistry plus run
// metadata so the benchmark harness can track performance across PRs.
//
// Schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "threads": <worker count of the global pool>,
//     "wall_ms": <whole-process wall clock, BenchReport only>,
//     "metrics": {
//       "timers":   {"<phase>": {"count": N, "total_ms": X}, ...},
//       "counters": {"<name>": N, ...}
//     }
//   }
// Phase timer names follow the fixed scheme documented in metrics.hpp
// ("extract.*", "assemble.*", "factor.*", "solve.*", "sparsify.*").
#pragma once

#include <chrono>
#include <string>

namespace ind::runtime {

/// Writes BENCH_<name>.json into the current working directory (wall_ms is
/// omitted). Returns the path written, or an empty string on I/O failure.
std::string write_bench_report(const std::string& name);

/// RAII variant for benchmark/example main()s: constructed first thing,
/// writes the report — including total wall-clock — on destruction.
class BenchReport {
 public:
  explicit BenchReport(std::string name);
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ind::runtime
