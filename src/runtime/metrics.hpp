// Process-wide metrics: scoped wall-clock timers and monotonic counters
// with thread-safe aggregation and a JSON snapshot.
//
// Instrumentation points live in the hot paths (extract assembly, dense and
// sparse factorisation, transient/AC solves) under a fixed phase naming
// scheme: "extract.*", "assemble.*", "factor.*", "solve.*", "sparsify.*".
// bench/ and examples/ serialise the registry into BENCH_<name>.json via
// runtime::BenchReport (bench_report.hpp); the per-PR harness diffs those
// files to track the performance trajectory.
//
// Costs: one shared-lock map lookup plus two steady_clock reads per
// ScopedTimer, atomic adds for counters — cheap enough to leave enabled in
// release builds, too hot for per-element inner loops (instrument the call,
// not the element).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ind::runtime {

struct TimerStat {
  std::atomic<std::int64_t> total_ns{0};
  std::atomic<std::int64_t> count{0};
};

struct CounterStat {
  std::atomic<std::int64_t> value{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Stat slots are created on first use and live for the process lifetime;
  /// returned references stay valid across reset() (which zeroes, not
  /// erases), so call sites may cache them.
  TimerStat& timer(std::string_view name);
  CounterStat& counter(std::string_view name);

  /// counter(name).value += delta.
  void add_count(std::string_view name, std::int64_t delta);

  /// counter(name).value = max(current, value) — for high-water marks such
  /// as the largest matrix dimension seen.
  void max_count(std::string_view name, std::int64_t value);

  /// Zeroes every timer and counter (slots are kept).
  void reset();

  /// Registers a callback invoked at the start of every to_json() (before
  /// the registry lock is taken, so hooks may call add_count/max_count).
  /// Higher layers use this to publish point-in-time gauges — peak memory,
  /// deadline margin — without the registry depending on them. Hooks live
  /// for the process lifetime.
  void add_snapshot_hook(std::function<void()> hook);

  /// Snapshot as a JSON object:
  ///   {"timers": {name: {"count": N, "total_ms": X}, ...},
  ///    "counters": {name: N, ...}}
  /// Keys are sorted, so equal states serialise identically.
  std::string to_json() const;

 private:
  MetricsRegistry() = default;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<TimerStat>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<CounterStat>, std::less<>> counters_;
  mutable std::shared_mutex hooks_mutex_;
  std::vector<std::function<void()>> hooks_;
};

/// Accumulates the enclosing scope's wall-clock time into a named timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : stat_(&MetricsRegistry::instance().timer(name)),
        start_(std::chrono::steady_clock::now()) {}
  explicit ScopedTimer(TimerStat& stat)
      : stat_(&stat), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    stat_->total_ns.fetch_add(ns, std::memory_order_relaxed);
    stat_->count.fetch_add(1, std::memory_order_relaxed);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ind::runtime
