#include "runtime/bench_report.hpp"

#include <fstream>
#include <locale>
#include <sstream>

#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace ind::runtime {
namespace {

// Shifts the registry's two-space-indented JSON right so it nests cleanly
// under the "metrics" key (cosmetic only; output is valid JSON either way).
std::string indent_block(const std::string& json) {
  std::string out;
  out.reserve(json.size() + 64);
  for (const char c : json) {
    out += c;
    if (c == '\n') out += "  ";
  }
  return out;
}

std::string render(const std::string& name, double wall_ms) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\n"
     << "  \"schema_version\": 1,\n"
     << "  \"bench\": \"" << name << "\",\n"
     << "  \"threads\": " << global_pool().size() << ",\n";
  if (wall_ms >= 0.0) os << "  \"wall_ms\": " << wall_ms << ",\n";
  os << "  \"metrics\": "
     << indent_block(MetricsRegistry::instance().to_json()) << "\n}\n";
  return os.str();
}

std::string write(const std::string& name, double wall_ms) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << render(name, wall_ms);
  return out ? path : std::string{};
}

}  // namespace

std::string write_bench_report(const std::string& name) {
  return write(name, -1.0);
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

BenchReport::~BenchReport() {
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  write(name_, wall_ms);
}

}  // namespace ind::runtime
