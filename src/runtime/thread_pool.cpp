#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "govern/env.hpp"

namespace ind::runtime {
namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(threads, 1u);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread destructors join; worker_loop drains the queue before exiting.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

void ThreadPool::worker_loop(const std::stop_token& stop) {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

unsigned parse_thread_count(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  const govern::ParsedU64 p = govern::parse_u64(text);
  if (!p.valid) {
    govern::warn_env("IND_THREADS", text,
                     "is not an unsigned integer; using auto thread count",
                     "runtime", "env_invalid");
    return 0;
  }
  if (p.value == 0) {
    govern::warn_env("IND_THREADS", text,
                     "requests 0 threads; 0 means auto (hardware concurrency)",
                     "runtime", "env_auto");
    return 0;
  }
  if (p.value > 256) {
    govern::warn_env("IND_THREADS", text,
                     "exceeds the 256-thread cap; clamping to 256", "runtime",
                     "env_clamped");
    return 256;
  }
  return static_cast<unsigned>(p.value);
}

unsigned configured_threads() {
  if (const unsigned env = parse_thread_count(std::getenv("IND_THREADS")))
    return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 256u);
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool& global_pool() {
  std::scoped_lock lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(configured_threads());
  return *slot;
}

void set_global_threads(unsigned threads) {
  const unsigned n = threads == 0 ? configured_threads() : threads;
  std::scoped_lock lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  slot.reset();  // join old workers before spawning replacements
  slot = std::make_unique<ThreadPool>(n);
}

}  // namespace ind::runtime
