#include "runtime/metrics.hpp"

#include <mutex>
#include <sstream>

namespace ind::runtime {
namespace {

// JSON string escaping for metric names (which are code-controlled, but a
// stray quote must not produce invalid JSON).
void append_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

template <typename MapT, typename KeyT, typename MakeT>
auto& find_or_create(std::shared_mutex& mutex, MapT& map, const KeyT& name,
                     const MakeT& make) {
  {
    std::shared_lock lock(mutex);
    if (const auto it = map.find(name); it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex);
  auto& slot = map[std::string(name)];
  if (!slot) slot = make();
  return *slot;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

TimerStat& MetricsRegistry::timer(std::string_view name) {
  return find_or_create(mutex_, timers_, name,
                        [] { return std::make_unique<TimerStat>(); });
}

CounterStat& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(mutex_, counters_, name,
                        [] { return std::make_unique<CounterStat>(); });
}

void MetricsRegistry::add_count(std::string_view name, std::int64_t delta) {
  counter(name).value.fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::max_count(std::string_view name, std::int64_t value) {
  auto& slot = counter(name).value;
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::reset() {
  std::unique_lock lock(mutex_);
  for (auto& [name, t] : timers_) {
    t->total_ns.store(0, std::memory_order_relaxed);
    t->count.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, c] : counters_)
    c->value.store(0, std::memory_order_relaxed);
}

void MetricsRegistry::add_snapshot_hook(std::function<void()> hook) {
  std::unique_lock lock(hooks_mutex_);
  hooks_.push_back(std::move(hook));
}

std::string MetricsRegistry::to_json() const {
  {
    std::shared_lock hooks_lock(hooks_mutex_);
    for (const auto& hook : hooks_) hook();
  }
  std::shared_lock lock(mutex_);
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\n  \"timers\": {";
  bool first = true;
  for (const auto& [name, t] : timers_) {
    os << (first ? "\n" : ",\n") << "    ";
    first = false;
    append_json_string(os, name);
    const double ms =
        static_cast<double>(t->total_ns.load(std::memory_order_relaxed)) /
        1e6;
    os << ": {\"count\": " << t->count.load(std::memory_order_relaxed)
       << ", \"total_ms\": " << ms << "}";
  }
  os << (first ? "" : "\n  ") << "},\n  \"counters\": {";
  first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    ";
    first = false;
    append_json_string(os, name);
    os << ": " << c->value.load(std::memory_order_relaxed);
  }
  os << (first ? "" : "\n  ") << "}\n}";
  return os.str();
}

}  // namespace ind::runtime
