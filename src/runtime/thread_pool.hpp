// Fixed-size worker pool over std::jthread with a shared FIFO task queue —
// the execution substrate for runtime::parallel_for (see parallel_for.hpp).
//
// The pool itself makes no ordering promise between tasks. Determinism is
// the *caller's* contract: parallel algorithms built on top must partition
// work into chunks whose outputs are either disjoint in memory or combined
// in a fixed chunk order on the calling thread (parallel_reduce does the
// latter). Under that discipline every result is bitwise-identical to the
// serial execution at any worker count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ind::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is clamped to 1). Destruction drains the
  /// queue: already-submitted tasks run to completion before workers exit.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. Tasks must not block waiting on later-submitted tasks
  /// (the pool has no work stealing; such a wait can deadlock).
  void submit(std::function<void()> task);

  /// True when the calling thread is one of *any* ThreadPool's workers.
  /// parallel_for uses this to run nested parallel regions inline instead of
  /// re-entering the pool (which could deadlock with all workers waiting).
  static bool on_worker_thread();

 private:
  void worker_loop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;  // last member: joins before the rest
};

/// Parse an IND_THREADS-style value. Returns 0 for null/empty/invalid/
/// non-positive input, meaning "use the hardware default".
unsigned parse_thread_count(const char* text);

/// Worker count for the process-wide pool: the IND_THREADS environment
/// variable when set to a positive integer, else hardware_concurrency()
/// (minimum 1). Capped at 256.
unsigned configured_threads();

/// Process-wide pool, created on first use with configured_threads() workers.
ThreadPool& global_pool();

/// Replace the process-wide pool: `threads` workers, or the
/// configured_threads() default when `threads` is 0. For tests and
/// benchmarks; must not race with in-flight parallel_for calls.
void set_global_threads(unsigned threads);

}  // namespace ind::runtime
