// Chunked parallel loops with a determinism contract.
//
// parallel_for / parallel_for_2d split an index range into fixed chunks and
// run the chunks on the process-wide ThreadPool (or an explicit one). Chunk
// *boundaries* are a pure function of (n, grain, worker count); chunk
// *assignment* to workers is dynamic. A body that writes only elements of
// its own chunk range therefore produces results bitwise-identical to the
// serial loop at any thread count — this is how the extraction and solver
// hot paths stay deterministic (see DESIGN.md, "Parallel runtime").
//
// parallel_reduce combines per-chunk partials in ascending chunk order on
// the calling thread. With an explicit `grain`, chunk boundaries depend only
// on (n, grain), so the reduction is reproducible across thread counts even
// for non-associative combines (floating-point sums).
//
// Exceptions thrown by a body are captured and rethrown on the calling
// thread after all chunks finish. Calls from inside a pool worker (nested
// parallelism) run inline serially — same results, no deadlock.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "runtime/cancel.hpp"
#include "runtime/thread_pool.hpp"

namespace ind::runtime {

struct ParallelOptions {
  /// Minimum elements per chunk. Ranges of at most `grain` elements (or
  /// whenever only one chunk results) run inline on the calling thread.
  std::size_t grain = 1;
  /// Pool to execute on; nullptr selects the process-wide global_pool().
  ThreadPool* pool = nullptr;
  /// Force chunk boundaries to depend only on (n, grain), not on the worker
  /// count. parallel_reduce sets this so non-associative reductions are
  /// reproducible across thread counts.
  bool chunks_by_grain_only = false;
  /// Optional cooperative-cancellation token. When set and the token fires,
  /// remaining chunks are skipped (in-flight chunks finish) and the loop
  /// returns early — the partial result is then incomplete, so only call
  /// sites that check the token afterwards and discard the work may pass
  /// one. nullptr (the default) preserves run-to-completion semantics.
  CancelToken* cancel = nullptr;
};

/// Calls body(begin, end) over disjoint subranges covering [0, n).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  const ParallelOptions& opts = {});

/// Calls body(row_begin, row_end, col_begin, col_end) over a fixed tiling of
/// the rows × cols index rectangle. Rows are chunked like parallel_for;
/// columns are split only when the row count alone cannot occupy the pool.
void parallel_for_2d(std::size_t rows, std::size_t cols,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t, std::size_t)>& body,
                     const ParallelOptions& opts = {});

namespace detail {

/// Number of chunks for an n-element range (pure function of its inputs).
std::size_t chunk_count(std::size_t n, const ParallelOptions& opts);

/// Runs body(chunk_index) for chunk_index in [0, n_chunks) on the pool,
/// caller participating; rethrows the first captured exception. When
/// opts.cancel fires, chunks not yet started are skipped.
void run_chunks(std::size_t n_chunks,
                const std::function<void(std::size_t)>& body,
                const ParallelOptions& opts);

inline std::size_t chunk_begin(std::size_t chunk, std::size_t n_chunks,
                               std::size_t n) {
  return chunk * n / n_chunks;
}

}  // namespace detail

/// Deterministic chunked reduction: `map(begin, end)` produces one partial
/// per chunk; partials are folded with `combine(acc, partial)` in ascending
/// chunk order starting from `init`. Pass an explicit `grain` to pin chunk
/// boundaries independently of the worker count (bit-reproducible sums).
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t n, T init, MapFn&& map, CombineFn&& combine,
                  ParallelOptions opts = {}) {
  if (n == 0) return init;
  opts.chunks_by_grain_only = true;
  const std::size_t chunks = detail::chunk_count(n, opts);
  std::vector<std::optional<T>> partials(chunks);
  detail::run_chunks(
      chunks,
      [&](std::size_t c) {
        partials[c] = map(detail::chunk_begin(c, chunks, n),
                          detail::chunk_begin(c + 1, chunks, n));
      },
      opts);
  T acc = std::move(init);
  // Chunks skipped by a fired cancel token leave their optional empty; the
  // cancelled partial reduction is discarded by the caller anyway.
  for (auto& p : partials)
    if (p.has_value()) acc = combine(std::move(acc), std::move(*p));
  return acc;
}

}  // namespace ind::runtime
