// Cooperative cancellation primitive shared by the runtime and the resource
// governor.
//
// A CancelToken is a single atomic "cancel cause" slot: 0 means "keep
// going", any non-zero value identifies why the run should stop (the
// governor maps its BudgetKind enum onto these values; the runtime layer
// deliberately knows nothing about that enum). The first cancel() wins —
// later causes do not overwrite the original one, so diagnostics always
// report the trip that actually happened first.
//
// Cancellation is opt-in per call site: parallel_for only observes a token
// when ParallelOptions.cancel points at one. A kernel that has not been
// instrumented for clean early exit never sees skipped chunks and is
// bitwise unaffected by this header existing.
#pragma once

#include <atomic>

namespace ind::runtime {

class CancelToken {
 public:
  /// True once any cause has been recorded.
  bool cancelled() const {
    return kind_.load(std::memory_order_relaxed) != 0;
  }

  /// The first recorded cause, or 0 when not cancelled.
  int kind() const { return kind_.load(std::memory_order_relaxed); }

  /// Records `kind` (must be non-zero) as the cancel cause; first caller
  /// wins, later calls are no-ops.
  void cancel(int kind) {
    int expected = 0;
    kind_.compare_exchange_strong(expected, kind, std::memory_order_relaxed);
  }

  /// Re-arms the token for the next attempt. Callers must ensure no worker
  /// is still observing the token (parallel_for has returned).
  void reset() { kind_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int> kind_{0};
};

}  // namespace ind::runtime
