#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace ind::runtime {
namespace detail {
namespace {

ThreadPool& resolve_pool(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_pool();
}

// Completion state shared with helper tasks. Heap-allocated (shared_ptr) so
// a helper finishing after the caller has returned from run_chunks can never
// touch a dead stack frame.
struct BatchState {
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t alive = 0;
  std::exception_ptr error;
};

}  // namespace

std::size_t chunk_count(std::size_t n, const ParallelOptions& opts) {
  if (n == 0) return 0;
  const std::size_t grain = std::max<std::size_t>(opts.grain, 1);
  const std::size_t by_grain = (n + grain - 1) / grain;
  if (opts.chunks_by_grain_only) return by_grain;
  // Over-decompose 4x relative to the worker count: chunk boundaries stay
  // fixed while dynamic chunk assignment absorbs load skew (e.g. the
  // triangular pair loop in partial-inductance assembly).
  const std::size_t workers = resolve_pool(opts.pool).size();
  return std::clamp<std::size_t>(by_grain, 1, workers * 4);
}

void run_chunks(std::size_t n_chunks,
                const std::function<void(std::size_t)>& body,
                const ParallelOptions& opts) {
  if (n_chunks == 0) return;
  CancelToken* const cancel = opts.cancel;
  ThreadPool& pool = resolve_pool(opts.pool);
  if (n_chunks == 1 || pool.size() <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t c = 0; c < n_chunks; ++c) {
      if (cancel != nullptr && cancel->cancelled()) return;
      body(c);
    }
    return;
  }

  auto state = std::make_shared<BatchState>();
  const std::size_t n_helpers =
      std::min<std::size_t>(pool.size(), n_chunks - 1);
  state->alive = n_helpers;

  auto drain = [&body, n_chunks, cancel](BatchState& st) {
    for (;;) {
      // A fired token stops this worker before it claims another chunk;
      // chunks already in flight on other workers run to completion, so
      // every chunk either fully ran or never started.
      if (cancel != nullptr && cancel->cancelled()) return;
      const std::size_t c = st.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) return;
      try {
        body(c);
      } catch (...) {
        std::scoped_lock lock(st.mutex);
        if (!st.error) st.error = std::current_exception();
      }
    }
  };

  for (std::size_t i = 0; i < n_helpers; ++i)
    pool.submit([state, drain] {
      drain(*state);
      std::scoped_lock lock(state->mutex);
      if (--state->alive == 0) state->cv.notify_all();
    });

  drain(*state);  // the calling thread works too
  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->alive == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace detail

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  const ParallelOptions& opts) {
  if (n == 0) return;
  if (opts.cancel != nullptr && opts.cancel->cancelled()) return;
  const std::size_t chunks = detail::chunk_count(n, opts);
  if (chunks <= 1 || ThreadPool::on_worker_thread()) {
    body(0, n);
    return;
  }
  detail::run_chunks(
      chunks,
      [&](std::size_t c) {
        body(detail::chunk_begin(c, chunks, n),
             detail::chunk_begin(c + 1, chunks, n));
      },
      opts);
}

void parallel_for_2d(std::size_t rows, std::size_t cols,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t, std::size_t)>& body,
                     const ParallelOptions& opts) {
  if (rows == 0 || cols == 0) return;
  if (opts.cancel != nullptr && opts.cancel->cancelled()) return;
  if (ThreadPool::on_worker_thread()) {
    body(0, rows, 0, cols);
    return;
  }
  const std::size_t row_chunks = detail::chunk_count(rows, opts);
  // Split columns only when the rows alone cannot occupy the pool.
  const std::size_t workers =
      (opts.pool != nullptr ? *opts.pool : global_pool()).size();
  const std::size_t target = std::max<std::size_t>(workers * 4, 1);
  std::size_t col_chunks = 1;
  if (row_chunks < target)
    col_chunks = std::clamp<std::size_t>(
        target / std::max<std::size_t>(row_chunks, 1), 1,
        detail::chunk_count(cols, opts));
  const std::size_t tiles = row_chunks * col_chunks;
  if (tiles <= 1) {
    body(0, rows, 0, cols);
    return;
  }
  detail::run_chunks(
      tiles,
      [&](std::size_t t) {
        const std::size_t rc = t / col_chunks;
        const std::size_t cc = t % col_chunks;
        body(detail::chunk_begin(rc, row_chunks, rows),
             detail::chunk_begin(rc + 1, row_chunks, rows),
             detail::chunk_begin(cc, col_chunks, cols),
             detail::chunk_begin(cc + 1, col_chunks, cols));
      },
      opts);
}

}  // namespace ind::runtime
