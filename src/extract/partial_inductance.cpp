#include "extract/partial_inductance.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "govern/budget.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::extract {
namespace {

// F(x) = x asinh(x/d) - sqrt(x^2 + d^2); even in x. The constant offset F(0)
// cancels in Grover's four-term combination.
double grover_f(double x, double d) {
  return x * std::asinh(x / d) - std::hypot(x, d);
}

}  // namespace

double self_gmd(double w, double t) { return 0.2235 * (w + t); }

double mutual_partial_inductance(double l1, double l2, double axial_gap,
                                 double gmd) {
  if (l1 <= 0.0 || l2 <= 0.0) return 0.0;
  if (gmd <= 0.0)
    throw std::invalid_argument("mutual_partial_inductance: gmd must be > 0");
  const double s = axial_gap;
  const double m = grover_f(l1 + l2 + s, gmd) - grover_f(l1 + s, gmd) -
                   grover_f(l2 + s, gmd) + grover_f(s, gmd);
  return geom::kMu0 / (4.0 * M_PI) * m;
}

double self_partial_inductance(double len, double w, double t) {
  if (len <= 0.0) return 0.0;
  // The self term is the filament mutual of the bar with itself at the
  // cross-section's geometric mean distance; this reproduces Ruehli's
  //   (mu0 l / 2pi)[ln(2l/(w+t)) + 1/2 + 0.2235(w+t)/l]
  // for l >> w+t while staying consistent (hence PSD-safe) with the mutual
  // kernel used for every off-diagonal entry.
  return mutual_partial_inductance(len, len, -len, self_gmd(w, t));
}

double mutual_between(const geom::Segment& s, const geom::Segment& t) {
  const auto g = geom::parallel_geometry(s, t);
  if (!g) return 0.0;  // orthogonal: zero by symmetry
  // Orientation sign: current direction defined a -> b.
  const double ds = s.axis() == geom::Axis::X ? s.b.x - s.a.x : s.b.y - s.a.y;
  const double dt = t.axis() == geom::Axis::X ? t.b.x - t.a.x : t.b.y - t.a.y;
  const double sign = (ds >= 0) == (dt >= 0) ? 1.0 : -1.0;
  // GMD: centre-to-centre distance, clamped below by the cross-section GMDs
  // so that overlapping / abutting conductors stay consistent with the self
  // term (required for positive definiteness).
  const double clamp = 0.5 * (self_gmd(s.width, s.thickness) +
                              self_gmd(t.width, t.thickness));
  const double d = std::max(g->center_distance(), clamp);
  return sign *
         mutual_partial_inductance(g->length_i, g->length_j, g->axial_gap, d);
}

la::Matrix build_partial_inductance_matrix(
    const std::vector<geom::Segment>& segments,
    const PartialMatrixOptions& opts) {
  const std::size_t n = segments.size();
  runtime::ScopedTimer timer("assemble.partial_l");
  auto& metrics = runtime::MetricsRegistry::instance();
  metrics.max_count("assemble.partial_l.max_dim",
                    static_cast<std::int64_t>(n));
  // Derived throughput gauge, computed at snapshot time so it reflects the
  // final term count / assembly-time ratio rather than any single call.
  static std::once_flag hook_once;
  std::call_once(hook_once, [&metrics] {
    auto& terms = metrics.counter("assemble.partial_l.mutual_terms");
    auto& assemble_timer = metrics.timer("assemble.partial_l");
    auto& rate = metrics.counter("assemble.partial_l.terms_per_sec");
    metrics.add_snapshot_hook([&terms, &assemble_timer, &rate] {
      const double secs =
          static_cast<double>(assemble_timer.total_ns.load()) * 1e-9;
      const std::int64_t t = terms.value.load();
      rate.value.store(secs > 0.0 ? static_cast<std::int64_t>(
                                        static_cast<double>(t) / secs)
                                  : 0);
    });
  });
  la::Matrix l(n, n);
  // Row-parallel over the upper triangle. Each (i, j) pair is evaluated by
  // exactly one chunk with the same scalar arithmetic as the serial loop,
  // and every element of `l` is written at most once — so the result is
  // bitwise-identical to serial at any thread count (the determinism test in
  // tests/test_runtime.cpp pins this down).
  runtime::parallel_for(
      n,
      [&](std::size_t i_begin, std::size_t i_end) {
        // Budget poll at the chunk boundary. The unit charge is the chunk's
        // pair count — a pure function of its row range, so the total over
        // all chunks depends only on n and a work-budget trip decision is
        // identical at any thread count. A tripped chunk bails before
        // writing; the cancel token skips the chunks not yet started and
        // the throw below discards the partial matrix.
        const std::size_t pairs =
            (i_end - i_begin) * n -
            (i_end * (i_end - 1) - i_begin * (i_begin - 1)) / 2;
        if (govern::checkpoint(pairs)) return;
        std::int64_t mutual_terms = 0;
        for (std::size_t i = i_begin; i < i_end; ++i) {
          l(i, i) = self_partial_inductance(
              segments[i].length(), segments[i].width, segments[i].thickness);
          for (std::size_t j = i + 1; j < n; ++j) {
            const auto g = geom::parallel_geometry(segments[i], segments[j]);
            if (!g || g->center_distance() > opts.window) continue;
            const double m = mutual_between(segments[i], segments[j]);
            l(i, j) = m;
            l(j, i) = m;
            // One count per unordered pair actually coupled — the symmetric
            // mirror store above is the same term, and a zero (orthogonal or
            // fully cancelled) entry is not a term at all.
            if (m != 0.0) ++mutual_terms;
          }
        }
        metrics.add_count("assemble.partial_l.mutual_terms", mutual_terms);
      },
      {.grain = 4,
       .cancel = govern::Governor::instance().cancel_token()});
  govern::throw_if_cancelled("extract.partial_l");
  return l;
}

}  // namespace ind::extract
