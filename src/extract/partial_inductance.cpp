#include "extract/partial_inductance.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "govern/budget.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::extract {

double self_gmd(double w, double t) { return 0.2235 * (w + t); }

double mutual_partial_inductance(double l1, double l2, double axial_gap,
                                 double gmd) {
  if (l1 <= 0.0 || l2 <= 0.0) return 0.0;
  if (gmd <= 0.0)
    throw std::invalid_argument("mutual_partial_inductance: gmd must be > 0");
  const double s = axial_gap;
  const double m = grover_f(l1 + l2 + s, gmd) - grover_f(l1 + s, gmd) -
                   grover_f(l2 + s, gmd) + grover_f(s, gmd);
  return geom::kMu0 / (4.0 * M_PI) * m;
}

void mutual_partial_inductance_batch(std::size_t n, const double* l1,
                                     const double* l2, const double* axial_gap,
                                     const double* gmd, double* out) {
  // Validation pass first so the compute loop below is throw-free (and
  // therefore eligible for auto-vectorisation of the sqrt/log chain).
  for (std::size_t k = 0; k < n; ++k)
    if (l1[k] > 0.0 && l2[k] > 0.0 && gmd[k] <= 0.0)
      throw std::invalid_argument(
          "mutual_partial_inductance_batch: gmd must be > 0");
  for (std::size_t k = 0; k < n; ++k) {
    if (l1[k] <= 0.0 || l2[k] <= 0.0) {
      out[k] = 0.0;
      continue;
    }
    const double s = axial_gap[k];
    const double d = gmd[k];
    const double m = grover_f(l1[k] + l2[k] + s, d) - grover_f(l1[k] + s, d) -
                     grover_f(l2[k] + s, d) + grover_f(s, d);
    out[k] = geom::kMu0 / (4.0 * M_PI) * m;
  }
}

double self_partial_inductance(double len, double w, double t) {
  if (len <= 0.0) return 0.0;
  // The self term is the filament mutual of the bar with itself at the
  // cross-section's geometric mean distance; this reproduces Ruehli's
  //   (mu0 l / 2pi)[ln(2l/(w+t)) + 1/2 + 0.2235(w+t)/l]
  // for l >> w+t while staying consistent (hence PSD-safe) with the mutual
  // kernel used for every off-diagonal entry.
  return mutual_partial_inductance(len, len, -len, self_gmd(w, t));
}

MutualArgs mutual_args(const geom::Segment& s, const geom::Segment& t,
                       const geom::ParallelGeometry& g) {
  MutualArgs a;
  a.l1 = g.length_i;
  a.l2 = g.length_j;
  a.axial_gap = g.axial_gap;
  // Orientation sign: current direction defined a -> b.
  const double ds = s.axis() == geom::Axis::X ? s.b.x - s.a.x : s.b.y - s.a.y;
  const double dt = t.axis() == geom::Axis::X ? t.b.x - t.a.x : t.b.y - t.a.y;
  a.sign = (ds >= 0) == (dt >= 0) ? 1.0 : -1.0;
  // GMD: centre-to-centre distance, clamped below by the cross-section GMDs
  // so that overlapping / abutting conductors stay consistent with the self
  // term (required for positive definiteness).
  const double clamp = 0.5 * (self_gmd(s.width, s.thickness) +
                              self_gmd(t.width, t.thickness));
  a.gmd = std::max(g.center_distance(), clamp);
  return a;
}

double mutual_between(const geom::Segment& s, const geom::Segment& t,
                      const geom::ParallelGeometry& g) {
  const MutualArgs a = mutual_args(s, t, g);
  return a.sign *
         mutual_partial_inductance(a.l1, a.l2, a.axial_gap, a.gmd);
}

double mutual_between(const geom::Segment& s, const geom::Segment& t) {
  const auto g = geom::parallel_geometry(s, t);
  if (!g) return 0.0;  // orthogonal: zero by symmetry
  return mutual_between(s, t, *g);
}

la::Matrix build_partial_inductance_matrix(
    const std::vector<geom::Segment>& segments,
    const PartialMatrixOptions& opts) {
  const std::size_t n = segments.size();
  runtime::ScopedTimer timer("assemble.partial_l");
  auto& metrics = runtime::MetricsRegistry::instance();
  metrics.max_count("assemble.partial_l.max_dim",
                    static_cast<std::int64_t>(n));
  // Derived throughput gauge, computed at snapshot time so it reflects the
  // final term count / assembly-time ratio rather than any single call.
  static std::once_flag hook_once;
  std::call_once(hook_once, [&metrics] {
    auto& terms = metrics.counter("assemble.partial_l.mutual_terms");
    auto& assemble_timer = metrics.timer("assemble.partial_l");
    auto& rate = metrics.counter("assemble.partial_l.terms_per_sec");
    metrics.add_snapshot_hook([&terms, &assemble_timer, &rate] {
      const double secs =
          static_cast<double>(assemble_timer.total_ns.load()) * 1e-9;
      const std::int64_t t = terms.value.load();
      rate.value.store(secs > 0.0 ? static_cast<std::int64_t>(
                                        static_cast<double>(t) / secs)
                                  : 0);
    });
  });
  la::Matrix l(n, n);
  // Row-parallel over the upper triangle. Each (i, j) pair is evaluated by
  // exactly one chunk with the same scalar arithmetic as the serial loop,
  // and every element of `l` is written at most once — so the result is
  // bitwise-identical to serial at any thread count (the determinism test in
  // tests/test_runtime.cpp pins this down).
  runtime::parallel_for(
      n,
      [&](std::size_t i_begin, std::size_t i_end) {
        // Budget poll at the chunk boundary. The unit charge is the chunk's
        // pair count — a pure function of its row range, so the total over
        // all chunks depends only on n and a work-budget trip decision is
        // identical at any thread count. A tripped chunk bails before
        // writing; the cancel token skips the chunks not yet started and
        // the throw below discards the partial matrix.
        const std::size_t pairs =
            (i_end - i_begin) * n -
            (i_end * (i_end - 1) - i_begin * (i_begin - 1)) / 2;
        if (govern::checkpoint(pairs)) return;
        std::int64_t mutual_terms = 0;
        // Per-row gather / batch-evaluate / scatter: the geometry of each
        // pair is computed exactly once (it used to be computed twice — once
        // for the window check and again inside mutual_between), the Grover
        // kernel runs over contiguous argument arrays, and the per-element
        // arithmetic — including the sign multiply — is identical to the
        // scalar path, so the bitwise-determinism oracle keeps holding.
        std::vector<std::size_t> idx;
        std::vector<double> bl1, bl2, bgap, bgmd, bsign, bval;
        for (std::size_t i = i_begin; i < i_end; ++i) {
          l(i, i) = self_partial_inductance(
              segments[i].length(), segments[i].width, segments[i].thickness);
          idx.clear();
          bl1.clear();
          bl2.clear();
          bgap.clear();
          bgmd.clear();
          bsign.clear();
          for (std::size_t j = i + 1; j < n; ++j) {
            const auto g = geom::parallel_geometry(segments[i], segments[j]);
            if (!g || g->center_distance() > opts.window) continue;
            const MutualArgs a = mutual_args(segments[i], segments[j], *g);
            idx.push_back(j);
            bl1.push_back(a.l1);
            bl2.push_back(a.l2);
            bgap.push_back(a.axial_gap);
            bgmd.push_back(a.gmd);
            bsign.push_back(a.sign);
          }
          bval.resize(idx.size());
          mutual_partial_inductance_batch(idx.size(), bl1.data(), bl2.data(),
                                          bgap.data(), bgmd.data(),
                                          bval.data());
          for (std::size_t k = 0; k < idx.size(); ++k) {
            const double m = bsign[k] * bval[k];
            l(i, idx[k]) = m;
            l(idx[k], i) = m;
            // One count per unordered pair actually coupled — the symmetric
            // mirror store above is the same term, and a zero (orthogonal or
            // fully cancelled) entry is not a term at all.
            if (m != 0.0) ++mutual_terms;
          }
        }
        metrics.add_count("assemble.partial_l.mutual_terms", mutual_terms);
      },
      {.grain = 4,
       .cancel = govern::Governor::instance().cancel_token()});
  govern::throw_if_cancelled("extract.partial_l");
  return l;
}

}  // namespace ind::extract
