// Partial self- and mutual-inductance of rectangular conductors.
//
// Section 3 of the paper: "The partial self and mutual inductances are
// computed using analytical formulae [9][10][11]" — i.e. the classical
// Grover / Hoer-Love / geometric-mean-distance results for rectangular
// bars. These formulas ignore skin effect, so very wide conductors must be
// split into narrower filaments first (see extract/skin.hpp).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "geom/segment.hpp"
#include "la/dense_matrix.hpp"

namespace ind::extract {

/// Grover's end-point helper F(x, d) = x asinh(x/d) - sqrt(x^2 + d^2),
/// evaluated in log/sqrt form: asinh(x/d) = log((x + r)/d) with r =
/// sqrt(x^2 + d^2), and the x < 0 branch rewritten as -log((r - x)/d) so
/// neither sign suffers cancellation. One inline definition shared by the
/// scalar kernel, the batch kernel and the Toeplitz lattice table keeps all
/// three bitwise-consistent (the fast path's "exact on aligned layouts"
/// contract depends on it). Requires d > 0.
inline double grover_f(double x, double d) {
  const double r = std::sqrt(x * x + d * d);
  const double t = x >= 0.0 ? std::log((x + r) / d) : -std::log((r - x) / d);
  return x * t - r;
}

/// Partial self-inductance (henries) of a rectangular bar of length `len`,
/// width `w`, thickness `t` (metres). Ruehli's form of Grover's formula:
///   L = (mu0 l / 2pi) [ ln(2l/(w+t)) + 1/2 + 0.2235 (w+t)/l ].
double self_partial_inductance(double len, double w, double t);

/// Geometric mean distance of a rectangular cross-section from itself,
/// GMD = 0.2235 (w + t): the equivalent filament spacing that reproduces the
/// bar's internal flux in the filament formula.
double self_gmd(double w, double t);

/// Mutual partial inductance (henries) between two parallel filaments:
/// lengths l1, l2, axial gap s between facing ends (negative when the spans
/// overlap), and geometric-mean distance d between the cross-sections.
/// Grover's end-point decomposition:
///   4pi/mu0 * M = F(l1+l2+s) - F(l1+s) - F(l2+s) + F(s),
///   F(x) = x asinh(x/d) - sqrt(x^2 + d^2).
double mutual_partial_inductance(double l1, double l2, double axial_gap,
                                 double gmd);

/// Batch variant: out[i] = mutual_partial_inductance(l1[i], l2[i],
/// axial_gap[i], gmd[i]) with per-element arithmetic identical to the
/// scalar call (same inlined kernel), in one auto-vectorizable sweep.
/// Throws std::invalid_argument on the first non-positive gmd whose pair
/// has positive lengths; `out` may be partially written in that case.
void mutual_partial_inductance_batch(std::size_t n, const double* l1,
                                     const double* l2, const double* axial_gap,
                                     const double* gmd, double* out);

/// Grover arguments of a parallel pair with the geometry already computed:
/// lengths, axial gap, the PSD GMD clamp, and the orientation sign.
struct MutualArgs {
  double l1 = 0.0;
  double l2 = 0.0;
  double axial_gap = 0.0;
  double gmd = 0.0;
  double sign = 1.0;
};
MutualArgs mutual_args(const geom::Segment& s, const geom::Segment& t,
                       const geom::ParallelGeometry& g);

/// Mutual partial inductance between two parallel segments, signed by their
/// current orientation (currents defined from node a to node b): segments
/// pointing in opposite directions get a negative entry. Returns 0 for
/// orthogonal segments.
double mutual_between(const geom::Segment& s, const geom::Segment& t);

/// Same, with the parallel geometry already in hand — assembly loops that
/// needed it for their window check pass it through so each pair's geometry
/// is evaluated exactly once.
double mutual_between(const geom::Segment& s, const geom::Segment& t,
                      const geom::ParallelGeometry& g);

struct PartialMatrixOptions {
  /// Mutual terms between segments with centre distance beyond this window
  /// are not computed (set to infinity for the exact dense matrix).
  double window = 1e9;
};

/// Full partial-inductance matrix over `segments` (dense, symmetric, PSD for
/// physical geometries). Diagonal entries use the self formula, off-diagonal
/// entries the signed mutual.
la::Matrix build_partial_inductance_matrix(
    const std::vector<geom::Segment>& segments,
    const PartialMatrixOptions& opts = {});

}  // namespace ind::extract
