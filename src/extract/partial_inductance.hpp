// Partial self- and mutual-inductance of rectangular conductors.
//
// Section 3 of the paper: "The partial self and mutual inductances are
// computed using analytical formulae [9][10][11]" — i.e. the classical
// Grover / Hoer-Love / geometric-mean-distance results for rectangular
// bars. These formulas ignore skin effect, so very wide conductors must be
// split into narrower filaments first (see extract/skin.hpp).
#pragma once

#include <vector>

#include "geom/segment.hpp"
#include "la/dense_matrix.hpp"

namespace ind::extract {

/// Partial self-inductance (henries) of a rectangular bar of length `len`,
/// width `w`, thickness `t` (metres). Ruehli's form of Grover's formula:
///   L = (mu0 l / 2pi) [ ln(2l/(w+t)) + 1/2 + 0.2235 (w+t)/l ].
double self_partial_inductance(double len, double w, double t);

/// Geometric mean distance of a rectangular cross-section from itself,
/// GMD = 0.2235 (w + t): the equivalent filament spacing that reproduces the
/// bar's internal flux in the filament formula.
double self_gmd(double w, double t);

/// Mutual partial inductance (henries) between two parallel filaments:
/// lengths l1, l2, axial gap s between facing ends (negative when the spans
/// overlap), and geometric-mean distance d between the cross-sections.
/// Grover's end-point decomposition:
///   4pi/mu0 * M = F(l1+l2+s) - F(l1+s) - F(l2+s) + F(s),
///   F(x) = x asinh(x/d) - sqrt(x^2 + d^2).
double mutual_partial_inductance(double l1, double l2, double axial_gap,
                                 double gmd);

/// Mutual partial inductance between two parallel segments, signed by their
/// current orientation (currents defined from node a to node b): segments
/// pointing in opposite directions get a negative entry. Returns 0 for
/// orthogonal segments.
double mutual_between(const geom::Segment& s, const geom::Segment& t);

struct PartialMatrixOptions {
  /// Mutual terms between segments with centre distance beyond this window
  /// are not computed (set to infinity for the exact dense matrix).
  double window = 1e9;
};

/// Full partial-inductance matrix over `segments` (dense, symmetric, PSD for
/// physical geometries). Diagonal entries use the self formula, off-diagonal
/// entries the signed mutual.
la::Matrix build_partial_inductance_matrix(
    const std::vector<geom::Segment>& segments,
    const PartialMatrixOptions& opts = {});

}  // namespace ind::extract
