// DC resistance extraction (Section 3: "The resistance is frequency
// independent and is computed as a function of geometry and sheet
// resistance"). Frequency-dependent resistance emerges downstream from
// filament splitting (extract/skin.hpp) plus the MQS solve in loop/.
#pragma once

#include "geom/layout.hpp"

namespace ind::extract {

/// Sheet-resistance model: R = rho_sheet * length / width.
double segment_resistance(const geom::Segment& s, const geom::Technology& tech);

/// Via stack resistance: per-cut technology resistance divided by the number
/// of parallel cuts, accumulated over the spanned layer pairs.
double via_resistance(const geom::Via& v, const geom::Technology& tech);

}  // namespace ind::extract
