#include "extract/extractor.hpp"

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::extract {

Extraction extract(const geom::Layout& layout, const ExtractionOptions& opts) {
  runtime::ScopedTimer timer("extract.total");
  auto& metrics = runtime::MetricsRegistry::instance();

  Extraction out;
  const auto& segs = layout.segments();
  const auto& tech = layout.tech();
  metrics.add_count("extract.segments",
                    static_cast<std::int64_t>(segs.size()));

  // Per-segment R and C-to-ground: independent elements written by index,
  // so the parallel result matches the serial loop exactly.
  out.resistance.resize(segs.size());
  out.ground_cap.resize(segs.size());
  {
    runtime::ScopedTimer rc_timer("extract.rc");
    runtime::parallel_for(
        segs.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            out.resistance[k] = segment_resistance(segs[k], tech);
            out.ground_cap[k] = segment_ground_cap(segs[k], tech);
          }
        },
        {.grain = 64});
  }

  if (opts.extract_inductance)
    out.partial_l =
        build_partial_inductance_matrix(segs, {.window = opts.mutual_window});

  out.coupling = build_coupling_caps(layout, opts.coupling_window);

  out.via_resistance.reserve(layout.vias().size());
  for (const geom::Via& v : layout.vias())
    out.via_resistance.push_back(via_resistance(v, tech));

  return out;
}

}  // namespace ind::extract
