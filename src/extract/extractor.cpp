#include "extract/extractor.hpp"

namespace ind::extract {

Extraction extract(const geom::Layout& layout, const ExtractionOptions& opts) {
  Extraction out;
  const auto& segs = layout.segments();
  const auto& tech = layout.tech();

  out.resistance.reserve(segs.size());
  out.ground_cap.reserve(segs.size());
  for (const geom::Segment& s : segs) {
    out.resistance.push_back(segment_resistance(s, tech));
    out.ground_cap.push_back(segment_ground_cap(s, tech));
  }

  if (opts.extract_inductance)
    out.partial_l =
        build_partial_inductance_matrix(segs, {.window = opts.mutual_window});

  for (const auto& [i, j] : layout.adjacent_pairs(opts.coupling_window)) {
    const double c = segment_coupling_cap(segs[i], segs[j], tech);
    if (c > 0.0) out.coupling.push_back({i, j, c});
  }

  out.via_resistance.reserve(layout.vias().size());
  for (const geom::Via& v : layout.vias())
    out.via_resistance.push_back(via_resistance(v, tech));

  return out;
}

}  // namespace ind::extract
