#include "extract/capacitance.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace ind::extract {

double ground_cap_per_length(double w, double t, double h, double eps_r) {
  if (w <= 0 || t <= 0 || h <= 0)
    throw std::invalid_argument("ground_cap_per_length: non-positive geometry");
  const double eps = geom::kEps0 * eps_r;
  return eps * (1.15 * (w / h) + 2.80 * std::pow(t / h, 0.222));
}

double coupling_cap_per_length(double w, double t, double s, double h,
                               double eps_r) {
  if (w <= 0 || t <= 0 || h <= 0 || s <= 0)
    throw std::invalid_argument(
        "coupling_cap_per_length: non-positive geometry");
  const double eps = geom::kEps0 * eps_r;
  const double body =
      0.03 * (w / h) + 0.83 * (t / h) - 0.07 * std::pow(t / h, 0.222);
  return eps * std::max(body, 0.01 * t / h) * std::pow(s / h, -1.34);
}

double segment_ground_cap(const geom::Segment& s,
                          const geom::Technology& tech) {
  const geom::Layer& layer = tech.layer(s.layer);
  const double h = layer.z_bottom - tech.substrate_z;
  return ground_cap_per_length(s.width, s.thickness, h, tech.epsilon_r) *
         s.length();
}

double segment_coupling_cap(const geom::Segment& a, const geom::Segment& b,
                            const geom::Technology& tech) {
  if (a.layer != b.layer) return 0.0;
  const auto g = geom::parallel_geometry(a, b);
  if (!g || g->overlap <= 0.0) return 0.0;
  const double spacing = geom::edge_spacing(a, b);
  if (spacing <= 0.0) return 0.0;  // touching/overlapping metal: same node
  const geom::Layer& layer = tech.layer(a.layer);
  const double h = layer.z_bottom - tech.substrate_z;
  const double w = 0.5 * (a.width + b.width);
  return coupling_cap_per_length(w, a.thickness, spacing, h, tech.epsilon_r) *
         g->overlap;
}

std::vector<CouplingCap> build_coupling_caps(const geom::Layout& layout,
                                             double window) {
  runtime::ScopedTimer timer("extract.coupling");
  const auto pairs = layout.adjacent_pairs(window);
  const auto& segs = layout.segments();
  const auto& tech = layout.tech();
  // Parallel map into an index-addressed scratch array, then a serial
  // in-order filter: the output is identical (values and order) to the
  // serial pair loop at any thread count.
  std::vector<double> value(pairs.size());
  runtime::parallel_for(
      pairs.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k)
          value[k] = segment_coupling_cap(segs[pairs[k].first],
                                          segs[pairs[k].second], tech);
      },
      {.grain = 64});
  std::vector<CouplingCap> out;
  for (std::size_t k = 0; k < pairs.size(); ++k)
    if (value[k] > 0.0) out.push_back({pairs[k].first, pairs[k].second,
                                       value[k]});
  runtime::MetricsRegistry::instance().add_count(
      "extract.coupling_caps", static_cast<std::int64_t>(out.size()));
  return out;
}

}  // namespace ind::extract
