// Chern-style interconnect capacitance models (Section 3: "ground and
// coupling capacitances for the interconnect are computed using Chern [8]
// models or commercial extraction tools").
//
// Substitution note (DESIGN.md): we implement the same functional family —
// parallel-plate area term plus power-law fringe/coupling corrections fitted
// for multilevel metal — with coefficients representative of a c.-2000
// process. The closed forms below follow the widely used Sakurai-Tamaru /
// Chern fits.
#pragma once

#include <vector>

#include "geom/layout.hpp"

namespace ind::extract {

/// Capacitance per metre of a wire of width `w`, thickness `t` at height `h`
/// over the reference plane:
///   C/l = eps [ 1.15 (w/h) + 2.80 (t/h)^0.222 ].
double ground_cap_per_length(double w, double t, double h, double eps_r);

/// Lateral coupling capacitance per metre between two parallel wires of
/// thickness `t`, width `w`, edge spacing `s`, at height `h`:
///   Cc/l = eps [ 0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222 ] (s/h)^-1.34.
double coupling_cap_per_length(double w, double t, double s, double h,
                               double eps_r);

/// Total ground capacitance (farads) of a segment, using its height above
/// the substrate as the reference-plane distance.
double segment_ground_cap(const geom::Segment& s, const geom::Technology& tech);

/// Total lateral coupling capacitance (farads) between two same-layer
/// parallel segments over their axial overlap.
double segment_coupling_cap(const geom::Segment& a, const geom::Segment& b,
                            const geom::Technology& tech);

struct CouplingCap {
  std::size_t i = 0, j = 0;  ///< segment indices
  double value = 0.0;        ///< farads
};

/// All non-zero lateral coupling capacitances between segment pairs within
/// `window` edge spacing. Pair evaluation is parallel; the returned order is
/// Layout::adjacent_pairs order regardless of thread count.
std::vector<CouplingCap> build_coupling_caps(const geom::Layout& layout,
                                             double window);

}  // namespace ind::extract
