// One-stop parasitic extraction of a Layout: per-segment R / C-to-ground,
// the dense partial-inductance matrix, lateral coupling capacitances, and
// via resistances — the raw material for the PEEC model builder (peec/) and
// the sparsification schemes (sparsify/).
#pragma once

#include <vector>

#include "extract/capacitance.hpp"
#include "extract/partial_inductance.hpp"
#include "extract/resistance.hpp"
#include "geom/layout.hpp"
#include "la/dense_matrix.hpp"

namespace ind::extract {

struct ExtractionOptions {
  /// Max centre distance for mutual-inductance computation. The *full* PEEC
  /// model uses an effectively unbounded window ("mutual inductances between
  /// all pairs of parallel segments"); sparsification schemes shrink this
  /// downstream.
  double mutual_window = 1e9;
  /// Max edge spacing for lateral coupling capacitance ("coupling
  /// capacitance between all pairs of adjacent lines").
  double coupling_window = geom::um(5.0);
  /// Skip the (quadratic-cost) partial-inductance matrix entirely — used by
  /// the RC-only comparison model, which has no inductive elements.
  bool extract_inductance = true;
};

struct Extraction {
  std::vector<double> resistance;      ///< ohms, per segment
  std::vector<double> ground_cap;      ///< farads, per segment
  la::Matrix partial_l;                ///< henries, dense symmetric
  std::vector<CouplingCap> coupling;   ///< lateral C between adjacent pairs
  std::vector<double> via_resistance;  ///< ohms, per via (layout order)

  std::size_t num_mutual_terms() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < partial_l.rows(); ++i)
      for (std::size_t j = i + 1; j < partial_l.cols(); ++j)
        if (partial_l(i, j) != 0.0) ++count;
    return count;
  }
};

/// Extracts all parasitics of `layout` (whose segments should already be
/// subdivided to the desired model granularity).
Extraction extract(const geom::Layout& layout,
                   const ExtractionOptions& opts = {});

}  // namespace ind::extract
