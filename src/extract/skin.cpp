#include "extract/skin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ind::extract {

double skin_depth(double rho_ohm_m, double freq_hz) {
  if (!(rho_ohm_m > 0.0))
    throw std::invalid_argument("skin_depth: resistivity must be > 0");
  // DC (and negative-frequency inputs from sweep underflow) has no skin
  // depth: current fills the whole cross-section. An infinite depth is the
  // natural sentinel — every "is the conductor thicker than delta?" test
  // comes out false, so callers need no special casing.
  if (freq_hz <= 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt(rho_ohm_m / (M_PI * freq_hz * geom::kMu0));
}

std::vector<geom::Segment> split_for_skin(const geom::Segment& s,
                                          const SkinSplitOptions& opts) {
  if (!(opts.max_width > 0.0) || !(opts.max_thickness > 0.0))
    throw std::invalid_argument(
        "split_for_skin: max_width / max_thickness must be > 0");
  if (opts.max_filaments_per_axis < 1)
    throw std::invalid_argument(
        "split_for_skin: max_filaments_per_axis must be >= 1");
  // Clamp in double BEFORE the int cast: a tiny max_width can push
  // ceil(width / max_width) far past INT_MAX, and float-to-int conversion of
  // an out-of-range value is undefined behaviour, not saturation.
  const auto split_count = [&opts](double extent, double max_extent) {
    double c = std::ceil(extent / max_extent);
    if (!(c > 1.0)) c = 1.0;  // also catches NaN from 0/0
    c = std::min(c, static_cast<double>(opts.max_filaments_per_axis));
    return static_cast<int>(c);
  };
  const int nw = split_count(s.width, opts.max_width);
  const int nt = split_count(s.thickness, opts.max_thickness);

  std::vector<geom::Segment> out;
  out.reserve(static_cast<std::size_t>(nw) * nt);
  const double fw = s.width / nw;
  const double ft = s.thickness / nt;
  const bool along_x = s.axis() == geom::Axis::X;

  for (int iw = 0; iw < nw; ++iw) {
    // Offset of this filament's centre from the parent centre-line.
    const double lateral = (iw - 0.5 * (nw - 1)) * fw;
    for (int it = 0; it < nt; ++it) {
      const double vertical = (it - 0.5 * (nt - 1)) * ft;
      geom::Segment f = s;
      f.width = fw;
      f.thickness = ft;
      f.z = s.z + vertical;
      if (along_x) {
        f.a.y += lateral;
        f.b.y += lateral;
      } else {
        f.a.x += lateral;
        f.b.x += lateral;
      }
      out.push_back(f);
    }
  }
  return out;
}

std::vector<geom::Segment> split_all(const std::vector<geom::Segment>& in,
                                     std::vector<std::size_t>& parent_of,
                                     const SkinSplitOptions& opts) {
  std::vector<geom::Segment> out;
  parent_of.clear();
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (geom::Segment& f : split_for_skin(in[i], opts)) {
      out.push_back(f);
      parent_of.push_back(i);
    }
  }
  return out;
}

}  // namespace ind::extract
