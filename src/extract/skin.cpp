#include "extract/skin.hpp"

#include <algorithm>
#include <cmath>

namespace ind::extract {

double skin_depth(double rho_ohm_m, double freq_hz) {
  return std::sqrt(rho_ohm_m / (M_PI * freq_hz * geom::kMu0));
}

std::vector<geom::Segment> split_for_skin(const geom::Segment& s,
                                          const SkinSplitOptions& opts) {
  const int nw = std::clamp(
      static_cast<int>(std::ceil(s.width / opts.max_width)), 1,
      opts.max_filaments_per_axis);
  const int nt = std::clamp(
      static_cast<int>(std::ceil(s.thickness / opts.max_thickness)), 1,
      opts.max_filaments_per_axis);

  std::vector<geom::Segment> out;
  out.reserve(static_cast<std::size_t>(nw) * nt);
  const double fw = s.width / nw;
  const double ft = s.thickness / nt;
  const bool along_x = s.axis() == geom::Axis::X;

  for (int iw = 0; iw < nw; ++iw) {
    // Offset of this filament's centre from the parent centre-line.
    const double lateral = (iw - 0.5 * (nw - 1)) * fw;
    for (int it = 0; it < nt; ++it) {
      const double vertical = (it - 0.5 * (nt - 1)) * ft;
      geom::Segment f = s;
      f.width = fw;
      f.thickness = ft;
      f.z = s.z + vertical;
      if (along_x) {
        f.a.y += lateral;
        f.b.y += lateral;
      } else {
        f.a.x += lateral;
        f.b.x += lateral;
      }
      out.push_back(f);
    }
  }
  return out;
}

std::vector<geom::Segment> split_all(const std::vector<geom::Segment>& in,
                                     std::vector<std::size_t>& parent_of,
                                     const SkinSplitOptions& opts) {
  std::vector<geom::Segment> out;
  parent_of.clear();
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (geom::Segment& f : split_for_skin(in[i], opts)) {
      out.push_back(f);
      parent_of.push_back(i);
    }
  }
  return out;
}

}  // namespace ind::extract
