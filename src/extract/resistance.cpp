#include "extract/resistance.hpp"

#include <stdexcept>

namespace ind::extract {

double segment_resistance(const geom::Segment& s,
                          const geom::Technology& tech) {
  if (s.width <= 0.0)
    throw std::invalid_argument("segment_resistance: width must be positive");
  const geom::Layer& layer = tech.layer(s.layer);
  return layer.sheet_resistance * s.length() / s.width;
}

double via_resistance(const geom::Via& v, const geom::Technology& tech) {
  const int spans = v.upper_layer - v.lower_layer;
  if (spans < 1)
    throw std::invalid_argument("via_resistance: degenerate via");
  if (v.cuts < 1) throw std::invalid_argument("via_resistance: cuts < 1");
  return tech.via_resistance * spans / v.cuts;
}

}  // namespace ind::extract
