// Skin-effect conductor splitting.
//
// The analytical partial-inductance formulas assume uniform current density;
// "hence very wide conductors must be split into narrower lines before
// computing inductance" (Section 3). Splitting a bar into parallel filaments
// that share end nodes lets the field solver redistribute current with
// frequency, which is precisely how skin and proximity effects appear in the
// loop extractor's R(f) rise and L(f) droop (Fig. 3b).
#pragma once

#include <vector>

#include "geom/segment.hpp"

namespace ind::extract {

struct SkinSplitOptions {
  double max_width = geom::um(2.0);      ///< max filament width (> 0)
  double max_thickness = geom::um(2.0);  ///< max filament thickness (> 0)
  int max_filaments_per_axis = 8;        ///< cap on the split factor (>= 1)
};

/// Skin depth (metres) of a conductor with resistivity rho (ohm-m) at
/// frequency f (Hz): delta = sqrt(rho / (pi f mu0)). At DC (freq_hz <= 0)
/// returns +infinity — current fills the whole cross-section, so every
/// "thicker than delta?" comparison is false without special casing.
/// Throws std::invalid_argument for non-positive resistivity.
double skin_depth(double rho_ohm_m, double freq_hz);

/// Splits a segment laterally (and vertically if thick) into filaments with
/// identical length that share the original end cross-sections. Each
/// filament keeps the parent's net/kind/layer; widths divide evenly. The
/// split factor per axis is clamped to max_filaments_per_axis before any
/// narrowing conversion, so arbitrarily small max_width / max_thickness are
/// safe. Throws std::invalid_argument for invalid options (non-positive
/// max extents, cap below 1).
std::vector<geom::Segment> split_for_skin(const geom::Segment& s,
                                          const SkinSplitOptions& opts = {});

/// Applies split_for_skin to every segment; `parent_of[k]` maps each output
/// filament back to the index of its source segment (for node sharing).
std::vector<geom::Segment> split_all(const std::vector<geom::Segment>& in,
                                     std::vector<std::size_t>& parent_of,
                                     const SkinSplitOptions& opts = {});

}  // namespace ind::extract
