#include "mor/prima.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "govern/budget.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"
#include "robust/fault_injection.hpp"
#include "robust/recovery.hpp"
#include "runtime/metrics.hpp"

namespace ind::mor {

ReducedModel prima_reduce(const la::Matrix& g, const la::Matrix& c,
                          const la::Matrix& b, const la::Matrix& l,
                          const PrimaOptions& opts) {
  const std::size_t n = g.rows();
  if (g.cols() != n || c.rows() != n || c.cols() != n || b.rows() != n ||
      l.rows() != n)
    throw std::invalid_argument("prima_reduce: dimension mismatch");
  if (b.cols() == 0)
    throw std::invalid_argument("prima_reduce: no input columns");

  ReducedModel r;
  robust::SolveReport& report = r.report;

  // A = (G + s0 C)^{-1}; factor once, reuse for every Krylov block.
  la::Matrix shifted = g;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) shifted(i, j) += opts.s0 * c(i, j);
  const la::LU factor =
      robust::factor_dense_with_recovery(shifted, report, "prima");
  if (factor.size() == 0) {
    report.record("prima");
    throw la::SingularMatrixError(
        "prima_reduce: G + s0*C is singular (fallback ladder exhausted)");
  }

  auto finite_col = [](const la::Matrix& m, std::size_t j) {
    for (std::size_t i = 0; i < m.rows(); ++i)
      if (!std::isfinite(m(i, j))) return false;
    return true;
  };
  // A non-finite Krylov block (overflow/injected breakdown) is re-solved
  // once, then the still-bad columns are deflated out of the block so the
  // basis never absorbs a NaN.
  auto guard_block = [&](la::Matrix& blk, const la::Matrix& rhs,
                         std::int64_t iter) {
    const std::string site = "prima krylov block " + std::to_string(iter);
    if (robust::fault::fire(robust::fault::Site::KrylovBlock))
      blk(0, 0) = std::numeric_limits<double>::quiet_NaN();
    bool bad = false;
    for (std::size_t j = 0; j < blk.cols() && !bad; ++j)
      bad = !finite_col(blk, j);
    if (!bad) return;
    report.add_action(robust::RecoveryKind::Retry, 0, 0.0, site);
    blk = factor.solve(rhs);
    if (robust::fault::fire(robust::fault::Site::KrylovBlock))
      blk(0, 0) = std::numeric_limits<double>::quiet_NaN();
    std::vector<std::size_t> keep;
    for (std::size_t j = 0; j < blk.cols(); ++j)
      if (finite_col(blk, j)) keep.push_back(j);
    if (keep.size() == blk.cols()) return;
    report.add_action(robust::RecoveryKind::KrylovDeflation, 1,
                      static_cast<double>(blk.cols() - keep.size()), site);
    la::Matrix cleaned(n, keep.size());
    for (std::size_t j = 0; j < keep.size(); ++j)
      for (std::size_t i = 0; i < n; ++i) cleaned(i, j) = blk(i, keep[j]);
    blk = std::move(cleaned);
  };

  // First block: orth((G + s0 C)^{-1} B).
  la::Matrix basis(n, 0);
  la::Matrix block = factor.solve(b);
  std::int64_t krylov_iterations = 0;
  guard_block(block, b, krylov_iterations);
  while (basis.cols() < opts.max_order && block.cols() > 0) {
    // Budget poll per Arnoldi iteration, charged at the state dimension
    // (the iteration's solve cost scales with n). The loop is serial, so a
    // work-budget trip is deterministic.
    if (govern::checkpoint(n))
      govern::throw_if_cancelled("prima.arnoldi");
    ++krylov_iterations;
    const la::QrResult qr =
        la::orthonormalize_against(block, basis, opts.deflation_tol);
    if (qr.rank == 0) break;  // Krylov space exhausted
    // Append, truncating to the order budget.
    const std::size_t take =
        std::min<std::size_t>(qr.rank, opts.max_order - basis.cols());
    la::Matrix taken(n, take);
    for (std::size_t j = 0; j < take; ++j)
      for (std::size_t i = 0; i < n; ++i) taken(i, j) = qr.q(i, j);
    basis = la::hcat(basis, taken);
    if (basis.cols() >= opts.max_order) break;
    // Next block: A * C * (new columns).
    const la::Matrix rhs = c * taken;
    block = factor.solve(rhs);
    guard_block(block, rhs, krylov_iterations);
  }
  if (basis.cols() == 0) {
    report.raise_status(robust::SolveStatus::Failed);
    report.record("prima");
    throw std::runtime_error("prima_reduce: empty projection basis");
  }
  runtime::MetricsRegistry::instance().add_count("solve.prima.iterations",
                                                 krylov_iterations);

  r.v = basis;
  const la::Matrix vt = basis.transposed();
  r.g = vt * (g * basis);
  r.c = vt * (c * basis);
  r.b = vt * b;
  r.l = vt * l;
  report.record("prima");
  return r;
}

la::CMatrix transfer_function(const la::Matrix& g, const la::Matrix& c,
                              const la::Matrix& b, const la::Matrix& l,
                              double omega) {
  const std::size_t n = g.rows();
  la::CMatrix a(n, n);
  const la::Complex jw{0.0, omega};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = la::Complex{g(i, j), 0.0} + jw * c(i, j);
  const la::CLU factor(std::move(a));

  la::CMatrix h(l.cols(), b.cols());
  la::CVector col(n);
  for (std::size_t p = 0; p < b.cols(); ++p) {
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, p);
    const la::CVector x = factor.solve(col);
    for (std::size_t m = 0; m < l.cols(); ++m) {
      la::Complex acc{};
      for (std::size_t i = 0; i < n; ++i) acc += l(i, m) * x[i];
      h(m, p) = acc;
    }
  }
  return h;
}

}  // namespace ind::mor
