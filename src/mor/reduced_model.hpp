// Reduced-model simulation, including driver co-simulation.
//
// The combined flow of [4] keeps the nonlinear/time-varying switching
// devices *outside* the reduced linear macromodel: the macromodel exposes
// current-injection ports at the driver attachment nodes (and the constant
// supply / background sources as extra input columns), and each transient
// step couples the small dense reduced system with the driver conductances.
// This is why the reduced simulation runs in seconds where the flat PEEC
// model takes minutes (Table 1).
#pragma once

#include <limits>
#include <vector>

#include "circuit/netlist.hpp"
#include "mor/prima.hpp"

namespace ind::mor {

inline constexpr std::size_t kGroundPort =
    std::numeric_limits<std::size_t>::max();

/// A switched driver attached to reduced-model ports. Port indices refer to
/// the *port block* of the B matrix (see CosimInputs); kGroundPort means the
/// rail is the global reference.
struct CosimDriver {
  std::size_t out_port = 0;
  std::size_t vdd_port = kGroundPort;
  std::size_t gnd_port = kGroundPort;
  circuit::SwitchedDriver dynamics;  ///< node fields unused here
};

/// Column layout of the reduced B: first `source_waveforms.size()` columns
/// are independent sources with known waveforms; the remaining columns are
/// driver ports whose injected current is resolved by co-simulation.
struct CosimInputs {
  std::vector<circuit::Pwl> source_waveforms;
  std::vector<CosimDriver> drivers;
};

struct CosimOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;
};

struct CosimResult {
  la::Vector time;
  std::vector<la::Vector> outputs;  ///< one per column of the reduced L

  double factor_seconds = 0.0;
  double step_seconds = 0.0;
  std::size_t refactor_count = 0;
};

/// Trapezoidal co-simulation of the reduced model with switched drivers.
CosimResult simulate_reduced(const ReducedModel& model,
                             const CosimInputs& inputs,
                             const CosimOptions& options);

}  // namespace ind::mor
