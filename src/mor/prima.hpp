// PRIMA: Passive Reduced-order Interconnect Macromodeling Algorithm
// (Odabasioglu et al. [20]; Section 4 of the paper).
//
// Given the MNA system  G x + C x' = B u,  y = L^T x,  PRIMA builds an
// orthonormal basis V of the block Krylov subspace
//   Kr((G + s0 C)^{-1} C, (G + s0 C)^{-1} B)
// and reduces by congruence: Gr = V^T G V, Cr = V^T C V, Br = V^T B,
// Lr = V^T L. Congruence preserves passivity when G, C satisfy the usual
// MNA semidefiniteness structure.
//
// The paper's combined flow [4] additionally distinguishes *active ports*
// (driver attachment points, excited) from *passive sinks* (observed only):
// that variant simply passes the sink selectors in L rather than B, which
// shrinks the Krylov block width and the reduction cost.
#pragma once

#include "circuit/mna.hpp"
#include "la/dense_matrix.hpp"
#include "robust/diagnostics.hpp"

namespace ind::mor {

struct PrimaOptions {
  std::size_t max_order = 40;        ///< max columns of V
  double s0 = 2.0 * 3.141592653589793 * 1e9;  ///< expansion point (rad/s)
  double deflation_tol = 1e-10;
};

struct ReducedModel {
  la::Matrix g;  ///< q x q
  la::Matrix c;  ///< q x q
  la::Matrix b;  ///< q x p   (reduced inputs)
  la::Matrix l;  ///< q x m   (reduced output selectors)
  la::Matrix v;  ///< n x q   (projection basis)

  /// Robustness diagnostics: condition estimate of G + s0 C, plus any
  /// gmin-regularisation or Krylov-deflation fallback the reduction took.
  robust::SolveReport report;

  std::size_t order() const { return g.rows(); }
};

/// Reduces (G, C, B, L). Non-finite Krylov blocks are re-solved and then
/// deflated (the offending columns dropped) rather than propagated into the
/// basis; a singular (G + s0 C) goes through the gmin fallback ladder and
/// throws la::SingularMatrixError only once every rung is exhausted.
ReducedModel prima_reduce(const la::Matrix& g, const la::Matrix& c,
                          const la::Matrix& b, const la::Matrix& l,
                          const PrimaOptions& opts = {});

/// Transfer function H(s) = L^T (G + s C)^{-1} B of a (reduced or full)
/// system, evaluated at s = j*omega. Used to validate the reduction.
la::CMatrix transfer_function(const la::Matrix& g, const la::Matrix& c,
                              const la::Matrix& b, const la::Matrix& l,
                              double omega);

}  // namespace ind::mor
