#include "mor/hierarchical.hpp"

#include <stdexcept>

#include "la/lu.hpp"
#include "la/qr.hpp"

namespace ind::mor {

HierarchicalResult hierarchical_reduce(const la::Matrix& g,
                                       const la::Matrix& c,
                                       const la::Matrix& b,
                                       const la::Matrix& l,
                                       std::vector<int> block_of,
                                       const HierarchicalOptions& opts) {
  const std::size_t n = g.rows();
  if (g.cols() != n || c.rows() != n || c.cols() != n || b.rows() != n ||
      l.rows() != n || block_of.size() != n)
    throw std::invalid_argument("hierarchical_reduce: dimension mismatch");

  // --- Promote to global: input/output rows, then (iteratively) unknowns
  // that couple to a different block. After this loop no G/C entry connects
  // internals of two different blocks.
  for (std::size_t i = 0; i < n; ++i) {
    bool io = false;
    for (std::size_t j = 0; j < b.cols(); ++j) io |= b(i, j) != 0.0;
    for (std::size_t j = 0; j < l.cols(); ++j) io |= l(i, j) != 0.0;
    if (io) block_of[i] = -1;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (block_of[i] < 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (block_of[j] < 0 || block_of[j] == block_of[i]) continue;
        if (g(i, j) == 0.0 && c(i, j) == 0.0 && g(j, i) == 0.0 &&
            c(j, i) == 0.0)
          continue;
        // Promote the unknown with the weaker block claim (higher index).
        block_of[std::max(i, j)] = -1;
        changed = true;
        break;
      }
    }
  }

  // --- Index sets.
  std::vector<std::size_t> globals;
  int max_block = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (block_of[i] < 0)
      globals.push_back(i);
    else
      max_block = std::max(max_block, block_of[i]);
  }
  std::vector<std::vector<std::size_t>> blocks(
      static_cast<std::size_t>(max_block + 1));
  for (std::size_t i = 0; i < n; ++i)
    if (block_of[i] >= 0)
      blocks[static_cast<std::size_t>(block_of[i])].push_back(i);

  HierarchicalResult result;
  result.global_unknowns = globals.size();

  // --- Block bases by basis splitting (BSMOR-style): run one global Krylov
  // recursion, then restrict and re-orthonormalise its columns per block.
  // Any global Krylov vector is exactly representable in the assembled
  // structured basis (up to the per-block truncation), so the hierarchical
  // model is at least as accurate as a flat reduction of the same depth
  // while keeping the paper's local/global separation.
  const std::size_t n_blocks = blocks.size();
  const std::size_t global_order = std::min(
      n, opts.order_per_block * std::max<std::size_t>(1, n_blocks));
  PrimaOptions popts;
  popts.max_order = global_order;
  popts.s0 = opts.s0;
  popts.deflation_tol = opts.deflation_tol;
  const ReducedModel flat = prima_reduce(g, c, b, l, popts);

  struct BlockBasis {
    std::vector<std::size_t> rows;
    la::Matrix v;  // |rows| x q_k
  };
  std::vector<BlockBasis> bases;
  for (const auto& rows : blocks) {
    if (rows.empty()) continue;
    // Restrict the global basis to this block's rows.
    la::Matrix restricted(rows.size(), flat.v.cols());
    for (std::size_t i = 0; i < rows.size(); ++i)
      for (std::size_t j = 0; j < flat.v.cols(); ++j)
        restricted(i, j) = flat.v(rows[i], j);
    const la::QrResult qr = la::orthonormalize(restricted, opts.deflation_tol);
    // Keep the leading columns: the Krylov recursion orders them by moment,
    // so truncation drops the highest moments first.
    const std::size_t keep =
        std::min<std::size_t>(qr.rank, opts.order_per_block);
    la::Matrix v_k(rows.size(), keep);
    for (std::size_t j = 0; j < keep; ++j)
      for (std::size_t i = 0; i < rows.size(); ++i) v_k(i, j) = qr.q(i, j);
    result.block_orders.push_back(keep);
    bases.push_back({rows, std::move(v_k)});
  }

  // --- Assemble V = diag(I_global, V_1, V_2, ...).
  std::size_t q = globals.size();
  for (const BlockBasis& bb : bases) q += bb.v.cols();
  la::Matrix v(n, q);
  for (std::size_t k = 0; k < globals.size(); ++k) v(globals[k], k) = 1.0;
  std::size_t col = globals.size();
  for (const BlockBasis& bb : bases) {
    for (std::size_t j = 0; j < bb.v.cols(); ++j, ++col)
      for (std::size_t i = 0; i < bb.rows.size(); ++i)
        v(bb.rows[i], col) = bb.v(i, j);
  }

  ReducedModel& r = result.model;
  r.v = v;
  const la::Matrix vt = v.transposed();
  r.g = vt * (g * v);
  r.c = vt * (c * v);
  r.b = vt * b;
  r.l = vt * l;
  return result;
}

}  // namespace ind::mor
