#include "mor/reduced_model.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "la/lu.hpp"

namespace ind::mor {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Port-space conductance matrix of the drivers at time t.
la::Matrix driver_conductance(const std::vector<CosimDriver>& drivers,
                              std::size_t n_ports, double t) {
  la::Matrix d(n_ports, n_ports);
  auto stamp = [&](std::size_t a, std::size_t b, double g) {
    if (a != kGroundPort) d(a, a) += g;
    if (b != kGroundPort) d(b, b) += g;
    if (a != kGroundPort && b != kGroundPort) {
      d(a, b) -= g;
      d(b, a) -= g;
    }
  };
  for (const CosimDriver& drv : drivers) {
    stamp(drv.out_port, drv.vdd_port, drv.dynamics.g_up(t));
    stamp(drv.out_port, drv.gnd_port, drv.dynamics.g_dn(t));
  }
  return d;
}

std::vector<double> driver_state(const std::vector<CosimDriver>& drivers,
                                 double t) {
  std::vector<double> s;
  s.reserve(2 * drivers.size());
  for (const CosimDriver& d : drivers) {
    s.push_back(d.dynamics.g_up(t));
    s.push_back(d.dynamics.g_dn(t));
  }
  return s;
}

}  // namespace

CosimResult simulate_reduced(const ReducedModel& model,
                             const CosimInputs& inputs,
                             const CosimOptions& options) {
  const std::size_t q = model.order();
  const std::size_t p_src = inputs.source_waveforms.size();
  if (model.b.cols() < p_src)
    throw std::invalid_argument("simulate_reduced: more waveforms than inputs");
  const std::size_t p_port = model.b.cols() - p_src;
  for (const CosimDriver& d : inputs.drivers)
    for (std::size_t port : {d.out_port, d.vdd_port, d.gnd_port})
      if (port != kGroundPort && port >= p_port)
        throw std::invalid_argument("simulate_reduced: driver port out of range");

  // Split B into source and port blocks.
  la::Matrix b_src(q, p_src), p_mat(q, p_port);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < p_src; ++j) b_src(i, j) = model.b(i, j);
    for (std::size_t j = 0; j < p_port; ++j) p_mat(i, j) = model.b(i, p_src + j);
  }
  const la::Matrix p_t = p_mat.transposed();

  const double h = options.dt;
  CosimResult result;
  result.outputs.assign(model.l.cols(), {});

  auto src_vec = [&](double t) {
    la::Vector u(p_src);
    for (std::size_t k = 0; k < p_src; ++k) u[k] = inputs.source_waveforms[k](t);
    return u;
  };

  auto system_matrix = [&](double c_scale, double t) {
    la::Matrix a = model.g;
    for (std::size_t i = 0; i < q; ++i)
      for (std::size_t j = 0; j < q; ++j) a(i, j) += c_scale * model.c(i, j);
    if (p_port > 0) {
      const la::Matrix pd = p_mat * driver_conductance(inputs.drivers, p_port, t);
      const la::Matrix pdp = pd * p_t;
      for (std::size_t i = 0; i < q; ++i)
        for (std::size_t j = 0; j < q; ++j) a(i, j) += pdp(i, j);
    }
    return a;
  };

  // DC operating point. A heavily truncated projection basis can leave the
  // reduced conductance matrix singular at DC (some basis directions have no
  // conductive component); regularise with a vanishing diagonal shift —
  // the transient matrices (which add (2/h)C) are unaffected.
  la::Vector x;
  {
    const la::Vector u0 = src_vec(0.0);
    la::Matrix g0 = system_matrix(0.0, 0.0);
    try {
      x = la::LU(g0).solve(b_src.apply(u0));
    } catch (const la::SingularMatrixError&) {
      double scale = 0.0;
      for (std::size_t i = 0; i < q; ++i)
        scale = std::max(scale, std::abs(g0(i, i)));
      for (std::size_t i = 0; i < q; ++i) g0(i, i) += 1e-9 * (scale + 1e-12);
      x = la::LU(std::move(g0)).solve(b_src.apply(u0));
    }
  }

  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(options.t_stop / h));
  result.time.reserve(steps + 1);
  for (auto& o : result.outputs) o.reserve(steps + 1);
  auto record = [&](double t) {
    result.time.push_back(t);
    const la::Vector y = model.l.apply_transposed(x);
    for (std::size_t m = 0; m < y.size(); ++m) result.outputs[m].push_back(y[m]);
  };
  record(0.0);

  la::LU factor;
  std::vector<double> factored_state;
  auto refactor = [&](double t) {
    const auto t0 = Clock::now();
    factor = la::LU(system_matrix(2.0 / h, t));
    factored_state = driver_state(inputs.drivers, t);
    ++result.refactor_count;
    result.factor_seconds += seconds_since(t0);
  };
  refactor(h);

  la::Vector u_prev = src_vec(0.0);
  for (std::size_t k = 1; k <= steps; ++k) {
    const double t_prev = (k - 1) * h;
    const double t_next = k * h;
    if (driver_state(inputs.drivers, t_next) != factored_state)
      refactor(t_next);

    const auto t0 = Clock::now();
    const la::Vector u_next = src_vec(t_next);
    // rhs = (2/h)C x0 - G x0 + P i0 + B_src (u0 + u1),  i0 = -D0 P^T x0.
    la::Vector rhs = model.c.apply(x);
    for (double& v : rhs) v *= 2.0 / h;
    const la::Vector gx = model.g.apply(x);
    for (std::size_t i = 0; i < q; ++i) rhs[i] -= gx[i];
    if (p_port > 0) {
      const la::Vector v0 = p_t.apply(x);
      const la::Vector i0 =
          driver_conductance(inputs.drivers, p_port, t_prev).apply(v0);
      const la::Vector pi0 = p_mat.apply(i0);
      for (std::size_t i = 0; i < q; ++i) rhs[i] -= pi0[i];
    }
    la::Vector u_sum(p_src);
    for (std::size_t s = 0; s < p_src; ++s) u_sum[s] = u_prev[s] + u_next[s];
    const la::Vector bu = b_src.apply(u_sum);
    for (std::size_t i = 0; i < q; ++i) rhs[i] += bu[i];

    x = factor.solve(rhs);
    u_prev = u_next;
    result.step_seconds += seconds_since(t0);
    record(t_next);
  }
  return result;
}

}  // namespace ind::mor
