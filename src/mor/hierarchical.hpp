// Hierarchical interconnect circuit models (Beattie et al. [16];
// Section 4): "The concept of global circuit node is introduced to separate
// the electrical interaction into local and global interaction."
//
// Implementation: the MNA unknowns are partitioned into blocks; any unknown
// that interacts across blocks (or carries an input/output) is promoted to a
// *global* unknown and kept exactly. Each block's internal unknowns are
// compressed with a per-block Krylov basis (local PRIMA) whose inputs are
// the block's couplings to the global unknowns. The overall projection
//   V = diag(I_global, V_block1, V_block2, ...)
// is a congruence, so the passivity structure of G and C is preserved while
// the interaction is split exactly as the paper describes: local detail in
// the block bases, global detail untouched.
#pragma once

#include <vector>

#include "mor/prima.hpp"

namespace ind::mor {

struct HierarchicalOptions {
  std::size_t order_per_block = 8;            ///< Krylov columns per block
  double s0 = 2.0 * 3.141592653589793 * 1e9;  ///< expansion point (rad/s)
  double deflation_tol = 1e-10;
};

struct HierarchicalResult {
  ReducedModel model;
  std::size_t global_unknowns = 0;  ///< kept exactly
  std::vector<std::size_t> block_orders;
};

/// Reduces (g, c, b, l) given a block id per unknown (entries < 0 are
/// forced global). Unknowns with nonzero rows in b or l, and unknowns
/// coupling to a different block, are promoted to global automatically.
HierarchicalResult hierarchical_reduce(const la::Matrix& g,
                                       const la::Matrix& c,
                                       const la::Matrix& b,
                                       const la::Matrix& l,
                                       std::vector<int> block_of,
                                       const HierarchicalOptions& opts = {});

}  // namespace ind::mor
