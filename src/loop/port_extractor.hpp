// Section-5 loop extraction flow: "The loop inductance model defines a port
// at the driver side of the signal line and shorts the receiver side (which
// actually sees a capacitive load) to the local ground, since inductance
// extraction is performed independent of capacitance. Typically, an
// extraction tool such as FastHenry is used to obtain the impedance over a
// frequency range."
#pragma once

#include <vector>

#include "geom/layout.hpp"
#include "loop/mqs_solver.hpp"

namespace ind::loop {

struct LoopExtractionOptions {
  MqsOptions mqs{};
  double max_segment_length = geom::um(100.0);
  bool include_power_as_return = true;  ///< let VDD straps carry return too
};

/// Extracts loop R(f) and L(f) for `signal_net`: the port sits between the
/// driver-end signal node and the nearest ground node; every receiver end is
/// shorted to its local ground. The layout must carry a driver (and usually
/// receivers) for the net.
std::vector<LoopImpedance> extract_loop_rl(
    const geom::Layout& layout, int signal_net,
    const std::vector<double>& frequencies,
    const LoopExtractionOptions& opts = {});

/// Logarithmically spaced frequency grid [f_lo, f_hi], inclusive.
std::vector<double> log_frequency_sweep(double f_lo, double f_hi, int points);

}  // namespace ind::loop
