#include "loop/mqs_solver.hpp"

#include "runtime/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "extract/partial_inductance.hpp"
#include "la/lu.hpp"
#include "robust/diagnostics.hpp"
#include "robust/recovery.hpp"

namespace ind::loop {
namespace {

std::uint64_t key_of(const geom::Point& p, int layer, double snap) {
  const auto qx = static_cast<std::int64_t>(std::llround(p.x / snap));
  const auto qy = static_cast<std::int64_t>(std::llround(p.y / snap));
  const std::uint64_t ux = static_cast<std::uint64_t>(qx + (1LL << 27));
  const std::uint64_t uy = static_cast<std::uint64_t>(qy + (1LL << 27));
  return (static_cast<std::uint64_t>(layer) << 56) | (ux << 28) | uy;
}

}  // namespace

const char* to_string(ExtractionMethod method) {
  switch (method) {
    case ExtractionMethod::Dense: return "dense";
    case ExtractionMethod::FftGmres: return "fft_gmres";
    case ExtractionMethod::Auto: return "auto";
  }
  return "unknown";
}

MqsSolver::MqsSolver(const std::vector<geom::Segment>& segments,
                     const std::vector<geom::Via>& vias,
                     const geom::Technology& tech, const MqsOptions& opts)
    : snap_(opts.snap), opts_(opts) {
  std::vector<std::size_t> parent_of;
  filaments_ = extract::split_all(segments, parent_of, opts.skin);

  // Parent-endpoint nodes: filaments of one parent share its two nodes, so
  // current can redistribute laterally only at segment boundaries (volume
  // filament discretisation).
  auto get_node = [&](const geom::Point& p, int layer, geom::NetKind kind) {
    const std::uint64_t key = key_of(p, layer, snap_);
    const auto it = std::lower_bound(
        node_keys_.begin(), node_keys_.end(), key,
        [](const auto& e, std::uint64_t k) { return e.first < k; });
    if (it != node_keys_.end() && it->first == key) return it->second;
    const std::size_t id = node_count_++;
    node_keys_.insert(it, {key, id});
    node_info_.push_back({p, layer, kind});
    alias_.push_back(id);
    return id;
  };

  fil_a_.reserve(filaments_.size());
  fil_b_.reserve(filaments_.size());
  fil_resistance_.reserve(filaments_.size());
  for (std::size_t k = 0; k < filaments_.size(); ++k) {
    const geom::Segment& parent = segments[parent_of[k]];
    fil_a_.push_back(get_node(parent.a, parent.layer, parent.kind));
    fil_b_.push_back(get_node(parent.b, parent.layer, parent.kind));
    const geom::Segment& f = filaments_[k];
    const geom::Layer& layer = tech.layer(f.layer);
    // Volumetric resistivity recovered from the sheet model: rho = Rs * t.
    const double rho = layer.sheet_resistance * layer.thickness;
    fil_resistance_.push_back(
        std::max(rho * f.length() / (f.width * f.thickness), 1e-9));
  }

  method_ = opts.method;
  if (method_ == ExtractionMethod::Auto)
    method_ = filaments_.size() >= opts.fast.auto_threshold
                  ? ExtractionMethod::FftGmres
                  : ExtractionMethod::Dense;

  if (method_ == ExtractionMethod::FftGmres && !filaments_.empty()) {
    fast::VoxelGrid grid = fast::voxelize(filaments_, tech, opts.fast.voxel);
    if (grid.cells.empty()) {
      // Every filament is shorter than half a pitch: nothing to model on
      // the lattice — fall back to the dense path rather than fail.
      method_ = ExtractionMethod::Dense;
    } else {
      runtime::MetricsRegistry::instance().max_count(
          "fast.snap_error_ppm",
          static_cast<std::int64_t>(
              grid.stats.relative_error(grid.pitch) * 1e6));
      toeplitz_ = std::make_shared<const fast::ToeplitzLOperator>(std::move(grid));
      precond_l_ = fast::voxel_sparsified_l(*toeplitz_, opts.fast.precond);
    }
  }
  if (method_ != ExtractionMethod::FftGmres) {
    method_ = ExtractionMethod::Dense;
    fil_l_ = extract::build_partial_inductance_matrix(
        filaments_, {.window = opts.mutual_window});
  }

  for (const geom::Via& v : vias) {
    const auto lo = node_at(v.at, v.lower_layer);
    const auto hi = node_at(v.at, v.upper_layer);
    if (lo && hi) short_nodes(*lo, *hi);
  }
}

const fast::VoxelGrid* MqsSolver::voxel_grid() const {
  return toeplitz_ ? &toeplitz_->grid() : nullptr;
}

std::size_t MqsSolver::canonical(std::size_t node) const {
  while (alias_[node] != node) node = alias_[node];
  return node;
}

void MqsSolver::short_nodes(std::size_t a, std::size_t b) {
  const std::size_t ra = canonical(a), rb = canonical(b);
  if (ra != rb) alias_[std::max(ra, rb)] = std::min(ra, rb);
}

std::optional<std::size_t> MqsSolver::node_at(geom::Point p, int layer) const {
  const std::uint64_t key = key_of(p, layer, snap_);
  const auto it = std::lower_bound(
      node_keys_.begin(), node_keys_.end(), key,
      [](const auto& e, std::uint64_t k) { return e.first < k; });
  if (it == node_keys_.end() || it->first != key) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> MqsSolver::nearest_node(geom::Point p,
                                                   geom::NetKind kind) const {
  std::optional<std::size_t> best;
  double best_d = 1e300;
  for (std::size_t i = 0; i < node_info_.size(); ++i) {
    if (node_info_[i].kind != kind) continue;
    const double d = geom::distance(node_info_[i].at, p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

LoopImpedance MqsSolver::port_impedance(std::size_t plus, std::size_t minus,
                                        double frequency) const {
  if (frequency <= 0.0)
    throw std::invalid_argument("port_impedance: frequency must be positive");
  runtime::ScopedTimer timer("solve.mqs_port");
  runtime::MetricsRegistry::instance().max_count(
      "solve.mqs_port.max_filaments",
      static_cast<std::int64_t>(filaments_.size()));
  if (method_ == ExtractionMethod::FftGmres)
    return port_impedance_fft(plus, minus, frequency);
  return port_impedance_dense(plus, minus, frequency);
}

LoopImpedance MqsSolver::port_impedance_dense(std::size_t plus,
                                              std::size_t minus,
                                              double frequency) const {
  const std::size_t p = canonical(plus);
  const std::size_t ref = canonical(minus);
  if (p == ref)
    throw std::invalid_argument("port_impedance: port nodes are shorted");

  // Compact indices for canonical nodes, with the reference node removed.
  std::vector<std::ptrdiff_t> compact(node_count_, -1);
  std::size_t n_active = 0;
  for (std::size_t k = 0; k < filaments_.size(); ++k) {
    for (std::size_t node : {canonical(fil_a_[k]), canonical(fil_b_[k])}) {
      if (node == ref || compact[node] >= 0) continue;
      compact[node] = static_cast<std::ptrdiff_t>(n_active++);
    }
  }
  if (compact[p] < 0)
    throw std::invalid_argument("port_impedance: plus node is floating");

  // Conductor groups not connected to the reference have no defined
  // potential (singular KCL block). Tie one node of each such group to the
  // reference with a unit conductance: since that is the group's only
  // connection, zero net current flows through it — the fix is exact, it
  // merely pins the floating potential.
  std::vector<std::size_t> comp(node_count_);
  for (std::size_t i = 0; i < node_count_; ++i) comp[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (comp[x] != x) x = comp[x] = comp[comp[x]];
    return x;
  };
  for (std::size_t k = 0; k < filaments_.size(); ++k) {
    const std::size_t ra = find(canonical(fil_a_[k]));
    const std::size_t rb = find(canonical(fil_b_[k]));
    if (ra != rb) comp[ra] = rb;
  }
  std::vector<std::size_t> pin_nodes;
  {
    std::vector<char> seen(node_count_, 0);
    const std::size_t ref_comp = find(ref);
    for (std::size_t i = 0; i < node_count_; ++i) {
      if (canonical(i) != i || compact[i] < 0) continue;
      const std::size_t c = find(i);
      if (c == ref_comp || seen[c]) continue;
      seen[c] = 1;
      pin_nodes.push_back(i);
    }
  }

  const std::size_t nf = filaments_.size();
  const std::size_t size = n_active + nf;
  la::CMatrix a(size, size);
  const double omega = 2.0 * M_PI * frequency;
  const la::Complex jw{0.0, omega};

  for (std::size_t k = 0; k < nf; ++k) {
    const std::ptrdiff_t na = compact[canonical(fil_a_[k])];
    const std::ptrdiff_t nb = compact[canonical(fil_b_[k])];
    const std::size_t br = n_active + k;
    // KCL: branch current leaves a, enters b.
    if (na >= 0) a(static_cast<std::size_t>(na), br) += 1.0;
    if (nb >= 0) a(static_cast<std::size_t>(nb), br) -= 1.0;
    // Branch: v_a - v_b - (R + jwL_kk) i_k - sum_m jwL_km i_m = 0.
    if (na >= 0) a(br, static_cast<std::size_t>(na)) += 1.0;
    if (nb >= 0) a(br, static_cast<std::size_t>(nb)) -= 1.0;
    a(br, br) -= la::Complex{fil_resistance_[k], 0.0} + jw * fil_l_(k, k);
    for (std::size_t m = 0; m < nf; ++m) {
      if (m == k || fil_l_(k, m) == 0.0) continue;
      a(br, n_active + m) -= jw * fil_l_(k, m);
    }
  }

  for (std::size_t node : pin_nodes)
    a(static_cast<std::size_t>(compact[node]),
      static_cast<std::size_t>(compact[node])) += 1.0;

  la::CVector b(size, la::Complex{});
  b[static_cast<std::size_t>(compact[p])] = 1.0;  // 1 A into the plus node

  la::CVector x;
  if (opts_.mixed_precision && size >= opts_.mixed_min_unknowns) {
    // Large systems: f32 blocked factor + f64 refinement, with a recorded
    // deterministic fallback to the full-double ladder when the f32 factor
    // is too ill-conditioned or refinement stalls.
    robust::SolveReport report;
    x = robust::solve_dense_mixed_with_recovery(a, b, report, "mqs_dense");
    report.record("mqs_dense");
    if (report.failed() || x.empty())
      throw la::SingularMatrixError("mqs_dense: " + report.detail);
  } else {
    x = la::CLU(std::move(a)).solve(b);
  }
  const la::Complex z = x[static_cast<std::size_t>(compact[p])];
  return {frequency, z.real(), z.imag() / omega};
}

LoopImpedance MqsSolver::port_impedance_fft(std::size_t plus,
                                            std::size_t minus,
                                            double frequency) const {
  const fast::VoxelGrid& grid = toeplitz_->grid();
  const std::size_t p_solver = canonical(plus);
  const std::size_t ref_solver = canonical(minus);
  if (p_solver == ref_solver)
    throw std::invalid_argument("port_impedance: port nodes are shorted");

  // Combined node space: union-find over the lattice nodes, seeded with the
  // solver-level topology — filaments of one parent tie their row ends
  // together, and shorts/vias recorded at the solver level merge through
  // the shared solver-canonical node. This reproduces the dense path's node
  // sharing exactly on aligned layouts.
  std::vector<std::size_t> lat(grid.node_count);
  for (std::size_t i = 0; i < grid.node_count; ++i) lat[i] = i;
  std::function<std::size_t(std::size_t)> lfind = [&](std::size_t x) {
    while (lat[x] != x) x = lat[x] = lat[lat[x]];
    return x;
  };
  auto lunion = [&](std::size_t a, std::size_t b) {
    const std::size_t ra = lfind(a), rb = lfind(b);
    if (ra != rb) lat[std::max(ra, rb)] = std::min(ra, rb);
  };
  // Representative lattice node per solver-canonical node.
  std::vector<std::ptrdiff_t> solver_rep(node_count_, -1);
  for (std::size_t k = 0; k < filaments_.size(); ++k) {
    for (const auto& [solver_node, lat_node] :
         {std::pair{canonical(fil_a_[k]), grid.fil_node_a[k]},
          std::pair{canonical(fil_b_[k]), grid.fil_node_b[k]}}) {
      if (solver_rep[solver_node] < 0) {
        solver_rep[solver_node] = static_cast<std::ptrdiff_t>(lat_node);
      } else {
        lunion(static_cast<std::size_t>(solver_rep[solver_node]), lat_node);
      }
    }
  }
  if (solver_rep[p_solver] < 0)
    throw std::invalid_argument("port_impedance: plus node is floating");
  if (solver_rep[ref_solver] < 0)
    throw std::invalid_argument("port_impedance: minus node is floating");
  const std::size_t ref =
      lfind(static_cast<std::size_t>(solver_rep[ref_solver]));

  const std::size_t nc = grid.cells.size();
  std::vector<std::size_t> cell_a(nc), cell_b(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    cell_a[c] = lfind(grid.node_a[c]);
    cell_b[c] = lfind(grid.node_b[c]);
  }

  // Compact indices for canonical lattice nodes, reference removed.
  std::vector<std::ptrdiff_t> compact(grid.node_count, -1);
  std::size_t n_active = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t node : {cell_a[c], cell_b[c]}) {
      if (node == ref || compact[node] >= 0) continue;
      compact[node] = static_cast<std::ptrdiff_t>(n_active++);
    }
  }
  const std::size_t p_lat =
      lfind(static_cast<std::size_t>(solver_rep[p_solver]));
  if (compact[p_lat] < 0)
    throw std::invalid_argument("port_impedance: plus node is floating");

  // Pin one node of every conductor group not connected to the reference
  // (same exact fix as the dense path).
  std::vector<std::size_t> comp(grid.node_count);
  for (std::size_t i = 0; i < grid.node_count; ++i) comp[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (comp[x] != x) x = comp[x] = comp[comp[x]];
    return x;
  };
  for (std::size_t c = 0; c < nc; ++c) {
    const std::size_t ra = find(cell_a[c]);
    const std::size_t rb = find(cell_b[c]);
    if (ra != rb) comp[ra] = rb;
  }
  std::vector<std::size_t> pin_nodes;
  {
    std::vector<char> seen(grid.node_count, 0);
    const std::size_t ref_comp = find(ref);
    for (std::size_t i = 0; i < grid.node_count; ++i) {
      if (lfind(i) != i || compact[i] < 0) continue;
      const std::size_t c = find(i);
      if (c == ref_comp || seen[c]) continue;
      seen[c] = 1;
      pin_nodes.push_back(i);
    }
  }

  const std::size_t size = n_active + nc;
  const double omega = 2.0 * M_PI * frequency;
  const la::Complex jw{0.0, omega};
  const bool use_fft = opts_.fast.use_fft;
  const fast::ToeplitzLOperator& op = *toeplitz_;

  // Matrix-free MQS operator: [KCL; branch] x [v; i].
  la::CApplyFn apply = [&](const la::CVector& x, la::CVector& y) {
    la::CVector xi(nc), li(nc);
    for (std::size_t c = 0; c < nc; ++c) xi[c] = x[n_active + c];
    if (use_fft)
      op.apply(xi, li);
    else
      op.apply_dense(xi, li);
    y.assign(size, la::Complex{});
    for (std::size_t c = 0; c < nc; ++c) {
      const std::ptrdiff_t na = compact[cell_a[c]];
      const std::ptrdiff_t nb = compact[cell_b[c]];
      const la::Complex ic = x[n_active + c];
      la::Complex vdrop{};
      if (na >= 0) {
        y[static_cast<std::size_t>(na)] += ic;
        vdrop += x[static_cast<std::size_t>(na)];
      }
      if (nb >= 0) {
        y[static_cast<std::size_t>(nb)] -= ic;
        vdrop -= x[static_cast<std::size_t>(nb)];
      }
      y[n_active + c] =
          vdrop - la::Complex{grid.resistance[c], 0.0} * ic - jw * li[c];
    }
    for (std::size_t node : pin_nodes) {
      const auto idx = static_cast<std::size_t>(compact[node]);
      y[idx] += x[idx];
    }
  };

  la::CVector b(size, la::Complex{});
  b[static_cast<std::size_t>(compact[p_lat])] = 1.0;

  // Preconditioner: the same MQS structure with the sparsified L', factored
  // as a real-equivalent sparse system through the recovery ladder.
  robust::SolveReport report;
  std::unique_ptr<fast::ComplexSparseFactor> pre;
  la::CApplyFn pre_apply;
  if (opts_.fast.precond.kind != fast::PrecondKind::None) {
    std::vector<fast::ComplexTriplet> entries;
    entries.reserve(4 * nc + 2 * precond_l_.terms.size() + pin_nodes.size());
    for (std::size_t c = 0; c < nc; ++c) {
      const std::ptrdiff_t na = compact[cell_a[c]];
      const std::ptrdiff_t nb = compact[cell_b[c]];
      const std::size_t br = n_active + c;
      if (na >= 0) {
        entries.push_back({static_cast<std::size_t>(na), br, 1.0});
        entries.push_back({br, static_cast<std::size_t>(na), 1.0});
      }
      if (nb >= 0) {
        entries.push_back({static_cast<std::size_t>(nb), br, -1.0});
        entries.push_back({br, static_cast<std::size_t>(nb), -1.0});
      }
      entries.push_back(
          {br, br,
           -(la::Complex{grid.resistance[c], 0.0} + jw * precond_l_.diag[c])});
    }
    for (const sparsify::MutualTerm& t : precond_l_.terms) {
      entries.push_back(
          {n_active + t.i, n_active + t.j, -jw * la::Complex{t.value}});
      entries.push_back(
          {n_active + t.j, n_active + t.i, -jw * la::Complex{t.value}});
    }
    for (std::size_t node : pin_nodes)
      entries.push_back({static_cast<std::size_t>(compact[node]),
                         static_cast<std::size_t>(compact[node]), 1.0});
    pre = std::make_unique<fast::ComplexSparseFactor>(
        size, entries, report, "mqs_precond", opts_.fast.dense_fallback_limit);
    if (pre->usable()) {
      pre_apply = [&pre](const la::CVector& r, la::CVector& z) {
        z = pre->solve(r);
      };
    } else {
      pre.reset();  // unpreconditioned GMRES is still well-defined
    }
  }

  auto& metrics = runtime::MetricsRegistry::instance();
  la::CVector x(size, la::Complex{});
  const la::CApplyFn* pre_ptr = pre_apply ? &pre_apply : nullptr;

  // Ladder: GMRES → retry → larger restart → dense fallback.
  la::GmresResult gr = la::gmres(apply, b, x, pre_ptr, opts_.fast.gmres);
  if (!gr.converged) {
    report.add_action(robust::RecoveryKind::Retry, 0, 0.0, "mqs_gmres");
    x.assign(size, la::Complex{});
    gr = la::gmres(apply, b, x, pre_ptr, opts_.fast.gmres);
  }
  if (!gr.converged) {
    la::GmresOptions boosted = opts_.fast.gmres;
    boosted.restart *= 2;
    boosted.max_restarts *= 2;
    report.add_action(robust::RecoveryKind::GmresRestart, 1,
                      static_cast<double>(boosted.restart), "mqs_gmres");
    x.assign(size, la::Complex{});
    gr = la::gmres(apply, b, x, pre_ptr, boosted);
  }
  metrics.add_count("fast.gmres_restarts",
                    static_cast<std::int64_t>(gr.restarts));
  if (!gr.converged && nc <= opts_.fast.dense_fallback_limit) {
    // Dense fallback: materialise the full MQS system from the bitwise
    // kernel table and solve it directly.
    report.add_action(robust::RecoveryKind::DenseFallback, 2,
                      static_cast<double>(nc), "mqs_gmres");
    metrics.add_count("fast.dense_fallbacks", 1);
    const la::Matrix lcells = op.to_dense();
    la::CMatrix a(size, size);
    for (std::size_t c = 0; c < nc; ++c) {
      const std::ptrdiff_t na = compact[cell_a[c]];
      const std::ptrdiff_t nb = compact[cell_b[c]];
      const std::size_t br = n_active + c;
      if (na >= 0) {
        a(static_cast<std::size_t>(na), br) += 1.0;
        a(br, static_cast<std::size_t>(na)) += 1.0;
      }
      if (nb >= 0) {
        a(static_cast<std::size_t>(nb), br) -= 1.0;
        a(br, static_cast<std::size_t>(nb)) -= 1.0;
      }
      a(br, br) -= la::Complex{grid.resistance[c], 0.0};
      for (std::size_t m = 0; m < nc; ++m)
        if (lcells(c, m) != 0.0) a(br, n_active + m) -= jw * lcells(c, m);
    }
    for (std::size_t node : pin_nodes)
      a(static_cast<std::size_t>(compact[node]),
        static_cast<std::size_t>(compact[node])) += 1.0;
    la::CLU lu = robust::factor_dense_with_recovery(a, report, "mqs_gmres");
    if (lu.size() > 0) {
      x = lu.solve(b);
      gr.converged = true;
    }
  }
  if (!gr.converged) report.raise_status(robust::SolveStatus::NonConverged);
  report.residual_norm = gr.relative_residual;
  report.record("mqs_gmres");

  const la::Complex z = x[static_cast<std::size_t>(compact[p_lat])];
  return {frequency, z.real(), z.imag() / omega};
}

}  // namespace ind::loop
