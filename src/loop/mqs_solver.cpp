#include "loop/mqs_solver.hpp"

#include "runtime/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "extract/partial_inductance.hpp"
#include "la/lu.hpp"

namespace ind::loop {
namespace {

std::uint64_t key_of(const geom::Point& p, int layer, double snap) {
  const auto qx = static_cast<std::int64_t>(std::llround(p.x / snap));
  const auto qy = static_cast<std::int64_t>(std::llround(p.y / snap));
  const std::uint64_t ux = static_cast<std::uint64_t>(qx + (1LL << 27));
  const std::uint64_t uy = static_cast<std::uint64_t>(qy + (1LL << 27));
  return (static_cast<std::uint64_t>(layer) << 56) | (ux << 28) | uy;
}

}  // namespace

MqsSolver::MqsSolver(const std::vector<geom::Segment>& segments,
                     const std::vector<geom::Via>& vias,
                     const geom::Technology& tech, const MqsOptions& opts)
    : snap_(opts.snap) {
  std::vector<std::size_t> parent_of;
  filaments_ = extract::split_all(segments, parent_of, opts.skin);

  // Parent-endpoint nodes: filaments of one parent share its two nodes, so
  // current can redistribute laterally only at segment boundaries (volume
  // filament discretisation).
  auto get_node = [&](const geom::Point& p, int layer, geom::NetKind kind) {
    const std::uint64_t key = key_of(p, layer, snap_);
    const auto it = std::lower_bound(
        node_keys_.begin(), node_keys_.end(), key,
        [](const auto& e, std::uint64_t k) { return e.first < k; });
    if (it != node_keys_.end() && it->first == key) return it->second;
    const std::size_t id = node_count_++;
    node_keys_.insert(it, {key, id});
    node_info_.push_back({p, layer, kind});
    alias_.push_back(id);
    return id;
  };

  fil_a_.reserve(filaments_.size());
  fil_b_.reserve(filaments_.size());
  fil_resistance_.reserve(filaments_.size());
  for (std::size_t k = 0; k < filaments_.size(); ++k) {
    const geom::Segment& parent = segments[parent_of[k]];
    fil_a_.push_back(get_node(parent.a, parent.layer, parent.kind));
    fil_b_.push_back(get_node(parent.b, parent.layer, parent.kind));
    const geom::Segment& f = filaments_[k];
    const geom::Layer& layer = tech.layer(f.layer);
    // Volumetric resistivity recovered from the sheet model: rho = Rs * t.
    const double rho = layer.sheet_resistance * layer.thickness;
    fil_resistance_.push_back(
        std::max(rho * f.length() / (f.width * f.thickness), 1e-9));
  }

  fil_l_ = extract::build_partial_inductance_matrix(
      filaments_, {.window = opts.mutual_window});

  for (const geom::Via& v : vias) {
    const auto lo = node_at(v.at, v.lower_layer);
    const auto hi = node_at(v.at, v.upper_layer);
    if (lo && hi) short_nodes(*lo, *hi);
  }
}

std::size_t MqsSolver::canonical(std::size_t node) const {
  while (alias_[node] != node) node = alias_[node];
  return node;
}

void MqsSolver::short_nodes(std::size_t a, std::size_t b) {
  const std::size_t ra = canonical(a), rb = canonical(b);
  if (ra != rb) alias_[std::max(ra, rb)] = std::min(ra, rb);
}

std::optional<std::size_t> MqsSolver::node_at(geom::Point p, int layer) const {
  const std::uint64_t key = key_of(p, layer, snap_);
  const auto it = std::lower_bound(
      node_keys_.begin(), node_keys_.end(), key,
      [](const auto& e, std::uint64_t k) { return e.first < k; });
  if (it == node_keys_.end() || it->first != key) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> MqsSolver::nearest_node(geom::Point p,
                                                   geom::NetKind kind) const {
  std::optional<std::size_t> best;
  double best_d = 1e300;
  for (std::size_t i = 0; i < node_info_.size(); ++i) {
    if (node_info_[i].kind != kind) continue;
    const double d = geom::distance(node_info_[i].at, p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

LoopImpedance MqsSolver::port_impedance(std::size_t plus, std::size_t minus,
                                        double frequency) const {
  if (frequency <= 0.0)
    throw std::invalid_argument("port_impedance: frequency must be positive");
  runtime::ScopedTimer timer("solve.mqs_port");
  runtime::MetricsRegistry::instance().max_count(
      "solve.mqs_port.max_filaments",
      static_cast<std::int64_t>(filaments_.size()));
  const std::size_t p = canonical(plus);
  const std::size_t ref = canonical(minus);
  if (p == ref)
    throw std::invalid_argument("port_impedance: port nodes are shorted");

  // Compact indices for canonical nodes, with the reference node removed.
  std::vector<std::ptrdiff_t> compact(node_count_, -1);
  std::size_t n_active = 0;
  for (std::size_t k = 0; k < filaments_.size(); ++k) {
    for (std::size_t node : {canonical(fil_a_[k]), canonical(fil_b_[k])}) {
      if (node == ref || compact[node] >= 0) continue;
      compact[node] = static_cast<std::ptrdiff_t>(n_active++);
    }
  }
  if (compact[p] < 0)
    throw std::invalid_argument("port_impedance: plus node is floating");

  // Conductor groups not connected to the reference have no defined
  // potential (singular KCL block). Tie one node of each such group to the
  // reference with a unit conductance: since that is the group's only
  // connection, zero net current flows through it — the fix is exact, it
  // merely pins the floating potential.
  std::vector<std::size_t> comp(node_count_);
  for (std::size_t i = 0; i < node_count_; ++i) comp[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (comp[x] != x) x = comp[x] = comp[comp[x]];
    return x;
  };
  for (std::size_t k = 0; k < filaments_.size(); ++k) {
    const std::size_t ra = find(canonical(fil_a_[k]));
    const std::size_t rb = find(canonical(fil_b_[k]));
    if (ra != rb) comp[ra] = rb;
  }
  std::vector<std::size_t> pin_nodes;
  {
    std::vector<char> seen(node_count_, 0);
    const std::size_t ref_comp = find(ref);
    for (std::size_t i = 0; i < node_count_; ++i) {
      if (canonical(i) != i || compact[i] < 0) continue;
      const std::size_t c = find(i);
      if (c == ref_comp || seen[c]) continue;
      seen[c] = 1;
      pin_nodes.push_back(i);
    }
  }

  const std::size_t nf = filaments_.size();
  const std::size_t size = n_active + nf;
  la::CMatrix a(size, size);
  const double omega = 2.0 * M_PI * frequency;
  const la::Complex jw{0.0, omega};

  for (std::size_t k = 0; k < nf; ++k) {
    const std::ptrdiff_t na = compact[canonical(fil_a_[k])];
    const std::ptrdiff_t nb = compact[canonical(fil_b_[k])];
    const std::size_t br = n_active + k;
    // KCL: branch current leaves a, enters b.
    if (na >= 0) a(static_cast<std::size_t>(na), br) += 1.0;
    if (nb >= 0) a(static_cast<std::size_t>(nb), br) -= 1.0;
    // Branch: v_a - v_b - (R + jwL_kk) i_k - sum_m jwL_km i_m = 0.
    if (na >= 0) a(br, static_cast<std::size_t>(na)) += 1.0;
    if (nb >= 0) a(br, static_cast<std::size_t>(nb)) -= 1.0;
    a(br, br) -= la::Complex{fil_resistance_[k], 0.0} + jw * fil_l_(k, k);
    for (std::size_t m = 0; m < nf; ++m) {
      if (m == k || fil_l_(k, m) == 0.0) continue;
      a(br, n_active + m) -= jw * fil_l_(k, m);
    }
  }

  for (std::size_t node : pin_nodes)
    a(static_cast<std::size_t>(compact[node]),
      static_cast<std::size_t>(compact[node])) += 1.0;

  la::CVector b(size, la::Complex{});
  b[static_cast<std::size_t>(compact[p])] = 1.0;  // 1 A into the plus node

  const la::CVector x = la::CLU(std::move(a)).solve(b);
  const la::Complex z = x[static_cast<std::size_t>(compact[p])];
  return {frequency, z.real(), z.imag() / omega};
}

}  // namespace ind::loop
