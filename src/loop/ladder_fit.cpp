#include "loop/ladder_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "govern/budget.hpp"
#include "la/lu.hpp"
#include "robust/fault_injection.hpp"

namespace ind::loop {

la::Complex LadderModel::impedance(double omega) const {
  la::Complex z{r0, omega * l0};
  if (has_parallel_branch()) {
    const la::Complex zl{0.0, omega * l1};
    z += (r1 * zl) / (la::Complex{r1, 0.0} + zl);
  }
  return z;
}

LadderModel fit_ladder(const LoopImpedance& low, const LoopImpedance& high) {
  if (high.frequency <= low.frequency)
    throw std::invalid_argument("fit_ladder: frequencies must be ordered");
  const double w1 = 2.0 * M_PI * low.frequency;
  const double w2 = 2.0 * M_PI * high.frequency;
  const double dr = high.resistance - low.resistance;  // skin: R rises
  const double dl = low.inductance - high.inductance;  // skin: L falls

  LadderModel m;
  // No visible frequency dependence: plain series RL at the low point.
  if (dr <= 1e-12 * std::max(low.resistance, 1e-30) || dl <= 0.0) {
    m.r0 = low.resistance;
    m.l0 = low.inductance;
    m.report.record("ladder_fit");
    return m;
  }

  // Parallel branch responses: g(w) = w^2 t^2 / (1 + w^2 t^2) for the
  // resistive part, h(w) = 1 / (1 + w^2 t^2) for the inductive part, with
  // t = L1/R1. Solve the 2x2 system in (R1, L1) by damped Newton.
  auto residual = [&](double r1, double l1, double& f1, double& f2) {
    const double t = l1 / r1;
    auto g = [&](double w) {
      const double wt2 = w * w * t * t;
      return wt2 / (1.0 + wt2);
    };
    auto h = [&](double w) { return 1.0 / (1.0 + w * w * t * t); };
    f1 = r1 * (g(w2) - g(w1)) - dr;
    f2 = l1 * (h(w1) - h(w2)) - dl;
  };

  auto tol_met = [&](double f1, double f2) {
    return std::abs(f1) < 1e-12 * (std::abs(dr) + 1e-30) &&
           std::abs(f2) < 1e-12 * (std::abs(dl) + 1e-30);
  };

  const double t0 = 1.0 / std::sqrt(w1 * w2);
  double r1 = std::max(dr * 2.0, 1e-6);
  double l1 = std::max(dl * 2.0, t0 * r1);
  bool converged = false;
  for (int it = 0; it < 200; ++it) {
    // Budget poll per Newton iteration. A trip ends the fit gracefully at
    // the last iterate: the post-loop feasibility/convergence checks turn
    // it into the series-RL fallback or a NonConverged result — usable
    // parameters either way, never a throw from the cheapest rung.
    if (govern::checkpoint(1)) {
      m.report.raise_status(robust::SolveStatus::NonConverged);
      m.report.add_action(robust::RecoveryKind::BudgetExceeded, 0, 0.0,
                          "ladder fit iteration " + std::to_string(it));
      break;
    }
    double f1, f2;
    residual(r1, l1, f1, f2);
    if (tol_met(f1, f2)) {
      converged = true;
      break;
    }
    // Numerical Jacobian.
    const double hr = std::max(1e-8 * r1, 1e-12);
    const double hl = std::max(1e-8 * l1, 1e-18);
    double f1r, f2r, f1l, f2l;
    residual(r1 + hr, l1, f1r, f2r);
    residual(r1, l1 + hl, f1l, f2l);
    const double j11 = (f1r - f1) / hr, j12 = (f1l - f1) / hl;
    const double j21 = (f2r - f2) / hr, j22 = (f2l - f2) / hl;
    double dj11 = j11, dj22 = j22;
    double det = j11 * j22 - j12 * j21;
    if (robust::fault::fire(robust::fault::Site::LadderJacobian)) det = 0.0;
    if (det == 0.0 || !std::isfinite(det)) {
      // Levenberg-Marquardt restart: damp the Jacobian diagonal with an
      // escalating (deterministic) mu until the 2x2 system is solvable.
      // Previously this was a silent `break` that returned an unconverged
      // branch as if it had fit.
      bool rescued = false;
      const double mu0 =
          1e-8 * (std::abs(j11) + std::abs(j22)) + 1e-12;
      for (int k = 0; k < 6 && !rescued; ++k) {
        const double mu = mu0 * std::pow(10.0, k);
        dj11 = j11 + mu;
        dj22 = j22 + mu;
        det = dj11 * dj22 - j12 * j21;
        if (det != 0.0 && std::isfinite(det)) {
          m.report.add_action(robust::RecoveryKind::DampedRestart, k, mu,
                              "ladder fit iteration " + std::to_string(it));
          rescued = true;
        }
      }
      if (!rescued) {
        m.report.raise_status(robust::SolveStatus::NonConverged);
        m.report.detail =
            "fit_ladder: singular Jacobian at iteration " +
            std::to_string(it) + "; damping ladder exhausted";
        break;
      }
    }
    double dr1 = (-f1 * dj22 + f2 * j12) / det;
    double dl1 = (-f2 * dj11 + f1 * j21) / det;
    // Damped update staying in the positive quadrant.
    double alpha = 1.0;
    while ((r1 + alpha * dr1 <= 0.0 || l1 + alpha * dl1 <= 0.0) && alpha > 1e-6)
      alpha *= 0.5;
    r1 += alpha * dr1;
    l1 += alpha * dl1;
  }

  // Unusable branch parameters: fall back to the series RL through the low
  // point and say so, instead of returning NaN element values.
  if (!std::isfinite(r1) || !std::isfinite(l1) || r1 <= 0.0 || l1 <= 0.0) {
    m.report.raise_status(robust::SolveStatus::NonConverged);
    if (m.report.detail.empty())
      m.report.detail = "fit_ladder: branch parameters left the feasible "
                        "region; returning series RL fallback";
    m.r0 = low.resistance;
    m.l0 = low.inductance;
    m.r1 = 0.0;
    m.l1 = 0.0;
    m.report.record("ladder_fit");
    return m;
  }
  if (!converged) {
    double f1, f2;
    residual(r1, l1, f1, f2);
    if (!tol_met(f1, f2)) {
      m.report.raise_status(robust::SolveStatus::NonConverged);
      if (m.report.detail.empty())
        m.report.detail =
            "fit_ladder: Newton did not reach tolerance in 200 iterations";
    }
  }

  m.r1 = r1;
  m.l1 = l1;
  // Anchor the series terms so the fit passes exactly through the two
  // extracted points (to the accuracy of the converged branch).
  const double t = l1 / r1;
  const double g1 = (w1 * w1 * t * t) / (1.0 + w1 * w1 * t * t);
  const double h1 = 1.0 / (1.0 + w1 * w1 * t * t);
  m.r0 = std::max(low.resistance - r1 * g1, 0.0);
  m.l0 = std::max(low.inductance - l1 * h1, 1e-15);
  m.report.record("ladder_fit");
  return m;
}

la::Complex MultiLadderModel::impedance(double omega) const {
  la::Complex z{r0, omega * l0};
  for (const Branch& b : branches) {
    if (b.r <= 0.0 || b.l <= 0.0) continue;
    const la::Complex zl{0.0, omega * b.l};
    z += (b.r * zl) / (la::Complex{b.r, 0.0} + zl);
  }
  return z;
}

double ladder_fit_error(const MultiLadderModel& model,
                        const std::vector<LoopImpedance>& sweep) {
  if (sweep.empty()) return 0.0;
  double acc = 0.0;
  for (const LoopImpedance& s : sweep) {
    const double w = 2.0 * M_PI * s.frequency;
    const la::Complex zm = model.impedance(w);
    const la::Complex zs{s.resistance, w * s.inductance};
    const double scale = std::abs(zs) + 1e-30;
    acc += std::norm(zm - zs) / (scale * scale);
  }
  return std::sqrt(acc / sweep.size());
}

MultiLadderModel fit_ladder_multi(const std::vector<LoopImpedance>& sweep,
                                  int branches) {
  if (sweep.size() < 2)
    throw std::invalid_argument("fit_ladder_multi: need >= 2 sweep points");
  if (branches < 0)
    throw std::invalid_argument("fit_ladder_multi: negative branch count");

  // --- initial guess: series terms from the band edges, branch corners
  // log-spaced across the sweep, each absorbing an equal share of the
  // R-rise / L-droop.
  const LoopImpedance& lo = sweep.front();
  const LoopImpedance& hi = sweep.back();
  const double dr = std::max(hi.resistance - lo.resistance, 0.0);
  const double dl = std::max(lo.inductance - hi.inductance, 0.0);

  MultiLadderModel m;
  m.r0 = std::max(lo.resistance, 1e-9);
  m.l0 = std::max(hi.inductance, 1e-15);
  const int nb = branches;
  for (int k = 0; k < nb; ++k) {
    // Corner frequency log-spaced inside the sweep.
    const double frac = (k + 1.0) / (nb + 1.0);
    const double f_c =
        lo.frequency * std::pow(hi.frequency / lo.frequency, frac);
    const double w_c = 2.0 * M_PI * f_c;
    MultiLadderModel::Branch b;
    b.r = std::max(dr / std::max(nb, 1), 1e-6);
    b.l = std::max(dl / std::max(nb, 1), b.r / w_c);
    m.branches.push_back(b);
  }
  if (nb == 0) {
    m.report.record("ladder_fit_multi");
    return m;
  }

  // --- Levenberg-Marquardt on p = log(params); residuals are the scaled
  // real/imag misfits at every sweep point.
  const std::size_t np = 2 + 2 * m.branches.size();
  auto pack = [&](const MultiLadderModel& model) {
    la::Vector p(np);
    p[0] = std::log(model.r0);
    p[1] = std::log(model.l0);
    for (std::size_t k = 0; k < model.branches.size(); ++k) {
      p[2 + 2 * k] = std::log(model.branches[k].r);
      p[3 + 2 * k] = std::log(model.branches[k].l);
    }
    return p;
  };
  auto unpack = [&](const la::Vector& p) {
    MultiLadderModel model;
    model.r0 = std::exp(p[0]);
    model.l0 = std::exp(p[1]);
    for (std::size_t k = 0; 2 + 2 * k + 1 < np; ++k)
      model.branches.push_back(
          {std::exp(p[2 + 2 * k]), std::exp(p[3 + 2 * k])});
    return model;
  };
  const std::size_t nr = 2 * sweep.size();
  auto residuals = [&](const la::Vector& p) {
    const MultiLadderModel model = unpack(p);
    la::Vector r(nr);
    for (std::size_t s = 0; s < sweep.size(); ++s) {
      const double w = 2.0 * M_PI * sweep[s].frequency;
      const la::Complex zm = model.impedance(w);
      const la::Complex zs{sweep[s].resistance, w * sweep[s].inductance};
      const double scale = std::abs(zs) + 1e-30;
      r[2 * s] = (zm.real() - zs.real()) / scale;
      r[2 * s + 1] = (zm.imag() - zs.imag()) / scale;
    }
    return r;
  };

  la::Vector p = pack(m);
  la::Vector r = residuals(p);
  double cost = la::dot(r, r);
  double lambda = 1e-3;
  try {
  for (int iter = 0; iter < 120; ++iter) {
    // Budget poll per LM iteration; a trip returns the best iterate so far
    // as a NonConverged fit (the catch below also absorbs a CancelledError
    // thrown by the normal-equation LU, which polls on its own).
    if (govern::checkpoint(1)) {
      m.report.raise_status(robust::SolveStatus::NonConverged);
      m.report.add_action(robust::RecoveryKind::BudgetExceeded, 0, 0.0,
                          "multi-ladder LM iteration " + std::to_string(iter));
      break;
    }
    // Numerical Jacobian.
    la::Matrix j(nr, np);
    for (std::size_t c = 0; c < np; ++c) {
      la::Vector pp = p;
      const double h = 1e-6;
      pp[c] += h;
      const la::Vector rp = residuals(pp);
      for (std::size_t i = 0; i < nr; ++i) j(i, c) = (rp[i] - r[i]) / h;
    }
    // Normal equations with LM damping.
    la::Matrix jtj = j.transposed() * j;
    la::Vector jtr = j.apply_transposed(r);
    bool stepped = false;
    for (int tries = 0; tries < 8 && !stepped; ++tries) {
      la::Matrix a = jtj;
      for (std::size_t d = 0; d < np; ++d)
        a(d, d) += lambda * (jtj(d, d) + 1e-12);
      la::Vector step;
      try {
        if (robust::fault::fire(robust::fault::Site::LadderJacobian))
          throw la::SingularMatrixError(
              "fit_ladder_multi: injected singular normal equations");
        step = la::solve(std::move(a), jtr);
      } catch (const la::SingularMatrixError&) {
        m.report.add_action(robust::RecoveryKind::DampedRestart, tries,
                            lambda,
                            "multi-ladder LM iteration " +
                                std::to_string(iter));
        lambda *= 10.0;
        continue;
      }
      la::Vector pc = p;
      for (std::size_t d = 0; d < np; ++d)
        pc[d] -= std::clamp(step[d], -2.0, 2.0);
      const la::Vector rc = residuals(pc);
      const double cost_c = la::dot(rc, rc);
      if (cost_c < cost) {
        p = pc;
        r = rc;
        cost = cost_c;
        lambda = std::max(lambda * 0.3, 1e-9);
        stepped = true;
      } else {
        lambda *= 10.0;
      }
    }
    if (!stepped || cost < 1e-20) break;
  }
  } catch (const govern::CancelledError& e) {
    m.report.raise_status(robust::SolveStatus::NonConverged);
    m.report.add_action(robust::RecoveryKind::BudgetExceeded, 0, 0.0,
                        std::string("multi-ladder fit cancelled [") +
                            govern::to_string(e.kind()) + "]");
  }

  MultiLadderModel out = unpack(p);
  out.report = std::move(m.report);
  if (!std::isfinite(cost)) {
    out.report.raise_status(robust::SolveStatus::NonConverged);
    out.report.detail = "fit_ladder_multi: non-finite cost at termination";
  }
  out.report.record("ladder_fit_multi");
  return out;
}

}  // namespace ind::loop
