#include "loop/loop_model.hpp"

#include <array>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "extract/capacitance.hpp"
#include "extract/resistance.hpp"
#include "la/lu.hpp"
#include "la/sparse.hpp"
#include "la/sparse_lu.hpp"

namespace ind::loop {

LoopModel build_loop_model(const geom::Layout& layout, int signal_net,
                           const LoopModelOptions& opts) {
  LoopModel m;
  m.vdd_volts = opts.vdd;

  // --- field-solver extraction (timed: it is part of the Table-1 run-time).
  const auto t0 = std::chrono::steady_clock::now();
  if (opts.use_ladder) {
    const auto sweep = extract_loop_rl(
        layout, signal_net, {opts.f_low, opts.f_high}, opts.extraction);
    m.ladder = fit_ladder(sweep[0], sweep[1]);
    m.extracted = sweep[0];
  } else {
    m.extracted = extract_loop_rl(layout, signal_net, {opts.extraction_freq},
                                  opts.extraction)[0];
  }
  m.extraction_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // --- distribute loop R/L along the signal-net segments by length.
  const geom::Layout refined = geom::refine(layout, opts.max_segment_length);
  const geom::Technology& tech = refined.tech();
  std::vector<std::size_t> sig_segments;
  double total_len = 0.0;
  for (std::size_t i = 0; i < refined.segments().size(); ++i) {
    if (refined.segments()[i].net != signal_net) continue;
    sig_segments.push_back(i);
    total_len += refined.segments()[i].length();
  }
  if (sig_segments.empty() || total_len <= 0.0)
    throw std::invalid_argument("build_loop_model: net has no wires");

  circuit::Netlist& nl = m.netlist;
  // Node per signal-segment endpoint (snap-keyed like the PEEC builder).
  std::unordered_map<std::uint64_t, circuit::NodeId> node_map;
  auto node_key = [](const geom::Point& p, int layer) {
    const auto qx = static_cast<std::int64_t>(std::llround(p.x / 1e-9));
    const auto qy = static_cast<std::int64_t>(std::llround(p.y / 1e-9));
    return (static_cast<std::uint64_t>(layer) << 56) |
           (static_cast<std::uint64_t>(qx + (1LL << 27)) << 28) |
           static_cast<std::uint64_t>(qy + (1LL << 27));
  };
  auto get_node = [&](const geom::Point& p, int layer) {
    const std::uint64_t key = node_key(p, layer);
    const auto it = node_map.find(key);
    if (it != node_map.end()) return it->second;
    const circuit::NodeId id = nl.make_node();
    node_map.emplace(key, id);
    return id;
  };

  // Driving-point resistance of the signal tree alone (driver to shorted
  // sinks): the extracted loop resistance beyond this is the *return-path*
  // contribution, which gets distributed along the run by length. Keeping
  // each segment's own DC resistance preserves per-path (skew-relevant)
  // resistance in tree topologies.
  double r_return = 0.0;
  {
    std::unordered_map<std::uint64_t, std::size_t> idx;
    auto dp_node = [&](const geom::Point& p, int layer) {
      const std::uint64_t key = node_key(p, layer);
      const auto it = idx.find(key);
      if (it != idx.end()) return it->second;
      const std::size_t id = idx.size();
      idx.emplace(key, id);
      return id;
    };
    la::TripletMatrix g;
    std::vector<std::array<std::size_t, 2>> branches;
    std::vector<double> conductances;
    for (std::size_t s : sig_segments) {
      const geom::Segment& seg = refined.segments()[s];
      branches.push_back({dp_node(seg.a, seg.layer), dp_node(seg.b, seg.layer)});
      conductances.push_back(
          1.0 / std::max(extract::segment_resistance(seg, tech), 1e-9));
    }
    for (const geom::Via& v : refined.vias()) {
      if (v.net != signal_net) continue;
      const auto ka = idx.find(node_key(v.at, v.lower_layer));
      const auto kb = idx.find(node_key(v.at, v.upper_layer));
      if (ka == idx.end() || kb == idx.end()) continue;
      branches.push_back({ka->second, kb->second});
      conductances.push_back(
          1.0 / std::max(extract::via_resistance(v, tech), 1e-6));
    }
    // Ground every sink node; solve for the driver-node voltage with 1 A in.
    std::vector<char> grounded(idx.size(), 0);
    for (const geom::Receiver& r : refined.receivers())
      if (r.signal_net == signal_net) {
        const auto it = idx.find(node_key(r.at, r.layer));
        if (it != idx.end()) grounded[it->second] = 1;
      }
    std::size_t driver_node = idx.size();
    for (const geom::Driver& d : refined.drivers())
      if (d.signal_net == signal_net) {
        const auto it = idx.find(node_key(d.at, d.layer));
        if (it != idx.end()) driver_node = it->second;
      }
    if (driver_node < idx.size()) {
      g.resize(idx.size(), idx.size());
      for (std::size_t b = 0; b < branches.size(); ++b) {
        const auto [na, nb] = branches[b];
        const double cond = conductances[b];
        g.add(na, na, cond);
        g.add(nb, nb, cond);
        g.add(na, nb, -cond);
        g.add(nb, na, -cond);
      }
      for (std::size_t n = 0; n < idx.size(); ++n) {
        g.add(n, n, 1e-12);  // gmin
        if (grounded[n]) g.add(n, n, 1e12);
      }
      la::Vector rhs(idx.size(), 0.0);
      rhs[driver_node] = 1.0;
      const la::Vector v = la::SparseLu(la::CscMatrix(g)).solve(rhs);
      const double r_dp = v[driver_node];
      r_return = std::max(m.extracted.resistance - r_dp, 0.0);
    }
  }

  // Coupling capacitance from the signal to any other conductor loads the
  // net too; with the aggressors treated as AC ground (the standard lumped
  // simplification) it adds to the per-segment ground capacitance.
  std::vector<double> coupling_extra(refined.segments().size(), 0.0);
  for (const auto& [i, j] : refined.adjacent_pairs(geom::um(5.0))) {
    const auto& si = refined.segments()[i];
    const auto& sj = refined.segments()[j];
    const bool i_sig = si.net == signal_net, j_sig = sj.net == signal_net;
    if (i_sig == j_sig) continue;  // need exactly one signal segment
    const double c = extract::segment_coupling_cap(si, sj, tech);
    coupling_extra[i_sig ? i : j] += c;
  }

  for (std::size_t idx : sig_segments) {
    const geom::Segment& s = refined.segments()[idx];
    const circuit::NodeId na = get_node(s.a, s.layer);
    const circuit::NodeId nb = get_node(s.b, s.layer);
    const double frac = s.length() / total_len;

    // Series resistance: the segment's own metal plus its length-share of
    // the extracted return-path resistance.
    const double r_series = extract::segment_resistance(s, tech) +
                            r_return * frac;
    if (m.ladder && m.ladder->has_parallel_branch()) {
      // Scaled ladder section: R0,L0 in series; R1 || L1 across the tail.
      const circuit::NodeId mid1 = nl.make_node();
      const circuit::NodeId mid2 = nl.make_node();
      nl.add_inductor(na, mid1, std::max(m.ladder->l0 * frac, 1e-15));
      nl.add_resistor(mid1, mid2, std::max(r_series, 1e-6));
      nl.add_resistor(mid2, nb, std::max(m.ladder->r1 * frac, 1e-6));
      nl.add_inductor(mid2, nb, std::max(m.ladder->l1 * frac, 1e-15));
    } else {
      const circuit::NodeId mid = nl.make_node();
      nl.add_inductor(na, mid, std::max(m.extracted.inductance * frac, 1e-15));
      nl.add_resistor(mid, nb, std::max(r_series, 1e-6));
    }

    const double cg =
        extract::segment_ground_cap(s, tech) + coupling_extra[idx];
    nl.add_capacitor(na, circuit::kGround, 0.5 * cg);
    nl.add_capacitor(nb, circuit::kGround, 0.5 * cg);
    m.total_cap += cg;
  }

  // --- vias on the signal net keep their real resistance.
  for (const geom::Via& v : refined.vias()) {
    if (v.net != signal_net) continue;
    const auto qa = get_node(v.at, v.lower_layer);
    const auto qb = get_node(v.at, v.upper_layer);
    if (qa != qb)
      nl.add_resistor(qa, qb, std::max(extract::via_resistance(v, tech), 1e-6));
  }

  // --- drivers to ideal rails (the loop model has no grid).
  const circuit::NodeId ideal_vdd = nl.make_node();
  nl.add_vsource(ideal_vdd, circuit::kGround, circuit::Pwl::constant(opts.vdd));
  for (const geom::Driver& d : refined.drivers()) {
    if (d.signal_net != signal_net) continue;
    circuit::SwitchedDriver drv;
    drv.out = get_node(d.at, d.layer);
    drv.vdd = ideal_vdd;
    drv.gnd = circuit::kGround;
    drv.pull_ohms = d.strength_ohm;
    drv.slew = d.slew;
    drv.start = d.start_time;
    drv.rising = d.rising;
    drv.name = d.name;
    nl.add_driver(std::move(drv));
  }

  for (const geom::Receiver& r : refined.receivers()) {
    if (r.signal_net != signal_net) continue;
    const circuit::NodeId pin = get_node(r.at, r.layer);
    nl.add_capacitor(pin, circuit::kGround, r.load_cap);
    m.total_cap += r.load_cap;
    m.receiver_probes.push_back({circuit::ProbeKind::NodeVoltage,
                                 static_cast<std::size_t>(pin), r.name});
    m.receiver_names.push_back(r.name);
  }
  return m;
}

}  // namespace ind::loop
