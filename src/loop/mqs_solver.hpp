// Magnetoquasistatic field solver in the FastHenry [7] style.
//
// Conductors are discretised into volume filaments that share nodes at the
// parent-segment boundaries; each filament carries R + jwL self impedance
// and full mutual coupling to every parallel filament. Solving the complex
// nodal system with a 1 A port excitation yields the frequency-dependent
// loop impedance Z(f) = R(f) + jw L(f): current crowds into low-impedance
// return paths as frequency rises, producing the R-up / L-down behaviour of
// Fig. 3(b) without any explicit skin-effect model.
//
// Two extraction methods share the port/node interface:
//   * Dense — the original path: dense partial-L matrix + complex LU.
//     Exact for arbitrary geometry; O(n²) memory, O(n³) solve.
//   * FftGmres — the src/fast/ path: filaments voxelized onto a regular
//     lattice, L applied matrix-free through the circulant-embedded FFT
//     operator, the system solved by restarted GMRES with a sparsified-L
//     preconditioner factored by the real-equivalent SparseLu. O(n log n)
//     per iteration; accuracy governed by the voxel pitch (exact on
//     lattice-aligned layouts — see fast/voxelize.hpp).
//   * Auto — Dense below fast.auto_threshold filaments, FftGmres above.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "extract/skin.hpp"
#include "fast/precond.hpp"
#include "fast/toeplitz_op.hpp"
#include "fast/voxelize.hpp"
#include "geom/layout.hpp"
#include "la/dense_matrix.hpp"
#include "la/gmres.hpp"

namespace ind::loop {

enum class ExtractionMethod {
  Dense,     ///< dense partial-L + complex LU (small-n oracle)
  FftGmres,  ///< voxelized Toeplitz operator + preconditioned GMRES
  Auto,      ///< FftGmres at/above fast.auto_threshold filaments, else Dense
};

const char* to_string(ExtractionMethod method);

/// Knobs of the FftGmres path (ignored by Dense).
struct FastSolveOptions {
  fast::VoxelOptions voxel{};
  fast::PrecondOptions precond{};
  la::GmresOptions gmres{};
  /// Auto method switches to FftGmres at this many filaments.
  std::size_t auto_threshold = 1024;
  /// The ladder's dense-fallback rung is attempted only at or below this
  /// many voxel cells.
  std::size_t dense_fallback_limit = 4096;
  /// false: apply L by direct kernel summation instead of the FFT — the
  /// bitwise dense cross-check mode (slow; tests and A/B oracles only).
  bool use_fft = true;
};

struct MqsOptions {
  extract::SkinSplitOptions skin{};
  double mutual_window = 1e9;  ///< metres; limits the dense coupling range
  double snap = 1e-9;          ///< node coordinate snapping
  ExtractionMethod method = ExtractionMethod::Dense;
  FastSolveOptions fast{};
  /// Dense path: solve with a complex<float> blocked factor + complex<double>
  /// iterative refinement (robust::solve_dense_mixed_with_recovery) once the
  /// system reaches mixed_min_unknowns. Ill-conditioned systems fall back to
  /// the full-double ladder deterministically. Off by default: unlike the
  /// real-valued kernels (where the f32 factor measures ~1.5x faster than the
  /// f64 one, see bench_kernels), std::complex arithmetic vectorises poorly
  /// enough under the no-FMA contract that the complex<float> factor does not
  /// beat complex<double> on current compilers — opt in only if your target
  /// measures otherwise.
  bool mixed_precision = false;
  std::size_t mixed_min_unknowns = 512;
};

/// Loop impedance decomposed at one frequency.
struct LoopImpedance {
  double frequency = 0.0;   ///< Hz
  double resistance = 0.0;  ///< Re Z, ohms
  double inductance = 0.0;  ///< Im Z / w, henries
};

class MqsSolver {
 public:
  /// Builds the filament system over `segments` (already refined so that
  /// connection points are endpoints). Vias short their end nodes together
  /// (their impedance is negligible at MQS frequencies of interest).
  MqsSolver(const std::vector<geom::Segment>& segments,
            const std::vector<geom::Via>& vias, const geom::Technology& tech,
            const MqsOptions& opts = {});

  std::size_t num_filaments() const { return filaments_.size(); }
  std::size_t num_nodes() const { return node_count_; }

  /// The method actually in effect after Auto resolution (and after the
  /// empty-voxel-grid fallback to Dense).
  ExtractionMethod method() const { return method_; }

  /// Voxel grid of the FftGmres path (snapping-error stats live in
  /// grid()->stats); nullptr on the dense path.
  const fast::VoxelGrid* voxel_grid() const;

  /// Node at a segment-endpoint coordinate; nullopt if no conductor ends
  /// there.
  std::optional<std::size_t> node_at(geom::Point p, int layer) const;

  /// Electrically shorts two nodes (used to tie the receiver end of the
  /// signal to the local ground per the Section-5 extraction setup).
  void short_nodes(std::size_t a, std::size_t b);

  /// Nearest node belonging to a conductor of the given kind.
  std::optional<std::size_t> nearest_node(geom::Point p,
                                          geom::NetKind kind) const;

  /// Loop impedance seen by a 1 A source driven between `plus` and `minus`.
  LoopImpedance port_impedance(std::size_t plus, std::size_t minus,
                               double frequency) const;

 private:
  std::size_t canonical(std::size_t node) const;

  LoopImpedance port_impedance_dense(std::size_t plus, std::size_t minus,
                                     double frequency) const;
  LoopImpedance port_impedance_fft(std::size_t plus, std::size_t minus,
                                   double frequency) const;

  std::vector<geom::Segment> filaments_;
  std::vector<double> fil_resistance_;
  la::Matrix fil_l_;  // filament partial-inductance matrix (Dense only)
  std::vector<std::size_t> fil_a_, fil_b_;
  std::size_t node_count_ = 0;
  std::vector<std::size_t> alias_;  // union-find parent per node
  struct NodeRec {
    geom::Point at;
    int layer;
    geom::NetKind kind;
  };
  std::vector<NodeRec> node_info_;
  std::vector<std::pair<std::uint64_t, std::size_t>> node_keys_;  // sorted
  double snap_ = 1e-9;

  MqsOptions opts_;
  ExtractionMethod method_ = ExtractionMethod::Dense;
  // Shared, immutable after construction — keeps MqsSolver copyable.
  std::shared_ptr<const fast::ToeplitzLOperator> toeplitz_;  // FftGmres only
  sparsify::SparsifiedL precond_l_;  // frequency-independent sparsified L
};

}  // namespace ind::loop
