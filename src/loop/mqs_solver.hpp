// Magnetoquasistatic field solver in the FastHenry [7] style.
//
// Conductors are discretised into volume filaments that share nodes at the
// parent-segment boundaries; each filament carries R + jwL self impedance
// and full mutual coupling to every parallel filament. Solving the complex
// nodal system with a 1 A port excitation yields the frequency-dependent
// loop impedance Z(f) = R(f) + jw L(f): current crowds into low-impedance
// return paths as frequency rises, producing the R-up / L-down behaviour of
// Fig. 3(b) without any explicit skin-effect model.
#pragma once

#include <optional>
#include <vector>

#include "extract/skin.hpp"
#include "geom/layout.hpp"
#include "la/dense_matrix.hpp"

namespace ind::loop {

struct MqsOptions {
  extract::SkinSplitOptions skin{};
  double mutual_window = 1e9;  ///< metres; limits the dense coupling range
  double snap = 1e-9;          ///< node coordinate snapping
};

/// Loop impedance decomposed at one frequency.
struct LoopImpedance {
  double frequency = 0.0;   ///< Hz
  double resistance = 0.0;  ///< Re Z, ohms
  double inductance = 0.0;  ///< Im Z / w, henries
};

class MqsSolver {
 public:
  /// Builds the filament system over `segments` (already refined so that
  /// connection points are endpoints). Vias short their end nodes together
  /// (their impedance is negligible at MQS frequencies of interest).
  MqsSolver(const std::vector<geom::Segment>& segments,
            const std::vector<geom::Via>& vias, const geom::Technology& tech,
            const MqsOptions& opts = {});

  std::size_t num_filaments() const { return filaments_.size(); }
  std::size_t num_nodes() const { return node_count_; }

  /// Node at a segment-endpoint coordinate; nullopt if no conductor ends
  /// there.
  std::optional<std::size_t> node_at(geom::Point p, int layer) const;

  /// Electrically shorts two nodes (used to tie the receiver end of the
  /// signal to the local ground per the Section-5 extraction setup).
  void short_nodes(std::size_t a, std::size_t b);

  /// Nearest node belonging to a conductor of the given kind.
  std::optional<std::size_t> nearest_node(geom::Point p,
                                          geom::NetKind kind) const;

  /// Loop impedance seen by a 1 A source driven between `plus` and `minus`.
  LoopImpedance port_impedance(std::size_t plus, std::size_t minus,
                               double frequency) const;

 private:
  std::size_t canonical(std::size_t node) const;

  std::vector<geom::Segment> filaments_;
  std::vector<double> fil_resistance_;
  la::Matrix fil_l_;  // filament partial-inductance matrix
  std::vector<std::size_t> fil_a_, fil_b_;
  std::size_t node_count_ = 0;
  std::vector<std::size_t> alias_;  // union-find parent per node
  struct NodeRec {
    geom::Point at;
    int layer;
    geom::NetKind kind;
  };
  std::vector<NodeRec> node_info_;
  std::vector<std::pair<std::uint64_t, std::size_t>> node_keys_;  // sorted
  double snap_ = 1e-9;
};

}  // namespace ind::loop
