// Loop-model netlist construction (Fig. 3(c)/(d) and the Table-1 "LOOP
// (RLC)" flow).
//
// The extracted loop resistance and inductance are distributed along the
// signal-net segments proportionally to length (one RLC-pi stage per
// segment — "the lumped RLC circuit representation can be improved by
// increasing the number of RLC-pi segments"), interconnect capacitance is
// kept per segment, and the drivers connect to *ideal* rails: the grid, the
// decap and the package disappear from the simulated circuit, which is
// exactly why the loop model is orders of magnitude smaller and faster —
// and why it loses the capacitance-dependent return-path accuracy the paper
// warns about.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "geom/layout.hpp"
#include "loop/ladder_fit.hpp"
#include "loop/port_extractor.hpp"

namespace ind::loop {

struct LoopModelOptions {
  double extraction_freq = 1e9;  ///< single-frequency R/L (Fig. 3(c))
  bool use_ladder = false;       ///< two-frequency ladder (Fig. 3(d))
  double f_low = 1e8, f_high = 1e10;  ///< ladder anchor frequencies
  double vdd = 1.8;
  LoopExtractionOptions extraction{};
  double max_segment_length = geom::um(200.0);  ///< netlist granularity
};

struct LoopModel {
  circuit::Netlist netlist;
  std::vector<circuit::Probe> receiver_probes;
  std::vector<std::string> receiver_names;
  LoopImpedance extracted;            ///< loop R/L at the extraction point
  std::optional<LadderModel> ladder;  ///< set when use_ladder
  double total_cap = 0.0;             ///< farads, interconnect + loads
  double vdd_volts = 1.8;
  double extraction_seconds = 0.0;    ///< field-solver time (Table 1 run-time)
};

LoopModel build_loop_model(const geom::Layout& layout, int signal_net,
                           const LoopModelOptions& opts = {});

}  // namespace ind::loop
