// Two-frequency ladder fit (Krauter et al. [5]; Fig. 3(d) of the paper):
// "The loop impedance is extracted at two frequencies, and the parameters
// R0, L0, R1 and L1 used in the ladder circuit are computed."
//
// Ladder topology:  Z(w) = R0 + jw L0 + (R1 || jw L1)
// which rises from R0 to R0+R1 in resistance and falls from L0+L1 to L0 in
// inductance as frequency grows — the skin/proximity signature of Fig. 3(b).
#pragma once

#include <optional>
#include <vector>

#include "la/dense_matrix.hpp"
#include "loop/mqs_solver.hpp"
#include "robust/diagnostics.hpp"

namespace ind::loop {

struct LadderModel {
  double r0 = 0.0;  ///< ohms
  double l0 = 0.0;  ///< henries
  double r1 = 0.0;  ///< ohms   (0 = no parallel branch)
  double l1 = 0.0;  ///< henries (0 = no parallel branch)

  bool has_parallel_branch() const { return r1 > 0.0 && l1 > 0.0; }

  /// Fit diagnostics: NonConverged means the Newton iteration hit its
  /// iteration cap or an unrescuable singular Jacobian; the model then
  /// holds the best point reached (or the plain series-RL fallback).
  robust::SolveReport report;

  la::Complex impedance(double omega) const;
  double resistance(double omega) const { return impedance(omega).real(); }
  double inductance(double omega) const {
    return impedance(omega).imag() / omega;
  }
};

/// Fits the ladder to loop impedances extracted at a low and a high
/// frequency. Degenerates gracefully to a plain series RL when the two
/// points show no frequency dependence.
LadderModel fit_ladder(const LoopImpedance& low, const LoopImpedance& high);

/// Generalised ladder: Z(w) = R0 + jw L0 + sum_k (Rk || jw Lk). One branch
/// per skin/proximity "corner"; more branches track a broader band than the
/// paper's two-frequency construction.
struct MultiLadderModel {
  double r0 = 0.0;
  double l0 = 0.0;
  struct Branch {
    double r = 0.0;
    double l = 0.0;
  };
  std::vector<Branch> branches;

  /// Fit diagnostics (see LadderModel::report); DampedRestart actions count
  /// the Levenberg-Marquardt damping escalations that were needed.
  robust::SolveReport report;

  la::Complex impedance(double omega) const;
  double resistance(double omega) const { return impedance(omega).real(); }
  double inductance(double omega) const {
    return impedance(omega).imag() / omega;
  }
};

/// Least-squares fit (Levenberg-Marquardt in log-parameter space, so every
/// element stays positive) of an N-branch ladder to a full R(f)/L(f) sweep.
/// `branches` <= sweep.size()/2 is recommended.
MultiLadderModel fit_ladder_multi(const std::vector<LoopImpedance>& sweep,
                                  int branches);

/// Relative RMS misfit of a model against a sweep (diagnostic).
double ladder_fit_error(const MultiLadderModel& model,
                        const std::vector<LoopImpedance>& sweep);

}  // namespace ind::loop
