#include "loop/port_extractor.hpp"

#include <cmath>
#include <stdexcept>

namespace ind::loop {

std::vector<double> log_frequency_sweep(double f_lo, double f_hi, int points) {
  if (f_lo <= 0.0 || f_hi <= f_lo || points < 2)
    throw std::invalid_argument("log_frequency_sweep: bad range");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  const double ratio = std::log(f_hi / f_lo) / (points - 1);
  for (int i = 0; i < points; ++i) out.push_back(f_lo * std::exp(ratio * i));
  return out;
}

std::vector<LoopImpedance> extract_loop_rl(
    const geom::Layout& layout, int signal_net,
    const std::vector<double>& frequencies, const LoopExtractionOptions& opts) {
  const geom::Layout refined = geom::refine(layout, opts.max_segment_length);

  // Signal conductors plus every return conductor (the extraction ignores
  // capacitance, so only the conductive paths matter).
  std::vector<geom::Segment> conductors;
  auto is_return = [&](geom::NetKind k) {
    return k == geom::NetKind::Ground || k == geom::NetKind::Shield ||
           (opts.include_power_as_return && k == geom::NetKind::Power);
  };
  for (const geom::Segment& s : refined.segments())
    if (s.net == signal_net || is_return(s.kind)) conductors.push_back(s);
  if (conductors.empty())
    throw std::invalid_argument("extract_loop_rl: no conductors for net");

  std::vector<geom::Via> vias;
  for (const geom::Via& v : refined.vias()) {
    if (v.net < 0) continue;
    const geom::NetKind kind = refined.net(v.net).kind;
    if (v.net == signal_net || is_return(kind)) vias.push_back(v);
  }

  MqsSolver solver(conductors, vias, refined.tech(), opts.mqs);

  // Port at the driver; receiver ends shorted to local ground.
  const geom::Driver* driver = nullptr;
  for (const geom::Driver& d : refined.drivers())
    if (d.signal_net == signal_net) {
      driver = &d;
      break;
    }
  if (!driver)
    throw std::invalid_argument("extract_loop_rl: net has no driver");
  const auto plus = solver.node_at(driver->at, driver->layer);
  if (!plus)
    throw std::runtime_error("extract_loop_rl: driver not on signal metal");
  auto minus = solver.nearest_node(driver->at, geom::NetKind::Ground);
  if (!minus) minus = solver.nearest_node(driver->at, geom::NetKind::Shield);
  if (!minus)
    throw std::runtime_error("extract_loop_rl: no return conductor");

  for (const geom::Receiver& r : refined.receivers()) {
    if (r.signal_net != signal_net) continue;
    const auto pin = solver.node_at(r.at, r.layer);
    auto gnd = solver.nearest_node(r.at, geom::NetKind::Ground);
    if (!gnd) gnd = solver.nearest_node(r.at, geom::NetKind::Shield);
    if (pin && gnd) solver.short_nodes(*pin, *gnd);
  }

  std::vector<LoopImpedance> sweep;
  sweep.reserve(frequencies.size());
  for (double f : frequencies)
    sweep.push_back(solver.port_impedance(*plus, *minus, f));
  return sweep;
}

}  // namespace ind::loop
