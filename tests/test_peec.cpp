// Unit + integration tests for the PEEC model builder (Section 3).
#include <gtest/gtest.h>

#include "circuit/transient.hpp"
#include "circuit/waveform.hpp"
#include "geom/topologies.hpp"
#include "peec/model_builder.hpp"

namespace {

using namespace ind;
using geom::um;

geom::Layout small_fig1_layout() {
  geom::Layout l(geom::default_tech());
  geom::DriverReceiverGridSpec spec;
  spec.grid.extent_x = um(300);
  spec.grid.extent_y = um(300);
  spec.grid.pitch = um(150);
  spec.grid.pads_per_side = 1;
  spec.signal_length = um(250);
  add_driver_receiver_grid(l, spec);
  return l;
}

TEST(Decap, StatisticalEstimate) {
  // 1 m of total transistor width, 15% switching: C = 1.5 fF/um * 1e6 um * 0.85
  const double c = peec::estimate_block_decap(1.0, 0.15);
  EXPECT_NEAR(c, 1.5e-15 * 1e6 * 0.85, 1e-12);
  EXPECT_THROW(peec::estimate_block_decap(1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(peec::estimate_block_decap(-1.0, 0.5), std::invalid_argument);
}

TEST(Package, PadImpedanceScaling) {
  geom::Pad pad;
  pad.resistance = 0.1;
  pad.inductance = 1e-9;
  peec::PackageOptions opts;
  opts.resistance_scale = 2.0;
  opts.inductance_scale = 0.5;
  const peec::PadImpedance z = peec::pad_impedance(pad, opts);
  EXPECT_DOUBLE_EQ(z.resistance, 0.2);
  EXPECT_DOUBLE_EQ(z.inductance, 0.5e-9);
}

TEST(PeecBuilder, RlcModelStructure) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions opts;
  opts.max_segment_length = um(100);
  opts.decap.sites = 8;
  const peec::PeecModel m = peec::build_peec_model(l, opts);

  const std::size_t n_seg = m.layout.segments().size();
  EXPECT_GT(n_seg, 0u);
  // Every segment got an inductor and nodes.
  for (std::size_t i = 0; i < n_seg; ++i) {
    EXPECT_NE(m.seg_inductor[i], peec::kNoInductor);
    EXPECT_GE(m.seg_a[i], 0);
    EXPECT_GE(m.seg_b[i], 0);
  }
  const auto c = m.counts();
  EXPECT_GE(c.inductors, n_seg);  // + pad inductors
  EXPECT_GT(c.mutuals, 0u);
  EXPECT_GT(c.capacitors, 0u);
  // Drivers, receivers, probes present.
  EXPECT_EQ(m.netlist.drivers().size(), 1u);
  EXPECT_EQ(m.receiver_probes.size(), 1u);
}

TEST(PeecBuilder, RcModelHasNoInductance) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions opts;
  opts.rc_only = true;
  opts.max_segment_length = um(100);
  const peec::PeecModel m = peec::build_peec_model(l, opts);
  EXPECT_EQ(m.counts().inductors, 0u);
  EXPECT_EQ(m.counts().mutuals, 0u);
  for (const std::size_t k : m.seg_inductor) EXPECT_EQ(k, peec::kNoInductor);
}

TEST(PeecBuilder, MutualPolicyNoneDefersCoupling) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions opts;
  opts.mutual_policy = peec::PeecOptions::MutualPolicy::None;
  opts.max_segment_length = um(100);
  const peec::PeecModel m = peec::build_peec_model(l, opts);
  EXPECT_EQ(m.counts().mutuals, 0u);
  EXPECT_GT(m.counts().inductors, 0u);
  EXPECT_FALSE(m.extraction.partial_l.empty());  // matrix kept for later
}

TEST(PeecBuilder, NodesShareAtViaPoints) {
  geom::Layout l(geom::default_tech());
  const int net = l.add_net("n", geom::NetKind::Signal);
  l.add_wire(net, 5, {0, 0}, {um(100), 0}, um(1));
  l.add_wire(net, 6, {um(50), -um(50)}, {um(50), um(50)}, um(1));
  l.add_via(net, {um(50), 0}, 5, 6);
  peec::PeecOptions opts;
  opts.max_segment_length = um(1000);
  const peec::PeecModel m = peec::build_peec_model(l, opts);
  // The via resistor must appear: count resistors > segments (wire R + via R).
  EXPECT_EQ(m.counts().resistors, m.layout.segments().size() + 1);
}

TEST(PeecBuilder, DecapSitesAttach) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions with, without;
  with.max_segment_length = without.max_segment_length = um(150);
  with.decap.enable = true;
  with.decap.sites = 8;
  without.decap.enable = false;
  const auto m1 = peec::build_peec_model(l, with);
  const auto m0 = peec::build_peec_model(l, without);
  EXPECT_GT(m1.counts().capacitors, m0.counts().capacitors);
  EXPECT_GT(m1.counts().resistors, m0.counts().resistors);
}

TEST(PeecBuilder, BackgroundSourcesAttach) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions opts;
  opts.max_segment_length = um(150);
  opts.background.enable = true;
  opts.background.sources = 5;
  const auto m = peec::build_peec_model(l, opts);
  EXPECT_EQ(m.netlist.isources().size(), 5u);
}

TEST(PeecBuilder, NearestNodeFindsKinds) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions opts;
  opts.max_segment_length = um(150);
  const auto m = peec::build_peec_model(l, opts);
  const auto p = m.nearest_node({um(150), um(150)}, geom::NetKind::Power);
  const auto g = m.nearest_node({um(150), um(150)}, geom::NetKind::Ground);
  ASSERT_GE(p, 0);
  ASSERT_GE(g, 0);
  EXPECT_EQ(m.nodes[static_cast<std::size_t>(p)].kind, geom::NetKind::Power);
  EXPECT_EQ(m.nodes[static_cast<std::size_t>(g)].kind, geom::NetKind::Ground);
}

// End-to-end: the Fig-1 circuit must actually switch rail-to-rail.
TEST(PeecIntegration, Fig1TransientSwitches) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions opts;
  opts.max_segment_length = um(150);
  opts.decap.sites = 4;
  const peec::PeecModel m = peec::build_peec_model(l, opts);

  circuit::TransientOptions topts;
  topts.t_stop = 1.5e-9;
  topts.dt = 2e-12;
  const auto res = circuit::transient(m.netlist, m.receiver_probes, topts);
  const auto& w = res.samples[0];
  EXPECT_NEAR(w.front(), 0.0, 0.05);
  EXPECT_NEAR(w.back(), opts.vdd, 0.05);
  const auto d = circuit::delay_50(res.time, w, 0.0, opts.vdd);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 1e-9);
}

// The RLC model must be slower (or at least different) than RC and show
// inductive ringing on an aggressive topology — Section 6's core claim.
TEST(PeecIntegration, RlcDelayDiffersFromRc) {
  const geom::Layout l = small_fig1_layout();
  peec::PeecOptions rlc, rc;
  rlc.max_segment_length = rc.max_segment_length = um(150);
  rc.rc_only = true;
  const auto m_rlc = peec::build_peec_model(l, rlc);
  const auto m_rc = peec::build_peec_model(l, rc);

  circuit::TransientOptions topts;
  topts.t_stop = 1.5e-9;
  topts.dt = 2e-12;
  const auto r_rlc = circuit::transient(m_rlc.netlist, m_rlc.receiver_probes, topts);
  const auto r_rc = circuit::transient(m_rc.netlist, m_rc.receiver_probes, topts);
  const auto d_rlc =
      circuit::delay_50(r_rlc.time, r_rlc.samples[0], 0.0, 1.8);
  const auto d_rc = circuit::delay_50(r_rc.time, r_rc.samples[0], 0.0, 1.8);
  ASSERT_TRUE(d_rlc.has_value());
  ASSERT_TRUE(d_rc.has_value());
  EXPECT_NE(*d_rlc, *d_rc);
}

TEST(PeecBuilder, ThrowsOnDriverOffWire) {
  geom::Layout l(geom::default_tech());
  const int net = l.add_net("n", geom::NetKind::Signal);
  l.add_wire(net, 6, {0, 0}, {um(100), 0}, um(1));
  geom::Driver d;
  d.at = {um(500), um(500)};  // nowhere near the wire
  d.layer = 6;
  d.signal_net = net;
  l.add_driver(d);
  EXPECT_THROW(peec::build_peec_model(l, {}), std::runtime_error);
}

}  // namespace

// ---------------------------------------------------------------------------
// Substrate model extension (Section 3: "can also easily be extended to
// include substrate models, N-well capacitance").
// ---------------------------------------------------------------------------

namespace {

using namespace ind;
using geom::um;

geom::Layout substrate_workload() {
  geom::Layout l(geom::default_tech());
  geom::DriverReceiverGridSpec spec;
  spec.grid.extent_x = um(300);
  spec.grid.extent_y = um(300);
  spec.grid.pitch = um(150);
  spec.grid.pads_per_side = 1;
  spec.signal_length = um(250);
  geom::add_driver_receiver_grid(l, spec);
  return l;
}

TEST(Substrate, MeshAddsNodesAndElements) {
  const geom::Layout l = substrate_workload();
  peec::PeecOptions with, without;
  with.max_segment_length = without.max_segment_length = um(150);
  with.substrate.enable = true;
  with.substrate.pitch = um(100);
  const auto m1 = peec::build_peec_model(l, with);
  const auto m0 = peec::build_peec_model(l, without);
  EXPECT_FALSE(m1.substrate_nodes.empty());
  EXPECT_TRUE(m0.substrate_nodes.empty());
  EXPECT_GT(m1.counts().resistors, m0.counts().resistors);  // mesh + taps
  for (const circuit::NodeId n : m1.substrate_nodes)
    EXPECT_EQ(m1.nodes[static_cast<std::size_t>(n)].kind,
              geom::NetKind::Substrate);
}

TEST(Substrate, GroundCapsTerminateOnBulk) {
  const geom::Layout l = substrate_workload();
  peec::PeecOptions opts;
  opts.max_segment_length = um(150);
  opts.substrate.enable = true;
  const auto m = peec::build_peec_model(l, opts);
  // No interconnect ground capacitance may reference the ideal ground node
  // directly: every grounded cap lands on a substrate node.
  std::size_t to_ideal = 0, to_substrate = 0;
  std::vector<bool> is_sub(m.nodes.size(), false);
  for (const circuit::NodeId n : m.substrate_nodes)
    is_sub[static_cast<std::size_t>(n)] = true;
  for (const circuit::Capacitor& c : m.netlist.capacitors()) {
    if (c.b == circuit::kGround && c.a >= 0 &&
        m.nodes[static_cast<std::size_t>(c.a)].kind != geom::NetKind::Substrate)
      ++to_ideal;
    if (c.b >= 0 && is_sub[static_cast<std::size_t>(c.b)]) ++to_substrate;
  }
  EXPECT_GT(to_substrate, 0u);
}

TEST(Substrate, TransientStillSwitchesCleanly) {
  const geom::Layout l = substrate_workload();
  peec::PeecOptions opts;
  opts.max_segment_length = um(150);
  opts.substrate.enable = true;
  opts.decap.sites = 4;
  const auto m = peec::build_peec_model(l, opts);
  circuit::TransientOptions topts;
  topts.t_stop = 1.5e-9;
  topts.dt = 2e-12;
  const auto res = circuit::transient(m.netlist, m.receiver_probes, topts);
  EXPECT_NEAR(res.samples[0].back(), opts.vdd, 0.05);
}

TEST(Substrate, BulkBouncesDuringSwitching) {
  const geom::Layout l = substrate_workload();
  peec::PeecOptions opts;
  opts.max_segment_length = um(150);
  opts.substrate.enable = true;
  const auto m = peec::build_peec_model(l, opts);
  // Probe a central substrate node: switching must inject visible bulk
  // noise through the interconnect and N-well capacitances.
  const circuit::NodeId sub =
      m.substrate_nodes[m.substrate_nodes.size() / 2];
  circuit::TransientOptions topts;
  topts.t_stop = 1.0e-9;
  topts.dt = 2e-12;
  const auto res = circuit::transient(
      m.netlist,
      {{circuit::ProbeKind::NodeVoltage, static_cast<std::size_t>(sub),
        "bulk"}},
      topts);
  double peak = 0.0;
  for (double v : res.samples[0]) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 1e-4);  // bounces...
  EXPECT_LT(peak, 1.0);   // ...but stays far below the rail
}

}  // namespace

// ---------------------------------------------------------------------------
// Static IR-drop analysis (the [12] substrate).
// ---------------------------------------------------------------------------

#include "peec/grid_analysis.hpp"

namespace {

TEST(IrDrop, StaticDroopScalesWithCurrent) {
  const geom::Layout l = substrate_workload();
  peec::PeecOptions opts;
  opts.rc_only = true;  // IR drop is a DC/resistive question
  opts.max_segment_length = um(150);
  const auto m = peec::build_peec_model(l, opts);

  peec::IrDropOptions ir1, ir2;
  ir1.total_current = 20e-3;
  ir2.total_current = 40e-3;
  const auto r1 = peec::static_ir_drop(m, ir1);
  const auto r2 = peec::static_ir_drop(m, ir2);
  EXPECT_GT(r1.worst_vdd_droop, 0.0);
  EXPECT_GT(r1.worst_gnd_bounce, 0.0);
  // Linear network: doubling the current doubles the drop.
  EXPECT_NEAR(r2.worst_vdd_droop, 2.0 * r1.worst_vdd_droop,
              0.01 * r2.worst_vdd_droop);
  EXPECT_GE(r1.worst_vdd_node, 0);
  EXPECT_GE(r1.worst_gnd_node, 0);
}

TEST(IrDrop, MorePadsReduceDroop) {
  auto build = [&](int pads_per_side) {
    geom::Layout l(geom::default_tech());
    geom::DriverReceiverGridSpec spec;
    spec.grid.extent_x = um(400);
    spec.grid.extent_y = um(400);
    spec.grid.pitch = um(100);
    spec.grid.pads_per_side = pads_per_side;
    spec.signal_length = um(300);
    geom::add_driver_receiver_grid(l, spec);
    peec::PeecOptions opts;
    opts.rc_only = true;
    opts.max_segment_length = um(100);
    return peec::build_peec_model(l, opts);
  };
  // Same grid and loads; strictly stronger supply must droop less.
  const auto weak = peec::static_ir_drop(build(1));
  const auto strong = peec::static_ir_drop(build(4));
  EXPECT_LT(strong.worst_vdd_droop, weak.worst_vdd_droop);
  EXPECT_LT(strong.worst_gnd_bounce, weak.worst_gnd_bounce);
}

TEST(IrDrop, RequiresPowerAndGround) {
  geom::Layout l(geom::default_tech());
  const int sig = l.add_net("s", geom::NetKind::Signal);
  l.add_wire(sig, 6, {0, 0}, {um(100), 0}, um(1));
  peec::PeecOptions opts;
  opts.rc_only = true;
  const auto m = peec::build_peec_model(l, opts);
  EXPECT_THROW(peec::static_ir_drop(m), std::invalid_argument);
}

}  // namespace
