// Tests for the content-addressed artifact store: hashing, the versioned
// binary format and its error taxonomy, bitwise serde round trips up to the
// PEEC model and PRIMA ROM, and the on-disk cache (hit-after-miss,
// invalidation, corruption recovery, fault injection, LRU eviction).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/sources.hpp"
#include "extract/extractor.hpp"
#include "geom/layout.hpp"
#include "geom/topologies.hpp"
#include "mor/prima.hpp"
#include "peec/model_builder.hpp"
#include "robust/diagnostics.hpp"
#include "robust/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sparsify/kmatrix.hpp"
#include "store/artifact_cache.hpp"
#include "store/flows.hpp"
#include "store/format.hpp"
#include "store/hash.hpp"
#include "store/serde.hpp"

namespace {

using namespace ind;
using geom::um;
namespace fault = robust::fault;
namespace fs = std::filesystem;

// The generic bitwise oracle: serialize, deserialize, re-serialize, and
// demand the two byte images be identical. Any lossy field (a renormalised
// double, a dropped element, a reordered vector) breaks the comparison.
template <typename T>
std::vector<std::uint8_t> serialized(const T& v) {
  store::ByteWriter w;
  store::serde::put(w, v);
  return w.take();
}

template <typename T>
void expect_bitwise_round_trip(const T& value) {
  const std::vector<std::uint8_t> image = serialized(value);
  T back;
  store::ByteReader r(image);
  store::serde::get(r, back);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(serialized(back), image);
}

std::int64_t counter(const char* name) {
  return runtime::MetricsRegistry::instance().counter(name).value.load();
}

// A small but complete layout: two nets, wires on two layers, a via, pads,
// a driver and a named receiver — every Layout field the serde must carry.
geom::Layout small_layout(double signal_width_um = 2.0) {
  geom::Layout l(geom::default_tech());
  const int sig = l.add_net("sig", geom::NetKind::Signal);
  const int gnd = l.add_net("gnd", geom::NetKind::Ground);
  l.add_wire(sig, 6, {0, 0}, {um(200), 0}, um(signal_width_um));
  l.add_wire(gnd, 6, {0, um(6)}, {um(200), um(6)}, um(3));
  l.add_wire(gnd, 5, {0, um(6)}, {um(100), um(6)}, um(3));
  l.add_via(gnd, {0, um(6)}, 5, 6, 2);
  geom::Pad pad;
  pad.at = {um(200), um(6)};
  pad.layer = 6;
  pad.kind = geom::NetKind::Ground;
  l.add_pad(pad);
  geom::Driver d;
  d.at = {0, 0};
  d.layer = 6;
  d.signal_net = sig;
  d.strength_ohm = 25.0;
  d.slew = 30e-12;
  l.add_driver(d);
  geom::Receiver r;
  r.at = {um(200), 0};
  r.layer = 6;
  r.signal_net = sig;
  r.load_cap = 20e-15;
  r.name = "rcv";
  l.add_receiver(r);
  return l;
}

store::Artifact small_artifact() {
  store::Artifact a;
  a.kind = "test";
  a.fingerprint = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  store::ByteWriter w;
  w.str("hello");
  w.f64(3.14159);
  a.add("payload", std::move(w));
  return a;
}

store::StoreErrc decode_error(const std::vector<std::uint8_t>& image,
                              const store::Digest* expect = nullptr) {
  try {
    store::decode_artifact(image, expect);
  } catch (const store::StoreError& e) {
    return e.code();
  }
  ADD_FAILURE() << "decode_artifact unexpectedly succeeded";
  return store::StoreErrc::IoError;
}

// Every cache test runs against its own directory and leaves the process
// cache disabled again, so no state leaks into unrelated suites.
class StoreCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    dir_ = ::testing::TempDir() + "ind_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    store::ArtifactCache::instance().configure(dir_);
  }
  void TearDown() override {
    store::ArtifactCache::instance().configure("");
    fs::remove_all(dir_);
    fault::clear();
  }
  std::string dir_;
};

// --- hashing ---------------------------------------------------------------

TEST(StoreHash, DigestFormatsAs32HexDigits) {
  const store::Digest d{0x0123456789abcdefULL, 0x00000000000000ffULL};
  EXPECT_EQ(d.hex(), "0123456789abcdef00000000000000ff");
}

TEST(StoreHash, DoublesHashByBitPattern) {
  store::Hasher pos, neg;
  pos.f64(0.0);
  neg.f64(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());  // equal values, different bits
}

TEST(StoreHash, StringsAreLengthPrefixed) {
  store::Hasher ab_c, a_bc;
  ab_c.str("ab");
  ab_c.str("c");
  a_bc.str("a");
  a_bc.str("bc");
  EXPECT_NE(ab_c.digest(), a_bc.digest());
}

TEST(StoreHash, IndependentOfThreadCount) {
  const geom::Layout layout = small_layout();
  runtime::set_global_threads(1);
  const store::Digest d1 = store::fingerprint(layout, extract::ExtractionOptions{});
  runtime::set_global_threads(4);
  const store::Digest d4 = store::fingerprint(layout, extract::ExtractionOptions{});
  runtime::set_global_threads(0);
  EXPECT_EQ(d1, d4);
}

TEST(StoreHash, FingerprintSensitivity) {
  const geom::Layout layout = small_layout();
  const store::Digest base = store::fingerprint(layout, extract::ExtractionOptions{});
  // Same inputs again: stable.
  EXPECT_EQ(base, store::fingerprint(layout, extract::ExtractionOptions{}));
  // Any option change invalidates.
  extract::ExtractionOptions narrow;
  narrow.mutual_window = um(50);
  EXPECT_NE(base, store::fingerprint(layout, narrow));
  // Any geometry change invalidates.
  EXPECT_NE(base, store::fingerprint(small_layout(2.5), extract::ExtractionOptions{}));
  // Different artifact kinds never collide on the same content.
  peec::PeecOptions popts;
  EXPECT_NE(base, store::fingerprint(layout, popts));
}

// --- serde round trips (bitwise) -------------------------------------------

TEST(StoreSerde, DenseMatrixBitwise) {
  la::Matrix m(3, 2);
  m(0, 0) = -0.0;
  m(0, 1) = 3.141592653589793;
  m(1, 0) = 5e-324;  // subnormal
  m(1, 1) = -1.7976931348623157e308;
  m(2, 0) = 1.0 / 3.0;
  expect_bitwise_round_trip(m);
  expect_bitwise_round_trip(la::Matrix{});  // empty
}

TEST(StoreSerde, ComplexMatrixBitwise) {
  la::CMatrix m(2, 2);
  m(0, 0) = {1.5, -2.5};
  m(0, 1) = {0.0, -0.0};
  m(1, 1) = {1e-300, 1e300};
  expect_bitwise_round_trip(m);
}

TEST(StoreSerde, SparseMatricesBitwise) {
  la::TripletMatrix t(3, 3);
  t.add(0, 0, 4.0);
  t.add(2, 1, -1.0);
  t.add(2, 1, -0.5);  // duplicate entries preserved, not merged
  expect_bitwise_round_trip(t);
  expect_bitwise_round_trip(la::CscMatrix(t));
}

TEST(StoreSerde, CscRejectsInconsistentArrays) {
  store::ByteWriter w;
  store::serde::put(w, la::CscMatrix(la::TripletMatrix(2, 2)));
  std::vector<std::uint8_t> image = w.take();
  image.back() ^= 0x01;  // corrupt the last col_ptr entry
  la::CscMatrix out;
  store::ByteReader r(image);
  try {
    store::serde::get(r, out);
    FAIL() << "expected StoreError";
  } catch (const store::StoreError& e) {
    // Either the size check (Malformed) or the exhausted buffer (Truncated)
    // may fire first; both are structured rejections, never UB.
    EXPECT_TRUE(e.code() == store::StoreErrc::Malformed ||
                e.code() == store::StoreErrc::Truncated)
        << store::to_string(e.code());
  }
}

TEST(StoreSerde, SparsifiedLBitwise) {
  const geom::Layout refined = geom::refine(small_layout(), um(50));
  const extract::Extraction x = extract::extract(refined, {});
  expect_bitwise_round_trip(sparsify::kmatrix_sparsify(x.partial_l, 0.05));
}

TEST(StoreSerde, LayoutBitwise) { expect_bitwise_round_trip(small_layout()); }

TEST(StoreSerde, ExtractionBitwise) {
  const geom::Layout refined = geom::refine(small_layout(), um(50));
  expect_bitwise_round_trip(extract::extract(refined, {}));
}

TEST(StoreSerde, NetlistBitwise) {
  circuit::Netlist nl;
  const circuit::NodeId a = nl.make_node();
  const circuit::NodeId b = nl.make_node();
  const circuit::NodeId c = nl.make_node();
  nl.add_resistor(a, b, 10.0);
  nl.add_capacitor(b, circuit::kGround, 5e-15);
  const std::size_t l0 = nl.add_inductor(a, c, 1e-9);
  const std::size_t l1 = nl.add_inductor(b, c, 2e-9);
  nl.add_mutual(l0, l1, 0.4e-9);
  circuit::KMatrixGroup kg;
  kg.inductors = {l0, l1};
  kg.entries = {{0, 0, 1e9}, {0, 1, -2e8}, {1, 1, 5e8}};
  nl.add_kmatrix_group(std::move(kg));
  nl.add_vsource(a, circuit::kGround,
                 circuit::Pwl({{0.0, 0.0}, {1e-10, 1.0}}));
  nl.add_isource(c, circuit::kGround, circuit::Pwl({{0.0, 1e-3}}));
  circuit::SwitchedDriver d;
  d.out = b;
  d.vdd = a;
  d.gnd = circuit::kGround;
  d.pull_ohms = 20.0;
  d.slew = 30e-12;
  d.start = 1e-10;
  d.rising = false;
  d.name = "drv";
  nl.add_driver(std::move(d));
  expect_bitwise_round_trip(nl);
}

TEST(StoreSerde, PeecModelBitwise) {
  peec::PeecOptions opts;
  opts.max_segment_length = um(100);
  expect_bitwise_round_trip(peec::build_peec_model(small_layout(), opts));
}

TEST(StoreSerde, PrimaRomBitwise) {
  const std::size_t n = 6;
  la::Matrix g(n, n), c(n, n), b(n, 1), l(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    g(i, i) = 2.0 + 0.1 * static_cast<double>(i);
    c(i, i) = 1e-15;
    if (i + 1 < n) {
      g(i, i + 1) = g(i + 1, i) = -1.0;
      c(i, i + 1) = c(i + 1, i) = -1e-16;
    }
  }
  b(0, 0) = 1.0;
  l(n - 1, 0) = 1.0;
  mor::PrimaOptions opts;
  opts.max_order = 4;
  expect_bitwise_round_trip(mor::prima_reduce(g, c, b, l, opts));
}

// --- format error taxonomy -------------------------------------------------

TEST(StoreFormat, RoundTripPreservesEverything) {
  const store::Artifact a = small_artifact();
  const store::Artifact back = store::decode_artifact(
      store::encode_artifact(a), &a.fingerprint);
  EXPECT_EQ(back.kind, a.kind);
  EXPECT_EQ(back.fingerprint, a.fingerprint);
  ASSERT_EQ(back.sections.size(), 1u);
  EXPECT_EQ(back.sections[0].name, "payload");
  EXPECT_EQ(back.sections[0].bytes, a.sections[0].bytes);
}

TEST(StoreFormat, ErrorsAreDistinguishable) {
  const store::Artifact a = small_artifact();
  const std::vector<std::uint8_t> good = store::encode_artifact(a);

  auto mutated = [&](std::size_t offset, std::uint8_t xor_mask) {
    std::vector<std::uint8_t> img = good;
    img[offset] ^= xor_mask;
    return img;
  };

  // Not an artifact at all.
  EXPECT_EQ(decode_error(mutated(0, 0xff)), store::StoreErrc::BadMagic);
  EXPECT_EQ(decode_error({}), store::StoreErrc::BadMagic);
  // Header fields at fixed offsets: version (8), endianness tag (12).
  EXPECT_EQ(decode_error(mutated(8, 0xff)),
            store::StoreErrc::VersionMismatch);
  EXPECT_EQ(decode_error(mutated(12, 0xff)), store::StoreErrc::EndianMismatch);
  // A flipped payload byte fails only that section's checksum.
  EXPECT_EQ(decode_error(mutated(good.size() - 1, 0x01)),
            store::StoreErrc::ChecksumMismatch);
  // A file cut short mid-payload is Truncated, not ChecksumMismatch.
  std::vector<std::uint8_t> cut = good;
  cut.resize(cut.size() - 4);
  EXPECT_EQ(decode_error(cut), store::StoreErrc::Truncated);
  // The right file for a different key.
  const store::Digest other{1, 2};
  EXPECT_EQ(decode_error(good, &other),
            store::StoreErrc::FingerprintMismatch);
  // Unmodified image still decodes after all of the above.
  EXPECT_NO_THROW(store::decode_artifact(good, &a.fingerprint));
}

TEST(StoreFormat, WriteIsAtomicAndReadable) {
  const std::string dir = ::testing::TempDir() + "ind_store_format";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const store::Artifact a = small_artifact();
  const std::string path = dir + "/test.art";
  store::write_artifact(path, a);
  // No temp litter left behind.
  std::size_t files = 0;
  for (const auto& de : fs::directory_iterator(dir)) {
    (void)de;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  EXPECT_EQ(store::read_artifact(path, &a.fingerprint).kind, "test");
  fs::remove_all(dir);
}

// --- the cache -------------------------------------------------------------

TEST_F(StoreCacheTest, HitAfterMiss) {
  const geom::Layout refined = geom::refine(small_layout(), um(50));
  const extract::ExtractionOptions xopts;

  const std::int64_t misses0 = counter("store.misses");
  const std::int64_t hits0 = counter("store.hits");
  const extract::Extraction cold = store::cached_extraction(refined, xopts);
  EXPECT_EQ(counter("store.misses"), misses0 + 1);
  EXPECT_EQ(counter("store.hits"), hits0);

  const extract::Extraction warm = store::cached_extraction(refined, xopts);
  EXPECT_EQ(counter("store.hits"), hits0 + 1);
  EXPECT_EQ(counter("store.misses"), misses0 + 1);
  // The warm result is the cold result, bit for bit.
  EXPECT_EQ(serialized(warm), serialized(cold));
}

TEST_F(StoreCacheTest, WarmResultMatchesAtAnyThreadCount) {
  const geom::Layout refined = geom::refine(small_layout(), um(50));
  runtime::set_global_threads(1);
  const extract::Extraction cold = store::cached_extraction(refined, {});
  runtime::set_global_threads(4);
  const extract::Extraction warm = store::cached_extraction(refined, {});
  runtime::set_global_threads(0);
  EXPECT_EQ(serialized(warm), serialized(cold));
}

TEST_F(StoreCacheTest, InvalidationOnLayoutOrOptionChange) {
  const geom::Layout a = geom::refine(small_layout(), um(50));
  const geom::Layout b = geom::refine(small_layout(2.5), um(50));
  extract::ExtractionOptions narrow;
  narrow.mutual_window = um(50);

  const std::int64_t misses0 = counter("store.misses");
  store::cached_extraction(a, {});
  store::cached_extraction(a, narrow);  // same layout, new options: miss
  store::cached_extraction(b, {});      // new layout, same options: miss
  EXPECT_EQ(counter("store.misses"), misses0 + 3);

  std::size_t artifacts = 0;
  for (const auto& de : fs::directory_iterator(dir_))
    if (de.path().extension() == ".art") ++artifacts;
  EXPECT_EQ(artifacts, 3u);
}

TEST_F(StoreCacheTest, CachedModelWrappersRoundTrip) {
  const geom::Layout layout = small_layout();
  peec::PeecOptions popts;
  popts.max_segment_length = um(100);

  const std::int64_t hits0 = counter("store.hits");
  const peec::PeecModel cold = store::cached_peec_model(layout, popts);
  const peec::PeecModel warm = store::cached_peec_model(layout, popts);
  EXPECT_EQ(serialized(warm), serialized(cold));

  const la::Matrix& pl = cold.extraction.partial_l;
  const sparsify::SparsifiedL k_cold = store::cached_kmatrix_sparsify(pl, 0.05);
  const sparsify::SparsifiedL k_warm = store::cached_kmatrix_sparsify(pl, 0.05);
  EXPECT_EQ(serialized(k_warm), serialized(k_cold));
  EXPECT_EQ(counter("store.hits"), hits0 + 2);
}

TEST_F(StoreCacheTest, CorruptArtifactRecomputesAndRewrites) {
  const geom::Layout refined = geom::refine(small_layout(), um(50));
  const extract::Extraction cold = store::cached_extraction(refined, {});

  // Rot a byte in the middle of the stored payload.
  const std::string path = store::ArtifactCache::instance().path_for(
      "extraction", store::fingerprint(refined, extract::ExtractionOptions{}));
  ASSERT_TRUE(fs::exists(path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    f.put('\xa5');
  }

  const std::int64_t corrupt0 = counter("store.corrupt");
  const std::int64_t misses0 = counter("store.misses");
  const extract::Extraction recovered = store::cached_extraction(refined, {});
  EXPECT_EQ(counter("store.corrupt"), corrupt0 + 1);
  EXPECT_EQ(counter("store.misses"), misses0 + 1);
  EXPECT_EQ(serialized(recovered), serialized(cold));

  // The rewritten artifact is valid again: pure hit, no corruption.
  const std::int64_t hits0 = counter("store.hits");
  store::cached_extraction(refined, {});
  EXPECT_EQ(counter("store.hits"), hits0 + 1);
  EXPECT_EQ(counter("store.corrupt"), corrupt0 + 1);
}

TEST_F(StoreCacheTest, CorruptionSurfacesAsRecoveryActionNotCrash) {
  store::Artifact a = small_artifact();
  store::ArtifactCache& cache = store::ArtifactCache::instance();
  cache.save(a);
  const std::string path = cache.path_for(a.kind, a.fingerprint);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not an artifact";
  }
  robust::SolveReport report;
  EXPECT_FALSE(cache.load(a.kind, a.fingerprint, &report).has_value());
  ASSERT_EQ(report.actions.size(), 1u);
  EXPECT_EQ(report.actions[0].kind, robust::RecoveryKind::ArtifactRecompute);
  EXPECT_EQ(report.status, robust::SolveStatus::Recovered);
  // The bad file was deleted so the next lookup is a clean miss.
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(StoreCacheTest, FaultInjectionForcesRecomputePath) {
  const geom::Layout refined = geom::refine(small_layout(), um(50));
  const extract::Extraction cold = store::cached_extraction(refined, {});

  fault::configure("store_read@0");
  const std::int64_t corrupt0 = counter("store.corrupt");
  const extract::Extraction recovered = store::cached_extraction(refined, {});
  EXPECT_EQ(fault::fired(fault::Site::StoreRead), 1);
  EXPECT_EQ(counter("store.corrupt"), corrupt0 + 1);
  EXPECT_EQ(serialized(recovered), serialized(cold));
  fault::clear();

  // Injection over: the rewritten artifact hits normally.
  const std::int64_t hits0 = counter("store.hits");
  store::cached_extraction(refined, {});
  EXPECT_EQ(counter("store.hits"), hits0 + 1);
}

TEST_F(StoreCacheTest, LruEvictionRespectsCapAndRecency) {
  store::ArtifactCache& cache = store::ArtifactCache::instance();
  auto artifact = [](std::uint64_t key) {
    store::Artifact a;
    a.kind = "test";
    a.fingerprint = {key, key};
    store::ByteWriter w;
    w.raw(std::vector<std::uint8_t>(256, 0x5a).data(), 256);
    a.add("test", std::move(w));
    return a;
  };
  cache.save(artifact(1));
  cache.save(artifact(2));
  // Age artifact 1 so it is unambiguously the LRU entry.
  fs::last_write_time(cache.path_for("test", {1, 1}),
                      fs::file_time_type::clock::now() - std::chrono::hours(1));

  // Re-arm with a cap that fits roughly two artifacts, then add a third.
  cache.configure(dir_, 800);
  const std::int64_t evicted0 = counter("store.evictions");
  cache.save(artifact(3));
  EXPECT_GT(counter("store.evictions"), evicted0);
  EXPECT_FALSE(fs::exists(cache.path_for("test", {1, 1})));  // oldest gone
  EXPECT_TRUE(fs::exists(cache.path_for("test", {3, 3})));   // newest kept
}

TEST(StoreCacheDisabled, PassThroughLeavesNoTrace) {
  store::ArtifactCache::instance().configure("");
  ASSERT_FALSE(store::ArtifactCache::instance().enabled());
  const geom::Layout refined = geom::refine(small_layout(), um(50));
  const std::int64_t hits0 = counter("store.hits");
  const std::int64_t misses0 = counter("store.misses");
  const extract::Extraction direct = extract::extract(refined, {});
  const extract::Extraction via_cache = store::cached_extraction(refined, {});
  EXPECT_EQ(serialized(via_cache), serialized(direct));
  EXPECT_EQ(counter("store.hits"), hits0);
  EXPECT_EQ(counter("store.misses"), misses0);
}

}  // namespace
