// Unit tests for the Section-7 design techniques and the shield-insertion /
// net-ordering optimiser.
#include <gtest/gtest.h>

#include "design/metrics.hpp"
#include "design/shield_optimizer.hpp"
#include "geom/topologies.hpp"

namespace {

using namespace ind;
using geom::um;

TEST(Metrics, ShieldingReducesLoopInductance) {
  // Fig. 5: sandwiching a signal between ground shields forces close
  // return paths and cuts loop inductance.
  auto build = [&](bool shielded) {
    geom::Layout l(geom::default_tech());
    const int sig = l.add_net("sig", geom::NetKind::Signal);
    const int gnd = l.add_net("gnd", geom::NetKind::Ground);
    l.add_wire(sig, 6, {0, 0}, {um(800), 0}, um(2));
    // A far return always exists (power grid strap).
    l.add_wire(gnd, 6, {0, um(60)}, {um(800), um(60)}, um(4));
    if (shielded) {
      l.add_wire(gnd, 6, {0, um(4)}, {um(800), um(4)}, um(2));
      l.add_wire(gnd, 6, {0, -um(4)}, {um(800), -um(4)}, um(2));
    }
    geom::Driver d;
    d.at = {0, 0};
    d.layer = 6;
    d.signal_net = sig;
    l.add_driver(d);
    geom::Receiver r;
    r.at = {um(800), 0};
    r.layer = 6;
    r.signal_net = sig;
    r.name = "rcv";
    l.add_receiver(r);
    return l;
  };
  loop::LoopExtractionOptions opts;
  opts.max_segment_length = um(200);
  const geom::Layout bare = build(false);
  const geom::Layout shielded = build(true);
  const double l_bare =
      design::loop_inductance_at(bare, bare.find_net("sig"), 1e9, opts);
  const double l_shield = design::loop_inductance_at(
      shielded, shielded.find_net("sig"), 1e9, opts);
  EXPECT_LT(l_shield, 0.7 * l_bare);
}

TEST(Metrics, TwistedBundleCancelsMutual) {
  // Fig. 9: the flux an aggressor couples into the victim's loop (victim +
  // ground return) collapses when the bundle is twisted — the per-region
  // contributions alternate in sign.
  geom::TwistedBundleSpec spec;
  spec.bits = 4;
  spec.regions = 4;

  geom::Layout parallel(geom::default_tech());
  spec.twisted = false;
  const auto pr = geom::add_twisted_bundle(parallel, spec);

  geom::Layout twisted(geom::default_tech());
  spec.twisted = true;
  const auto tr = geom::add_twisted_bundle(twisted, spec);

  // Aggressor loop = pair (2,3); victim loop = pair (0,1).
  const double m_par = std::abs(design::pair_loop_mutual(
      parallel, pr.signal_nets[2], pr.signal_nets[3], pr.signal_nets[0],
      pr.signal_nets[1]));
  const double m_tw = std::abs(design::pair_loop_mutual(
      twisted, tr.signal_nets[2], tr.signal_nets[3], tr.signal_nets[0],
      tr.signal_nets[1]));
  EXPECT_LT(m_tw, 0.2 * m_par);
}

TEST(Metrics, CouplingCapBetweenAdjacentNets) {
  geom::Layout l(geom::default_tech());
  geom::BusSpec spec;
  spec.bits = 2;
  spec.add_drivers = false;
  const auto r = geom::add_bus(l, spec);
  const double c = design::net_coupling_capacitance(l, r.signal_nets[0],
                                                    r.signal_nets[1]);
  EXPECT_GT(c, 0.0);
  // Order-independent.
  EXPECT_DOUBLE_EQ(c, design::net_coupling_capacitance(l, r.signal_nets[1],
                                                       r.signal_nets[0]));
}

TEST(Metrics, VictimNoiseDetectsCoupling) {
  geom::Layout l(geom::default_tech());
  geom::BusSpec spec;
  spec.bits = 2;
  spec.length = um(600);
  spec.spacing = um(0.5);
  const auto bus = geom::add_bus(l, spec);

  peec::PeecOptions popts;
  popts.max_segment_length = um(200);
  circuit::TransientOptions topts;
  topts.t_stop = 0.6e-9;
  topts.dt = 2e-12;
  const auto noise = design::victim_noise(l, {bus.signal_nets[0]},
                                          bus.signal_nets[1], popts, topts);
  EXPECT_GT(noise.peak_volts, 0.01);  // visible crosstalk
  EXPECT_LT(noise.peak_volts, 1.8);   // but not full swing
}

// ---------------- shield optimizer ----------------

design::ShieldOrderProblem uniform_problem(int nets, int shields) {
  design::ShieldOrderProblem p;
  p.nets = nets;
  p.sensitivity = la::Matrix(static_cast<std::size_t>(nets),
                             static_cast<std::size_t>(nets));
  for (int i = 0; i < nets; ++i)
    for (int j = 0; j < nets; ++j)
      if (i != j) p.sensitivity(i, j) = 1.0;
  p.max_shields = shields;
  return p;
}

TEST(ShieldOptimizer, CostDropsWithShield) {
  const auto p = uniform_problem(4, 4);
  design::TrackAssignment plain;
  plain.order = {0, 1, 2, 3};
  plain.shield_after.assign(4, false);
  const double c0 = design::evaluate_cost(p, plain);
  design::TrackAssignment shielded = plain;
  shielded.shield_after[1] = true;
  const double c1 = design::evaluate_cost(p, shielded);
  EXPECT_LT(c1, c0);
}

TEST(ShieldOptimizer, GreedyUsesBudget) {
  const auto p = uniform_problem(5, 2);
  const auto t = design::solve_greedy(p);
  EXPECT_EQ(t.shields_used(), 2);
  EXPECT_EQ(t.order.size(), 5u);
}

TEST(ShieldOptimizer, GreedyMatchesOracleOnUniform) {
  const auto p = uniform_problem(4, 1);
  const auto greedy = design::solve_greedy(p);
  const auto oracle = design::solve_exhaustive(p);
  // Uniform weights: any ordering ties, shield placement drives the cost.
  EXPECT_NEAR(design::evaluate_cost(p, greedy),
              design::evaluate_cost(p, oracle), 1e-12);
}

TEST(ShieldOptimizer, AnnealingNotWorseThanGreedy) {
  design::ShieldOrderProblem p = uniform_problem(6, 2);
  // Skewed weights: net 0 is a big aggressor for net 5.
  p.sensitivity(5, 0) = p.sensitivity(0, 5) = 10.0;
  const auto greedy = design::solve_greedy(p);
  const auto annealed = design::solve_annealing(p, 3, 20000);
  EXPECT_LE(design::evaluate_cost(p, annealed),
            design::evaluate_cost(p, greedy) + 1e-12);
}

TEST(ShieldOptimizer, AnnealingNearOracleOnSmallInstance) {
  design::ShieldOrderProblem p = uniform_problem(5, 1);
  p.sensitivity(0, 1) = p.sensitivity(1, 0) = 8.0;
  p.sensitivity(2, 3) = p.sensitivity(3, 2) = 5.0;
  const auto annealed = design::solve_annealing(p, 7, 30000);
  const auto oracle = design::solve_exhaustive(p);
  const double gap = design::evaluate_cost(p, annealed) -
                     design::evaluate_cost(p, oracle);
  EXPECT_LE(gap, 0.10 * design::evaluate_cost(p, oracle) + 1e-12);
}

TEST(ShieldOptimizer, SeparatingHotPairBeatsAdjacent) {
  design::ShieldOrderProblem p = uniform_problem(4, 0);
  p.sensitivity(0, 1) = p.sensitivity(1, 0) = 100.0;
  const auto best = design::solve_exhaustive(p);
  // Nets 0 and 1 must not end up adjacent.
  for (std::size_t k = 0; k + 1 < best.order.size(); ++k) {
    const bool adjacent_hot =
        (best.order[k] == 0 && best.order[k + 1] == 1) ||
        (best.order[k] == 1 && best.order[k + 1] == 0);
    EXPECT_FALSE(adjacent_hot);
  }
}

TEST(ShieldOptimizer, RealizeProducesValidLayout) {
  design::TrackAssignment t;
  t.order = {2, 0, 1};
  t.shield_after = {true, false, false};
  geom::BusSpec tmpl;
  tmpl.length = um(500);
  const geom::Layout l = design::realize_assignment(t, tmpl);
  EXPECT_EQ(l.segments().size(), 4u);  // 3 signals + 1 shield
  EXPECT_EQ(l.drivers().size(), 3u);
  EXPECT_GE(l.find_net("net2"), 0);
  // Shield sits between track 0 (net2) and track 2 (net0).
  int shield_count = 0;
  for (const auto& s : l.segments())
    if (s.kind == geom::NetKind::Ground) ++shield_count;
  EXPECT_EQ(shield_count, 1);
}

TEST(ShieldOptimizer, ExhaustiveRejectsLargeInstance) {
  EXPECT_THROW(design::solve_exhaustive(uniform_problem(9, 1)),
               std::invalid_argument);
}

}  // namespace

// ---------------------------------------------------------------------------
// Noise-bound constraints ([21]: "subject to constraints on area, and
// bounds on inductive and capacitive noise").
// ---------------------------------------------------------------------------

namespace {

design::ShieldOrderProblem bounded_problem() {
  design::ShieldOrderProblem p;
  p.nets = 4;
  p.sensitivity = la::Matrix(4, 4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (i != j) p.sensitivity(i, j) = 1.0;
  p.sensitivity(3, 0) = 6.0;  // net 3 is very sensitive to net 0
  p.max_shields = 1;
  return p;
}

TEST(ShieldOptimizer, NoiseBreakdownSumsMatchCost) {
  const auto p = bounded_problem();
  design::TrackAssignment t;
  t.order = {0, 1, 2, 3};
  t.shield_after.assign(4, false);
  const auto nb = design::compute_noise(p, t);
  double cap = 0.0, ind = 0.0;
  for (std::size_t i = 0; i < nb.cap_in.size(); ++i) {
    cap += nb.cap_in[i];
    ind += nb.ind_in[i];
  }
  EXPECT_NEAR(design::evaluate_cost(p, t), p.cap_weight * cap + p.ind_weight * ind,
              1e-12);
}

TEST(ShieldOptimizer, FeasibilityReflectsBounds) {
  auto p = bounded_problem();
  design::TrackAssignment adjacent;
  adjacent.order = {0, 3, 1, 2};  // hot pair adjacent
  adjacent.shield_after.assign(4, false);
  EXPECT_TRUE(design::is_feasible(p, adjacent));  // bounds default to inf
  p.cap_noise_bound = 5.0;  // victim 3 receives 6.0 capacitively from net 0
  EXPECT_FALSE(design::is_feasible(p, adjacent));
}

TEST(ShieldOptimizer, SolversRespectNoiseBounds) {
  auto p = bounded_problem();
  p.cap_noise_bound = 5.0;  // forbids net 0 adjacent to net 3 unshielded
  for (const auto& t : {design::solve_greedy(p),
                        design::solve_annealing(p, 5, 20000),
                        design::solve_exhaustive(p)}) {
    EXPECT_TRUE(design::is_feasible(p, t))
        << "cost " << design::evaluate_cost(p, t);
  }
}

TEST(ShieldOptimizer, PenaltyMakesInfeasibleExpensive) {
  auto p = bounded_problem();
  p.cap_noise_bound = 5.0;
  design::TrackAssignment bad;
  bad.order = {0, 3, 1, 2};
  bad.shield_after.assign(4, false);
  design::TrackAssignment good = design::solve_exhaustive(p);
  EXPECT_GT(design::evaluate_cost(p, bad),
            design::evaluate_cost(p, good) + p.bound_penalty * 0.5);
}

}  // namespace

// ---------------------------------------------------------------------------
// Inductance-significance screen (reference [1]) and Elmore delay.
// ---------------------------------------------------------------------------

#include "design/significance.hpp"

namespace {

geom::Layout shielded_line_of(double len) {
  geom::Layout l(geom::default_tech());
  const int sig = l.add_net("sig", geom::NetKind::Signal);
  const int gnd = l.add_net("gnd", geom::NetKind::Ground);
  l.add_wire(sig, 6, {0, 0}, {len, 0}, um(2));
  l.add_wire(gnd, 6, {0, um(6)}, {len, um(6)}, um(3));
  geom::Driver d;
  d.at = {0, 0};
  d.layer = 6;
  d.signal_net = sig;
  l.add_driver(d);
  geom::Receiver r;
  r.at = {len, 0};
  r.layer = 6;
  r.signal_net = sig;
  r.name = "rcv";
  l.add_receiver(r);
  return l;
}

TEST(Significance, LineParametersAreSane) {
  const geom::Layout l = shielded_line_of(um(1000));
  loop::LoopExtractionOptions opts;
  opts.max_segment_length = um(250);
  const auto p =
      design::extract_line_parameters(l, l.find_net("sig"), 2e9, opts);
  EXPECT_NEAR(p.length, um(1000), 1e-9);
  // On-chip orders of magnitude: R' ~ 1e4 ohm/m, L' ~ 1e-6 H/m (1 nH/mm),
  // C' ~ 1e-10 F/m (100 aF/um), Z0 tens of ohms.
  EXPECT_GT(p.r_per_m, 1e3);
  EXPECT_LT(p.r_per_m, 1e6);
  EXPECT_GT(p.l_per_m, 1e-8);
  EXPECT_LT(p.l_per_m, 1e-5);
  EXPECT_GT(p.c_per_m, 1e-11);
  EXPECT_LT(p.c_per_m, 1e-9);
  EXPECT_GT(p.characteristic_impedance(), 10.0);
  EXPECT_LT(p.characteristic_impedance(), 500.0);
  EXPECT_GT(p.flight_time(), 0.0);
}

TEST(Significance, WindowBehaviour) {
  design::LineParameters line;
  line.r_per_m = 1e4;     // 10 ohm/mm
  line.l_per_m = 1e-6;    // 1 nH/mm
  line.c_per_m = 2e-10;   // 200 aF/um
  line.length = 2e-3;     // 2 mm
  const auto rep = design::inductance_significance(line, 30e-12);
  // lower = t_r / (2 sqrt(L'C')) ~ 1.06 mm; upper = 2/R' sqrt(L'/C') ~ 14 mm.
  EXPECT_NEAR(rep.lower_bound, 30e-12 / (2 * std::sqrt(2e-16)), 1e-6);
  EXPECT_NEAR(rep.upper_bound, 2e-4 * std::sqrt(5e3), 1e-4);
  EXPECT_TRUE(rep.inductance_significant);

  line.length = 0.2e-3;  // too short: edge hides the flight time
  EXPECT_FALSE(design::inductance_significance(line, 30e-12)
                   .inductance_significant);
  line.length = 30e-3;  // too long: attenuation dominates
  EXPECT_FALSE(design::inductance_significance(line, 30e-12)
                   .inductance_significant);
}

TEST(Significance, FasterEdgesWidenTheWindow) {
  design::LineParameters line;
  line.r_per_m = 1e4;
  line.l_per_m = 1e-6;
  line.c_per_m = 2e-10;
  line.length = 1e-3;
  const auto slow = design::inductance_significance(line, 100e-12);
  const auto fast = design::inductance_significance(line, 10e-12);
  EXPECT_LT(fast.lower_bound, slow.lower_bound);
  EXPECT_DOUBLE_EQ(fast.upper_bound, slow.upper_bound);  // R-limited side
}

TEST(Significance, ElmoreDelayMatchesHandComputation) {
  design::LineParameters line;
  line.r_per_m = 1e4;
  line.c_per_m = 1e-10;
  line.l_per_m = 1e-6;
  line.length = 1e-3;  // R_line = 10 ohm, C_line = 100 fF
  // t = 30*(100f+20f) + 10*(50f+20f) = 3.6ps + 0.7ps
  EXPECT_NEAR(design::elmore_delay(line, 30.0, 20e-15), 4.3e-12, 1e-15);
}

TEST(Significance, RejectsDegenerateLines) {
  design::LineParameters bad;
  bad.length = 1e-3;
  EXPECT_THROW(design::inductance_significance(bad, 1e-11),
               std::invalid_argument);
  geom::Layout l(geom::default_tech());
  l.add_net("empty", geom::NetKind::Signal);
  EXPECT_THROW(design::extract_line_parameters(l, 0), std::exception);
}

}  // namespace

// ---------------------------------------------------------------------------
// Worst-case switching-pattern search.
// ---------------------------------------------------------------------------

namespace {

TEST(WorstPattern, FindsAtLeastTheAllRisingNoise) {
  geom::Layout l(geom::default_tech());
  geom::BusSpec spec;
  spec.bits = 3;
  spec.length = um(500);
  spec.spacing = um(0.6);
  const auto bus = geom::add_bus(l, spec);

  peec::PeecOptions popts;
  popts.max_segment_length = um(250);
  circuit::TransientOptions topts;
  topts.t_stop = 0.5e-9;
  topts.dt = 2e-12;
  const std::vector<int> aggressors{bus.signal_nets[0], bus.signal_nets[2]};
  const auto base =
      design::victim_noise(l, aggressors, bus.signal_nets[1], popts, topts);
  const auto worst = design::worst_switching_pattern(
      l, aggressors, bus.signal_nets[1], popts, topts);
  EXPECT_GE(worst.peak_volts, base.peak_volts - 1e-12);
  EXPECT_EQ(worst.rising.size(), 2u);
}

TEST(WorstPattern, RejectsHugeSearchSpace) {
  geom::Layout l(geom::default_tech());
  std::vector<int> many(13, 0);
  EXPECT_THROW(design::worst_switching_pattern(l, many, 0, {}, {}),
               std::invalid_argument);
}

}  // namespace
