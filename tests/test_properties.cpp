// Property-based (parameterised) tests: invariants that must hold across
// whole parameter families, not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "circuit/transient.hpp"
#include "extract/capacitance.hpp"
#include "extract/partial_inductance.hpp"
#include "extract/skin.hpp"
#include "geom/topologies.hpp"
#include "la/cholesky.hpp"
#include "loop/port_extractor.hpp"
#include "sparsify/block_diagonal.hpp"
#include "sparsify/kmatrix.hpp"
#include "sparsify/shell.hpp"
#include "sparsify/stability.hpp"

namespace {

using namespace ind;
using geom::um;

// ---------------------------------------------------------------------------
// Invariant: the full partial-inductance matrix of ANY parallel-wire family
// is symmetric positive definite (passivity of the PEEC model).
// ---------------------------------------------------------------------------

struct BusParams {
  int wires;
  double pitch_um;
  double length_um;
  double width_um;
};

class PartialMatrixPsd : public ::testing::TestWithParam<BusParams> {};

TEST_P(PartialMatrixPsd, FullMatrixIsSpd) {
  const BusParams p = GetParam();
  std::vector<geom::Segment> segs;
  for (int i = 0; i < p.wires; ++i) {
    geom::Segment s;
    s.a = {0, i * um(p.pitch_um)};
    s.b = {um(p.length_um), i * um(p.pitch_um)};
    s.width = um(p.width_um);
    s.thickness = um(1);
    segs.push_back(s);
  }
  const la::Matrix l = extract::build_partial_inductance_matrix(segs);
  EXPECT_TRUE(la::is_symmetric(l));
  EXPECT_TRUE(la::is_positive_definite(l));
  // Passivity pairwise bound: |M| < sqrt(Li Lj).
  for (std::size_t i = 0; i < l.rows(); ++i)
    for (std::size_t j = i + 1; j < l.cols(); ++j)
      EXPECT_LT(std::abs(l(i, j)), std::sqrt(l(i, i) * l(j, j)));
}

INSTANTIATE_TEST_SUITE_P(
    BusSweep, PartialMatrixPsd,
    ::testing::Values(BusParams{2, 2.2, 200, 1}, BusParams{4, 2.2, 500, 1},
                      BusParams{8, 3, 1000, 1}, BusParams{6, 10, 1000, 2},
                      BusParams{12, 2.5, 800, 1}, BusParams{3, 50, 2000, 4}));

// ---------------------------------------------------------------------------
// Invariant: guaranteed-stable sparsifiers stay PSD for every section /
// radius choice (the paper's block-diagonal and shell guarantees).
// ---------------------------------------------------------------------------

class StableSparsifiers : public ::testing::TestWithParam<double> {};

TEST_P(StableSparsifiers, BlockDiagonalAlwaysPsd) {
  const double strip_um = GetParam();
  std::vector<geom::Segment> segs;
  for (int i = 0; i < 10; ++i) {
    geom::Segment s;
    s.a = {0, i * um(2.5)};
    s.b = {um(800), i * um(2.5)};
    s.width = um(1);
    s.thickness = um(1);
    segs.push_back(s);
  }
  const la::Matrix l = extract::build_partial_inductance_matrix(segs);
  const auto bd = sparsify::block_diagonal(
      l, sparsify::sections_by_strip(segs, geom::Axis::Y, um(strip_um)));
  EXPECT_TRUE(sparsify::analyze_stability(bd).positive_definite)
      << "strip width " << strip_um << "um";
}

TEST_P(StableSparsifiers, ShellAlwaysPsd) {
  const double radius_um = GetParam();
  std::vector<geom::Segment> segs;
  for (int i = 0; i < 10; ++i) {
    geom::Segment s;
    s.a = {0, i * um(2.5)};
    s.b = {um(800), i * um(2.5)};
    s.width = um(1);
    s.thickness = um(1);
    segs.push_back(s);
  }
  const auto sh = sparsify::shell(segs, um(radius_um));
  EXPECT_TRUE(sparsify::analyze_stability(sh).positive_definite)
      << "radius " << radius_um << "um";
}

TEST_P(StableSparsifiers, KMatrixAlwaysPsdAfterTruncation) {
  const double scale = GetParam();
  std::vector<geom::Segment> segs;
  for (int i = 0; i < 10; ++i) {
    geom::Segment s;
    s.a = {0, i * um(2.5)};
    s.b = {um(800), i * um(2.5)};
    s.width = um(1);
    s.thickness = um(1);
    segs.push_back(s);
  }
  const la::Matrix l = extract::build_partial_inductance_matrix(segs);
  // Map strip widths to plausible K thresholds in (0, 0.2).
  const double ratio = std::min(0.19, scale / 200.0);
  const auto k = sparsify::kmatrix_sparsify(l, ratio);
  EXPECT_TRUE(sparsify::analyze_stability(k).positive_definite)
      << "ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(ParamSweep, StableSparsifiers,
                         ::testing::Values(3.0, 6.0, 12.0, 25.0, 100.0));

// ---------------------------------------------------------------------------
// Invariant: skin splitting conserves cross-section exactly.
// ---------------------------------------------------------------------------

class SkinConservation
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SkinConservation, AreaAndDcConductanceConserved) {
  const auto [w_um, t_um] = GetParam();
  geom::Segment s;
  s.a = {0, 0};
  s.b = {um(300), 0};
  s.width = um(w_um);
  s.thickness = um(t_um);
  const auto fils = extract::split_for_skin(s);
  double area = 0.0, conductance = 0.0;
  for (const auto& f : fils) {
    area += f.width * f.thickness;
    conductance += f.width * f.thickness / f.length();  // ~ 1/R per filament
    EXPECT_DOUBLE_EQ(f.length(), s.length());
  }
  EXPECT_NEAR(area, s.width * s.thickness, 1e-18);
  EXPECT_NEAR(conductance, s.width * s.thickness / s.length(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    CrossSections, SkinConservation,
    ::testing::Values(std::tuple{1.0, 0.5}, std::tuple{4.0, 1.0},
                      std::tuple{10.0, 1.0}, std::tuple{8.0, 4.0},
                      std::tuple{30.0, 2.0}));

// ---------------------------------------------------------------------------
// Invariant: capacitance model monotonicity across geometry sweeps.
// ---------------------------------------------------------------------------

class CapMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(CapMonotonic, GroundCapGrowsWithWidthShrinksWithHeight) {
  const double w = um(GetParam());
  const double c_low = extract::ground_cap_per_length(w, um(1), um(1), 3.9);
  const double c_high = extract::ground_cap_per_length(w, um(1), um(3), 3.9);
  EXPECT_GT(c_low, c_high);
  const double c_wider =
      extract::ground_cap_per_length(w * 2, um(1), um(1), 3.9);
  EXPECT_GT(c_wider, extract::ground_cap_per_length(w, um(1), um(1), 3.9));
}

TEST_P(CapMonotonic, CouplingCapMonotoneInSpacing) {
  const double s0 = um(GetParam());
  const double c_near =
      extract::coupling_cap_per_length(um(1), um(1), s0, um(2), 3.9);
  const double c_far =
      extract::coupling_cap_per_length(um(1), um(1), s0 * 2, um(2), 3.9);
  EXPECT_GT(c_near, c_far);
}

INSTANTIATE_TEST_SUITE_P(GeometrySweep, CapMonotonic,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

// ---------------------------------------------------------------------------
// Invariant: the loop extractor's R(f) is non-decreasing and L(f)
// non-increasing for any return-path spacing (the Fig. 3b signature).
// ---------------------------------------------------------------------------

class LoopDispersion : public ::testing::TestWithParam<double> {};

TEST_P(LoopDispersion, SkinSignatureHolds) {
  const double spacing = um(GetParam());
  geom::Layout l(geom::default_tech());
  const int sig = l.add_net("sig", geom::NetKind::Signal);
  const int gnd = l.add_net("gnd", geom::NetKind::Ground);
  l.add_wire(sig, 6, {0, 0}, {um(600), 0}, um(2));
  l.add_wire(gnd, 6, {0, spacing}, {um(600), spacing}, um(2));
  l.add_wire(gnd, 6, {0, -spacing}, {um(600), -spacing}, um(2));
  geom::Driver d;
  d.at = {0, 0};
  d.layer = 6;
  d.signal_net = sig;
  l.add_driver(d);
  geom::Receiver r;
  r.at = {um(600), 0};
  r.layer = 6;
  r.signal_net = sig;
  r.name = "rcv";
  l.add_receiver(r);

  loop::LoopExtractionOptions opts;
  opts.max_segment_length = um(200);
  opts.mqs.skin.max_width = um(0.4);
  opts.mqs.skin.max_thickness = um(0.4);
  const auto sweep =
      loop::extract_loop_rl(l, sig, {1e8, 1e9, 1e10, 1e11}, opts);
  for (std::size_t k = 1; k < sweep.size(); ++k) {
    EXPECT_GE(sweep[k].resistance, sweep[k - 1].resistance * 0.999);
    EXPECT_LE(sweep[k].inductance, sweep[k - 1].inductance * 1.001);
    EXPECT_GT(sweep[k].inductance, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(SpacingSweep, LoopDispersion,
                         ::testing::Values(4.0, 8.0, 16.0, 32.0));

// ---------------------------------------------------------------------------
// Invariant: transient energy conservation — with a passive RLC circuit and
// no source activity after t0, node voltages decay toward the source level.
// ---------------------------------------------------------------------------

class PassiveDecay : public ::testing::TestWithParam<double> {};

TEST_P(PassiveDecay, RingingDecaysForAnyDamping) {
  const double r = GetParam();
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto a = nl.node("a");
  const auto out = nl.node("out");
  nl.add_vsource(in, circuit::kGround, circuit::Pwl({{0.0, 0.0}, {1e-12, 1.0}}));
  nl.add_inductor(in, a, 1e-9);
  nl.add_resistor(a, out, r);
  nl.add_capacitor(out, circuit::kGround, 1e-12);
  circuit::TransientOptions opts;
  opts.t_stop = 20e-9;
  opts.dt = 1e-12;
  const auto res = circuit::transient(
      nl, {{circuit::ProbeKind::NodeVoltage, static_cast<std::size_t>(out), "o"}},
      opts);
  // Peak deviation over the last quarter must be far below the first quarter
  // (passive circuit: the trapezoidal rule must not pump energy).
  const auto& w = res.samples[0];
  double early = 0.0, late = 0.0;
  const std::size_t n = w.size();
  for (std::size_t k = 0; k < n / 4; ++k)
    early = std::max(early, std::abs(w[k] - 1.0));
  for (std::size_t k = 3 * n / 4; k < n; ++k)
    late = std::max(late, std::abs(w[k] - 1.0));
  EXPECT_LT(late, 0.1 * early + 1e-6) << "R = " << r;
}

INSTANTIATE_TEST_SUITE_P(DampingSweep, PassiveDecay,
                         ::testing::Values(1.0, 5.0, 20.0, 100.0));

}  // namespace

// ---------------------------------------------------------------------------
// Physics property: wave causality. On a low-loss line, the receiver cannot
// respond before the electromagnetic flight time l*sqrt(L'C') — the RLC
// model must respect it, while a pure RC model (diffusive) responds
// immediately. Sweeps line length.
// ---------------------------------------------------------------------------

#include "circuit/netlist.hpp"
#include "circuit/waveform.hpp"

namespace {

class WaveCausality : public ::testing::TestWithParam<int> {};

TEST_P(WaveCausality, ReceiverRespectsFlightTime) {
  const int stages = GetParam();
  // Distributed LC ladder: L' = 0.5 nH/stage, C' = 0.2 pF/stage.
  const double l_st = 0.5e-9, c_st = 0.2e-12;
  circuit::Netlist nl;
  const auto in = nl.node("in");
  nl.add_vsource(in, circuit::kGround,
                 circuit::Pwl({{0.0, 0.0}, {2e-12, 1.0}}));
  circuit::NodeId prev = in;
  for (int k = 0; k < stages; ++k) {
    const auto next = nl.make_node();
    nl.add_inductor(prev, next, l_st);
    nl.add_resistor(next, circuit::kGround, 1e7);  // leak for DC stability
    nl.add_capacitor(next, circuit::kGround, c_st);
    prev = next;
  }
  const double t_flight = stages * std::sqrt(l_st * c_st);

  circuit::TransientOptions opts;
  opts.t_stop = 6.0 * t_flight;
  opts.dt = t_flight / (60.0 * stages);
  const auto res = circuit::transient(
      nl, {{circuit::ProbeKind::NodeVoltage, static_cast<std::size_t>(prev), "o"}},
      opts);
  // 10% threshold crossing happens no earlier than ~80% of flight time
  // (lumped ladders slightly precurse the ideal TL).
  const auto t10 = circuit::crossing_time(res.time, res.samples[0], 0.1, true);
  ASSERT_TRUE(t10.has_value());
  EXPECT_GT(*t10, 0.8 * t_flight) << "wavefront arrived unphysically early";
}

INSTANTIATE_TEST_SUITE_P(LineLengths, WaveCausality,
                         ::testing::Values(5, 10, 20));

// ---------------------------------------------------------------------------
// MQS reciprocity: the impedance seen between two ports of a linear
// reciprocal network satisfies Z12 = Z21. Checked by driving either end of
// a signal/return pair.
// ---------------------------------------------------------------------------

#include "loop/mqs_solver.hpp"

class MqsReciprocity : public ::testing::TestWithParam<double> {};

TEST_P(MqsReciprocity, TransferImpedanceSymmetric) {
  const double freq = GetParam();
  geom::Layout l(geom::default_tech());
  const int sig = l.add_net("sig", geom::NetKind::Signal);
  const int gnd = l.add_net("gnd", geom::NetKind::Ground);
  l.add_wire(sig, 6, {0, 0}, {um(600), 0}, um(2));
  l.add_wire(gnd, 6, {0, um(8)}, {um(600), um(8)}, um(2));
  const geom::Layout fine = geom::refine(l, um(200));
  loop::MqsSolver solver(fine.segments(), fine.vias(), fine.tech(), {});
  const auto a_sig = solver.node_at({0, 0}, 6);
  const auto a_gnd = solver.node_at({0, um(8)}, 6);
  const auto b_sig = solver.node_at({um(600), 0}, 6);
  const auto b_gnd = solver.node_at({um(600), um(8)}, 6);
  ASSERT_TRUE(a_sig && a_gnd && b_sig && b_gnd);
  // Close the far loop, drive the near port, and vice versa: the driving
  // point impedances of the two mirrored configurations must match (the
  // structure is symmetric under x -> L-x).
  loop::MqsSolver s1 = solver;
  s1.short_nodes(*b_sig, *b_gnd);
  const auto z1 = s1.port_impedance(*a_sig, *a_gnd, freq);
  loop::MqsSolver s2 = solver;
  s2.short_nodes(*a_sig, *a_gnd);
  const auto z2 = s2.port_impedance(*b_sig, *b_gnd, freq);
  EXPECT_NEAR(z1.resistance, z2.resistance, 1e-9 * std::abs(z1.resistance));
  EXPECT_NEAR(z1.inductance, z2.inductance, 1e-9 * std::abs(z1.inductance));
}

INSTANTIATE_TEST_SUITE_P(Frequencies, MqsReciprocity,
                         ::testing::Values(1e8, 1e9, 1e10));

}  // namespace
